#!/usr/bin/env python3
"""Per-flow forensics: what happened to every flow in a defended run.

Produces the per-flow fate table (ground truth vs verdict vs packets)
that a network operator validating MAFIC on their own traffic would
want, plus a CSV export, plus the configuration feasibility report that
explains up front whether detection can even fire.

Run:  python examples/flow_forensics.py
"""

import tempfile
from pathlib import Path

from repro.experiments import ExperimentConfig, run_experiment, validate_config
from repro.metrics import FlowTruth, build_flow_report


def main() -> None:
    config = ExperimentConfig(total_flows=20, n_routers=12, seed=29)

    print("=== Feasibility check (before spending any simulation time) ===")
    for finding in validate_config(config):
        print(f"  [{finding.severity.value:>7}] {finding.message}")

    print("\nRunning...")
    result = run_experiment(config)
    report = build_flow_report(result.scenario)

    print("\n=== Per-flow fates ===")
    print(f"{'flow':<18} {'truth':<11} {'verdict':<15} "
          f"{'sent':>6} {'arrived':>8} {'correct':>8}")
    for fate in sorted(
        report.fates.values(), key=lambda f: (f.truth.value, f.flow_hash)
    ):
        correct = (
            "-" if fate.correctly_judged is None else str(fate.correctly_judged)
        )
        print(
            f"{fate.flow_hash:016x}  {fate.truth.value:<11} "
            f"{fate.verdict or '(none)':<15} {fate.packets_sent:>6} "
            f"{fate.victim_arrivals:>8} {correct:>8}"
        )

    print("\n=== Verdict summary ===")
    for verdict, count in sorted(report.verdict_counts().items()):
        print(f"  {verdict:<15} {count}")
    misjudged = report.misjudged()
    print(f"  misjudged flows: {len(misjudged)}")
    tcp = report.of_truth(FlowTruth.TCP_LEGIT)
    judged_nice = sum(1 for f in tcp if f.verdict == "nice")
    print(f"  TCP flows probed and cleared: {judged_nice}/{len(tcp)}")

    csv_path = Path(tempfile.gettempdir()) / "mafic_flow_report.csv"
    import csv as csv_module

    with csv_path.open("w", newline="", encoding="utf-8") as f:
        csv_module.writer(f).writerows(report.to_rows())
    print(f"\nCSV written to {csv_path}")


if __name__ == "__main__":
    main()
