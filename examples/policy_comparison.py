#!/usr/bin/env python3
"""Compare MAFIC against the baseline drop policies.

Runs the same attack scenario under four defences:

* MAFIC             — adaptive probe-then-cut (this paper),
* proportional drop — the authors' earlier scheme [2]: every victim-bound
                      packet dropped with the same probability Pd,
* aggregate limit   — pushback-style token-bucket rate limiting,
* none              — undefended control.

Prints the accuracy / collateral trade-off that motivates the paper.

Run:  python examples/policy_comparison.py
"""

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.config import DefenseKind


def main() -> None:
    print("Running the same DDoS under four defences...\n")
    rows = []
    for defense in (
        DefenseKind.MAFIC,
        DefenseKind.PROPORTIONAL,
        DefenseKind.RATE_LIMIT,
        DefenseKind.NONE,
    ):
        config = ExperimentConfig(
            total_flows=30, n_routers=16, seed=19, defense=defense
        )
        result = run_experiment(config)
        s = result.summary
        vc = result.scenario.victim_collector
        late_attack, late_legit = vc.arrivals_in(
            config.duration - 1.0, config.duration
        )
        rows.append(
            (
                defense.value,
                100 * s.accuracy,
                100 * s.legit_drop_rate,
                100 * s.false_negative_rate,
                late_attack,
                late_legit,
            )
        )
        print(f"  {defense.value:<14} done "
              f"({result.events_executed:,} events)")

    print()
    header = (
        f"{'defence':<14} {'accuracy%':>10} {'legit-loss%':>12} "
        f"{'theta_n%':>9} {'atk@victim':>11} {'legit@victim':>13}"
    )
    print(header)
    print("-" * len(header))
    for name, acc, lr, fn, atk, legit in rows:
        print(
            f"{name:<14} {acc:>10.2f} {lr:>12.2f} {fn:>9.2f} "
            f"{atk:>11} {legit:>13}"
        )

    print(
        "\nReading: MAFIC matches the blunt policies on attack suppression"
        "\nwhile cutting legitimate losses by an order of magnitude — the"
        "\n'collateral damage' argument of the paper's Section II."
    )


if __name__ == "__main__":
    main()
