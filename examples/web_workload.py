#!/usr/bin/env python3
"""User-visible impact: flow completion of short transfers ("mice")
under DDoS, with and without MAFIC.

The paper measures packet-level rates; a web user experiences latency
and failures.  This example runs a churning population of short TCP
transfers against a capacity-limited victim in three worlds — calm,
heavy flood undefended, heavy flood with MAFIC — and compares completion
counts and flow-completion-time (FCT) percentiles.

Two honest effects appear:

* **Undefended collapse** — the flood starves the mice: most transfers
  never finish inside the run (the few that complete are the lucky
  early ones, so their FCTs look deceptively low).
* **MAFIC's probe tax** — every new flow pays roughly one probe window
  (its first packets are dropped until the verdict clears it), so mice
  FCT under MAFIC sits above calm.  The defence buys *completion* at
  the price of ~1 s of first-packet latency; the paper's long-lived
  flows amortize that tax, short mice do not.  (Whitelisting
  established prefixes — the paper's future-work direction — would
  remove it.)

Run:  python examples/web_workload.py
"""

import numpy as np

from repro.experiments import ExperimentConfig
from repro.experiments.config import DefenseKind
from repro.experiments.scenario import build_scenario
from repro.experiments.workload import DynamicWorkload, DynamicWorkloadConfig


def run_world(label, attack_fraction, defense, seed=47):
    config = ExperimentConfig(
        total_flows=20,
        n_routers=12,
        duration=5.0,
        attack_fraction=attack_fraction,
        defense=defense,
        victim_bandwidth_bps=10e6,  # the flood exceeds this: real pain
        rate_bps=2e6,
        seed=seed,
    )
    scenario = build_scenario(config)
    workload = DynamicWorkload(
        DynamicWorkloadConfig(arrival_rate=10.0, mean_segments=8,
                              stop_time=4.2),
        rng=np.random.default_rng(seed),
    )
    workload.install(scenario)
    scenario.sim.run(until=config.duration)
    return label, workload


def main() -> None:
    print("Running three worlds (same mice, same seeds)...\n")
    worlds = [
        run_world("calm (no attack)", 0.02, DefenseKind.NONE),
        run_world("flooded, undefended", 0.5, DefenseKind.NONE),
        run_world("flooded, MAFIC", 0.5, DefenseKind.MAFIC),
    ]

    header = (
        f"{'world':<22} {'mice':>6} {'completed':>10} {'mean FCT':>10} "
        f"{'p50':>8} {'p95':>8}"
    )
    print(header)
    print("-" * len(header))
    for label, workload in worlds:
        done = len(workload.completed())
        total = len(workload.records)
        print(
            f"{label:<22} {total:>6} {done:>7} "
            f"({100 * done / total:>3.0f}%) "
            f"{workload.mean_fct() * 1e3:>6.0f}ms "
            f"{workload.fct_percentile(50) * 1e3:>6.0f}ms "
            f"{workload.fct_percentile(95) * 1e3:>6.0f}ms"
        )

    print(
        "\nReading: undefended, the flood starves most mice (low completion"
        "\ncount; the few finishers are early-arriving survivors, which is"
        "\nwhy their FCT looks deceptively small).  MAFIC restores"
        "\ncompletion for ~85% of mice at a ~1 s probe tax per new flow —"
        "\nthe cost of judging every flow before trusting it."
    )


if __name__ == "__main__":
    main()
