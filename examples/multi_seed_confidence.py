#!/usr/bin/env python3
"""Quantify run-to-run variation: multi-seed runs with confidence intervals.

The paper reports single curves; this example shows how tight the
reproduction's metrics actually are across seeds — the evidence that the
headline numbers are not one lucky run — and demonstrates the
steady-state detector on the victim's post-cut arrival series.

The seeds fan out across one worker process per CPU (set
``REPRO_JOBS=1`` to force the serial path — the per-seed numbers are
identical either way).

Run:  python examples/multi_seed_confidence.py
"""

import os

from repro.analysis import aggregate_runs, settling_time
from repro.experiments import ExperimentConfig
from repro.experiments.parallel import default_jobs, run_seeds_parallel


def main() -> None:
    config = ExperimentConfig(total_flows=24, n_routers=12)
    seeds = [101, 202, 303, 404, 505]
    jobs = int(os.environ.get("REPRO_JOBS", default_jobs()))
    print(f"Running {len(seeds)} seeds of the same scenario ({jobs} worker(s))...")
    batch = run_seeds_parallel(config, seeds, jobs=jobs)
    runs = batch.results
    print(f"...done in {batch.wall_seconds:.1f}s wall")
    for run in runs:
        pct = run.summary.as_percent()
        print(
            f"  seed {run.config.seed:>3}: alpha={pct['alpha']:6.2f}%  "
            f"Lr={pct['Lr']:5.2f}%  theta_n={pct['theta_n']:5.2f}%"
        )

    print("\n95% confidence intervals over seeds:")
    print(aggregate_runs(runs).as_percent_table())
    print("\nmerged RunningStats (parallel reduction):")
    for name, stats in batch.stats.items():
        print(f"  {name:<22} mean={100 * stats.mean:6.2f}%  n={stats.count}")

    print("\nSteady-state detection on the victim arrival series:")
    for run in runs[:3]:
        series = run.series
        settle = settling_time(
            series.times, series.total_kbps, window=8, tolerance=0.35
        )
        t0 = run.activation_time
        if settle is None or t0 is None:
            print(f"  seed {run.config.seed}: no settling detected")
            continue
        print(
            f"  seed {run.config.seed}: pushback at t={t0:.2f}s, "
            f"victim rate settled from t={settle:.2f}s "
            f"({settle - t0:+.2f}s after the trigger)"
        )


if __name__ == "__main__":
    main()
