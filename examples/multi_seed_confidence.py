#!/usr/bin/env python3
"""Quantify run-to-run variation: multi-seed runs with confidence intervals.

The paper reports single curves; this example shows how tight the
reproduction's metrics actually are across seeds — the evidence that the
headline numbers are not one lucky run — and demonstrates the
steady-state detector on the victim's post-cut arrival series.

Run:  python examples/multi_seed_confidence.py
"""

from repro.analysis import aggregate_runs, run_seeds, settling_time
from repro.experiments import ExperimentConfig


def main() -> None:
    config = ExperimentConfig(total_flows=24, n_routers=12)
    seeds = [101, 202, 303, 404, 505]
    print(f"Running {len(seeds)} seeds of the same scenario...")
    runs = run_seeds(config, seeds)
    for run in runs:
        pct = run.summary.as_percent()
        print(
            f"  seed {run.config.seed:>3}: alpha={pct['alpha']:6.2f}%  "
            f"Lr={pct['Lr']:5.2f}%  theta_n={pct['theta_n']:5.2f}%"
        )

    print("\n95% confidence intervals over seeds:")
    print(aggregate_runs(runs).as_percent_table())

    print("\nSteady-state detection on the victim arrival series:")
    for run in runs[:3]:
        series = run.series
        settle = settling_time(
            series.times, series.total_kbps, window=8, tolerance=0.35
        )
        t0 = run.activation_time
        if settle is None or t0 is None:
            print(f"  seed {run.config.seed}: no settling detected")
            continue
        print(
            f"  seed {run.config.seed}: pushback at t={t0:.2f}s, "
            f"victim rate settled from t={settle:.2f}s "
            f"({settle - t0:+.2f}s after the trigger)"
        )


if __name__ == "__main__":
    main()
