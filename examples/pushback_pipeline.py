#!/usr/bin/env python3
"""Walk through the full pushback pipeline, stage by stage.

This example exposes the machinery the quickstart hides:

1. the LogLog sketches estimating per-epoch traffic matrices,
2. the victim-overload detector and its calm baseline,
3. ATR identification from the matrix column,
4. MAFIC's probe verdicts at each identified ATR, and
5. the victim's bandwidth time line (the Fig. 4(b) view).

Run:  python examples/pushback_pipeline.py
"""

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.scenario import build_scenario
from repro.metrics.timeseries import BandwidthSeries


def main() -> None:
    config = ExperimentConfig(total_flows=30, n_routers=16, seed=13)
    scenario = build_scenario(config)
    result = run_experiment(config, scenario=scenario)

    print("=== 1. Traffic-matrix epochs (set-union counting) ===")
    print(f"{'epoch end':>10} {'|Dj| victim':>12}  top ingress contributions")
    for snap in scenario.monitor.snapshots[:10]:
        egress = snap.egress_totals[scenario.topology.victim_router_name]
        col = snap.destinations.index(scenario.topology.victim_router_name)
        contributions = sorted(
            ((snap.matrix[i, col], src) for i, src in enumerate(snap.sources)),
            reverse=True,
        )[:3]
        tops = ", ".join(f"{src}={val:.0f}" for val, src in contributions)
        print(f"{snap.time:>10.2f} {egress:>12.0f}  {tops}")

    print("\n=== 2. Detection and ATR identification ===")
    coordinator = scenario.coordinator
    print(f"calm baseline learned: {coordinator.baseline:.0f} packets/epoch")
    for report in coordinator.reports[:3]:
        named = ", ".join(report.atr_names) or "(none)"
        print(
            f"t={report.time:.2f}: egress {report.egress_estimate:.0f} > "
            f"threshold {report.threshold:.0f} -> ATRs: {named}"
        )
    true_atrs = scenario.attack.atr_ground_truth
    print(f"ground-truth ATRs: {sorted(true_atrs)}")
    print(f"identified:        {sorted(result.identified_atrs)}")
    print(f"precision {result.atr_precision:.0%}, recall {result.atr_recall:.0%}")

    print("\n=== 3. MAFIC verdicts at the ATRs ===")
    for name, agent in sorted(scenario.agents.items()):
        if agent.stats.activations == 0:
            continue
        stats = agent.stats
        print(
            f"{name}: probed {stats.probes_initiated}, "
            f"nice {stats.verdicts_nice}, cut {stats.verdicts_cut}, "
            f"pdt-drops {stats.packets_dropped_pdt}, "
            f"illegal-drops {stats.packets_dropped_illegal}"
        )

    print("\n=== 4. Victim bandwidth timeline (Fig. 4(b) view) ===")
    series: BandwidthSeries = result.series
    t0 = result.activation_time or config.attack_start
    scale_max = max(series.total_kbps) or 1.0
    for t, kbps in zip(series.times[::4], series.total_kbps[::4]):
        bar = "#" * int(40 * kbps / scale_max)
        marker = " <- pushback" if abs(t - t0) < 0.11 else ""
        print(f"t={t:4.1f}s {kbps:9.0f} kbps |{bar}{marker}")

    print("\n=== 5. Headline metrics ===")
    for name, value in result.summary.as_percent().items():
        print(f"  {name:>8}: {value:.3f}%")


if __name__ == "__main__":
    main()
