#!/usr/bin/env python3
"""Quickstart: run one MAFIC defence scenario and print its report card.

Builds the paper's default setup (Table II: Vt = 50 flows, Pd = 90%,
Gamma = 95% TCP, N = 40 routers), launches a DDoS at t = 1.05 s, and
prints the five evaluation metrics plus the detection timeline.

Run:  python examples/quickstart.py
"""

from repro.experiments import ExperimentConfig, run_experiment
from repro.experiments.reporting import format_summary


def main() -> None:
    config = ExperimentConfig(seed=7)
    print("Building and running the default MAFIC scenario...")
    print(
        f"  {config.total_flows} flows = {config.n_zombies} zombies + "
        f"{config.n_tcp} TCP + {config.n_udp_legit} legit-UDP, "
        f"N = {config.n_routers} routers, Pd = "
        f"{config.mafic.drop_probability:.0%}"
    )
    result = run_experiment(config)

    print(f"\nSimulated {config.duration:.1f} s "
          f"({result.events_executed:,} events, "
          f"{result.wall_seconds:.1f} s wall clock)\n")

    print("--- Detection timeline " + "-" * 38)
    print(f"attack launched        t = {config.attack_start:.2f} s")
    if result.activation_time is not None:
        print(f"pushback triggered     t = {result.activation_time:.2f} s")
        print(f"ATRs identified        {len(result.identified_atrs)} "
              f"(recall {result.atr_recall:.0%})")
    else:
        print("pushback never triggered (!)")

    print("\n--- Evaluation metrics (paper Table I) " + "-" * 22)
    print(format_summary(result.summary))

    confusion = result.scenario.defense_collector.verdict_confusion()
    print("\n--- Per-flow verdicts (truth, verdict) -> count " + "-" * 13)
    for (truth, verdict), count in sorted(
        confusion.items(), key=lambda kv: (kv[0][0].value, kv[0][1])
    ):
        print(f"  {truth.value:<12} {verdict:<15} {count}")


if __name__ == "__main__":
    main()
