#!/usr/bin/env python3
"""Campaign walkthrough: declare a grid, run it, crash, resume, query.

Everything here also exists as CLI verbs (``python -m repro campaign
run|status|resume|report spec.toml``); this script shows the same
lifecycle through the Python API, using a temporary store root.

Run:  PYTHONPATH=src python examples/campaign_workflow.py
"""

from __future__ import annotations

import tempfile

from repro.campaign import (
    CampaignSpec,
    campaign_report,
    campaign_status,
    load_runs,
    run_campaign,
    to_sweep_result,
)


def main() -> int:
    # The grid the paper's Fig. 4-style comparisons need: attack
    # intensity x defence, three seeds each.  Declared, not scripted.
    spec = CampaignSpec(
        name="demo-attack-vs-defense",
        seeds=(1, 2, 3),
        base={
            "total_flows": 10,
            "n_routers": 6,
            "duration": 1.5,
            "attack_start": 1.05,
            "topology": "star",
        },
        axes=(
            {"field": "attack_fraction", "values": (0.3, 0.6)},
            {"field": "defense", "values": ("mafic", "proportional")},
        ),
    )
    print(f"campaign plans {len(spec.plan())} content-addressed runs\n")

    with tempfile.TemporaryDirectory(prefix="campaign-demo-") as root:
        # "Crash" after 5 runs: artifacts for completed work survive.
        partial = run_campaign(spec, root=root, jobs=1, max_runs=5)
        status = campaign_status(spec, root)
        print(
            f"interrupted: {partial.executed} executed, "
            f"{len(status.missing)} still missing"
        )

        # Resume: cached runs are skipped, only the remainder executes.
        resumed = run_campaign(spec, root=root, jobs=1)
        print(
            f"resumed:     {resumed.cached} cached, "
            f"{resumed.executed} executed -> complete={resumed.complete}\n"
        )

        # Query: per-point means with CIs, straight off the store.
        report = campaign_report(spec, root)
        for entry in report["points"]:
            point = ", ".join(f"{k}={v}" for k, v in entry["point"].items())
            alpha = entry["metrics"]["accuracy"]
            print(
                f"  {point:<45} alpha = {100 * alpha['mean']:5.1f}% "
                f"+/- {100 * alpha['ci_halfwidth']:4.1f} (n={alpha['n']})"
            )

        # Or reload one axis as a classic SweepResult for plotting code.
        mafic_runs = load_runs(
            spec, root, where=lambda run: run.config.defense == "mafic"
        )
        sweep = to_sweep_result(mafic_runs, "attack_fraction", name="alpha")
        ys = sweep.ys(lambda result: result.summary.accuracy)
        print(f"\nmafic alpha across attack_fraction {sweep.x_values}: "
              f"{[f'{100 * y:.1f}%' for y in ys]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
