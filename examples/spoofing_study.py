#!/usr/bin/env python3
"""Study MAFIC across the IP-spoofing spectrum of Section III.A.

The paper frames two extremes — all attack sources illegal/unreachable
vs. all "legitimate" (valid subnet addresses, just not the attacker's) —
and targets the regime in between.  This example sweeps that spectrum,
plus the per-packet source-rotation stress case, and shows which MAFIC
mechanism does the work in each regime:

* illegal sources  -> the PDT legality shortcut kills them on sight;
* legal spoofing   -> the probe (drop + forged dup-ACKs) catches their
                      unresponsiveness;
* rotation         -> every packet is a fresh one-packet flow; the Pd
                      gate alone must carry the defence.

Run:  python examples/spoofing_study.py
"""

from repro.attacks.spoofing import SpoofMode, SpoofingModel
from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics.collectors import FlowTruth

REGIMES = [
    ("all illegal", SpoofingModel(mode=SpoofMode.ILLEGAL)),
    ("mixed 50/50", SpoofingModel(mode=SpoofMode.MIXED, illegal_fraction=0.5)),
    ("mixed 25% bad", SpoofingModel(mode=SpoofMode.MIXED, illegal_fraction=0.25)),
    ("all legal", SpoofingModel(mode=SpoofMode.LEGIT_SUBNET)),
    ("no spoofing", SpoofingModel(mode=SpoofMode.NONE)),
    (
        "rotating",
        SpoofingModel(mode=SpoofMode.LEGIT_SUBNET, rotate_per_packet=True),
    ),
]


def main() -> None:
    header = (
        f"{'regime':<14} {'accuracy%':>10} {'theta_n%':>9} {'Lr%':>7} "
        f"{'illegal-drops':>14} {'pdt-drops':>10} {'probe-drops':>12}"
    )
    print("Sweeping the spoofing spectrum (same attack, same seed)...\n")
    print(header)
    print("-" * len(header))
    for name, model in REGIMES:
        config = ExperimentConfig(
            total_flows=24, n_routers=12, seed=23, spoofing=model
        )
        result = run_experiment(config)
        attack = result.scenario.defense_collector.of(FlowTruth.ATTACK)
        s = result.summary
        print(
            f"{name:<14} {100 * s.accuracy:>10.2f} "
            f"{100 * s.false_negative_rate:>9.2f} "
            f"{100 * s.legit_drop_rate:>7.2f} "
            f"{attack.dropped_illegal:>14} {attack.dropped_pdt:>10} "
            f"{attack.dropped_probe:>12}"
        )

    print(
        "\nReading: with illegal sources the PDT shortcut dominates"
        "\n(illegal-drops column); with valid spoofed sources the probe"
        "\nverdict machinery takes over (pdt-drops column); under rotation"
        "\neach packet is a new flow, so suppression rides on the Pd gate"
        "\n(probe-drops column) — the paper's motivation for combining all"
        "\nthree mechanisms."
    )


if __name__ == "__main__":
    main()
