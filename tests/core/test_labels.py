"""Tests for repro.core.labels."""

import pytest

from repro.core.labels import FlowLabel, label_of_packet
from repro.sim.packet import FlowKey, Packet


class TestFlowLabel:
    def test_from_key_matches_key_hash(self):
        key = FlowKey(1, 2, 3, 4)
        assert int(FlowLabel.from_key(key)) == key.hashed()

    def test_label_of_packet(self):
        packet = Packet(flow=FlowKey(5, 6, 7, 8))
        assert int(label_of_packet(packet)) == packet.flow_hash

    def test_equality_and_hashability(self):
        a = FlowLabel.from_key(FlowKey(1, 2, 3, 4))
        b = FlowLabel.from_key(FlowKey(1, 2, 3, 4))
        assert a == b
        assert len({a, b}) == 1

    def test_distinct_flows_distinct_labels(self):
        a = FlowLabel.from_key(FlowKey(1, 2, 3, 4))
        b = FlowLabel.from_key(FlowKey(1, 2, 3, 5))
        assert a != b

    def test_range_enforced(self):
        with pytest.raises(ValueError):
            FlowLabel(-1)
        with pytest.raises(ValueError):
            FlowLabel(1 << 64)

    def test_str_format(self):
        assert str(FlowLabel(0xAB)) == f"flow:{0xAB:016x}"

    def test_ordering(self):
        assert FlowLabel(1) < FlowLabel(2)
