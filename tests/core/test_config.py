"""Tests for repro.core.config (MaficConfig)."""

import pytest

from repro.core.config import MaficConfig


class TestDefaults:
    def test_table_ii_drop_probability(self):
        assert MaficConfig().drop_probability == 0.90

    def test_probe_timer_is_two_rtt(self):
        assert MaficConfig().probe_timer_rtt_multiplier == 2.0


class TestProbeWindow:
    def test_uses_measured_rtt(self):
        cfg = MaficConfig(probe_timer_rtt_multiplier=2.0)
        assert cfg.probe_window(0.1) == pytest.approx(0.2)

    def test_falls_back_to_default(self):
        cfg = MaficConfig(default_rtt=0.15)
        assert cfg.probe_window(None) == pytest.approx(0.30)

    def test_zero_rtt_falls_back(self):
        cfg = MaficConfig(default_rtt=0.15)
        assert cfg.probe_window(0.0) == pytest.approx(0.30)

    def test_custom_multiplier(self):
        cfg = MaficConfig(probe_timer_rtt_multiplier=4.0)
        assert cfg.probe_window(0.1) == pytest.approx(0.4)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_probability": 1.5},
            {"drop_probability": -0.1},
            {"probe_timer_rtt_multiplier": 0},
            {"default_rtt": 0},
            {"response_ratio": 2.0},
            {"rate_window": 0},
            {"min_packets_for_verdict": 0},
            {"dup_acks_per_probe": -1},
            {"probe_ack_size": 0},
            {"renotice_interval": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            MaficConfig(**kwargs)

    def test_accepts_boundary_probability(self):
        assert MaficConfig(drop_probability=1.0).drop_probability == 1.0
        assert MaficConfig(drop_probability=0.0).drop_probability == 0.0
