"""Tests for repro.core.tables — the SFT/NFT/PDT transitions of Figure 2."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.labels import FlowLabel
from repro.core.tables import FlowTables, SftEntry, TableName
from repro.util.stats import WindowedRate

labels = st.builds(FlowLabel, st.integers(min_value=0, max_value=2**64 - 1))


def sft_entry(label, start=1.0, deadline=1.5, baseline=100.0):
    return SftEntry(
        label=label,
        probe_started=start,
        deadline=deadline,
        baseline_rate=baseline,
        monitor=WindowedRate(0.25),
    )


class TestTransitions:
    def test_admit_and_lookup(self):
        t = FlowTables()
        label = FlowLabel(1)
        t.admit_suspicious(sft_entry(label))
        assert t.lookup(label) is TableName.SFT
        assert label in t

    def test_promote_to_nice(self):
        t = FlowTables()
        label = FlowLabel(1)
        entry = sft_entry(label)
        entry.packets_dropped = 4
        t.admit_suspicious(entry)
        nft = t.promote_to_nice(label, now=2.0)
        assert t.lookup(label) is TableName.NFT
        assert nft.probe_drops == 4
        assert label not in t.sft

    def test_condemn_from_sft(self):
        t = FlowTables()
        label = FlowLabel(1)
        t.admit_suspicious(sft_entry(label))
        pdt = t.condemn(label, now=2.0, reason="unresponsive")
        assert t.lookup(label) is TableName.PDT
        assert pdt.reason == "unresponsive"
        assert label not in t.sft

    def test_condemn_unknown_flow_directly(self):
        t = FlowTables()
        label = FlowLabel(9)
        t.condemn(label, now=1.0, reason="illegal_source")
        assert t.lookup(label) is TableName.PDT

    def test_condemn_idempotent(self):
        t = FlowTables()
        label = FlowLabel(1)
        first = t.condemn(label, 1.0, "unresponsive")
        second = t.condemn(label, 2.0, "unresponsive")
        assert first is second
        assert t.counters.pdt_admissions == 1

    def test_pdt_wins_lookup_priority(self):
        # A condemned flow must stay condemned even with stale entries.
        t = FlowTables()
        label = FlowLabel(1)
        t.sft[label] = sft_entry(label)
        t.pdt[label] = t.condemn(FlowLabel(2), 1.0, "unresponsive").__class__(
            label=label, condemned_at=1.0, reason="unresponsive"
        )
        assert t.lookup(label) is TableName.PDT

    def test_double_admit_rejected(self):
        t = FlowTables()
        label = FlowLabel(1)
        t.admit_suspicious(sft_entry(label))
        with pytest.raises(ValueError):
            t.admit_suspicious(sft_entry(label))

    def test_admit_condemned_rejected(self):
        t = FlowTables()
        label = FlowLabel(1)
        t.condemn(label, 1.0, "unresponsive")
        with pytest.raises(ValueError):
            t.admit_suspicious(sft_entry(label))

    def test_promote_missing_rejected(self):
        with pytest.raises(KeyError):
            FlowTables().promote_to_nice(FlowLabel(1), 1.0)

    def test_demote_from_nice(self):
        t = FlowTables()
        label = FlowLabel(1)
        t.admit_suspicious(sft_entry(label))
        t.promote_to_nice(label, 2.0)
        t.demote_from_nice(label)
        assert t.lookup(label) is None

    def test_condemn_removes_nft_entry(self):
        t = FlowTables()
        label = FlowLabel(1)
        t.admit_suspicious(sft_entry(label))
        t.promote_to_nice(label, 2.0)
        t.condemn(label, 3.0, "unresponsive")
        assert t.lookup(label) is TableName.PDT
        assert label not in t.nft


class TestBookkeeping:
    def test_flush_clears_everything(self):
        t = FlowTables()
        t.admit_suspicious(sft_entry(FlowLabel(1)))
        t.condemn(FlowLabel(2), 1.0, "unresponsive")
        t.flush()
        assert t.occupancy() == {"sft": 0, "nft": 0, "pdt": 0}
        assert t.counters.flushes == 1

    def test_expired_sft(self):
        t = FlowTables()
        t.admit_suspicious(sft_entry(FlowLabel(1), deadline=1.5))
        t.admit_suspicious(sft_entry(FlowLabel(2), deadline=3.0))
        expired = t.expired_sft(now=2.0)
        assert [e.label for e in expired] == [FlowLabel(1)]

    def test_admission_counters(self):
        t = FlowTables()
        t.admit_suspicious(sft_entry(FlowLabel(1)))
        t.promote_to_nice(FlowLabel(1), 2.0)
        t.condemn(FlowLabel(2), 1.0, "x")
        assert t.counters.sft_admissions == 1
        assert t.counters.nft_admissions == 1
        assert t.counters.pdt_admissions == 1

    @given(st.lists(labels, min_size=1, max_size=50, unique=True))
    @settings(max_examples=25)
    def test_flow_in_exactly_one_table(self, flow_labels):
        """Invariant: a label never occupies two tables at once."""
        t = FlowTables()
        for i, label in enumerate(flow_labels):
            t.admit_suspicious(sft_entry(label))
            if i % 3 == 0:
                t.promote_to_nice(label, 1.0)
            elif i % 3 == 1:
                t.condemn(label, 1.0, "unresponsive")
        for label in flow_labels:
            memberships = sum(
                (label in table) for table in (t.sft, t.nft, t.pdt)
            )
            assert memberships <= 1
