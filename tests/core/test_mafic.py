"""Behavioural tests for the MAFIC agent (the Figure-2 state machine).

These drive the agent directly with synthetic packets, without the full
topology, so every branch of the control flow is pinned down.
"""

import numpy as np
import pytest

from repro.core.config import MaficConfig
from repro.core.labels import label_of_packet
from repro.core.mafic import MaficAgent
from repro.core.policy import PassthroughPolicy, ProportionalDropPolicy
from repro.core.tables import TableName
from repro.sim.address import AddressSpace
from repro.sim.node import Router
from repro.sim.packet import FlowKey, Packet, PacketType
from repro.sim.trace import EventTrace


class _SilentProber:
    """Prober stub recording probes without touching the network."""

    def __init__(self):
        self.probed = []

    def probe(self, packet):
        self.probed.append(packet)


def make_agent(sim, pd=1.0, space=None, config=None, **kwargs):
    router = Router(sim, "atr0")
    cfg = config if config is not None else MaficConfig(
        drop_probability=pd, default_rtt=0.1, rate_window=0.2,
    )
    agent = MaficAgent(
        sim,
        router,
        victim_matcher=lambda ip: ip == VICTIM_IP,
        config=cfg,
        rng=np.random.default_rng(0),
        address_space=space,
        prober=_SilentProber(),
        trace=EventTrace(),
        **kwargs,
    )
    return agent


VICTIM_IP = 0x0A630001


def victim_packet(src_ip=0x0A000005, src_port=5000, seq=0, ptype=PacketType.DATA):
    return Packet(
        flow=FlowKey(src_ip, VICTIM_IP, src_port, 80), seq=seq, ptype=ptype
    )


class TestActivation:
    def test_inactive_agent_passes_everything(self, sim):
        agent = make_agent(sim, pd=1.0)
        assert agent.on_packet(victim_packet(), None, 0.0)
        assert agent.stats.packets_examined == 0

    def test_activation_starts_dropping(self, sim):
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        assert not agent.on_packet(victim_packet(), None, 0.1)
        assert agent.stats.packets_examined == 1

    def test_deactivation_flushes_tables(self, sim):
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        agent.on_packet(victim_packet(), None, 0.1)
        assert agent.tables.occupancy()["sft"] == 1
        agent.deactivate(1.0)
        assert agent.tables.occupancy() == {"sft": 0, "nft": 0, "pdt": 0}
        assert agent.on_packet(victim_packet(), None, 1.1)  # passes again

    def test_refresh_activates_if_needed(self, sim):
        agent = make_agent(sim)
        agent.refresh(0.0)
        assert agent.active

    def test_activate_idempotent(self, sim):
        agent = make_agent(sim)
        agent.activate(0.0)
        agent.activate(0.5)
        assert agent.stats.activations == 1

    def test_trace_records_pushback_lifecycle(self, sim):
        agent = make_agent(sim)
        agent.activate(0.0)
        agent.deactivate(1.0)
        assert agent.trace.count("pushback.start") == 1
        assert agent.trace.count("pushback.stop") == 1


class TestScopeFiltering:
    def test_non_victim_traffic_untouched(self, sim):
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        other = Packet(flow=FlowKey(1, 0x0B000001, 5, 80))
        assert agent.on_packet(other, None, 0.1)
        assert agent.stats.packets_examined == 0

    def test_non_data_packets_untouched(self, sim):
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        ack = victim_packet(ptype=PacketType.ACK)
        assert agent.on_packet(ack, None, 0.1)
        assert agent.stats.packets_examined == 0


class TestIllegalSources:
    def test_illegal_source_goes_to_pdt(self, sim):
        space = AddressSpace()
        space.allocate_subnet(24)
        agent = make_agent(sim, pd=0.0, space=space)
        agent.activate(0.0)
        bad = victim_packet(src_ip=0xC8010203)  # 200.1.2.3: unallocated
        assert not agent.on_packet(bad, None, 0.1)
        assert agent.tables.lookup(label_of_packet(bad)) is TableName.PDT
        assert agent.stats.packets_dropped_illegal == 1

    def test_legal_source_not_shortcut(self, sim):
        space = AddressSpace()
        subnet = space.allocate_subnet(24)
        agent = make_agent(sim, pd=0.0, space=space)
        agent.activate(0.0)
        good = victim_packet(src_ip=int(subnet.host(5)))
        assert agent.on_packet(good, None, 0.1)
        assert agent.stats.packets_dropped_illegal == 0

    def test_shortcut_disabled_by_config(self, sim):
        space = AddressSpace()
        space.allocate_subnet(24)
        cfg = MaficConfig(drop_probability=0.0, drop_illegal_sources=False)
        agent = make_agent(sim, space=space, config=cfg)
        agent.activate(0.0)
        bad = victim_packet(src_ip=0xC8010203)
        assert agent.on_packet(bad, None, 0.1)

    def test_subsequent_illegal_packets_counted_in_pdt(self, sim):
        space = AddressSpace()
        space.allocate_subnet(24)
        agent = make_agent(sim, pd=0.0, space=space)
        agent.activate(0.0)
        bad = victim_packet(src_ip=0xC8010203)
        agent.on_packet(bad, None, 0.1)
        agent.on_packet(victim_packet(src_ip=0xC8010203), None, 0.2)
        assert agent.stats.packets_dropped_illegal == 2


class TestProbingFlow:
    def test_first_drop_admits_to_sft_and_probes(self, sim):
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        p = victim_packet()
        assert not agent.on_packet(p, None, 0.1)
        label = label_of_packet(p)
        assert agent.tables.lookup(label) is TableName.SFT
        assert len(agent.prober.probed) == 1
        assert agent.stats.probes_initiated == 1

    def test_pd_zero_never_probes(self, sim):
        agent = make_agent(sim, pd=0.0)
        agent.activate(0.0)
        for seq in range(20):
            assert agent.on_packet(victim_packet(seq=seq), None, 0.1 + 0.01 * seq)
        assert agent.stats.probes_initiated == 0
        assert agent.tables.occupancy()["sft"] == 0

    def test_sft_packets_dropped_with_pd(self, sim):
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        agent.on_packet(victim_packet(seq=0), None, 0.1)
        assert not agent.on_packet(victim_packet(seq=1), None, 0.12)
        assert agent.stats.packets_dropped_probe == 2

    def test_unresponsive_flow_condemned_at_verdict(self, sim):
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        label = label_of_packet(victim_packet())
        # Blast packets through the whole probe window (0.2 s at rtt=0.1).
        t = 0.1
        while t < 0.5:
            agent.on_packet(victim_packet(seq=int(t * 1000)), None, t)
            sim.run(until=t)
            t += 0.01
        sim.run(until=0.6)
        assert agent.tables.lookup(label) is TableName.PDT
        assert agent.stats.verdicts_cut == 1
        assert agent.trace.count("flow.cut") == 1

    def test_responsive_flow_promoted_to_nft(self, sim):
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        label = label_of_packet(victim_packet())
        # Warm the monitor with pre-probe traffic (passes at pd=0 phase
        # impossible here, so feed through the unknown path with pd=1:
        # the first packet is dropped and admitted; then silence).
        agent.on_packet(victim_packet(seq=0), None, 0.1)
        sim.run(until=0.6)  # verdict timer fires, no further packets
        assert agent.tables.lookup(label) is TableName.NFT
        assert agent.stats.verdicts_nice == 1

    def test_nft_flow_passes_untouched(self, sim):
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        agent.on_packet(victim_packet(seq=0), None, 0.1)
        sim.run(until=0.6)  # -> NFT
        assert agent.on_packet(victim_packet(seq=5), None, 0.7)
        assert agent.tables.nft[label_of_packet(victim_packet())].packets_passed == 1

    def test_pdt_flow_dropped_forever(self, sim):
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        t = 0.1
        while t < 0.5:
            agent.on_packet(victim_packet(seq=int(t * 1000)), None, t)
            sim.run(until=t)
            t += 0.01
        sim.run(until=0.6)
        before = agent.stats.packets_dropped_pdt
        assert not agent.on_packet(victim_packet(seq=999), None, 0.7)
        assert agent.stats.packets_dropped_pdt == before + 1

    def test_quiet_flow_judged_nice_by_min_packets(self, sim):
        cfg = MaficConfig(
            drop_probability=1.0, default_rtt=0.1,
            min_packets_for_verdict=5,
        )
        agent = make_agent(sim, config=cfg)
        agent.activate(0.0)
        agent.on_packet(victim_packet(seq=0), None, 0.1)
        agent.on_packet(victim_packet(seq=1), None, 0.15)
        sim.run(until=0.6)
        assert agent.stats.verdicts_insufficient == 1
        assert agent.tables.lookup(label_of_packet(victim_packet())) is TableName.NFT

    def test_flow_slowing_down_is_nice(self, sim):
        """A flow that floods the first half then stops is responsive."""
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        # Probe window = 0.2 s: packets only in [0.1, 0.18].
        for i, t in enumerate((0.1, 0.12, 0.14, 0.16, 0.18)):
            agent.on_packet(victim_packet(seq=i), None, t)
            sim.run(until=t)
        sim.run(until=0.6)
        assert agent.tables.lookup(label_of_packet(victim_packet())) is TableName.NFT

    def test_verdict_timer_uses_rtt_estimate(self, sim):
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        p = victim_packet()
        p.ts_ecr = 0.05  # echo 0.05 s old at t=0.1 -> floored to default 0.1
        agent.on_packet(p, None, 0.1)
        entry = agent.tables.sft[label_of_packet(p)]
        assert entry.deadline == pytest.approx(0.1 + 0.2)

    def test_distinct_flows_tracked_independently(self, sim):
        agent = make_agent(sim, pd=1.0)
        agent.activate(0.0)
        agent.on_packet(victim_packet(src_port=1000), None, 0.1)
        agent.on_packet(victim_packet(src_port=2000), None, 0.1)
        assert agent.tables.occupancy()["sft"] == 2


class TestBaselinePolicies:
    def test_proportional_policy_drops_without_tables(self, sim):
        agent = make_agent(sim)
        agent.policy = ProportionalDropPolicy(1.0, np.random.default_rng(0))
        agent.activate(0.0)
        assert not agent.on_packet(victim_packet(), None, 0.1)
        assert agent.tables.occupancy()["sft"] == 0
        assert agent.stats.probes_initiated == 0

    def test_passthrough_policy_never_drops(self, sim):
        agent = make_agent(sim)
        agent.policy = PassthroughPolicy()
        agent.activate(0.0)
        for seq in range(10):
            assert agent.on_packet(victim_packet(seq=seq), None, 0.1)


class _Observer:
    def __init__(self):
        self.drops = []
        self.passes = []
        self.verdicts = []

    def on_defense_drop(self, packet, reason, now, atr=""):
        self.drops.append((packet, reason, atr))

    def on_defense_pass(self, packet, now, atr=""):
        self.passes.append(packet)

    def on_verdict(self, label, verdict, now, atr=""):
        self.verdicts.append((label, verdict, atr))


class TestObserverSeam:
    def test_observer_sees_drops_and_verdicts(self, sim):
        obs = _Observer()
        agent = make_agent(sim, pd=1.0, observer=obs)
        agent.activate(0.0)
        agent.on_packet(victim_packet(seq=0), None, 0.1)
        sim.run(until=0.6)
        assert [r for _, r, _ in obs.drops] == ["probe"]
        assert obs.verdicts[0][1] == "nice"

    def test_observer_calls_carry_the_atr_name(self, sim):
        """One observer serves the whole line; attribution rides the call."""
        obs = _Observer()
        agent = make_agent(sim, pd=1.0, observer=obs)
        agent.activate(0.0)
        agent.on_packet(victim_packet(seq=0), None, 0.1)
        sim.run(until=0.6)
        assert {atr for _, _, atr in obs.drops} == {"atr0"}
        assert {atr for _, _, atr in obs.verdicts} == {"atr0"}

    def test_observer_sees_passes(self, sim):
        obs = _Observer()
        agent = make_agent(sim, pd=0.0, observer=obs)
        agent.activate(0.0)
        agent.on_packet(victim_packet(), None, 0.1)
        assert len(obs.passes) == 1


class TestRenotice:
    def test_nft_verdict_expires_when_configured(self, sim):
        cfg = MaficConfig(
            drop_probability=1.0, default_rtt=0.1, renotice_interval=0.5,
        )
        agent = make_agent(sim, config=cfg)
        agent.activate(0.0)
        agent.on_packet(victim_packet(seq=0), None, 0.1)
        sim.run(until=0.6)  # NFT at ~0.3
        label = label_of_packet(victim_packet())
        assert agent.tables.lookup(label) is TableName.NFT
        # Old verdict: this packet passes but evicts the stale entry.
        assert agent.on_packet(victim_packet(seq=1), None, 1.0)
        assert agent.tables.lookup(label) is None
