"""Tests for repro.core.probe."""

import pytest

from repro.core.probe import DupAckProber
from repro.sim.node import Router
from repro.sim.packet import FlowKey, Packet, PacketType


class _CapturingRouter(Router):
    def __init__(self, sim):
        super().__init__(sim, "atr")
        self.injected = []

    def receive(self, packet, via=None):
        self.injected.append((self.sim.now, packet))


class TestDupAckProber:
    def _dropped_packet(self):
        return Packet(flow=FlowKey(0x0A000001, 0x0A010001, 5000, 80),
                      seq=17, ts_val=0.9)

    def test_sends_configured_number_of_dup_acks(self, sim):
        router = _CapturingRouter(sim)
        prober = DupAckProber(sim, router, dup_acks_per_probe=3)
        prober.probe(self._dropped_packet())
        sim.run()
        assert len(router.injected) == 3
        assert prober.probes_sent == 3

    def test_ack_fields_mirror_receiver(self, sim):
        router = _CapturingRouter(sim)
        prober = DupAckProber(sim, router, dup_acks_per_probe=1)
        dropped = self._dropped_packet()
        prober.probe(dropped)
        sim.run()
        _, ack = router.injected[0]
        assert ack.ptype is PacketType.DUP_ACK
        assert ack.flow == dropped.flow.reversed()
        assert ack.ack == dropped.seq
        assert ack.ts_ecr == dropped.ts_val

    def test_spacing_between_acks(self, sim):
        router = _CapturingRouter(sim)
        prober = DupAckProber(sim, router, dup_acks_per_probe=3, spacing=0.002)
        prober.probe(self._dropped_packet())
        sim.run()
        times = [t for t, _ in router.injected]
        assert times[1] - times[0] == pytest.approx(0.002)
        assert times[2] - times[1] == pytest.approx(0.002)

    def test_zero_acks_is_noop(self, sim):
        router = _CapturingRouter(sim)
        prober = DupAckProber(sim, router, dup_acks_per_probe=0)
        prober.probe(self._dropped_packet())
        sim.run()
        assert router.injected == []

    def test_ack_size_configurable(self, sim):
        router = _CapturingRouter(sim)
        prober = DupAckProber(sim, router, dup_acks_per_probe=1, ack_size=64)
        prober.probe(self._dropped_packet())
        sim.run()
        assert router.injected[0][1].size == 64

    def test_on_probe_callback(self, sim):
        router = _CapturingRouter(sim)
        prober = DupAckProber(sim, router, dup_acks_per_probe=2)
        seen = []
        prober.on_probe = seen.append
        prober.probe(self._dropped_packet())
        sim.run()
        assert len(seen) == 2

    def test_parameter_validation(self, sim):
        router = _CapturingRouter(sim)
        with pytest.raises(ValueError):
            DupAckProber(sim, router, dup_acks_per_probe=-1)
        with pytest.raises(ValueError):
            DupAckProber(sim, router, ack_size=0)
        with pytest.raises(ValueError):
            DupAckProber(sim, router, spacing=-0.1)
