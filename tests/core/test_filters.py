"""Tests for repro.core.filters (RFC 2827 ingress filtering)."""

import pytest

from repro.core.filters import IngressFilter
from repro.sim.address import Subnet
from repro.sim.packet import FlowKey, Packet, PacketType

SUBNET = Subnet(0x0A000000, 24)


def pkt(src, ptype=PacketType.DATA):
    return Packet(flow=FlowKey(src, 0x0A630001, 1000, 80), ptype=ptype)


class TestIngressFilter:
    def test_in_subnet_source_passes(self):
        f = IngressFilter([SUBNET])
        assert f.on_packet(pkt(0x0A000005), None, 0.0)
        assert f.packets_dropped == 0

    def test_out_of_subnet_source_dropped(self):
        f = IngressFilter([SUBNET])
        assert not f.on_packet(pkt(0x0B000005), None, 0.0)
        assert f.packets_dropped == 1

    def test_multiple_subnets(self):
        other = Subnet(0x0A010000, 24)
        f = IngressFilter([SUBNET, other])
        assert f.on_packet(pkt(0x0A010009), None, 0.0)

    def test_non_data_untouched(self):
        f = IngressFilter([SUBNET])
        assert f.on_packet(pkt(0x0B000005, ptype=PacketType.ACK), None, 0.0)
        assert f.packets_checked == 0

    def test_drop_fraction(self):
        f = IngressFilter([SUBNET])
        f.on_packet(pkt(0x0A000001), None, 0.0)
        f.on_packet(pkt(0x0B000001), None, 0.0)
        assert f.drop_fraction == pytest.approx(0.5)

    def test_drop_fraction_empty(self):
        assert IngressFilter([SUBNET]).drop_fraction == 0.0

    def test_requires_subnet(self):
        with pytest.raises(ValueError):
            IngressFilter([])


class TestScenarioIntegration:
    def test_filtering_blocks_cross_subnet_spoofing(self):
        from repro.attacks.spoofing import SpoofMode, SpoofingModel
        from repro.experiments.config import ExperimentConfig, TopologyKind
        from repro.experiments.runner import run_experiment

        run = run_experiment(
            ExperimentConfig(
                total_flows=10, n_routers=8, duration=3.0,
                topology=TopologyKind.STAR, seed=71,
                ingress_filtering=True,
                spoofing=SpoofingModel(mode=SpoofMode.LEGIT_SUBNET),
                defense=__import__(
                    "repro.experiments.config", fromlist=["DefenseKind"]
                ).DefenseKind.NONE,
            )
        )
        filters = run.scenario.ingress_filters
        assert filters
        # Cross-subnet spoofed floods die at the ingress even undefended.
        total_dropped = sum(f.packets_dropped for f in filters.values())
        assert total_dropped > 100
        # Legit TCP (true sources) passes the filter.
        _, legit = run.scenario.victim_collector.arrivals_in(
            0.0, run.config.duration
        )
        assert legit > 100

    def test_no_filters_by_default(self):
        from repro.experiments.config import ExperimentConfig, TopologyKind
        from repro.experiments.scenario import build_scenario

        sc = build_scenario(
            ExperimentConfig(
                total_flows=6, n_routers=6, duration=2.5,
                topology=TopologyKind.STAR, seed=72,
            )
        )
        assert sc.ingress_filters == {}
