"""Tests for SFT/PDT capacity bounds and eviction."""

import numpy as np
import pytest

from repro.core.config import MaficConfig
from repro.core.labels import FlowLabel, label_of_packet
from repro.core.mafic import MaficAgent
from repro.core.tables import FlowTables, SftEntry
from repro.sim.address import AddressSpace
from repro.sim.node import Router
from repro.sim.packet import FlowKey, Packet
from repro.util.stats import WindowedRate

VICTIM_IP = 0x0A630001


def victim_packet(src_ip=0x0A000005, src_port=5000, seq=0):
    return Packet(flow=FlowKey(src_ip, VICTIM_IP, src_port, 80), seq=seq)


def bounded_agent(sim, max_sft=0, max_pdt=0, space=None):
    return MaficAgent(
        sim,
        Router(sim, "atr"),
        victim_matcher=lambda ip: ip == VICTIM_IP,
        config=MaficConfig(
            drop_probability=1.0,
            default_rtt=0.1,
            max_sft_entries=max_sft,
            max_pdt_entries=max_pdt,
        ),
        rng=np.random.default_rng(0),
        address_space=space,
    )


class TestTableEviction:
    def test_evict_oldest_sft_order(self):
        t = FlowTables()
        for i in range(3):
            t.admit_suspicious(
                SftEntry(
                    label=FlowLabel(i), probe_started=float(i),
                    deadline=float(i) + 1, baseline_rate=1.0,
                    monitor=WindowedRate(0.5),
                )
            )
        evicted = t.evict_oldest_sft()
        assert evicted.label == FlowLabel(0)
        assert t.counters.sft_evictions == 1

    def test_evict_empty_returns_none(self):
        t = FlowTables()
        assert t.evict_oldest_sft() is None
        assert t.evict_oldest_pdt() is None

    def test_evict_oldest_pdt_order(self):
        t = FlowTables()
        for i in range(3):
            t.condemn(FlowLabel(i), float(i), "unresponsive")
        assert t.evict_oldest_pdt().label == FlowLabel(0)


class TestAgentSftCap:
    def test_sft_never_exceeds_cap(self, sim):
        agent = bounded_agent(sim, max_sft=4)
        agent.activate(0.0)
        for port in range(20):
            agent.on_packet(victim_packet(src_port=1000 + port), None, 0.01 * port)
        assert len(agent.tables.sft) <= 4
        total = sum(
            a.counters.sft_evictions for a in [agent.tables]
        )
        assert total >= 16

    def test_evicted_flow_verdict_event_cancelled(self, sim):
        agent = bounded_agent(sim, max_sft=1)
        agent.activate(0.0)
        agent.on_packet(victim_packet(src_port=1000), None, 0.01)
        agent.on_packet(victim_packet(src_port=2000), None, 0.02)
        # First flow evicted; its verdict event must not fire.
        sim.run(until=1.0)
        assert agent.stats.verdicts_nice + agent.stats.verdicts_cut <= 1

    def test_unbounded_by_default(self, sim):
        agent = bounded_agent(sim, max_sft=0)
        agent.activate(0.0)
        for port in range(30):
            agent.on_packet(victim_packet(src_port=1000 + port), None, 0.01 * port)
        assert len(agent.tables.sft) == 30


class TestAgentPdtCap:
    def test_pdt_cap_via_illegal_sources(self, sim):
        space = AddressSpace()
        space.allocate_subnet(24)
        agent = bounded_agent(sim, max_pdt=3, space=space)
        agent.activate(0.0)
        for i in range(10):
            bad = victim_packet(src_ip=0xC8010000 + i, src_port=3000 + i)
            agent.on_packet(bad, None, 0.01 * i)
        assert len(agent.tables.pdt) <= 3
        assert agent.tables.counters.pdt_evictions >= 7

    def test_evicted_pdt_flow_reprobed_not_free(self, sim):
        """After eviction a condemned flow is unknown again: it faces the
        gate (and re-probing), not a free pass."""
        space = AddressSpace()
        space.allocate_subnet(24)
        agent = bounded_agent(sim, max_pdt=1, space=space)
        agent.activate(0.0)
        first = victim_packet(src_ip=0xC8010001, src_port=3001)
        second = victim_packet(src_ip=0xC8010002, src_port=3002)
        agent.on_packet(first, None, 0.01)
        agent.on_packet(second, None, 0.02)  # evicts first
        assert label_of_packet(first) not in agent.tables.pdt
        # First flow's next packet is still dropped (illegal source again).
        assert not agent.on_packet(
            victim_packet(src_ip=0xC8010001, src_port=3001, seq=1), None, 0.03
        )


class TestConfigValidation:
    def test_negative_caps_rejected(self):
        with pytest.raises(ValueError):
            MaficConfig(max_sft_entries=-1)
        with pytest.raises(ValueError):
            MaficConfig(max_pdt_entries=-1)
