"""Tests for repro.core.policy."""

import numpy as np
import pytest

from repro.core.policy import (
    AdaptiveMaficPolicy,
    AggregateRateLimitPolicy,
    DropDecision,
    PassthroughPolicy,
    ProportionalDropPolicy,
)
from repro.sim.packet import FlowKey, Packet


def pkt(size=1000):
    return Packet(flow=FlowKey(1, 2, 3, 4), size=size)


class TestPassthrough:
    def test_always_passes(self):
        policy = PassthroughPolicy()
        assert all(
            policy.decide(pkt(), 0.0) is DropDecision.PASS for _ in range(20)
        )


class TestAdaptiveMafic:
    def test_drop_rate_matches_pd(self):
        policy = AdaptiveMaficPolicy(0.7, np.random.default_rng(0))
        outcomes = [policy.decide(pkt(), 0.0) for _ in range(5000)]
        drops = sum(1 for o in outcomes if o is DropDecision.DROP_AND_PROBE)
        assert drops / 5000 == pytest.approx(0.7, abs=0.03)

    def test_drop_decision_kind_is_probe(self):
        policy = AdaptiveMaficPolicy(1.0, np.random.default_rng(0))
        assert policy.decide(pkt(), 0.0) is DropDecision.DROP_AND_PROBE

    def test_zero_pd_never_drops(self):
        policy = AdaptiveMaficPolicy(0.0, np.random.default_rng(0))
        assert all(
            policy.decide(pkt(), 0.0) is DropDecision.PASS for _ in range(100)
        )

    def test_counters(self):
        policy = AdaptiveMaficPolicy(1.0, np.random.default_rng(0))
        policy.decide(pkt(), 0.0)
        assert policy.decisions == 1
        assert policy.drops == 1

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            AdaptiveMaficPolicy(1.1, np.random.default_rng(0))


class TestProportional:
    def test_drop_decision_kind_is_plain_drop(self):
        policy = ProportionalDropPolicy(1.0, np.random.default_rng(0))
        assert policy.decide(pkt(), 0.0) is DropDecision.DROP

    def test_drop_rate_matches_pd(self):
        policy = ProportionalDropPolicy(0.9, np.random.default_rng(1))
        outcomes = [policy.decide(pkt(), 0.0) for _ in range(5000)]
        drops = sum(1 for o in outcomes if o is DropDecision.DROP)
        assert drops / 5000 == pytest.approx(0.9, abs=0.02)


class TestAggregateRateLimit:
    def test_admits_within_budget(self):
        policy = AggregateRateLimitPolicy(limit_bps=80e3, burst=1.0)
        # Burst bucket holds 10 kB = 10 packets.
        outcomes = [policy.decide(pkt(), 0.0) for _ in range(10)]
        assert all(o is DropDecision.PASS for o in outcomes)

    def test_drops_beyond_burst(self):
        policy = AggregateRateLimitPolicy(limit_bps=80e3, burst=0.1)
        outcomes = [policy.decide(pkt(), 0.0) for _ in range(10)]
        assert DropDecision.DROP in outcomes

    def test_tokens_refill_over_time(self):
        policy = AggregateRateLimitPolicy(limit_bps=80e3, burst=0.1)
        for _ in range(10):
            policy.decide(pkt(), 0.0)
        assert policy.decide(pkt(), 10.0) is DropDecision.PASS

    def test_sustained_rate_enforced(self):
        # Burst must hold at least one packet (1000 B); 0.2 s * 10 kB/s = 2 kB.
        policy = AggregateRateLimitPolicy(limit_bps=80e3, burst=0.2)
        admitted = 0
        # Offer 100 pkt/s for 10 s against a 10 pkt/s budget.
        for i in range(1000):
            if policy.decide(pkt(), i * 0.01) is DropDecision.PASS:
                admitted += 1
        assert admitted == pytest.approx(100, rel=0.25)

    def test_burst_smaller_than_packet_admits_nothing(self):
        # A bucket that cannot hold one packet never admits: callers must
        # size burst >= max packet size.
        policy = AggregateRateLimitPolicy(limit_bps=80e3, burst=0.05)
        outcomes = [policy.decide(pkt(), i * 0.01) for i in range(100)]
        assert all(o is DropDecision.DROP for o in outcomes)

    def test_reset_refills(self):
        policy = AggregateRateLimitPolicy(limit_bps=80e3, burst=0.1)
        for _ in range(10):
            policy.decide(pkt(), 0.0)
        policy.reset()
        assert policy.decide(pkt(), 0.0) is DropDecision.PASS

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AggregateRateLimitPolicy(limit_bps=0)
        with pytest.raises(ValueError):
            AggregateRateLimitPolicy(limit_bps=1e6, burst=0)
