"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import main


class TestList:
    def test_lists_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3a", "fig4b", "fig5c", "fig7"):
            assert name in out


class TestRun:
    def test_small_run_prints_metrics(self, capsys):
        code = main([
            "run", "--flows", "8", "--routers", "8", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy alpha" in out
        assert "pushback" in out

    def test_defense_choice_none(self, capsys):
        code = main([
            "run", "--flows", "6", "--routers", "6",
            "--defense", "none", "--seed", "3",
        ])
        assert code == 0
        assert "never triggered" in capsys.readouterr().out

    def test_pd_flag_accepted(self, capsys):
        code = main([
            "run", "--flows", "6", "--routers", "6",
            "--pd", "0.7", "--seed", "3",
        ])
        assert code == 0

    def test_engine_info(self, capsys):
        from repro.sim._core import ENGINE_IMPL

        assert main(["run", "--engine-info"]) == 0
        out = capsys.readouterr().out
        assert f"engine core: {ENGINE_IMPL}" in out


class TestFigure:
    def test_figure_to_stdout(self, capsys):
        code = main(["figure", "fig3a", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# fig3a" in out
        assert "Pd=90%" in out

    def test_figure_to_file(self, tmp_path, capsys):
        target = tmp_path / "fig.dat"
        code = main([
            "figure", "fig7", "--scale", "0.01", "--out", str(target),
        ])
        assert code == 0
        assert target.exists()
        assert "# fig7" in target.read_text()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestValidate:
    def test_feasible_default(self, capsys):
        assert main(["validate"]) == 0
        assert "feasible" in capsys.readouterr().out

    def test_infeasible_low_rate(self, capsys):
        assert main(["validate", "--rate", "100000"]) == 1
        out = capsys.readouterr().out
        assert "detection-infeasible" in out
        assert "NOT feasible" in out


class TestRegistryListing:
    def test_list_presets_flag(self, capsys):
        assert main(["run", "--list-presets"]) == 0
        out = capsys.readouterr().out
        for name in ("paper-default", "multi-tier-domain", "pulse-train",
                     "red-ratelimit"):
            assert name in out

    def test_list_single_registry(self, capsys):
        assert main(["run", "--list", "defenses"]) == 0
        out = capsys.readouterr().out
        for name in ("mafic", "proportional", "rate_limit", "none",
                     "red_rate_limit"):
            assert name in out
        assert "topologies" not in out

    def test_list_all_registries(self, capsys):
        assert main(["run", "--list", "all"]) == 0
        out = capsys.readouterr().out
        for section in ("topologies:", "workloads:", "attacks:", "defenses:"):
            assert section in out
        assert "multi_tier" in out
        assert "pulse_train" in out

    def test_list_rejects_unknown_registry(self):
        with pytest.raises(SystemExit):
            main(["run", "--list", "sandwiches"])


class TestPresetOverrides:
    def test_preset_run_with_scale_overrides(self, capsys):
        code = main([
            "run", "--preset", "pulse-train", "--flows", "8",
            "--routers", "8", "--duration", "2.0", "--seed", "3",
        ])
        assert code == 0
        assert "accuracy alpha" in capsys.readouterr().out

    def test_component_flags_without_preset(self, capsys):
        code = main([
            "run", "--flows", "8", "--routers", "8", "--duration", "2.0",
            "--topology", "multi_tier", "--seed", "3",
        ])
        assert code == 0
        assert "accuracy alpha" in capsys.readouterr().out

    def test_unknown_component_choice_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--defense", "prayer"])
