"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import main


class TestList:
    def test_lists_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3a", "fig4b", "fig5c", "fig7"):
            assert name in out


class TestRun:
    def test_small_run_prints_metrics(self, capsys):
        code = main([
            "run", "--flows", "8", "--routers", "8", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy alpha" in out
        assert "pushback" in out

    def test_defense_choice_none(self, capsys):
        code = main([
            "run", "--flows", "6", "--routers", "6",
            "--defense", "none", "--seed", "3",
        ])
        assert code == 0
        assert "never triggered" in capsys.readouterr().out

    def test_pd_flag_accepted(self, capsys):
        code = main([
            "run", "--flows", "6", "--routers", "6",
            "--pd", "0.7", "--seed", "3",
        ])
        assert code == 0


class TestFigure:
    def test_figure_to_stdout(self, capsys):
        code = main(["figure", "fig3a", "--scale", "0.01"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# fig3a" in out
        assert "Pd=90%" in out

    def test_figure_to_file(self, tmp_path, capsys):
        target = tmp_path / "fig.dat"
        code = main([
            "figure", "fig7", "--scale", "0.01", "--out", str(target),
        ])
        assert code == 0
        assert target.exists()
        assert "# fig7" in target.read_text()

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestValidate:
    def test_feasible_default(self, capsys):
        assert main(["validate"]) == 0
        assert "feasible" in capsys.readouterr().out

    def test_infeasible_low_rate(self, capsys):
        assert main(["validate", "--rate", "100000"]) == 1
        out = capsys.readouterr().out
        assert "detection-infeasible" in out
        assert "NOT feasible" in out
