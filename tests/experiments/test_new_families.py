"""Integration tests for the three registry-born scenario families:
multi-tier topology, pulse-train attack, RED+rate-limit defence.

Each family gets a small-scale end-to-end run plus the serial-vs-
parallel identity guarantee (`run_seeds_parallel(jobs=N)` reproduces the
serial summaries bit-for-bit), so all of them are sweepable with
``jobs=N`` like the paper scenarios.
"""

import dataclasses

import networkx as nx
import pytest

from repro.experiments.parallel import run_seeds_parallel
from repro.experiments.presets import get_preset
from repro.experiments.runner import run_experiment
from repro.sim.queues import REDQueue
from repro.transport.udp import OnOffSender

NEW_PRESETS = ["multi-tier-domain", "pulse-train", "red-ratelimit"]


def small(name, **overrides):
    defaults = dict(total_flows=10, n_routers=10, duration=2.5, seed=7)
    defaults.update(overrides)
    return get_preset(name).with_overrides(**defaults)


class TestMultiTierDomain:
    def test_ingresses_at_two_depths(self):
        result = run_experiment(small("multi-tier-domain"))
        topology = result.scenario.topology
        depths = {
            nx.shortest_path_length(topology.graph, name, "lasthop")
            for name in topology.ingress_names
        }
        assert len(depths) >= 2, "expected ATRs at two distances"

    def test_agents_on_both_tiers_and_traffic_flows(self):
        result = run_experiment(small("multi-tier-domain"))
        scenario = result.scenario
        assert set(scenario.agents) == set(scenario.topology.ingress_names)
        victim = scenario.victim_collector
        assert victim.attack_packets + victim.legit_packets > 0


class TestPulseTrain:
    def test_zombies_are_deterministic_on_off(self):
        result = run_experiment(small("pulse-train"))
        senders = [z.sender for z in result.scenario.attack.zombies]
        assert senders
        assert all(isinstance(s, OnOffSender) for s in senders)
        assert all(s.deterministic for s in senders)

    def test_attack_pulses_rather_than_floods(self):
        config = small("pulse-train")
        pulsed = run_experiment(config)
        flood = run_experiment(config.with_overrides(attack="flood"))
        sent_pulsed = pulsed.scenario.attack.total_attack_packets_sent()
        sent_flood = flood.scenario.attack.total_attack_packets_sent()
        assert sent_pulsed > 0
        # A 50% duty cycle emits roughly half the flood volume.
        assert sent_pulsed < 0.75 * sent_flood


class TestRedRateLimit:
    def test_red_queues_installed_at_ingress_uplinks(self):
        result = run_experiment(small("red-ratelimit"))
        topology = result.scenario.topology
        for name in topology.ingress_names:
            assert isinstance(topology.ingress_uplink(name).queue, REDQueue)

    def test_rate_limit_policy_cuts_traffic(self):
        from repro.core.policy import AggregateRateLimitPolicy

        result = run_experiment(small("red-ratelimit"))
        agents = result.scenario.agents
        assert agents and all(
            isinstance(agent.policy, AggregateRateLimitPolicy)
            for agent in agents.values()
        )
        summary = result.summary
        assert summary.total_examined > 0


class TestParallelIdentity:
    @pytest.mark.parametrize("preset", NEW_PRESETS)
    def test_serial_and_parallel_summaries_identical(self, preset):
        config = small(preset, duration=2.0, total_flows=8, n_routers=8)
        seeds = [3, 4]
        serial = run_seeds_parallel(config, seeds, jobs=1)
        parallel = run_seeds_parallel(config, seeds, jobs=2)
        for left, right in zip(serial.results, parallel.results):
            assert dataclasses.asdict(left.summary) == dataclasses.asdict(
                right.summary
            )
