"""Tests for repro.experiments.validation."""

from repro.experiments.config import DefenseKind, ExperimentConfig, TopologyKind
from repro.experiments.validation import Severity, validate_config


class TestDetectionFeasibility:
    def test_default_config_is_feasible(self):
        report = validate_config(ExperimentConfig())
        assert report.ok
        assert not report.has("detection-infeasible")

    def test_weak_attack_flagged_infeasible(self):
        # 100 kbps zombies against fast TCP: the fig3b failure mode.
        report = validate_config(ExperimentConfig(rate_bps=100e3))
        assert not report.ok
        assert report.has("detection-infeasible")

    def test_force_activation_silences_detection_findings(self):
        report = validate_config(
            ExperimentConfig(rate_bps=100e3, force_activation_at=1.25)
        )
        assert report.ok

    def test_undefended_run_not_flagged(self):
        report = validate_config(
            ExperimentConfig(rate_bps=100e3, defense=DefenseKind.NONE)
        )
        assert not report.has("detection-infeasible")

    def test_small_star_domain_flagged(self):
        # Fast TCP in a tiny star: the signaling-test failure mode.
        report = validate_config(
            ExperimentConfig(
                total_flows=10, n_routers=8, topology=TopologyKind.STAR
            )
        )
        assert report.has("detection-infeasible") or report.has(
            "detection-marginal"
        )


class TestTimelineChecks:
    def test_attack_during_warmup_flagged(self):
        report = validate_config(ExperimentConfig(attack_start=0.5))
        assert report.has("attack-during-warmup")

    def test_short_run_flagged(self):
        report = validate_config(
            ExperimentConfig(duration=1.8, attack_start=1.05)
        )
        assert report.has("short-active-period")

    def test_default_timeline_clean(self):
        report = validate_config(ExperimentConfig())
        assert not report.has("attack-during-warmup")
        assert not report.has("short-active-period")


class TestRttChecks:
    def test_tiny_probe_window_flagged(self):
        cfg = ExperimentConfig()
        cfg.mafic.default_rtt = 0.02
        report = validate_config(cfg)
        assert report.has("probe-window-below-rtt")


class TestReportShape:
    def test_always_has_load_estimate(self):
        report = validate_config(ExperimentConfig())
        assert report.has("load-estimate")
        infos = [f for f in report if f.severity is Severity.INFO]
        assert infos

    def test_iterable_and_sized(self):
        report = validate_config(ExperimentConfig())
        assert len(report) == len(list(report))
