"""Observability must never change results: identity across every mode.

The golden master pins ``paper_default`` against the recorded fixture;
these tests pin the *pairwise* identities on a small fast config so a
violation localizes to the mode that broke (streaming collector, run
slicing, attached bus) rather than "the fixture failed".
"""

import dataclasses

import pytest

from repro.experiments.presets import paper_default
from repro.experiments.runner import run_experiment
from repro.obs import BufferedSink, EventBus


def _tiny_config(seed: int = 3):
    return paper_default().with_overrides(
        total_flows=10, n_routers=8, duration=2.0, seed=seed
    )


def _fingerprint(result) -> dict:
    summary = {
        key: (value.hex() if isinstance(value, float) else value)
        for key, value in dataclasses.asdict(result.summary).items()
    }
    return {
        "summary": summary,
        "series_total": [x.hex() for x in result.series.total_kbps],
        "series_attack": [x.hex() for x in result.series.attack_kbps],
        "events_executed": result.events_executed,
        "activation": (
            None if result.activation_time is None
            else result.activation_time.hex()
        ),
        "identified": sorted(result.identified_atrs),
    }


@pytest.mark.parametrize("queue", ["heap", "calendar"])
def test_streaming_collector_matches_buffered(queue):
    """The bounded-memory victim collector is float-identical to the
    arrival-hoarding one, on both scheduler backends."""
    from repro.perf import engine_mode

    config = _tiny_config()
    with engine_mode(queue=queue):
        buffered = run_experiment(config)
    with engine_mode(queue=queue):
        streaming = run_experiment(config, streaming_series=True)
    assert _fingerprint(buffered) == _fingerprint(streaming)


def test_sliced_run_matches_unsliced():
    """Clock slicing (serve's pacing mechanism) replays the identical
    event sequence: same results, same event count."""
    config = _tiny_config()
    whole = run_experiment(config)
    ticks = []
    sliced = run_experiment(
        config, slice_seconds=0.1, on_slice=ticks.append
    )
    assert _fingerprint(whole) == _fingerprint(sliced)
    # ~duration/step pauses; float accumulation may add or drop one.
    assert 19 <= len(ticks) <= 21
    assert ticks[-1] == config.duration


def test_attached_bus_does_not_perturb_results():
    config = _tiny_config()
    silent = run_experiment(config)
    bus = EventBus()
    sink = bus.subscribe(BufferedSink())
    observed = run_experiment(config, bus=bus)
    assert _fingerprint(silent) == _fingerprint(observed)
    assert len(sink.of_kind("run.started")) == 1
    assert len(sink.of_kind("run.completed")) == 1


def test_bus_events_are_consistent_with_the_summary():
    """The event stream carries the same facts the collectors count."""
    config = _tiny_config()
    bus = EventBus()
    sink = bus.subscribe(BufferedSink())
    result = run_experiment(config, bus=bus)

    arrivals = sink.of_kind("victim.arrival")
    victim = result.scenario.victim_collector
    assert len(arrivals) == len(victim.arrivals)
    assert sum(e.size for e in arrivals) == sum(
        size for _, size, _ in victim.arrivals
    )

    activations = sink.of_kind("defense.activation")
    assert len(activations) == 1
    assert activations[0].time == result.activation_time

    verdicts = sink.of_kind("defense.verdict")
    assert len(verdicts) > 0

    completed = sink.of_kind("run.completed")[0]
    assert completed.events_executed == result.events_executed
    assert completed.seed == config.seed

    snapshots = sink.of_kind("monitor.snapshot")
    stats = sink.of_kind("engine.stats")
    assert len(snapshots) == len(stats) > 0
    assert stats[0].backend in ("heap", "calendar")

    # Monotone non-decreasing times within the run's sim-time events.
    times = [e.time for e in sink.events if e.kind.startswith(("victim.",
                                                               "defense."))]
    assert times == sorted(times)


def test_streaming_and_scenario_are_mutually_exclusive():
    from repro.experiments.scenario import build_scenario

    config = _tiny_config()
    scenario = build_scenario(config)
    with pytest.raises(ValueError):
        run_experiment(config, scenario=scenario, streaming_series=True)


def test_slice_seconds_must_be_positive():
    with pytest.raises(ValueError):
        run_experiment(_tiny_config(), slice_seconds=0.0)
