"""Tests for repro.experiments.parallel."""

import pytest

from repro.experiments.config import ExperimentConfig, TopologyKind
from repro.experiments.parallel import (
    BatchResult,
    _chunk_slices,
    default_jobs,
    run_batch,
    run_seeds_parallel,
    seed_configs,
)
from repro.experiments.runner import run_experiment
from repro.experiments.sweeps import sweep


def tiny(**overrides):
    defaults = dict(
        total_flows=6, n_routers=6, duration=2.5,
        topology=TopologyKind.STAR, seed=31,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestChunking:
    def test_slices_cover_everything_in_order(self):
        slices = _chunk_slices(10, 3)
        assert slices[0][0] == 0
        assert slices[-1][1] == 10
        for (_, stop), (start, _) in zip(slices, slices[1:]):
            assert stop == start

    def test_more_chunks_than_items_collapses(self):
        assert _chunk_slices(2, 8) == [(0, 1), (1, 2)]

    def test_single_chunk(self):
        assert _chunk_slices(5, 1) == [(0, 5)]


class TestSeedConfigs:
    def test_one_config_per_seed(self):
        configs = seed_configs(tiny(), [3, 5, 7])
        assert [c.seed for c in configs] == [3, 5, 7]

    def test_other_fields_preserved(self):
        configs = seed_configs(tiny(total_flows=9), [1])
        assert configs[0].total_flows == 9


class TestRunBatch:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            run_batch([])

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            run_batch([tiny()], jobs=0)

    def test_serial_batch_preserves_order(self):
        batch = run_batch(seed_configs(tiny(), [9, 4, 6]), jobs=1)
        assert [r.config.seed for r in batch.results] == [9, 4, 6]

    def test_same_seed_same_summary(self):
        """Determinism: re-running one seed reproduces its MetricsSummary."""
        config = tiny(seed=42)
        first = run_batch([config], jobs=1).results[0]
        second = run_batch([config], jobs=1).results[0]
        assert first.summary == second.summary
        assert first.events_executed == second.events_executed

    def test_batch_matches_direct_run_experiment(self):
        config = tiny(seed=7)
        direct = run_experiment(config)
        batched = run_batch([config], jobs=1).results[0]
        assert batched.summary == direct.summary
        assert batched.scenario is None  # detached for picklability

    def test_merged_stats_cover_all_runs(self):
        batch = run_batch(seed_configs(tiny(), [1, 2, 3]), jobs=1)
        assert isinstance(batch, BatchResult)
        for stats in batch.stats.values():
            assert stats.count == 3
        alphas = [r.summary.accuracy for r in batch.results]
        assert batch.stats["accuracy"].mean == pytest.approx(
            sum(alphas) / len(alphas)
        )

    def test_parallel_equals_serial(self):
        """The headline guarantee: workers reproduce the serial results."""
        configs = seed_configs(tiny(), [11, 22, 33, 44])
        serial = run_batch(configs, jobs=1)
        parallel = run_batch(configs, jobs=2)
        assert [r.summary for r in serial.results] == [
            r.summary for r in parallel.results
        ]
        assert [r.config.seed for r in parallel.results] == [11, 22, 33, 44]
        for name in serial.stats:
            assert serial.stats[name].count == parallel.stats[name].count

    def test_run_seeds_parallel_wrapper(self):
        batch = run_seeds_parallel(tiny(), [5, 6], jobs=1)
        assert [r.config.seed for r in batch.results] == [5, 6]

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestSweepJobs:
    def test_parallel_sweep_matches_serial_sweep(self):
        kwargs = dict(
            x_values=[4, 8],
            apply=lambda cfg, x: cfg.with_overrides(total_flows=int(x)),
            seeds_per_point=2,
            name="vt",
        )
        serial = sweep(tiny(), **kwargs)
        parallel = sweep(tiny(), jobs=2, **kwargs)
        assert serial.x_values == parallel.x_values
        assert [p.result.summary for p in serial.points] == [
            p.result.summary for p in parallel.points
        ]
