"""Golden-master: scenario composition reproduces recorded summaries.

The fixture pins the ``paper_default`` per-seed metric summaries
(hex-encoded floats, so the comparison is bit-exact).  It was first
recorded from the pre-refactor monolithic ``build_scenario`` and the
registry composition path reproduced it bit-for-bit, proving the
refactor changed no physics.  It was then re-recorded when link drains
were batched: the event count dropped ~46% and the changed same-time
event interleaving moved exactly one boundary packet on seed 1
(wellbehaved_examined 4374 -> 4375; alpha/beta/theta unchanged) — see
the ROADMAP engine perf notes.  Any future change that silently alters
paper_default physics fails here; an intentional engine change must
re-record the fixture and document the delta the same way.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.experiments.presets import paper_default
from repro.experiments.runner import run_experiment

FIXTURE = Path(__file__).parent / "fixtures" / "golden_paper_default.json"


def _hexed_summary(result) -> dict:
    fields = dataclasses.asdict(result.summary)
    return {
        key: (value.hex() if isinstance(value, float) else value)
        for key, value in fields.items()
    }


@pytest.mark.parametrize("collector", ["buffered", "streaming"])
@pytest.mark.parametrize("queue", ["heap", "calendar"])
@pytest.mark.parametrize("seed", [1, 2])
def test_paper_default_matches_recorded_summary(seed, queue, collector):
    """Both scheduler backends must reproduce the pinned fixture
    bit-exactly — the calendar queue's flip-in is gated on this proof.

    The ``collector`` axis pins the observability refactor the same
    way: the streaming victim collector (bounded memory, windowed
    series aggregation) must match the fixture recorded from the
    buffered one, with **no re-record** — same floats, same order.
    """
    from repro.perf import engine_mode

    golden = json.loads(FIXTURE.read_text())[str(seed)]
    with engine_mode(queue=queue):
        result = run_experiment(
            paper_default().with_overrides(seed=seed),
            streaming_series=(collector == "streaming"),
        )
    assert _hexed_summary(result) == golden["summary"]
    assert result.events_executed == golden["events_executed"]
    assert sorted(result.identified_atrs) == golden["identified_atrs"]
    assert sorted(result.true_atrs) == golden["true_atrs"]
    recorded = golden["activation_time"]
    if recorded is None:
        assert result.activation_time is None
    else:
        assert result.activation_time.hex() == recorded


def test_observed_run_matches_recorded_summary():
    """A subscribed event bus must not perturb the physics: the same
    fixture, bit-exact, with every producer actually emitting."""
    from repro.obs import BufferedSink, EventBus

    golden = json.loads(FIXTURE.read_text())["1"]
    bus = EventBus()
    sink = bus.subscribe(BufferedSink())
    result = run_experiment(
        paper_default().with_overrides(seed=1), bus=bus
    )
    assert _hexed_summary(result) == golden["summary"]
    assert result.events_executed == golden["events_executed"]
    assert len(sink.of_kind("victim.arrival")) > 0
    assert len(sink.of_kind("defense.verdict")) > 0
    assert len(sink.of_kind("run.completed")) == 1


def test_legacy_engine_mode_matches_recorded_summary():
    """The pre-overhaul formulation (no pool, unbatched ticks, no caches)
    still reproduces the fixture: the overhaul changed no physics."""
    from repro.perf import legacy_mode

    golden = json.loads(FIXTURE.read_text())["1"]
    with legacy_mode():
        result = run_experiment(paper_default().with_overrides(seed=1))
    assert _hexed_summary(result) == golden["summary"]
    assert result.events_executed == golden["events_executed"]
