"""Tests for the named experiment presets."""

import pytest

from repro.experiments.config import DefenseKind
from repro.experiments.presets import PRESETS, get_preset
from repro.experiments.validation import validate_config


class TestPresetRegistry:
    def test_every_preset_builds(self):
        for name in PRESETS:
            config = get_preset(name)
            assert config.total_flows >= 1, name

    def test_unknown_preset_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="paper-default"):
            get_preset("nope")

    def test_presets_are_fresh_objects(self):
        a = get_preset("paper-default")
        b = get_preset("paper-default")
        assert a is not b
        a.mafic.drop_probability = 0.1
        assert b.mafic.drop_probability == 0.9


class TestPresetSemantics:
    def test_paper_default_matches_table_ii(self):
        config = get_preset("paper-default")
        assert config.total_flows == 50
        assert config.mafic.drop_probability == 0.9
        assert config.n_routers == 40

    def test_heavy_attack_is_attack_dominated(self):
        config = get_preset("heavy-attack")
        assert config.n_zombies > config.n_legit

    def test_low_rate_probe_forces_activation(self):
        config = get_preset("low-rate-probe")
        assert config.rate_bps == 100e3
        assert config.force_activation_at is not None

    def test_rotation_stress_caps_sft(self):
        config = get_preset("rotation-stress")
        assert config.spoofing.rotate_per_packet
        assert config.mafic.max_sft_entries > 0

    def test_pulsing_stress_enables_renotice(self):
        config = get_preset("pulsing-stress")
        assert config.pulsing_attack
        assert config.mafic.renotice_interval > 0

    def test_filtered_domain(self):
        assert get_preset("filtered-domain").ingress_filtering

    def test_control_plane_preset(self):
        assert get_preset("realistic-control-plane").control_latency

    def test_proportional_baseline(self):
        assert (
            get_preset("proportional-baseline").defense
            is DefenseKind.PROPORTIONAL
        )

    def test_huge_topology_scales_population(self):
        config = get_preset("huge-topology")
        base = get_preset("paper-default")
        assert config.total_flows == 8 * base.total_flows
        assert config.n_routers > base.n_routers
        # Memory discipline: the preset must not hoard per-arrival
        # tuples or trace records at this population.
        assert config.streaming_series
        assert not config.trace_enabled
        # Per-flow behaviour unchanged — only the aggregate grows.
        assert config.attack_fraction == base.attack_fraction
        assert config.rate_bps == base.rate_bps
        assert config.mafic.drop_probability == base.mafic.drop_probability

    def test_huge_topology_scale_parameter(self):
        from repro.experiments.presets import huge_topology

        assert huge_topology(scale=2).total_flows == 100
        assert huge_topology(scale=20).n_routers == 320  # capped
        with pytest.raises(ValueError):
            huge_topology(scale=0)


class TestPresetFeasibility:
    @pytest.mark.parametrize("name", sorted(PRESETS))
    def test_every_preset_passes_validation(self, name):
        report = validate_config(get_preset(name))
        assert report.ok, [f.message for f in report]
