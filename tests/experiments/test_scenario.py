"""Tests for repro.experiments.scenario (construction wiring, pre-run)."""

import pytest

from repro.core.policy import (
    AdaptiveMaficPolicy,
    AggregateRateLimitPolicy,
    ProportionalDropPolicy,
)
from repro.experiments.config import DefenseKind, ExperimentConfig, TopologyKind
from repro.experiments.scenario import build_scenario
from repro.metrics.collectors import FlowTruth


def small_config(**overrides):
    defaults = dict(
        total_flows=10, n_routers=8, duration=3.0,
        topology=TopologyKind.STAR, seed=5,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestConstruction:
    def test_flow_counts_match_config(self):
        cfg = small_config()
        sc = build_scenario(cfg)
        assert len(sc.tcp_senders) == cfg.n_tcp
        assert len(sc.udp_senders) == cfg.n_udp_legit
        assert len(sc.attack.zombies) == cfg.n_zombies

    def test_agents_on_every_ingress(self):
        cfg = small_config()
        sc = build_scenario(cfg)
        assert set(sc.agents) == set(sc.topology.ingress_names)

    def test_agents_initially_inactive(self):
        sc = build_scenario(small_config())
        assert all(not agent.active for agent in sc.agents.values())

    def test_no_agents_for_undefended_run(self):
        sc = build_scenario(small_config(defense=DefenseKind.NONE))
        assert sc.agents == {}

    def test_counting_registered_on_all_ingresses(self):
        sc = build_scenario(small_config())
        assert set(sc.estimator.ingress_names) == set(sc.topology.ingress_names)
        assert sc.estimator.egress_names == [sc.topology.victim_router_name]

    def test_counting_hook_precedes_dropper(self):
        """Si must reflect arrivals, not survivors (Section IV wiring)."""
        from repro.counting.loglog import LogLogLinkCounter
        from repro.core.mafic import MaficAgent

        sc = build_scenario(small_config())
        for name in sc.topology.ingress_names:
            hooks = sc.topology.ingress_uplink(name).head_hooks
            kinds = [type(h) for h in hooks]
            assert kinds.index(LogLogLinkCounter) < kinds.index(MaficAgent)

    def test_flow_truth_covers_all_flows(self):
        cfg = small_config()
        sc = build_scenario(cfg)
        truths = list(sc.flow_truth.values())
        assert truths.count(FlowTruth.TCP_LEGIT) == cfg.n_tcp
        assert truths.count(FlowTruth.UDP_LEGIT) == cfg.n_udp_legit
        assert truths.count(FlowTruth.ATTACK) == len(sc.attack.attack_flow_hashes())

    def test_victim_sinks_bound(self):
        cfg = small_config()
        sc = build_scenario(cfg)
        victim = sc.topology.victim_host
        assert cfg.victim_port in victim._port_handlers
        assert cfg.udp_port in victim._port_handlers


class TestPolicySelection:
    def test_mafic_uses_adaptive_policy(self):
        sc = build_scenario(small_config(defense=DefenseKind.MAFIC))
        agent = next(iter(sc.agents.values()))
        assert isinstance(agent.policy, AdaptiveMaficPolicy)

    def test_proportional_baseline(self):
        sc = build_scenario(small_config(defense=DefenseKind.PROPORTIONAL))
        agent = next(iter(sc.agents.values()))
        assert isinstance(agent.policy, ProportionalDropPolicy)
        assert not agent.config.drop_illegal_sources

    def test_rate_limit_baseline(self):
        sc = build_scenario(small_config(defense=DefenseKind.RATE_LIMIT))
        agent = next(iter(sc.agents.values()))
        assert isinstance(agent.policy, AggregateRateLimitPolicy)


class TestTopologySelection:
    @pytest.mark.parametrize(
        "kind", [TopologyKind.STAR, TopologyKind.TREE, TopologyKind.TRANSIT_STUB]
    )
    def test_each_kind_builds(self, kind):
        sc = build_scenario(small_config(topology=kind, n_routers=10))
        assert sc.topology.victim_router_name == "lasthop"

    def test_transit_stub_honours_n_routers(self):
        sc = build_scenario(
            small_config(topology=TopologyKind.TRANSIT_STUB, n_routers=16)
        )
        assert len(sc.topology.routers) == 16
