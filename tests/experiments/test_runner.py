"""Integration tests for repro.experiments.runner — full small runs."""

import pytest

from repro.experiments.config import DefenseKind, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.collectors import FlowTruth


def small_config(**overrides):
    defaults = dict(total_flows=12, n_routers=10, duration=3.0, seed=11)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def default_run():
    """One shared default run (module-scoped: runs are seconds-long)."""
    return run_experiment(small_config())


class TestDefaultRun:
    def test_defense_activates_after_attack_starts(self, default_run):
        cfg = default_run.config
        assert default_run.activation_time is not None
        assert cfg.attack_start <= default_run.activation_time <= cfg.duration

    def test_attack_mostly_dropped(self, default_run):
        assert default_run.summary.accuracy > 0.9

    def test_no_wellbehaved_flow_condemned(self, default_run):
        confusion = default_run.scenario.defense_collector.verdict_confusion()
        assert confusion.get((FlowTruth.TCP_LEGIT, "cut"), 0) == 0

    def test_attack_flows_condemned(self, default_run):
        confusion = default_run.scenario.defense_collector.verdict_confusion()
        cut = confusion.get((FlowTruth.ATTACK, "cut"), 0)
        illegal = confusion.get((FlowTruth.ATTACK, "illegal_source"), 0)
        assert cut + illegal >= 1

    def test_victim_sees_rate_collapse(self, default_run):
        assert default_run.summary.traffic_reduction > 0.5

    def test_identified_atrs_cover_true_atrs(self, default_run):
        assert default_run.atr_recall >= 0.8

    def test_series_covers_run(self, default_run):
        series = default_run.series
        assert series.times[0] >= 0.0
        assert series.times[-1] <= default_run.config.duration
        assert series.peak_total_kbps() > 0

    def test_events_and_wall_time_recorded(self, default_run):
        assert default_run.events_executed > 1000
        assert default_run.wall_seconds > 0


class TestUndefendedControl:
    def test_no_defense_no_drops(self):
        run = run_experiment(small_config(defense=DefenseKind.NONE))
        assert run.summary.total_examined == 0
        assert run.activation_time is None
        # Attack keeps hitting the victim for the whole run.
        attack, _ = run.scenario.victim_collector.arrivals_in(
            run.config.attack_start + 0.5, run.config.duration
        )
        assert attack > 100


class TestReproducibility:
    def test_same_seed_same_results(self):
        a = run_experiment(small_config(seed=21))
        b = run_experiment(small_config(seed=21))
        assert a.summary.accuracy == b.summary.accuracy
        assert a.summary.legit_drop_rate == b.summary.legit_drop_rate
        assert a.events_executed == b.events_executed

    def test_different_seed_different_run(self):
        a = run_experiment(small_config(seed=21))
        b = run_experiment(small_config(seed=22))
        assert a.events_executed != b.events_executed


class TestStreamingConfigField:
    def test_config_field_selects_streaming_collector(self):
        """``config.streaming_series`` alone (no runner argument) must
        switch to the bounded-memory collector — huge-topology relies
        on it."""
        from repro.metrics.collectors import StreamingVictimCollector

        run = run_experiment(small_config(streaming_series=True))
        assert isinstance(
            run.scenario.victim_collector, StreamingVictimCollector
        )

    def test_config_field_matches_buffered_results(self):
        streaming = run_experiment(small_config(streaming_series=True))
        buffered = run_experiment(small_config())
        assert streaming.events_executed == buffered.events_executed
        assert streaming.summary.accuracy == buffered.summary.accuracy
        assert streaming.series.times == buffered.series.times


class TestAtrMetrics:
    def test_precision_recall_bounds(self, default_run):
        assert 0.0 <= default_run.atr_precision <= 1.0
        assert 0.0 <= default_run.atr_recall <= 1.0

    def test_no_attack_means_no_activation(self):
        run = run_experiment(small_config(attack_fraction=0.0))
        assert run.activation_time is None
        assert run.identified_atrs == set()
        assert run.atr_recall == 1.0  # vacuous
