"""Tests for repro.experiments.sweeps."""

import pytest

from repro.experiments.config import ExperimentConfig, TopologyKind
from repro.experiments.sweeps import mean_of, sweep


def tiny(**overrides):
    defaults = dict(
        total_flows=6, n_routers=6, duration=2.5,
        topology=TopologyKind.STAR, seed=31,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestSweep:
    def test_runs_each_x_value(self):
        result = sweep(
            tiny(),
            x_values=[4, 8],
            apply=lambda cfg, x: cfg.with_overrides(total_flows=int(x)),
            name="vt",
        )
        assert result.x_values == [4, 8]
        assert [p.result.config.total_flows for p in result.points] == [4, 8]

    def test_metric_extraction(self):
        result = sweep(
            tiny(),
            x_values=[4, 8],
            apply=lambda cfg, x: cfg.with_overrides(total_flows=int(x)),
        )
        ys = result.ys(lambda run: run.summary.accuracy)
        assert len(ys) == 2
        pairs = result.pairs(lambda run: run.summary.accuracy)
        assert [x for x, _ in pairs] == [4.0, 8.0]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            sweep(tiny(), x_values=[], apply=lambda c, x: c)

    def test_bad_seeds_rejected(self):
        with pytest.raises(ValueError):
            sweep(tiny(), x_values=[1], apply=lambda c, x: c, seeds_per_point=0)

    def test_mean_of_helper(self):
        fold = mean_of(lambda run: 2.0)

        class _Fake:
            pass

        assert fold([_Fake(), _Fake()]) == 2.0
