"""Tests for the component registries and the generic Registry.

The headline property: registering a new component is a self-contained
act — no edits to scenario.py, config.py switch logic, or the CLI — so
these tests register throwaway components and run them end to end.
"""

import pytest

from repro.attacks.scenarios import ATTACKS
from repro.core.defenses import DEFENSES
from repro.experiments.config import (
    DefenseKind,
    ExperimentConfig,
    TopologyKind,
)
from repro.experiments.runner import run_experiment
from repro.experiments.workload import WORKLOADS
from repro.sim.topology import TOPOLOGIES, build_star_domain
from repro.util.registry import Registry, UnknownComponentError


class TestGenericRegistry:
    def test_register_and_get(self):
        reg = Registry("widget")

        @reg.register("basic", aliases=("plain",), doc="A basic widget.")
        def build():
            return 42

        assert reg.get("basic")() == 42
        assert reg.get("plain")() == 42
        assert reg.canonical("plain") == "basic"
        assert "basic" in reg
        assert reg.describe() == [("basic", "A basic widget.")]

    def test_doc_defaults_to_first_docstring_line(self):
        reg = Registry("widget")

        @reg.register("documented")
        def build():
            """First line.

            Second paragraph ignored."""

        assert reg.spec("documented").doc == "First line."

    def test_unknown_name_lists_known(self):
        reg = Registry("widget")
        reg.register("only")(lambda: None)
        with pytest.raises(UnknownComponentError, match="only"):
            reg.get("nope")

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.register("taken", aliases=("also",))(lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("taken")(lambda: None)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("also")(lambda: None)

    def test_unregister_removes_aliases(self):
        reg = Registry("widget")
        reg.register("gone", aliases=("bye",))(lambda: None)
        reg.unregister("gone")
        assert "gone" not in reg
        assert "bye" not in reg

    def test_meta_carried(self):
        reg = Registry("widget")
        reg.register("tagged", colour="red")(lambda: None)
        assert reg.spec("tagged").meta == {"colour": "red"}


class TestBuiltinRegistries:
    def test_builtin_component_names(self):
        assert {"star", "tree", "transit_stub", "multi_tier"} <= set(
            TOPOLOGIES.names()
        )
        assert {"flood", "pulsing", "pulse_train"} <= set(ATTACKS.names())
        assert {
            "mafic", "proportional", "rate_limit", "none", "red_rate_limit"
        } <= set(DEFENSES.names())
        assert {"paper_static", "web_mice"} <= set(WORKLOADS.names())

    def test_legacy_enum_members_resolve(self):
        assert TOPOLOGIES.canonical(TopologyKind.STAR) == "star"
        assert DEFENSES.canonical(DefenseKind.RATE_LIMIT) == "rate_limit"

    def test_legacy_aliases_resolve(self):
        assert TOPOLOGIES.canonical("transit-stub") == "transit_stub"
        assert DEFENSES.canonical("rate-limit") == "rate_limit"


class TestConfigValidation:
    def test_enum_members_survive_for_known_names(self):
        config = ExperimentConfig(topology="star", defense="mafic")
        assert config.topology is TopologyKind.STAR
        assert config.defense is DefenseKind.MAFIC

    def test_new_style_names_stay_strings(self):
        config = ExperimentConfig(
            topology="multi_tier", defense="red_rate_limit"
        )
        assert config.topology == "multi_tier"
        assert config.defense == "red_rate_limit"

    def test_unknown_component_rejected_at_construction(self):
        with pytest.raises(UnknownComponentError):
            ExperimentConfig(topology="moebius_strip")
        with pytest.raises(UnknownComponentError):
            ExperimentConfig(attack="carrier_pigeon")
        with pytest.raises(UnknownComponentError):
            ExperimentConfig(defense="prayer")
        with pytest.raises(UnknownComponentError):
            ExperimentConfig(workload="crypto_mining")


class TestInTestRegistration:
    """New components need zero core edits: register here, run here."""

    def test_dummy_topology_runs_end_to_end(self):
        @TOPOLOGIES.register(
            "test-dummy-star", doc="Tiny star for the seam test.",
            hops_one_way=2,
        )
        def build_dummy(config):
            return build_star_domain(
                n_ingress=3,
                core_bandwidth_bps=config.core_bandwidth_bps,
                access_bandwidth_bps=config.access_bandwidth_bps,
                victim_bandwidth_bps=config.victim_bandwidth_bps,
                link_delay=config.link_delay,
                queue_capacity=config.queue_capacity,
            )

        try:
            config = ExperimentConfig(
                topology="test-dummy-star", total_flows=8, duration=2.0,
                seed=3,
            )
            result = run_experiment(config)
            assert result.events_executed > 0
            assert len(result.scenario.topology.ingress_names) == 3
        finally:
            TOPOLOGIES.unregister("test-dummy-star")

    def test_component_args_reach_dummy_builders(self):
        """The four ``*_args`` dicts arrive as builder keyword arguments."""
        received = {}

        @TOPOLOGIES.register("test-args-topo", doc="Records its kwargs.")
        def build_topo(config, **kwargs):
            received["topology"] = kwargs
            return build_star_domain(n_ingress=3)

        @WORKLOADS.register("test-args-load", doc="Records its kwargs.")
        def build_load(ctx, **kwargs):
            received["workload"] = kwargs
            from repro.experiments.workload import build_paper_static

            return build_paper_static(ctx)

        @ATTACKS.register("test-args-attack", doc="Records its kwargs.")
        def build_attack(topology, config, rng, **kwargs):
            received["attack"] = kwargs
            from repro.attacks.scenarios import _build_flood

            return _build_flood(topology, config, rng)

        @DEFENSES.register("test-args-defense", doc="Records its kwargs.")
        def build_defense(ctx, **kwargs):
            received["defense"] = kwargs
            return {}

        try:
            config = ExperimentConfig(
                topology="test-args-topo",
                workload="test-args-load",
                attack="test-args-attack",
                defense="test-args-defense",
                topology_args={"rings": 2},
                workload_args={"mice": False},
                attack_args={"surge": 3.5},
                defense_args={"budget": "low"},
                total_flows=6,
                duration=1.2,
            )
            run_experiment(config)
            assert received == {
                "topology": {"rings": 2},
                "workload": {"mice": False},
                "attack": {"surge": 3.5},
                "defense": {"budget": "low"},
            }
        finally:
            TOPOLOGIES.unregister("test-args-topo")
            WORKLOADS.unregister("test-args-load")
            ATTACKS.unregister("test-args-attack")
            DEFENSES.unregister("test-args-defense")

    def test_builtin_topology_accepts_generator_overrides(self):
        config = ExperimentConfig(
            topology="star", topology_args={"n_ingress": 3}, total_flows=6,
            duration=1.2,
        )
        from repro.experiments.scenario import build_scenario

        scenario = build_scenario(config)
        assert len(scenario.topology.ingress_names) == 3

    def test_unknown_component_arg_raises_type_error(self):
        config = ExperimentConfig(
            topology="star", topology_args={"warp_factor": 9}, total_flows=6,
            duration=1.2,
        )
        from repro.experiments.scenario import build_scenario

        with pytest.raises(TypeError, match="warp_factor"):
            build_scenario(config)

    def test_attack_args_route_to_scenario_and_zombie(self):
        config = ExperimentConfig(
            topology="star", total_flows=8, n_routers=6, duration=1.4,
            attack_args={"start_jitter": 0.0, "jitter": 0.25,
                         "ingress_subset": ["ingress0"]},
        )
        from repro.experiments.scenario import build_scenario

        scenario = build_scenario(config)
        assert scenario.attack.config.start_jitter == 0.0
        assert scenario.attack.config.ingress_subset == ["ingress0"]
        assert scenario.attack.config.zombie.jitter == 0.25
        assert scenario.attack.atr_ground_truth == {"ingress0"}
        with pytest.raises(TypeError, match="teleport"):
            build_scenario(config.with_overrides(attack_args={"teleport": 1}))

    def test_dummy_defense_runs_end_to_end(self):
        from repro.core.defenses import install_agent_line
        from repro.core.policy import ProportionalDropPolicy

        @DEFENSES.register("test-half-drop", doc="Blind 50% dropper.")
        def build_half(ctx):
            return install_agent_line(
                ctx,
                lambda config, rng: ProportionalDropPolicy(0.5, rng),
                adaptive=False,
            )

        try:
            config = ExperimentConfig(
                topology="star", defense="test-half-drop", total_flows=8,
                n_routers=6, duration=2.0, seed=3,
            )
            result = run_experiment(config)
            agents = result.scenario.agents
            assert agents and all(
                agent.policy.drop_probability == 0.5
                for agent in agents.values()
            )
        finally:
            DEFENSES.unregister("test-half-drop")
