"""Tests for repro.experiments.figures (scaled-down sweeps)."""

import pytest

from repro.experiments import figures
from repro.experiments.figures import FigureResult, _scaled


class TestScaledAxis:
    def test_full_scale_keeps_all(self):
        assert _scaled([1, 2, 3, 4], 1.0) == [1, 2, 3, 4]

    def test_half_scale_keeps_ends(self):
        thinned = _scaled([1, 2, 3, 4, 5, 6], 0.4)
        assert thinned[0] == 1
        assert thinned[-1] == 6
        assert len(thinned) < 6

    def test_minimum_two_points(self):
        assert len(_scaled([1, 2, 3, 4, 5, 6], 0.01)) >= 2

    def test_short_lists_untouched(self):
        assert _scaled([1, 2], 0.1) == [1, 2]


class TestFigureResult:
    def test_add_and_read_points(self):
        fig = FigureResult("figX", "t", "x", "y")
        fig.add_point("s", 1.0, 2.0)
        fig.add_point("s", 2.0, 4.0)
        assert fig.series["s"] == [(1.0, 2.0), (2.0, 4.0)]
        assert fig.ys("s") == [2.0, 4.0]


@pytest.mark.slow
class TestFigureSmoke:
    """One tiny run per figure family to prove the harness end-to-end."""

    def test_fig3a_smoke(self):
        fig = figures.fig3a(scale=0.01)
        assert set(fig.series) == {"Pd=90%", "Pd=80%", "Pd=70%"}
        for ys in (fig.ys(name) for name in fig.series):
            assert all(0 <= y <= 100 for y in ys)

    def test_fig4b_smoke(self):
        fig = figures.fig4b(scale=0.01)
        assert set(fig.series) == {"Vt=10", "Vt=30", "Vt=50"}
        assert all(len(points) > 10 for points in fig.series.values())

    def test_fig5b_smoke(self):
        fig = figures.fig5b(scale=0.01)
        assert set(fig.series) == {"Vt=30", "Vt=70", "Vt=100"}

    def test_fig6c_smoke(self):
        fig = figures.fig6c(scale=0.01)
        assert set(fig.series) == {"TCP=95%", "TCP=75%", "TCP=55%", "TCP=35%"}

    def test_fig7_smoke(self):
        fig = figures.fig7(scale=0.01)
        assert set(fig.series) == {"Pd=90%", "Pd=80%", "Pd=70%"}

    def test_all_figures_registered(self):
        assert set(figures.ALL_FIGURES) == {
            "fig3a", "fig3b", "fig4a", "fig4b", "fig5a", "fig5b",
            "fig5c", "fig6a", "fig6b", "fig6c", "fig7",
        }
