"""Tests for repro.experiments.reporting."""

from repro.experiments.figures import FigureResult
from repro.experiments.reporting import format_figure, format_summary
from repro.metrics.rates import MetricsSummary


def summary(**overrides):
    defaults = dict(
        accuracy=0.993,
        traffic_reduction=0.87,
        false_positive_rate=0.0003,
        false_negative_rate=0.007,
        legit_drop_rate=0.021,
        attack_examined=1000,
        attack_dropped=993,
        wellbehaved_examined=500,
        wellbehaved_dropped=10,
        victim_rate_before_bps=20e6,
        victim_rate_after_bps=2e6,
    )
    defaults.update(overrides)
    return MetricsSummary(**defaults)


class TestFormatSummary:
    def test_contains_all_rates(self):
        text = format_summary(summary())
        assert "99.30%" in text
        assert "87.00%" in text
        assert "alpha" in text
        assert "theta_p" in text
        assert "Lr" in text

    def test_contains_counts(self):
        text = format_summary(summary())
        assert "1000/993" in text
        assert "500/10" in text

    def test_rate_line(self):
        text = format_summary(summary())
        assert "20.00/2.00" in text


class TestFormatFigure:
    def _figure(self):
        fig = FigureResult("fig3a", "accuracy", "Vt", "alpha (%)")
        fig.add_point("Pd=90%", 10, 99.4)
        fig.add_point("Pd=90%", 50, 99.3)
        fig.add_point("Pd=70%", 10, 98.1)
        return fig

    def test_header_and_axes(self):
        text = format_figure(self._figure())
        assert text.startswith("# fig3a: accuracy")
        assert "x: Vt | y: alpha (%)" in text

    def test_rows_aligned_by_x(self):
        text = format_figure(self._figure())
        lines = text.splitlines()
        data_lines = [l for l in lines if not l.startswith("#") and l.strip()]
        # Header + 2 x rows.
        assert len(data_lines) == 3
        assert "10.000" in data_lines[1]
        assert "99.400" in data_lines[1]

    def test_missing_cell_left_blank(self):
        text = format_figure(self._figure())
        row50 = [l for l in text.splitlines() if l.strip().startswith("50")][0]
        assert "98." not in row50  # Pd=70% has no point at 50

    def test_empty_figure(self):
        fig = FigureResult("figX", "t", "x", "y")
        assert "no data" in format_figure(fig)
