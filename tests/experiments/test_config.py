"""Tests for repro.experiments.config."""

import pytest

from repro.core.config import MaficConfig
from repro.experiments.config import DefenseKind, ExperimentConfig, TopologyKind


class TestTableIIDefaults:
    def test_defaults_match_table_ii(self):
        cfg = ExperimentConfig()
        assert cfg.total_flows == 50  # Vt
        assert cfg.tcp_fraction == 0.95  # Gamma
        assert cfg.rate_bps == 1e6  # R
        assert cfg.n_routers == 40  # N
        assert cfg.mafic.drop_probability == 0.90  # Pd

    def test_default_defense_is_mafic(self):
        assert ExperimentConfig().defense is DefenseKind.MAFIC

    def test_default_topology_is_transit_stub(self):
        assert ExperimentConfig().topology is TopologyKind.TRANSIT_STUB


class TestDerivedCounts:
    def test_workload_partition_sums_to_vt(self):
        cfg = ExperimentConfig(total_flows=50)
        assert cfg.n_zombies + cfg.n_tcp + cfg.n_udp_legit == 50

    def test_zombie_count(self):
        cfg = ExperimentConfig(total_flows=50, attack_fraction=0.4)
        assert cfg.n_zombies == 20

    def test_at_least_one_zombie_when_fraction_positive(self):
        cfg = ExperimentConfig(total_flows=2, attack_fraction=0.1)
        assert cfg.n_zombies == 1

    def test_zero_attack_fraction_means_no_zombies(self):
        cfg = ExperimentConfig(attack_fraction=0.0)
        assert cfg.n_zombies == 0
        assert cfg.n_legit == cfg.total_flows

    def test_tcp_udp_split(self):
        cfg = ExperimentConfig(total_flows=50, attack_fraction=0.4,
                               tcp_fraction=0.9)
        assert cfg.n_tcp == 27
        assert cfg.n_udp_legit == 3

    def test_legit_rate(self):
        cfg = ExperimentConfig(rate_bps=1e6, legit_rate_factor=0.25)
        assert cfg.legit_rate_bps == 250e3

    @pytest.mark.parametrize("vt", [1, 2, 10, 37, 50, 120])
    def test_partition_always_consistent(self, vt):
        cfg = ExperimentConfig(total_flows=vt)
        assert cfg.n_zombies >= 0
        assert cfg.n_tcp >= 0
        assert cfg.n_udp_legit >= 0
        assert cfg.n_zombies + cfg.n_tcp + cfg.n_udp_legit == vt


class TestOverrides:
    def test_with_overrides_copies(self):
        base = ExperimentConfig()
        tweaked = base.with_overrides(total_flows=99, seed=7)
        assert tweaked.total_flows == 99
        assert tweaked.seed == 7
        assert base.total_flows == 50  # original untouched

    def test_mafic_config_replaceable(self):
        cfg = ExperimentConfig(mafic=MaficConfig(drop_probability=0.7))
        assert cfg.mafic.drop_probability == 0.7


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_flows": 0},
            {"tcp_fraction": 1.5},
            {"attack_fraction": -0.1},
            {"rate_bps": 0},
            {"n_routers": 2},
            {"duration": 0},
            {"attack_start": 10.0, "duration": 5.0},
            {"monitor_period": 0},
            {"rate_limit_bps": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)


class TestCanonicalSerialization:
    def test_to_dict_round_trips(self):
        config = ExperimentConfig(
            attack_fraction=0.6,
            topology="multi_tier",
            defense="red_rate_limit",
            topology_args={"n_agg": 2},
            seed=9,
        )
        rebuilt = ExperimentConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.to_dict() == config.to_dict()

    def test_nested_dataclasses_round_trip(self):
        config = ExperimentConfig()
        config.mafic.drop_probability = 0.7
        tree = config.to_dict()
        assert tree["mafic"]["drop_probability"] == 0.7
        assert tree["spoofing"]["mode"] == "mixed"
        rebuilt = ExperimentConfig.from_dict(tree)
        assert isinstance(rebuilt.mafic, MaficConfig)
        assert rebuilt.mafic.drop_probability == 0.7

    def test_enum_fields_serialize_as_values(self):
        tree = ExperimentConfig(topology=TopologyKind.STAR).to_dict()
        assert tree["topology"] == "star"
        assert tree["defense"] == "mafic"

    def test_missing_keys_fall_back_to_defaults(self):
        """Artifacts written before a field existed still load."""
        tree = ExperimentConfig().to_dict()
        del tree["workload_args"]
        rebuilt = ExperimentConfig.from_dict(tree)
        assert rebuilt.workload_args == {}

    def test_canonical_json_is_key_order_independent(self):
        config = ExperimentConfig(seed=4)
        tree = config.to_dict()
        shuffled = dict(reversed(list(tree.items())))
        assert (
            ExperimentConfig.from_dict(shuffled).canonical_json()
            == config.canonical_json()
        )


class TestConfigHash:
    def test_hash_is_stable_for_equal_configs(self):
        assert (
            ExperimentConfig(seed=7).config_hash()
            == ExperimentConfig(seed=7).config_hash()
        )

    def test_hash_format(self):
        digest = ExperimentConfig().config_hash()
        assert len(digest) == 16
        int(digest, 16)  # hex

    def test_every_field_perturbs_the_hash(self):
        base = ExperimentConfig().config_hash()
        for overrides in (
            {"seed": 2},
            {"attack_fraction": 0.5},
            {"defense": DefenseKind.PROPORTIONAL},
            {"topology_args": {"n_ingress": 4}},
            {"workload_args": {"x": 1}},
            {"attack_args": {"start_jitter": 0.0}},
            {"defense_args": {"min_thresh": 4.0}},
        ):
            assert ExperimentConfig(**overrides).config_hash() != base

    def test_hash_ignores_python_process(self):
        """The hash is content-derived, not id()/PYTHONHASHSEED-derived."""
        import subprocess
        import sys

        code = (
            "from repro.experiments.config import ExperimentConfig;"
            "print(ExperimentConfig(seed=11).config_hash())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
        ).stdout.strip()
        assert out == ExperimentConfig(seed=11).config_hash()


class TestComponentArgsValidation:
    def test_args_must_be_dicts(self):
        with pytest.raises(ValueError, match="topology_args"):
            ExperimentConfig(topology_args=[1, 2])

    def test_arg_keys_must_be_strings(self):
        with pytest.raises(ValueError, match="attack_args"):
            ExperimentConfig(attack_args={1: "x"})
