"""Tests for repro.experiments.config."""

import pytest

from repro.core.config import MaficConfig
from repro.experiments.config import DefenseKind, ExperimentConfig, TopologyKind


class TestTableIIDefaults:
    def test_defaults_match_table_ii(self):
        cfg = ExperimentConfig()
        assert cfg.total_flows == 50  # Vt
        assert cfg.tcp_fraction == 0.95  # Gamma
        assert cfg.rate_bps == 1e6  # R
        assert cfg.n_routers == 40  # N
        assert cfg.mafic.drop_probability == 0.90  # Pd

    def test_default_defense_is_mafic(self):
        assert ExperimentConfig().defense is DefenseKind.MAFIC

    def test_default_topology_is_transit_stub(self):
        assert ExperimentConfig().topology is TopologyKind.TRANSIT_STUB


class TestDerivedCounts:
    def test_workload_partition_sums_to_vt(self):
        cfg = ExperimentConfig(total_flows=50)
        assert cfg.n_zombies + cfg.n_tcp + cfg.n_udp_legit == 50

    def test_zombie_count(self):
        cfg = ExperimentConfig(total_flows=50, attack_fraction=0.4)
        assert cfg.n_zombies == 20

    def test_at_least_one_zombie_when_fraction_positive(self):
        cfg = ExperimentConfig(total_flows=2, attack_fraction=0.1)
        assert cfg.n_zombies == 1

    def test_zero_attack_fraction_means_no_zombies(self):
        cfg = ExperimentConfig(attack_fraction=0.0)
        assert cfg.n_zombies == 0
        assert cfg.n_legit == cfg.total_flows

    def test_tcp_udp_split(self):
        cfg = ExperimentConfig(total_flows=50, attack_fraction=0.4,
                               tcp_fraction=0.9)
        assert cfg.n_tcp == 27
        assert cfg.n_udp_legit == 3

    def test_legit_rate(self):
        cfg = ExperimentConfig(rate_bps=1e6, legit_rate_factor=0.25)
        assert cfg.legit_rate_bps == 250e3

    @pytest.mark.parametrize("vt", [1, 2, 10, 37, 50, 120])
    def test_partition_always_consistent(self, vt):
        cfg = ExperimentConfig(total_flows=vt)
        assert cfg.n_zombies >= 0
        assert cfg.n_tcp >= 0
        assert cfg.n_udp_legit >= 0
        assert cfg.n_zombies + cfg.n_tcp + cfg.n_udp_legit == vt


class TestOverrides:
    def test_with_overrides_copies(self):
        base = ExperimentConfig()
        tweaked = base.with_overrides(total_flows=99, seed=7)
        assert tweaked.total_flows == 99
        assert tweaked.seed == 7
        assert base.total_flows == 50  # original untouched

    def test_mafic_config_replaceable(self):
        cfg = ExperimentConfig(mafic=MaficConfig(drop_probability=0.7))
        assert cfg.mafic.drop_probability == 0.7


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"total_flows": 0},
            {"tcp_fraction": 1.5},
            {"attack_fraction": -0.1},
            {"rate_bps": 0},
            {"n_routers": 2},
            {"duration": 0},
            {"attack_start": 10.0, "duration": 5.0},
            {"monitor_period": 0},
            {"rate_limit_bps": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)
