"""Tests for the dynamic (mice) workload and finite TCP transfers."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenario import build_scenario
from repro.experiments.workload import (
    DynamicWorkload,
    DynamicWorkloadConfig,
)
from repro.sim.packet import FlowKey
from repro.sim.topology import build_dumbbell
from repro.transport.sink import AckingSink
from repro.transport.tcp import TcpSender


class TestFiniteTcpTransfer:
    def _wire(self, topo, total):
        src = topo.hosts["src0"]
        victim = topo.hosts["victim"]
        flow = FlowKey(src.address, victim.address, 5000, 80)
        done = []
        sender = TcpSender(
            topo.sim, src, flow, total_segments=total,
            on_complete=done.append,
        )
        src.bind_port(5000, sender)
        victim.bind_port(80, AckingSink(topo.sim, victim))
        return sender, done

    def test_transfer_completes_and_stops(self):
        topo = build_dumbbell(bottleneck_bps=10e6)
        sender, done = self._wire(topo, total=10)
        sender.start(at=0.0)
        topo.sim.run(until=3.0)
        assert sender.completed_at is not None
        assert done == [sender.completed_at]
        assert sender.stats.packets_sent >= 10
        # Nothing after completion.
        sent = sender.stats.packets_sent
        topo.sim.run(until=4.0)
        assert sender.stats.packets_sent == sent

    def test_exact_segment_count_without_loss(self):
        topo = build_dumbbell(bottleneck_bps=10e6)
        sender, _ = self._wire(topo, total=7)
        sender.start(at=0.0)
        topo.sim.run(until=3.0)
        assert sender.high_ack == 7
        assert sender.stats.packets_sent == 7  # no retransmissions needed

    def test_single_segment_transfer(self):
        topo = build_dumbbell(bottleneck_bps=10e6)
        sender, done = self._wire(topo, total=1)
        sender.start(at=0.0)
        topo.sim.run(until=2.0)
        assert len(done) == 1

    def test_invalid_total_rejected(self):
        topo = build_dumbbell()
        src = topo.hosts["src0"]
        with pytest.raises(ValueError):
            TcpSender(topo.sim, src, FlowKey(1, 2, 3, 4), total_segments=0)


class TestDynamicWorkloadConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicWorkloadConfig(arrival_rate=0)
        with pytest.raises(ValueError):
            DynamicWorkloadConfig(mean_segments=0)
        with pytest.raises(ValueError):
            DynamicWorkloadConfig(mean_segments=10, max_segments=5)
        with pytest.raises(ValueError):
            DynamicWorkloadConfig(start_time=1.0, stop_time=0.5)


@pytest.fixture(scope="module")
def defended_mice_run():
    cfg = ExperimentConfig(
        total_flows=10, n_routers=10, duration=3.5, seed=37,
    )
    scenario = build_scenario(cfg)
    workload = DynamicWorkload(
        DynamicWorkloadConfig(arrival_rate=8.0, mean_segments=6,
                              stop_time=3.0),
        rng=np.random.default_rng(7),
    )
    workload.install(scenario)
    scenario.sim.run(until=cfg.duration)
    return scenario, workload


class TestDynamicWorkload:
    def test_mice_spawn_and_complete(self, defended_mice_run):
        _, workload = defended_mice_run
        assert len(workload.records) > 10
        assert len(workload.completed()) > 5

    def test_completion_times_positive(self, defended_mice_run):
        _, workload = defended_mice_run
        assert all(t > 0 for t in workload.completion_times())
        assert workload.mean_fct() > 0

    def test_percentiles_ordered(self, defended_mice_run):
        _, workload = defended_mice_run
        assert (
            workload.fct_percentile(50)
            <= workload.fct_percentile(95)
            <= workload.fct_percentile(100)
        )

    def test_percentile_validation(self, defended_mice_run):
        _, workload = defended_mice_run
        with pytest.raises(ValueError):
            workload.fct_percentile(101)

    def test_mice_registered_as_wellbehaved(self, defended_mice_run):
        scenario, workload = defended_mice_run
        from repro.metrics.collectors import FlowTruth

        for record in workload.records[:5]:
            assert (
                scenario.flow_truth[record.flow.hashed()]
                is FlowTruth.TCP_LEGIT
            )

    def test_ports_released_after_completion(self, defended_mice_run):
        scenario, workload = defended_mice_run
        done = workload.completed()
        assert done
        host_ports = {
            (r.flow.src_ip, r.flow.src_port) for r in done
        }
        # Completed transfers unbound their ports: spot-check one host.
        some = done[0]
        for host in scenario.topology.hosts.values():
            if host.address == some.flow.src_ip:
                assert some.flow.src_port not in host._port_handlers

    def test_double_install_rejected(self):
        workload = DynamicWorkload(
            DynamicWorkloadConfig(), rng=np.random.default_rng(0)
        )
        cfg = ExperimentConfig(total_flows=6, n_routers=6, duration=2.5,
                               seed=38)
        scenario = build_scenario(cfg)
        workload.install(scenario)
        with pytest.raises(RuntimeError):
            workload.install(scenario)

    def test_no_mouse_condemned(self, defended_mice_run):
        """Mice are conforming TCP: MAFIC must not cut them."""
        scenario, workload = defended_mice_run
        from repro.metrics.collectors import FlowTruth

        confusion = scenario.defense_collector.verdict_confusion()
        assert confusion.get((FlowTruth.TCP_LEGIT, "cut"), 0) <= 1
