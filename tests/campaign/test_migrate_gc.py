"""Migration and gc round-trips over the campaign store.

The acceptance property: a schema-1 store reads transparently through
the v2 reader, ``migrate`` rewrites it in place with byte-identical
reports at every step, and ``gc`` removes exactly the unplanned
artifacts and debris — after which a resume re-executes only what gc
removed.
"""

import json
import os

import pytest

from repro.campaign.orchestrator import (
    campaign_gc,
    campaign_status,
    open_store,
    run_campaign,
)
from repro.campaign.query import campaign_report
from repro.campaign.store import CampaignStore, StoreError, migrate_store

from tests.campaign.conftest import fabricate_result, tiny_spec
from tests.campaign.schema1 import (
    downgrade_store,
    write_schema1_manifest,
    write_schema1_result,
)

WIDE_AXES = [{"field": "attack_fraction", "values": (0.25, 0.5, 0.75)}]


def build_schema1_store(spec, root) -> CampaignStore:
    """A fully fabricated legacy store: flat artifacts, inline series,
    schema-1 manifest."""
    store = open_store(spec, root).ensure()
    for planned in spec.plan():
        write_schema1_result(
            store, fabricate_result(planned.config), point=planned.point,
            series_bin_width=0.05,
        )
    write_schema1_manifest(store, spec.to_dict(), series_bin_width=0.05)
    return store


def report_bytes(spec, root) -> str:
    return json.dumps(campaign_report(spec, root), sort_keys=True)


class TestMigration:
    def test_schema1_reads_without_migration(self, tmp_path):
        spec = tiny_spec(name="legacy")
        build_schema1_store(spec, tmp_path)
        report = campaign_report(spec, tmp_path)
        assert report["complete"] == report["planned"] == 4
        assert campaign_status(spec, tmp_path).is_complete

    def test_migrate_is_in_place_atomic_and_report_preserving(
        self, tmp_path
    ):
        spec = tiny_spec(name="legacy")
        store = build_schema1_store(spec, tmp_path)
        before = report_bytes(spec, tmp_path)
        ids_before = store.run_ids()

        result = store.migrate()
        assert result.migrated == 4
        assert result.already_current == 0

        # Byte-identical report, identical id set, fully sharded layout.
        assert report_bytes(spec, tmp_path) == before
        assert store.run_ids() == ids_before
        assert not list(store.runs_dir.glob("*.json"))  # no flat files left
        for run_id in ids_before:
            path = store.run_path(run_id)
            assert path.parent.name == run_id[:2]
            assert store.series_path(path).is_file()
            assert "series" not in json.loads(path.read_text())
        # Series content survived the move to the sidecars.
        run = store.read_run(sorted(ids_before)[0])
        assert run.series.times == [0.5, 1.5]
        # Manifest re-stamped schema 2, spec and pin preserved.
        manifest = json.loads(store.manifest_path.read_text())
        assert manifest["schema"] == 2
        assert manifest["spec"] == spec.to_dict()
        assert store.series_bin_width() == 0.05
        assert not list(store.directory.glob("**/*.tmp"))

    def test_migrate_is_idempotent(self, tmp_path):
        spec = tiny_spec(name="legacy")
        store = build_schema1_store(spec, tmp_path)
        store.migrate()
        again = store.migrate()
        assert again.migrated == 0
        assert again.already_current == 4

    def test_migrated_store_resumes_with_zero_executions(self, tmp_path):
        spec = tiny_spec(name="legacy")
        build_schema1_store(spec, tmp_path)
        migrate_store(open_store(spec, tmp_path).directory)
        resumed = run_campaign(spec, root=tmp_path, jobs=1)
        assert resumed.executed == 0
        assert resumed.cached == 4

    def test_migrate_missing_store_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no campaign store"):
            migrate_store(tmp_path / "nothing-here")

    def test_migrate_wraps_corrupt_artifacts_in_store_error(self, tmp_path):
        """A torn artifact (what the old fixed-tmp-name race could
        leave) must fail migration with the StoreError contract, not a
        raw json traceback."""
        spec = tiny_spec(name="torn")
        store = build_schema1_store(spec, tmp_path)
        (store.runs_dir / "0000000000000000.json").write_text("{torn")
        with pytest.raises(StoreError, match="corrupt artifact"):
            store.migrate()
        (store.runs_dir / "0000000000000000.json").write_text('{"schema": 1}')
        with pytest.raises(StoreError, match="no run_id"):
            store.migrate()

    def test_downgrade_then_migrate_round_trips_a_real_store(self, tmp_path):
        """Full cycle on a store the current writer produced: schema-2
        -> downgrade (fixture builder) -> v2 read -> migrate -> reports
        byte-identical at every step."""
        spec = tiny_spec(name="cycle")
        store = open_store(spec, tmp_path).ensure()
        for planned in spec.plan():
            store.write_result(
                fabricate_result(planned.config), point=planned.point,
                series_bin_width=0.05,
            )
        store.write_manifest(spec.to_dict(), series_bin_width=0.05)
        original = report_bytes(spec, tmp_path)
        series_before = [
            run.series.total_kbps for run in store.iter_runs()
        ]

        assert downgrade_store(store.directory) == 4
        assert len(list(store.runs_dir.glob("*.json"))) == 4  # flat again
        assert report_bytes(spec, tmp_path) == original  # v2 reader, v1 store

        assert store.migrate().migrated == 4
        assert report_bytes(spec, tmp_path) == original
        assert [
            run.series.total_kbps for run in store.iter_runs()
        ] == series_before


class TestGC:
    def plant_debris(self, store: CampaignStore, stale: bool = True) -> tuple:
        """An orphan sidecar and a leftover atomic-write temp file,
        backdated past gc's live-writer age guard unless ``stale=False``."""
        orphan = store.runs_dir / "fe" / "feedfacefeedface.series.json"
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_text('{"schema": 2}\n')
        tmp = store.runs_dir / "junk.json.abc123.tmp"
        tmp.write_text("half-written")
        if stale:
            for path in (orphan, tmp):
                os.utime(path, (0, 0))
        return orphan, tmp

    def populate(self, spec, root) -> CampaignStore:
        store = open_store(spec, root).ensure()
        for planned in spec.plan():
            store.write_result(
                fabricate_result(planned.config), point=planned.point
            )
        return store

    def test_dry_run_is_default_and_deletes_nothing(self, tmp_path):
        wide = tiny_spec(name="g", axes=WIDE_AXES)
        store = self.populate(wide, tmp_path)
        orphan, tmp = self.plant_debris(store)
        narrow = tiny_spec(name="g")  # drops the 0.75 axis point

        report = campaign_gc(narrow, tmp_path)
        assert not report.applied
        # 2 unplanned runs (0.75 x seeds 1,2), each with its sidecar.
        assert len(report.unplanned) == 4
        assert report.orphan_sidecars == [orphan]
        assert tmp in report.tmp_files
        for path in report.paths:
            assert path.exists()  # dry run touched nothing
        assert store.run_ids() == {r.run_id for r in wide.plan()}

    def test_apply_removes_exactly_the_debris(self, tmp_path):
        wide = tiny_spec(name="g", axes=WIDE_AXES)
        store = self.populate(wide, tmp_path)
        orphan, tmp = self.plant_debris(store)
        narrow = tiny_spec(name="g")
        narrow_before = report_bytes(narrow, tmp_path)

        report = campaign_gc(narrow, tmp_path, apply=True)
        assert report.applied
        for path in report.paths:
            assert not path.exists()
        assert not orphan.exists() and not tmp.exists()
        # Exactly the planned artifacts survive, reports unchanged.
        assert store.run_ids() == {r.run_id for r in narrow.plan()}
        assert report_bytes(narrow, tmp_path) == narrow_before
        # A clean store gc's to nothing.
        assert campaign_gc(narrow, tmp_path, apply=True).paths == []

    def test_resume_reruns_only_what_gc_removed(self, tmp_path):
        """gc with a narrowed spec prunes the dropped cells; resuming
        the wide spec re-executes exactly those cells and nothing
        else."""
        wide = tiny_spec(name="g", axes=WIDE_AXES)
        run_campaign(wide, root=tmp_path, jobs=1)  # real artifacts
        removed = campaign_gc(tiny_spec(name="g"), tmp_path, apply=True)
        removed_ids = {
            path.stem for path in removed.unplanned
            if not path.name.endswith(".series.json")
        }
        assert len(removed_ids) == 2

        status = campaign_status(wide, tmp_path)
        assert {run.run_id for run in status.missing} == removed_ids
        resumed = run_campaign(wide, root=tmp_path, jobs=1)
        assert resumed.executed == 2
        assert resumed.cached == 4
        assert resumed.complete

    def test_fresh_debris_is_spared(self, tmp_path):
        """A live writer's in-flight mkstemp file (and the sidecar it
        just wrote, summary pending) look exactly like crash debris —
        gc must not unlink them out from under the rename."""
        spec = tiny_spec(name="g")
        store = self.populate(spec, tmp_path)
        orphan, tmp = self.plant_debris(store, stale=False)

        report = campaign_gc(spec, tmp_path, apply=True)
        assert report.paths == []
        assert orphan.exists() and tmp.exists()
        # Explicitly aging the guard down reclaims them.
        aged = campaign_gc(
            spec, tmp_path, apply=True, min_debris_age_seconds=-1.0
        )
        assert len(aged.paths) == 2
        assert not orphan.exists() and not tmp.exists()

    def test_gc_without_store_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no campaign store"):
            campaign_gc(tiny_spec(name="void"), tmp_path)
