"""Fabricate schema-1 (flat, inline-series) store layouts.

The current :class:`~repro.campaign.store.CampaignStore` only *writes*
schema 2 (hash-prefix shards + series sidecars), so migration and
back-compat tests — and CI's ``campaign-smoke`` job — need a way to
produce the legacy layout with current code.  :func:`write_schema1_result`
replicates what the pre-sidecar ``write_result`` put on disk, byte for
byte; :func:`downgrade_store` rewrites a whole schema-2 store back to
schema 1 in place (the inverse of ``campaign migrate``).

This module deliberately avoids pytest imports so CI can call it from a
plain ``python -c`` one-liner.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.export import summary_to_dict
from repro.campaign.store import CampaignStore
from repro.experiments.runner import ExperimentResult


def _dump(path: Path, payload: dict) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n",
        encoding="utf-8",
    )
    return path


def write_schema1_result(
    store: CampaignStore,
    result: ExperimentResult,
    point: dict | None = None,
    series_bin_width: float | None = None,
) -> Path:
    """File one artifact exactly as the schema-1 store did: a flat
    ``runs/<run_id>.json`` with the series inline."""
    run_id = result.config.config_hash()
    series = result.series
    payload = {
        "schema": 1,
        "run_id": run_id,
        "config": result.config.to_dict(),
        "point": dict(point or {}),
        "summary": summary_to_dict(result.summary),
        "activation_time": result.activation_time,
        "identified_atrs": sorted(result.identified_atrs),
        "true_atrs": sorted(result.true_atrs),
        "events_executed": result.events_executed,
        "series_bin_width": series_bin_width,
        "series": {
            "times": series.times,
            "total_kbps": series.total_kbps,
            "attack_kbps": series.attack_kbps,
            "legit_kbps": series.legit_kbps,
        },
        "timing": {"wall_seconds": result.wall_seconds},
    }
    return _dump(store.runs_dir / f"{run_id}.json", payload)


def write_schema1_manifest(
    store: CampaignStore,
    spec_dict: dict,
    series_bin_width: float | None = None,
) -> Path:
    """A legacy manifest (``"schema": 1``) next to the artifacts."""
    payload: dict = {"schema": 1, "spec": spec_dict}
    if series_bin_width is not None:
        payload["series_bin_width"] = series_bin_width
    return _dump(store.manifest_path, payload)


def downgrade_store(directory: str | Path) -> int:
    """Rewrite a schema-2 store as schema 1 in place; returns the number
    of artifacts rewritten.  The inverse of ``campaign migrate`` — used
    to build migration fixtures out of freshly produced stores."""
    store = CampaignStore(directory)
    rewritten = 0
    for run_id in sorted(store.run_ids()):
        path = store.run_path(run_id)
        payload = json.loads(path.read_text(encoding="utf-8"))
        sidecar = store.series_path(path)
        if "series" not in payload:
            payload["series"] = json.loads(
                sidecar.read_text(encoding="utf-8")
            )["series"]
        payload["schema"] = 1
        flat = store.runs_dir / f"{run_id}.json"
        _dump(flat, payload)
        if path != flat:
            path.unlink()
        if sidecar.is_file():
            sidecar.unlink()
        rewritten += 1
    for shard in store.runs_dir.glob("*/"):
        try:
            shard.rmdir()
        except OSError:
            pass
    if store.manifest_path.is_file():
        manifest = json.loads(store.manifest_path.read_text(encoding="utf-8"))
        manifest["schema"] = 1
        _dump(store.manifest_path, manifest)
    return rewritten
