"""The ``index.jsonl`` summary index: append, tolerate, rebuild, equal.

The contract under test: the index is a *cache*.  Reports built through
it are identical to reports built by scanning artifacts; any torn,
missing, or stale row degrades to the artifact truth instead of
changing an answer.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.orchestrator import open_store
from repro.campaign.query import campaign_report, load_runs

from tests.campaign.conftest import fabricate_result


@pytest.fixture
def filled(tmp_path, spec):
    """A complete (fabricated) campaign store and its spec."""
    store = open_store(spec, tmp_path).ensure()
    store.pin_series_bin_width(0.05)
    store.write_manifest(spec.to_dict(), series_bin_width=0.05)
    for planned in spec.plan():
        store.write_result(
            fabricate_result(planned.config),
            point=planned.point, series_bin_width=0.05,
        )
    return store


class TestAppend:
    def test_write_result_appends_one_row_per_artifact(self, filled, spec):
        rows = filled.read_index()
        assert set(rows) == {run.run_id for run in spec.plan()}

    def test_rows_carry_the_summary_fields(self, filled, spec):
        planned = spec.plan()[0]
        row = filled.read_index()[planned.run_id]
        direct = filled.read_run(planned.run_id, load_series=False)
        via_index = filled.run_from_index_row(
            row, planned.config, planned.point
        )
        assert via_index.summary == direct.summary
        assert via_index.activation_time == direct.activation_time
        assert via_index.identified_atrs == direct.identified_atrs
        assert via_index.true_atrs == direct.true_atrs
        assert via_index.events_executed == direct.events_executed
        assert via_index.series_bin_width == direct.series_bin_width
        assert via_index.series.times == []  # summary-only by contract

    def test_duplicate_rows_last_wins(self, filled, spec):
        planned = spec.plan()[0]
        payload = json.loads(
            filled.run_path(planned.run_id).read_text(encoding="utf-8")
        )
        payload["events_executed"] = 999999
        filled.append_index_row(payload)
        assert filled.read_index()[planned.run_id]["events_executed"] \
            == 999999


class TestTolerance:
    def test_torn_trailing_line_is_skipped(self, filled):
        before = filled.read_index()
        with open(filled.index_path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "torn-wri')  # no newline: a crash
        assert filled.read_index() == before

    def test_append_after_torn_line_still_parses(self, filled, spec):
        """The leading-newline framing terminates a dead writer's
        fragment, so the next append survives it."""
        with open(filled.index_path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "torn-wri')
        planned = spec.plan()[0]
        payload = json.loads(
            filled.run_path(planned.run_id).read_text(encoding="utf-8")
        )
        payload["events_executed"] = 31337
        filled.append_index_row(payload)
        rows = filled.read_index()
        assert rows[planned.run_id]["events_executed"] == 31337
        assert "torn-wri" not in rows

    def test_missing_index_falls_back_to_scan(self, filled, spec, tmp_path):
        with_index = campaign_report(spec, tmp_path)
        filled.index_path.unlink()
        assert campaign_report(spec, tmp_path) == with_index

    def test_report_identical_via_index_and_via_scan(
        self, filled, spec, tmp_path
    ):
        via_index = campaign_report(spec, tmp_path)
        filled.index_path.unlink()
        via_scan = campaign_report(spec, tmp_path)
        assert json.dumps(via_index, sort_keys=True) \
            == json.dumps(via_scan, sort_keys=True)

    def test_stale_row_cannot_resurrect_a_deleted_run(
        self, filled, spec, tmp_path
    ):
        victim = spec.plan()[0]
        filled.run_path(victim.run_id).unlink()
        for sidecar in filled._existing_sidecars(
            filled.run_path(victim.run_id)
        ):
            sidecar.unlink()
        assert victim.run_id in filled.read_index()  # row still there
        runs = load_runs(spec, tmp_path, with_series=False)
        assert victim.run_id not in {run.run_id for run in runs}

    def test_older_row_shape_falls_back_to_artifact(
        self, filled, spec, tmp_path
    ):
        """A row missing fields (written by an older version) must not
        crash or mis-answer — the artifact is re-read instead."""
        planned = spec.plan()[0]
        rows = filled.read_index()
        rows[planned.run_id] = {"run_id": planned.run_id}  # shape-poor row
        filled.index_path.write_text(
            "".join(json.dumps(r) + "\n" for r in rows.values()),
            encoding="utf-8",
        )
        runs = load_runs(spec, tmp_path, with_series=False)
        assert {run.run_id for run in runs} \
            == {run.run_id for run in spec.plan()}


class TestRebuild:
    def test_rebuild_drops_stale_and_duplicate_rows(self, filled, spec):
        planned = spec.plan()[0]
        payload = json.loads(
            filled.run_path(planned.run_id).read_text(encoding="utf-8")
        )
        filled.append_index_row(payload)  # duplicate
        with open(filled.index_path, "a", encoding="utf-8") as handle:
            handle.write('\n{"run_id": "gone"}\n')  # stale
        n = filled.rebuild_index()
        assert n == len(spec.plan())
        text = filled.index_path.read_text(encoding="utf-8")
        assert text.count(planned.run_id) == 1
        assert "gone" not in text

    def test_migrate_rebuilds_the_index(self, filled, spec):
        filled.index_path.unlink()
        report = filled.migrate()
        assert report.index_rows == len(spec.plan())
        assert set(filled.read_index()) == {r.run_id for r in spec.plan()}

    def test_gc_apply_drops_pruned_rows(self, filled, spec, tmp_path):
        victim = spec.plan()[0]
        keep_ids = {r.run_id for r in spec.plan()} - {victim.run_id}
        filled.gc(keep_ids, apply=True)
        assert victim.run_id not in filled.read_index()
        assert set(filled.read_index()) == keep_ids
