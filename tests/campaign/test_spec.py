"""Tests for repro.campaign.spec: parsing, validation, planning."""

import json

import pytest

from repro.campaign.spec import AxisSpec, CampaignSpec, CampaignSpecError

from tests.campaign.conftest import tiny_spec

TOML_SPEC = """\
name = "pd-sweep"
preset = "paper-default"
seeds = [1, 2]

[base]
total_flows = 20
"mafic.renotice_interval" = 0.5

[base.topology_args]
n_ingress = 4

[[axes]]
field = "mafic.drop_probability"
values = [0.7, 0.9]

[[axes]]
field = "defense"
values = ["mafic", "proportional"]
"""


class TestLoading:
    def test_load_toml(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(TOML_SPEC)
        spec = CampaignSpec.load(path)
        assert spec.name == "pd-sweep"
        assert spec.preset == "paper-default"
        assert spec.seeds == (1, 2)
        assert spec.axes[0].field == "mafic.drop_probability"
        assert spec.base["topology_args"] == {"n_ingress": 4}

    def test_load_json(self, tmp_path):
        payload = {
            "name": "j",
            "seeds": [3],
            "axes": [{"field": "attack_fraction", "values": [0.2]}],
        }
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        spec = CampaignSpec.load(path)
        assert spec.name == "j"
        assert spec.axes == (AxisSpec(field="attack_fraction", values=(0.2,)),)

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: nope")
        with pytest.raises(CampaignSpecError, match="extension"):
            CampaignSpec.load(path)

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown spec keys"):
            CampaignSpec.from_dict({"name": "x", "sedes": [1]})

    def test_string_seeds_rejected(self):
        """'seeds': \"12\" must not silently plan seeds (1, 2)."""
        with pytest.raises(CampaignSpecError, match="array of ints"):
            CampaignSpec.from_dict({"name": "x", "seeds": "12"})

    def test_unknown_axis_key_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown axis keys"):
            CampaignSpec.from_dict({
                "name": "x",
                "axes": [{
                    "field": "attack_fraction", "values": [0.1],
                    "scale": "log",
                }],
            })

    def test_axis_missing_values_rejected(self):
        with pytest.raises(CampaignSpecError, match="'field' and 'values'"):
            CampaignSpec.from_dict(
                {"name": "x", "axes": [{"field": "attack_fraction"}]}
            )

    def test_to_dict_round_trips(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(TOML_SPEC)
        spec = CampaignSpec.load(path)
        assert CampaignSpec.from_dict(spec.to_dict()) == spec


class TestValidation:
    def test_empty_seeds_rejected(self):
        with pytest.raises(CampaignSpecError, match="seed"):
            CampaignSpec(name="x", seeds=())

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(CampaignSpecError, match="duplicate seeds"):
            CampaignSpec(name="x", seeds=(1, 1))

    def test_duplicate_axis_fields_rejected(self):
        with pytest.raises(CampaignSpecError, match="duplicate axis"):
            CampaignSpec(
                name="x",
                axes=(
                    AxisSpec("attack_fraction", (0.1,)),
                    AxisSpec("attack_fraction", (0.2,)),
                ),
            )

    def test_seed_axis_rejected(self):
        with pytest.raises(CampaignSpecError, match="'seeds'"):
            CampaignSpec(name="x", axes=(AxisSpec("seed", (1, 2)),))

    def test_empty_axis_values_rejected(self):
        with pytest.raises(CampaignSpecError, match="at least one value"):
            AxisSpec("attack_fraction", ())

    def test_pathy_names_rejected(self):
        with pytest.raises(CampaignSpecError, match="directory name"):
            CampaignSpec(name="a/b")

    def test_unknown_base_field_rejected(self):
        spec = CampaignSpec(name="x", base={"total_fows": 20})
        with pytest.raises(CampaignSpecError, match="total_fows"):
            spec.base_config()

    def test_unknown_axis_field_rejected(self):
        spec = CampaignSpec(
            name="x", axes=(AxisSpec("atack_fraction", (0.1,)),)
        )
        with pytest.raises(CampaignSpecError, match="atack_fraction"):
            spec.plan()

    def test_unknown_preset_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown preset"):
            CampaignSpec(name="x", preset="nope").base_config()

    def test_invalid_config_value_surfaces(self):
        spec = CampaignSpec(name="x", base={"total_flows": 0})
        with pytest.raises(ValueError):
            spec.plan()


class TestPlanning:
    def test_cross_product_times_seeds(self):
        spec = tiny_spec(
            seeds=(1, 2, 3),
            axes=[
                {"field": "attack_fraction", "values": (0.25, 0.5)},
                {"field": "mafic.drop_probability", "values": (0.7, 0.9)},
            ],
        )
        plan = spec.plan()
        assert len(plan) == 2 * 2 * 3
        # Last axis fastest, seeds innermost.
        assert [run.seed for run in plan[:3]] == [1, 2, 3]
        assert plan[0].point == {
            "attack_fraction": 0.25, "mafic.drop_probability": 0.7,
        }
        assert plan[3].point == {
            "attack_fraction": 0.25, "mafic.drop_probability": 0.9,
        }

    def test_axis_values_reach_the_config(self):
        spec = tiny_spec(
            axes=[
                {"field": "mafic.drop_probability", "values": (0.7,)},
                {"field": "topology_args.n_ingress", "values": (3,)},
            ]
        )
        config = spec.plan()[0].config
        assert config.mafic.drop_probability == 0.7
        assert config.topology_args == {"n_ingress": 3}

    def test_component_name_axis(self):
        spec = tiny_spec(
            axes=[{"field": "defense", "values": ("mafic", "proportional")}]
        )
        defenses = {run.config.defense for run in spec.plan()}
        assert defenses == {"mafic", "proportional"}

    def test_run_ids_are_config_hashes_and_unique(self):
        plan = tiny_spec(seeds=(1, 2, 3)).plan()
        ids = [run.run_id for run in plan]
        assert len(set(ids)) == len(ids)
        assert all(run.run_id == run.config.config_hash() for run in plan)

    def test_plan_is_deterministic(self):
        a = tiny_spec().plan()
        b = tiny_spec().plan()
        assert [run.run_id for run in a] == [run.run_id for run in b]

    def test_duplicate_cells_deduplicated(self):
        spec = tiny_spec(
            axes=[{"field": "attack_fraction", "values": (0.25, 0.25)}]
        )
        assert len(spec.plan()) == len(spec.seeds)

    def test_no_axes_means_seeds_only(self):
        plan = tiny_spec(axes=[]).plan()
        assert len(plan) == 2
        assert all(run.point == {} for run in plan)

    def test_component_table_clobber_rejected(self):
        """A bare 'mafic' axis (typo for 'mafic.drop_probability') must
        fail at plan time, not inside a worker mid-campaign."""
        spec = tiny_spec(axes=[{"field": "mafic", "values": (0.5,)}])
        with pytest.raises(CampaignSpecError, match="component table"):
            spec.plan()
        base_spec = tiny_spec(base={"mafic": 0.5})
        with pytest.raises(CampaignSpecError, match="component table"):
            base_spec.base_config()

    def test_dotted_key_inside_open_args_table(self):
        spec = tiny_spec(base={"topology_args": {"gen.sub": 1}})
        assert spec.base_config().topology_args == {"gen": {"sub": 1}}

    def test_base_does_not_leak_between_cells(self):
        spec = tiny_spec(
            axes=[{"field": "topology_args.n_ingress", "values": (3, 4)}]
        )
        plan = spec.plan()
        args = sorted(
            run.config.topology_args["n_ingress"] for run in plan
        )
        assert args == [3, 3, 4, 4]
