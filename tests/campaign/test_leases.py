"""Lease claim/expiry/race and failure-ledger edge cases (store level).

These tests drive :class:`CampaignStore`'s coordination primitives with
explicit ``now`` values — no sleeping, no subprocesses — including the
edge cases ISSUE 9 names: the expired-lease reclaim race (exactly one
artifact wins), heartbeat clock skew, and quarantine-then-retry.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.orchestrator import campaign_status, open_store
from repro.campaign.store import (
    DEFAULT_LEASE_TTL,
    MAX_FUTURE_SKEW,
    CampaignStore,
    Lease,
)

from tests.campaign.conftest import fabricate_result

RID = "ab" * 8  # any run_id-shaped string


@pytest.fixture
def store(tmp_path) -> CampaignStore:
    return CampaignStore(tmp_path / "camp").ensure()


class TestClaim:
    def test_fresh_claim_wins_and_persists(self, store):
        lease = store.try_claim(RID, "w0", now=100.0)
        assert lease is not None
        on_disk = store.read_lease(RID)
        assert on_disk is not None
        assert (on_disk.worker, on_disk.token) == ("w0", lease.token)

    def test_live_lease_blocks_second_claim(self, store):
        assert store.try_claim(RID, "w0", now=100.0) is not None
        assert store.try_claim(RID, "w1", now=100.0 + 1.0) is None

    def test_expired_lease_is_reclaimed(self, store):
        first = store.try_claim(RID, "w0", ttl=5.0, now=100.0)
        second = store.try_claim(RID, "w1", ttl=5.0, now=106.0)
        assert second is not None
        assert store.read_lease(RID).worker == "w1"
        # The dead claimant's handle no longer refreshes or releases.
        assert store.refresh_lease(first, now=107.0) is False
        store.release_lease(first)
        assert store.read_lease(RID).worker == "w1"

    def test_reclaim_race_exactly_one_holder(self, store):
        """Two workers race for the same expired lease: the read-back
        arbitration leaves exactly one holding a refreshable claim."""
        store.try_claim(RID, "w0", ttl=5.0, now=100.0)
        a = store.try_claim(RID, "w1", ttl=5.0, now=110.0)
        b = store.try_claim(RID, "w2", ttl=5.0, now=110.0)
        winners = [x for x in (a, b) if x is not None
                   and store.refresh_lease(x, now=110.5)]
        assert len(winners) == 1
        assert store.read_lease(RID).token == winners[0].token

    def test_reclaim_race_exactly_one_artifact(self, store, spec):
        """Even when BOTH racers think they won (the documented benign
        race), duplicate execution files exactly one artifact — runs
        are deterministic and the rename is atomic."""
        planned = spec.plan()[0]
        result = fabricate_result(planned.config)
        store.try_claim(planned.run_id, "w1", now=100.0)
        # Both workers execute the cell and write.
        store.write_result(result, point=planned.point, series_bin_width=0.05)
        store.write_result(result, point=planned.point, series_bin_width=0.05)
        paths = [p for p in store.runs_dir.rglob(f"{planned.run_id}.json")]
        assert len(paths) == 1
        run = store.read_run(planned.run_id)
        assert run.summary.accuracy == result.summary.accuracy

    def test_corrupt_lease_treated_as_claimable(self, store):
        store.leases_dir.mkdir(parents=True, exist_ok=True)
        store.lease_path(RID).write_text("{not json", encoding="utf-8")
        assert store.read_lease(RID) is None
        assert store.try_claim(RID, "w0", now=100.0) is not None

    def test_release_is_token_checked_and_idempotent(self, store):
        lease = store.try_claim(RID, "w0", now=100.0)
        store.release_lease(lease)
        assert store.read_lease(RID) is None
        store.release_lease(lease)  # second release: no-op, no raise


class TestClockSkew:
    def test_future_heartbeat_within_skew_is_honored(self):
        lease = Lease(
            run_id=RID, worker="w0", token="t", pid=1, host="h",
            acquired_at=0.0, heartbeat_at=100.0 + MAX_FUTURE_SKEW - 1.0,
            ttl=DEFAULT_LEASE_TTL,
        )
        assert not lease.expired(now=100.0)

    def test_absurdly_future_heartbeat_is_stale(self):
        lease = Lease(
            run_id=RID, worker="w0", token="t", pid=1, host="h",
            acquired_at=0.0, heartbeat_at=100.0 + MAX_FUTURE_SKEW + 1.0,
            ttl=DEFAULT_LEASE_TTL,
        )
        assert lease.expired(now=100.0)

    def test_skewed_lease_is_reclaimable(self, store):
        lease = store.try_claim(RID, "w0", ttl=5.0, now=100.0)
        lease.heartbeat_at = 100.0 + MAX_FUTURE_SKEW + 60.0
        store.refresh_lease(lease, now=lease.heartbeat_at)
        assert store.try_claim(RID, "w1", ttl=5.0, now=100.0) is not None

    def test_heartbeat_refresh_keeps_lease_live(self, store):
        lease = store.try_claim(RID, "w0", ttl=5.0, now=100.0)
        for now in (104.0, 108.0, 112.0):
            assert store.refresh_lease(lease, now=now) is True
            assert store.try_claim(RID, "w1", ttl=5.0, now=now + 1.0) is None


class TestFailureLedger:
    def test_backoff_grows_exponentially_until_quarantine(self, store):
        r1 = store.record_failure(RID, "w0", "boom", max_attempts=3,
                                  backoff_base=0.5, now=100.0)
        r2 = store.record_failure(RID, "w0", "boom", max_attempts=3,
                                  backoff_base=0.5, now=101.0)
        r3 = store.record_failure(RID, "w0", "boom", max_attempts=3,
                                  backoff_base=0.5, now=102.0)
        assert (r1.attempts, r2.attempts, r3.attempts) == (1, 2, 3)
        assert r1.next_retry_at == pytest.approx(100.5)
        assert r2.next_retry_at == pytest.approx(102.0)
        assert (r1.quarantined, r2.quarantined, r3.quarantined) == (
            False, False, True,
        )
        assert not r3.retryable(now=1e9)  # quarantine never self-expires

    def test_backoff_is_capped(self, store):
        record = None
        for i in range(12):
            record = store.record_failure(
                RID, "w0", "boom", max_attempts=99,
                backoff_base=0.5, backoff_cap=4.0, now=100.0,
            )
        assert record.next_retry_at == pytest.approx(104.0)

    def test_retryable_respects_backoff_window(self, store):
        record = store.record_failure(RID, "w0", "boom", backoff_base=2.0,
                                      now=100.0)
        assert not record.retryable(now=101.0)
        assert record.retryable(now=102.5)

    def test_traceback_travels_with_the_record(self, store):
        store.record_failure(RID, "w0", "ValueError: boom",
                             "Traceback (most recent call last): ...",
                             now=100.0)
        record = store.read_failure(RID)
        assert "Traceback" in record.traceback
        payload = json.loads(
            store.failure_path(RID).read_text(encoding="utf-8")
        )
        assert payload["error"] == "ValueError: boom"

    def test_successful_write_clears_the_record(self, store, spec):
        planned = spec.plan()[0]
        store.record_failure(planned.run_id, "w0", "boom", now=100.0)
        store.write_result(
            fabricate_result(planned.config),
            point=planned.point, series_bin_width=0.05,
        )
        assert store.read_failure(planned.run_id) is None

    def test_clear_failures_resets_quarantine(self, store):
        for _ in range(3):
            store.record_failure(RID, "w0", "boom", max_attempts=3, now=100.0)
        assert store.quarantined_ids() == {RID}
        assert store.clear_failures() == 1
        assert store.quarantined_ids() == set()
        assert store.iter_failures() == []


class TestStatusAndGc:
    def test_status_counts_quarantined_cells(self, tmp_path, spec):
        store = open_store(spec, tmp_path).ensure()
        target = spec.plan()[0]
        for _ in range(3):
            store.record_failure(target.run_id, "w0", "boom",
                                 max_attempts=3, now=100.0)
        status = campaign_status(spec, tmp_path)
        assert status.quarantined == 1
        assert not status.is_complete

    def test_gc_prunes_stale_leases_and_resolved_failures(
        self, tmp_path, spec
    ):
        store = open_store(spec, tmp_path).ensure()
        done, pending = spec.plan()[0], spec.plan()[1]
        # A lease + failure record left behind by a worker that died
        # right after writing its artifact.
        store.try_claim(done.run_id, "w0")
        store.record_failure(done.run_id, "w0", "flake", now=0.0)
        store.write_result(
            fabricate_result(done.config),
            point=done.point, series_bin_width=0.05,
        )
        store.record_failure(done.run_id, "w0", "flake", now=0.0)
        # A live lease and a quarantined record for unfinished cells.
        store.try_claim(pending.run_id, "w1")
        other = spec.plan()[2]
        for _ in range(3):
            store.record_failure(other.run_id, "w1", "boom",
                                 max_attempts=3, now=0.0)
        planned_ids = {run.run_id for run in spec.plan()}
        report = store.gc(planned_ids, apply=True)
        assert store.lease_path(done.run_id) in report.stale_leases
        assert store.failure_path(done.run_id) in report.resolved_failures
        assert store.read_lease(done.run_id) is None
        # The live lease and the unresolved quarantine record survive.
        assert store.read_lease(pending.run_id) is not None
        assert store.read_failure(other.run_id).quarantined
