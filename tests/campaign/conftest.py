"""Shared fixtures for the campaign tests: tiny, fast grids."""

from __future__ import annotations

import pytest

from repro.campaign.spec import CampaignSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.metrics.rates import MetricsSummary
from repro.metrics.timeseries import BandwidthSeries

#: Small enough that one run takes a fraction of a second.
TINY_BASE = {
    "total_flows": 8,
    "n_routers": 6,
    "duration": 1.4,
    "attack_start": 1.05,
    "topology": "star",
}


def tiny_spec(name: str = "tiny", seeds=(1, 2), axes=None, base=None) -> CampaignSpec:
    """A 2-seed campaign over small axes (4 runs by default)."""
    merged = dict(TINY_BASE)
    merged.update(base or {})
    return CampaignSpec(
        name=name,
        seeds=tuple(seeds),
        base=merged,
        axes=tuple(
            axes
            if axes is not None
            else [{"field": "attack_fraction", "values": (0.25, 0.5)}]
        ),
    )


def fabricate_result(config: ExperimentConfig) -> ExperimentResult:
    """A deterministic fake result for store/query tests (no simulation).

    Metric values are simple functions of the config so assertions can
    predict aggregates exactly.
    """
    seed = config.seed
    summary = MetricsSummary(
        accuracy=0.90 + 0.01 * seed,
        traffic_reduction=0.80,
        false_positive_rate=0.0,
        false_negative_rate=0.10 - 0.01 * seed,
        legit_drop_rate=0.02 * seed,
        attack_examined=100 * seed,
        attack_dropped=90 * seed,
        wellbehaved_examined=50,
        wellbehaved_dropped=1,
        wellbehaved_pdt_drops=1,
        total_examined=100 * seed + 50,
        victim_rate_before_bps=1e6,
        victim_rate_after_bps=2e5,
    )
    series = BandwidthSeries(
        times=[0.5, 1.5],
        total_kbps=[100.0, 40.0 + seed],
        attack_kbps=[60.0, 10.0],
        legit_kbps=[40.0, 30.0 + seed],
    )
    return ExperimentResult(
        config=config,
        summary=summary,
        series=series,
        scenario=None,
        activation_time=1.25,
        identified_atrs={"ingress0"},
        true_atrs={"ingress0", "ingress1"},
        events_executed=1000 + seed,
        wall_seconds=0.123,
    )


@pytest.fixture
def spec() -> CampaignSpec:
    return tiny_spec()
