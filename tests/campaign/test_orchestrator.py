"""Tests for repro.campaign.orchestrator: execution, resume, determinism.

The acceptance property for the subsystem lives here: a campaign killed
mid-grid and resumed produces per-run summaries and aggregated exports
bit-identical to one uninterrupted execution, and resuming a complete
campaign executes zero runs.
"""

import json

import pytest

from repro.campaign.orchestrator import campaign_status, open_store, run_campaign
from repro.campaign.query import campaign_report

from tests.campaign.conftest import tiny_spec


class TestRunCampaign:
    def test_executes_the_whole_plan(self, tmp_path, spec):
        report = run_campaign(spec, root=tmp_path, jobs=1)
        assert report.planned == 4
        assert report.executed == 4
        assert report.cached == 0
        assert report.complete
        store = open_store(spec, tmp_path)
        assert store.run_ids() == {run.run_id for run in spec.plan()}
        assert store.read_manifest() == spec.to_dict()

    def test_artifacts_carry_axis_points(self, tmp_path, spec):
        run_campaign(spec, root=tmp_path, jobs=1)
        store = open_store(spec, tmp_path)
        points = [run.point for run in store.iter_runs()]
        assert {p["attack_fraction"] for p in points} == {0.25, 0.5}

    def test_max_runs_caps_new_executions(self, tmp_path, spec):
        report = run_campaign(spec, root=tmp_path, jobs=1, max_runs=3)
        assert report.executed == 3
        assert not report.complete
        status = campaign_status(spec, tmp_path)
        assert status.complete == 3
        assert len(status.missing) == 1

    def test_progress_callback_sees_waves(self, tmp_path, spec):
        seen = []
        run_campaign(
            spec, root=tmp_path, jobs=1, wave_size=1,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_bad_max_runs_rejected(self, tmp_path, spec):
        with pytest.raises(ValueError, match="max_runs"):
            run_campaign(spec, root=tmp_path, jobs=1, max_runs=-1)

    def test_resume_at_other_bin_width_rejected(self, tmp_path, spec):
        """The manifest pins series_bin_width: a mismatched resume would
        mix time resolutions across artifacts, so it refuses."""
        from repro.campaign.store import StoreError

        run_campaign(spec, root=tmp_path, jobs=1, max_runs=1)
        with pytest.raises(StoreError, match="bin width"):
            run_campaign(spec, root=tmp_path, jobs=1, series_bin_width=0.2)
        # The recorded width resumes fine.
        assert run_campaign(spec, root=tmp_path, jobs=1).complete


class TestResumeDeterminism:
    def test_interrupted_resume_is_bit_identical(self, tmp_path):
        """Kill mid-grid, resume, compare against one uninterrupted pass."""
        spec = tiny_spec(name="interrupted")

        # Reference: a single uninterrupted execution in its own root.
        ref_root = tmp_path / "ref"
        run_campaign(spec, root=ref_root, jobs=1)

        # Interrupted: stop after 2 of 4 runs, then resume.
        cut_root = tmp_path / "cut"
        first = run_campaign(spec, root=cut_root, jobs=1, max_runs=2)
        assert (first.executed, first.complete) == (2, False)
        second = run_campaign(spec, root=cut_root, jobs=1)
        assert second.cached == 2
        assert second.executed == 2
        assert second.complete

        ref_store = open_store(spec, ref_root)
        cut_store = open_store(spec, cut_root)
        for planned in spec.plan():
            ref_artifact = ref_store.run_path(planned.run_id).read_text()
            cut_artifact = cut_store.run_path(planned.run_id).read_text()
            # Whole artifacts match bit-for-bit outside wall-clock timing.
            ref_payload = json.loads(ref_artifact)
            cut_payload = json.loads(cut_artifact)
            del ref_payload["timing"], cut_payload["timing"]
            assert ref_payload == cut_payload

        # Aggregated exports are byte-identical.
        ref_report = json.dumps(campaign_report(spec, ref_root), sort_keys=True)
        cut_report = json.dumps(campaign_report(spec, cut_root), sort_keys=True)
        assert ref_report == cut_report

    def test_resume_after_artifact_loss(self, tmp_path, spec):
        run_campaign(spec, root=tmp_path, jobs=1)
        store = open_store(spec, tmp_path)
        before = campaign_report(spec, tmp_path)

        # Lose half the artifacts (every other planned run).
        victims = [run.run_id for run in spec.plan()[::2]]
        for run_id in victims:
            store.run_path(run_id).unlink()
        assert not campaign_status(spec, tmp_path).is_complete

        report = run_campaign(spec, root=tmp_path, jobs=1)
        assert report.cached == 2
        assert report.executed == 2
        assert campaign_report(spec, tmp_path) == before

    def test_second_resume_executes_zero_runs(self, tmp_path, spec):
        run_campaign(spec, root=tmp_path, jobs=1)
        again = run_campaign(spec, root=tmp_path, jobs=1)
        assert again.executed == 0
        assert again.cached == again.planned == 4
        assert again.complete


class TestIncrementalExtension:
    def test_added_seeds_run_only_the_new_cells(self, tmp_path):
        small = tiny_spec(name="grow", seeds=(1, 2))
        run_campaign(small, root=tmp_path, jobs=1)

        grown = tiny_spec(name="grow", seeds=(1, 2, 3))
        report = run_campaign(grown, root=tmp_path, jobs=1)
        assert report.planned == 6
        assert report.cached == 4
        assert report.executed == 2

    def test_added_axis_point_runs_only_the_new_cells(self, tmp_path):
        base = tiny_spec(name="grow-axis")
        run_campaign(base, root=tmp_path, jobs=1)

        wider = tiny_spec(
            name="grow-axis",
            axes=[{"field": "attack_fraction", "values": (0.25, 0.5, 0.75)}],
        )
        report = run_campaign(wider, root=tmp_path, jobs=1)
        assert report.cached == 4
        assert report.executed == 2
        # The narrower spec still reads its subset cleanly.
        assert campaign_status(base, tmp_path).is_complete
        assert campaign_status(base, tmp_path).unplanned == 2


class TestStatus:
    def test_empty_store(self, tmp_path, spec):
        status = campaign_status(spec, tmp_path)
        assert status.planned == 4
        assert status.complete == 0
        assert len(status.missing) == 4
        assert not status.is_complete


class TestObservability:
    def test_bus_receives_run_and_progress_events(self, tmp_path, spec):
        from repro.obs import BufferedSink, EventBus

        bus = EventBus()
        sink = bus.subscribe(BufferedSink())
        report = run_campaign(
            spec, root=tmp_path, jobs=1, wave_size=2, bus=bus
        )
        assert report.executed == 4

        runs = sink.of_kind("campaign.run")
        assert len(runs) == 4
        assert {e.run_id for e in runs} == {r.run_id for r in spec.plan()}
        assert all(e.wall_seconds > 0 for e in runs)
        assert {e.point["attack_fraction"] for e in runs} == {0.25, 0.5}

        progress = sink.of_kind("campaign.progress")
        assert [(e.done, e.total) for e in progress] == [(2, 4), (4, 4)]
        assert all(e.name == spec.name for e in progress)

    def test_cached_cells_emit_nothing(self, tmp_path, spec):
        from repro.obs import BufferedSink, EventBus

        run_campaign(spec, root=tmp_path, jobs=1)
        bus = EventBus()
        sink = bus.subscribe(BufferedSink())
        report = run_campaign(spec, root=tmp_path, jobs=1, bus=bus)
        assert report.executed == 0
        assert sink.of_kind("campaign.run") == []

    def test_interrupt_mid_grid_keeps_filed_waves(self, tmp_path, spec,
                                                  monkeypatch):
        """Ctrl-C between waves: no exception escapes, the report says
        interrupted, and the filed artifacts resume cleanly."""
        import repro.campaign.orchestrator as orchestrator

        calls = {"n": 0}
        real_run_batch = orchestrator.run_batch

        def interrupting_run_batch(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise KeyboardInterrupt
            return real_run_batch(*args, **kwargs)

        monkeypatch.setattr(
            orchestrator, "run_batch", interrupting_run_batch
        )
        report = run_campaign(spec, root=tmp_path, jobs=1, wave_size=2)
        assert report.interrupted
        assert report.executed == 2
        assert not report.complete

        monkeypatch.setattr(orchestrator, "run_batch", real_run_batch)
        resumed = run_campaign(spec, root=tmp_path, jobs=1)
        assert not resumed.interrupted
        assert resumed.complete
        assert resumed.executed == 2

    def test_profile_path_profiles_exactly_one_cell(self, tmp_path, spec):
        out = tmp_path / "cell.prof"
        report = run_campaign(
            spec, root=tmp_path / "store",
            profile_path=str(out),
        )
        assert report.executed == 1
        assert report.jobs == 1
        assert out.exists() and out.stat().st_size > 0
        # The profiled artifact is a normal artifact: resume skips it.
        resumed = run_campaign(spec, root=tmp_path / "store", jobs=1)
        assert resumed.cached == 1
        assert resumed.executed == 3
        assert resumed.complete
