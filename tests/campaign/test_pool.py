"""Worker-pull execution: ``run_worker``, ``run_pool``, equivalence.

The tentpole contract: distributed execution produces the *same store*
serial execution does.  Fast paths monkeypatch ``run_experiment`` or
stay in-process; only a handful of tests pay for real subprocess
workers on the 4-cell tiny grid.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
import time

import pytest

import repro.experiments.runner as runner_module
from repro.campaign.diff import diff_stores
from repro.campaign.orchestrator import open_store, run_campaign
from repro.campaign.pool import run_distributed, run_pool
from repro.campaign.store import CampaignStore, StoreError
from repro.campaign.worker import (
    EXIT_CELL_TIMEOUT,
    EXIT_DRAINED_QUARANTINE,
    run_worker,
)
from repro.obs.bus import CallbackSink, EventBus

from tests.campaign.conftest import fabricate_result


def _prepared(spec, root) -> CampaignStore:
    """An empty store with the manifest a worker needs to self-plan."""
    store = open_store(spec, root).ensure()
    store.pin_series_bin_width(0.05)
    store.write_manifest(spec.to_dict(), series_bin_width=0.05)
    return store


def _fabricating(monkeypatch, delay: float = 0.0, fail=None):
    """Swap the simulation for a fabricated result (optionally failing).

    ``fail`` maps seed -> how many times that cell raises before it
    succeeds.  Workers import ``run_experiment`` at call time, so the
    module-attribute patch reaches them.
    """
    attempts: dict[int, int] = {}

    def fake_run_experiment(config, series_bin_width=0.05, bus=None,
                            **kwargs):
        if delay:
            time.sleep(delay)
        if fail:
            budget = fail.get(config.seed, 0)
            used = attempts.get(config.seed, 0)
            if used < budget:
                attempts[config.seed] = used + 1
                raise RuntimeError(f"injected fault #{used + 1}")
        return fabricate_result(config)

    monkeypatch.setattr(runner_module, "run_experiment", fake_run_experiment)
    return attempts


class TestRunWorker:
    def test_drains_the_whole_plan(self, tmp_path, spec, monkeypatch):
        _fabricating(monkeypatch)
        store = _prepared(spec, tmp_path)
        report = run_worker(store.directory, worker="w0")
        assert report.executed == len(spec.plan())
        assert report.remaining == 0
        assert report.exit_code == 0
        assert {r.run_id for r in spec.plan()} <= store.run_ids()
        assert store.iter_leases() == []  # every claim released

    def test_store_matches_serial_execution(self, tmp_path, spec):
        """The acceptance criterion at its smallest: a worker-pull store
        diffs identical against ``run_campaign``'s (real simulations on
        both sides — the serial path binds ``run_experiment`` at import,
        so fabrication cannot stand in here)."""
        serial = run_campaign(spec, tmp_path / "serial", jobs=1)
        assert serial.complete
        store = _prepared(spec, tmp_path / "pull")
        run_worker(store.directory, worker="w0")
        result = diff_stores(
            open_store(spec, tmp_path / "serial").directory, store.directory
        )
        assert result.identical, result.differing

    def test_resumes_a_partial_store(self, tmp_path, spec, monkeypatch):
        _fabricating(monkeypatch)
        store = _prepared(spec, tmp_path)
        done = spec.plan()[0]
        store.write_result(
            fabricate_result(done.config),
            point=done.point, series_bin_width=0.05,
        )
        report = run_worker(store.directory, worker="w0")
        assert report.executed == len(spec.plan()) - 1

    def test_max_cells_stops_early(self, tmp_path, spec, monkeypatch):
        _fabricating(monkeypatch)
        store = _prepared(spec, tmp_path)
        report = run_worker(store.directory, worker="w0", max_cells=2)
        assert report.executed == 2
        assert report.remaining == len(spec.plan()) - 2

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(StoreError, match="no campaign store"):
            run_worker(tmp_path / "nope")


class TestFailures:
    def test_flaky_cell_retries_after_backoff(
        self, tmp_path, spec, monkeypatch
    ):
        attempts = _fabricating(monkeypatch, fail={1: 1})
        store = _prepared(spec, tmp_path)
        report = run_worker(store.directory, worker="w0")
        assert report.executed == len(spec.plan())
        assert report.failed == 1  # the injected fault fired exactly once
        assert attempts == {1: 1}
        assert report.remaining == 0
        assert store.iter_failures() == []  # success cleared the ledger

    def test_persistent_failure_quarantines_with_traceback(
        self, tmp_path, spec, monkeypatch, capsys
    ):
        _fabricating(monkeypatch, fail={1: 99})
        store = _prepared(spec, tmp_path)
        report = run_worker(
            store.directory, worker="w0", max_attempts=1
        )
        assert report.exit_code == EXIT_DRAINED_QUARANTINE
        assert report.quarantined == 2 == report.remaining
        quarantined = store.quarantined_ids()
        assert len(quarantined) == 2
        for run_id in quarantined:
            record = store.read_failure(run_id)
            assert record.quarantined
            assert "injected fault" in record.error
            assert "RuntimeError" in record.traceback
        assert "quarantined" in capsys.readouterr().err

    def test_quarantine_clears_and_reruns(
        self, tmp_path, spec, monkeypatch
    ):
        """The ``resume --retry-failed`` path: clear the ledger, pull
        again, converge."""
        faults = {run.seed: 99 for run in spec.plan()}
        _fabricating(monkeypatch, fail=faults)
        store = _prepared(spec, tmp_path)
        report = run_worker(store.directory, worker="w0", max_attempts=1)
        assert report.executed == 0
        assert report.quarantined == len(spec.plan())
        faults.clear()  # the transient condition passes
        assert store.clear_failures() == len(spec.plan())
        report = run_worker(store.directory, worker="w0", max_attempts=1)
        assert report.executed == len(spec.plan())
        assert report.exit_code == 0


class TestEvents:
    def test_worker_lifecycle_events(self, tmp_path, spec, monkeypatch):
        _fabricating(monkeypatch, delay=0.25)
        store = _prepared(spec, tmp_path)
        kinds: list[str] = []
        by_kind: dict[str, list] = {}
        bus = EventBus()
        bus.subscribe(CallbackSink(
            lambda e: (kinds.append(e.kind),
                       by_kind.setdefault(e.kind, []).append(e))
        ))
        run_worker(
            store.directory, worker="w0", lease_ttl=0.3,
            max_cells=1, bus=bus,
        )
        assert kinds[0] == "worker.started"
        started = by_kind["worker.started"][0]
        assert started.worker == "w0"
        assert started.cells == len(spec.plan())
        assert by_kind["worker.heartbeat"], "watchdog never heartbeat"
        beat = by_kind["worker.heartbeat"][0]
        assert beat.worker == "w0" and beat.elapsed > 0
        assert len(by_kind["campaign.run"]) == 1


class TestPool:
    def test_pool_completes_and_matches_serial(
        self, tmp_path, spec, monkeypatch
    ):
        """Two real subprocess workers drain the tiny grid; the store
        byte-matches the serial one (real simulations both sides)."""
        serial = run_campaign(spec, tmp_path / "serial", jobs=1)
        assert serial.complete
        store = _prepared(spec, tmp_path / "pool")
        report = run_pool(store.directory, jobs=2, lease_ttl=5.0)
        assert report.complete, report.exits
        assert report.executed == len(spec.plan())
        assert report.deaths == 0
        assert {e.reason for e in report.exits} == {"drained"}
        result = diff_stores(
            open_store(spec, tmp_path / "serial").directory, store.directory
        )
        assert result.identical, result.differing

    def test_pool_short_circuits_a_complete_store(
        self, tmp_path, spec, monkeypatch
    ):
        _fabricating(monkeypatch)
        store = _prepared(spec, tmp_path)
        run_worker(store.directory, worker="w0")
        report = run_pool(store.directory, jobs=2)
        assert report.complete
        assert report.cached == len(spec.plan())
        assert report.executed == 0
        assert report.exits == []  # nothing was spawned

    def test_run_distributed_returns_campaign_report(self, tmp_path, spec):
        report = run_distributed(spec, tmp_path, jobs=1, lease_ttl=5.0)
        assert report.name == spec.name
        assert report.complete
        assert report.planned == len(spec.plan())
        assert report.quarantined == 0 and report.deaths == 0
        # And a second invocation is all cache.
        again = run_distributed(spec, tmp_path, jobs=1)
        assert again.cached == len(spec.plan())
        assert again.executed == 0


class TestCellTimeout:
    def test_wedged_cell_exits_75_and_charges_the_ledger(
        self, tmp_path, spec
    ):
        """A subprocess (the watchdog ``os._exit``\\ s the whole
        process) wedges its first cell; it must die with
        :data:`EXIT_CELL_TIMEOUT` *after* filing the failure."""
        store = _prepared(spec, tmp_path)
        script = textwrap.dedent(
            """
            import sys, time
            import repro.experiments.runner as runner

            def wedged(config, **kwargs):
                time.sleep(120)

            runner.run_experiment = wedged
            from repro.campaign.worker import main
            sys.exit(main([
                sys.argv[1], "--worker", "w0",
                "--lease-ttl", "0.6", "--cell-timeout", "0.5",
            ]))
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(store.directory)],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == EXIT_CELL_TIMEOUT, proc.stderr
        assert "timed out" in proc.stderr
        failures = store.iter_failures()
        assert len(failures) == 1
        assert "cell timeout" in failures[0].error
        assert not failures[0].quarantined  # one attempt of three
        # The lease was released before the exit: the cell is
        # immediately reclaimable by a replacement.
        assert store.iter_leases() == []
