"""Gzip series sidecars: flag-directed writes, magic-byte reads.

The contract: ``compress_series`` in the manifest only changes how new
sidecars are *written*.  Reading always sniffs the gzip magic bytes —
never the suffix — so mixed stores (migrated mid-campaign), renamed
files, and cross-compression diffs all behave.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.diff import diff_stores
from repro.campaign.orchestrator import open_store
from repro.campaign.store import (
    SERIES_GZ_SUFFIX,
    SERIES_SUFFIX,
    CampaignStore,
    StoreError,
)

from tests.campaign.conftest import fabricate_result


def _fill(spec, root, compress: bool) -> CampaignStore:
    store = open_store(spec, root).ensure()
    store.pin_series_bin_width(0.05)
    store.write_manifest(
        spec.to_dict(), series_bin_width=0.05, compress_series=compress
    )
    for planned in spec.plan():
        store.write_result(
            fabricate_result(planned.config),
            point=planned.point, series_bin_width=0.05,
        )
    return store


class TestWrites:
    def test_flag_directs_sidecars_to_gz(self, tmp_path, spec):
        store = _fill(spec, tmp_path, compress=True)
        planned = spec.plan()[0]
        run_path = store.run_path(planned.run_id)
        gz = run_path.with_name(run_path.stem + SERIES_GZ_SUFFIX)
        plain = run_path.with_name(run_path.stem + SERIES_SUFFIX)
        assert gz.is_file() and not plain.exists()
        assert gz.read_bytes()[:2] == b"\x1f\x8b"

    def test_default_is_plain_json(self, tmp_path, spec):
        store = _fill(spec, tmp_path, compress=False)
        planned = spec.plan()[0]
        run_path = store.run_path(planned.run_id)
        plain = run_path.with_name(run_path.stem + SERIES_SUFFIX)
        assert plain.is_file()
        json.loads(plain.read_text(encoding="utf-8"))  # genuinely plain

    def test_flag_persists_in_manifest(self, tmp_path, spec):
        _fill(spec, tmp_path, compress=True)
        reopened = open_store(spec, tmp_path)
        assert reopened.compress_series() is True

    def test_rewriting_manifest_preserves_flag_by_default(
        self, tmp_path, spec
    ):
        store = _fill(spec, tmp_path, compress=True)
        store.write_manifest(spec.to_dict(), series_bin_width=0.05)
        assert open_store(spec, tmp_path).compress_series() is True

    def test_gz_bytes_are_deterministic(self, tmp_path, spec):
        """Same result twice -> byte-identical sidecars (mtime=0 in the
        gzip header), which is what lets ``campaign diff`` and the CI
        chaos job byte-compare compressed stores."""
        planned = spec.plan()[0]
        a = _fill(spec, tmp_path / "a", compress=True)
        b = _fill(spec, tmp_path / "b", compress=True)
        run_path = a.run_path(planned.run_id)
        gz_name = run_path.stem + SERIES_GZ_SUFFIX
        bytes_a = run_path.with_name(gz_name).read_bytes()
        bytes_b = b.run_path(planned.run_id).with_name(gz_name).read_bytes()
        assert bytes_a == bytes_b


class TestReads:
    def test_compressed_run_round_trips(self, tmp_path, spec):
        store = _fill(spec, tmp_path, compress=True)
        planned = spec.plan()[0]
        expected = fabricate_result(planned.config)
        run = store.read_run(planned.run_id)
        assert run.series.times == expected.series.times
        assert run.series.legit_kbps == expected.series.legit_kbps

    def test_renamed_sidecar_still_reads(self, tmp_path, spec):
        """Sniffing means a gz sidecar that lost its ``.gz`` name (say,
        via a copy tool) still reads correctly."""
        store = _fill(spec, tmp_path, compress=True)
        planned = spec.plan()[0]
        run_path = store.run_path(planned.run_id)
        gz = run_path.with_name(run_path.stem + SERIES_GZ_SUFFIX)
        plain = run_path.with_name(run_path.stem + SERIES_SUFFIX)
        gz.rename(plain)
        run = store.read_run(planned.run_id)
        assert run.series.times == fabricate_result(
            planned.config
        ).series.times

    def test_plain_sidecar_readable_after_flag_flips_on(
        self, tmp_path, spec
    ):
        """Migrating a store to compression must not orphan the plain
        sidecars already on disk."""
        store = _fill(spec, tmp_path, compress=False)
        store.write_manifest(
            spec.to_dict(), series_bin_width=0.05, compress_series=True
        )
        planned = spec.plan()[0]
        run = store.read_run(planned.run_id)
        assert run.series.times == fabricate_result(
            planned.config
        ).series.times

    def test_corrupt_gz_raises_cleanly(self, tmp_path, spec):
        store = _fill(spec, tmp_path, compress=True)
        planned = spec.plan()[0]
        run_path = store.run_path(planned.run_id)
        gz = run_path.with_name(run_path.stem + SERIES_GZ_SUFFIX)
        gz.write_bytes(b"\x1f\x8b" + b"\x00" * 8)  # magic, then garbage
        with pytest.raises(StoreError, match="corrupt sidecar"):
            store.read_run(planned.run_id)


class TestCrossCompression:
    def test_diff_is_clean_across_compression_settings(self, tmp_path, spec):
        """The same campaign stored plain and gz diffs identical — the
        series bytes differ but the decoded artifacts do not."""
        _fill(spec, tmp_path / "plain", compress=False)
        _fill(spec, tmp_path / "gz", compress=True)
        result = diff_stores(
            open_store(spec, tmp_path / "plain").directory,
            open_store(spec, tmp_path / "gz").directory,
        )
        assert result.identical, (
            result.missing_in_a, result.missing_in_b, result.differing
        )

    def test_gc_collects_orphan_gz_sidecars(self, tmp_path, spec):
        store = _fill(spec, tmp_path, compress=True)
        victim = spec.plan()[0]
        store.run_path(victim.run_id).unlink()
        planned_ids = {run.run_id for run in spec.plan()}
        # A negative debris age pushes the cutoff into the future so the
        # just-written orphan counts as settled.
        report = store.gc(
            planned_ids, apply=True, min_debris_age_seconds=-5.0
        )
        run_path = store.run_path(victim.run_id)
        gz = run_path.with_name(run_path.stem + SERIES_GZ_SUFFIX)
        assert gz in report.orphan_sidecars
        assert not gz.exists()
