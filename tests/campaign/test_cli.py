"""Tests for ``python -m repro campaign ...`` through the real CLI main."""

import json

import pytest

from repro.experiments.cli import main

SPEC_TOML = """\
name = "cli-tiny"
seeds = [1]

[base]
total_flows = 8
n_routers = 6
duration = 1.4
attack_start = 1.05
topology = "star"

[[axes]]
field = "attack_fraction"
values = [0.5]
"""


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.toml"
    path.write_text(SPEC_TOML)
    return path


def test_status_incomplete_exits_nonzero(tmp_path, spec_path, capsys):
    code = main(
        ["campaign", "status", str(spec_path), "--root", str(tmp_path / "s")]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "0/1 runs complete" in out
    assert "missing" in out


def test_run_then_status_and_report(tmp_path, spec_path, capsys):
    root = str(tmp_path / "s")
    assert main(["campaign", "run", str(spec_path), "--root", root,
                 "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "1 planned, 0 cached, 1 executed" in out

    assert main(["campaign", "status", str(spec_path), "--root", root]) == 0

    json_out = tmp_path / "report.json"
    csv_out = tmp_path / "report.csv"
    assert main(["campaign", "report", str(spec_path), "--root", root,
                 "--json", str(json_out), "--csv", str(csv_out)]) == 0
    payload = json.loads(json_out.read_text())
    assert payload["campaign"] == "cli-tiny"
    assert payload["complete"] == 1
    assert csv_out.read_text().splitlines()[0].startswith("attack_fraction")

    # Re-run: everything cached.
    assert main(["campaign", "run", str(spec_path), "--root", root,
                 "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "1 cached, 0 executed" in out


def test_resume_requires_existing_store(tmp_path, spec_path, capsys):
    code = main(
        ["campaign", "resume", str(spec_path), "--root", str(tmp_path / "no")]
    )
    assert code == 2
    assert "no store" in capsys.readouterr().err


def test_report_without_runs_fails(tmp_path, spec_path, capsys):
    code = main(
        ["campaign", "report", str(spec_path), "--root", str(tmp_path / "no")]
    )
    assert code == 1
    assert "no completed runs" in capsys.readouterr().err


def test_corrupt_artifact_reports_cleanly(tmp_path, spec_path, capsys):
    """A torn/hand-edited artifact gets the 'error:' contract, not a
    traceback."""
    root = str(tmp_path / "s")
    assert main(["campaign", "run", str(spec_path), "--root", root,
                 "--jobs", "1"]) == 0
    capsys.readouterr()
    artifact = next((tmp_path / "s" / "cli-tiny" / "runs").glob("*.json"))
    artifact.write_text("{torn")
    code = main(["campaign", "report", str(spec_path), "--root", root])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_broken_spec_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text('name = "x"\nseeds = []\n')
    assert main(["campaign", "run", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_scalar_seeds_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"name": "x", "seeds": 5}')
    assert main(["campaign", "run", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_unknown_component_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text(
        'name = "x"\nseeds = [1]\n\n[base]\ntopology = "moebius"\n'
    )
    code = main(["campaign", "status", str(bad),
                 "--root", str(tmp_path / "s")])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "moebius" in err


def test_unknown_builder_arg_exits_2(tmp_path, capsys):
    bad = tmp_path / "badarg.toml"
    bad.write_text(
        'name = "x"\nseeds = [1]\n\n[base]\ntotal_flows = 8\n'
        'n_routers = 6\nduration = 1.4\ntopology = "star"\n\n'
        '[[axes]]\nfield = "topology_args.warp_factor"\nvalues = [9]\n'
    )
    code = main(["campaign", "run", str(bad),
                 "--root", str(tmp_path / "s"), "--jobs", "1"])
    assert code == 2
    assert "warp_factor" in capsys.readouterr().err


def test_bad_wave_exits_2(tmp_path, spec_path, capsys):
    code = main(["campaign", "run", str(spec_path),
                 "--root", str(tmp_path / "s"), "--wave", "0"])
    assert code == 2
    assert "wave_size" in capsys.readouterr().err
