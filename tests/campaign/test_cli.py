"""Tests for ``python -m repro campaign ...`` through the real CLI main."""

import json
import os

import pytest

from repro.experiments.cli import main

SPEC_TOML = """\
name = "cli-tiny"
seeds = [1]

[base]
total_flows = 8
n_routers = 6
duration = 1.4
attack_start = 1.05
topology = "star"

[[axes]]
field = "attack_fraction"
values = [0.5]
"""


@pytest.fixture
def spec_path(tmp_path):
    path = tmp_path / "spec.toml"
    path.write_text(SPEC_TOML)
    return path


def test_status_incomplete_exits_nonzero(tmp_path, spec_path, capsys):
    code = main(
        ["campaign", "status", str(spec_path), "--root", str(tmp_path / "s")]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "0/1 runs complete" in out
    assert "missing" in out


def test_run_then_status_and_report(tmp_path, spec_path, capsys):
    root = str(tmp_path / "s")
    assert main(["campaign", "run", str(spec_path), "--root", root,
                 "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "1 planned, 0 cached, 1 executed" in out

    assert main(["campaign", "status", str(spec_path), "--root", root]) == 0

    json_out = tmp_path / "report.json"
    csv_out = tmp_path / "report.csv"
    assert main(["campaign", "report", str(spec_path), "--root", root,
                 "--json", str(json_out), "--csv", str(csv_out)]) == 0
    payload = json.loads(json_out.read_text())
    assert payload["campaign"] == "cli-tiny"
    assert payload["complete"] == 1
    assert csv_out.read_text().splitlines()[0].startswith("attack_fraction")

    # Re-run: everything cached.
    assert main(["campaign", "run", str(spec_path), "--root", root,
                 "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "1 cached, 0 executed" in out


def test_resume_requires_existing_store(tmp_path, spec_path, capsys):
    code = main(
        ["campaign", "resume", str(spec_path), "--root", str(tmp_path / "no")]
    )
    assert code == 2
    assert "no store" in capsys.readouterr().err


def test_report_without_runs_fails(tmp_path, spec_path, capsys):
    code = main(
        ["campaign", "report", str(spec_path), "--root", str(tmp_path / "no")]
    )
    assert code == 1
    assert "no completed runs" in capsys.readouterr().err


def test_corrupt_artifact_reports_cleanly(tmp_path, spec_path, capsys):
    """A torn/hand-edited artifact gets the 'error:' contract, not a
    traceback."""
    root = str(tmp_path / "s")
    assert main(["campaign", "run", str(spec_path), "--root", root,
                 "--jobs", "1"]) == 0
    capsys.readouterr()
    runs_dir = tmp_path / "s" / "cli-tiny" / "runs"
    artifact = next(
        p for p in runs_dir.glob("*/*.json")
        if not p.name.endswith(".series.json")
    )
    artifact.write_text("{torn")
    code = main(["campaign", "report", str(spec_path), "--root", root])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_broken_spec_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text('name = "x"\nseeds = []\n')
    assert main(["campaign", "run", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_scalar_seeds_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text('{"name": "x", "seeds": 5}')
    assert main(["campaign", "run", str(bad)]) == 2
    assert "error:" in capsys.readouterr().err


def test_unknown_component_exits_2(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text(
        'name = "x"\nseeds = [1]\n\n[base]\ntopology = "moebius"\n'
    )
    code = main(["campaign", "status", str(bad),
                 "--root", str(tmp_path / "s")])
    assert code == 2
    err = capsys.readouterr().err
    assert "error:" in err and "moebius" in err


def test_unknown_builder_arg_exits_2(tmp_path, capsys):
    bad = tmp_path / "badarg.toml"
    bad.write_text(
        'name = "x"\nseeds = [1]\n\n[base]\ntotal_flows = 8\n'
        'n_routers = 6\nduration = 1.4\ntopology = "star"\n\n'
        '[[axes]]\nfield = "topology_args.warp_factor"\nvalues = [9]\n'
    )
    code = main(["campaign", "run", str(bad),
                 "--root", str(tmp_path / "s"), "--jobs", "1"])
    assert code == 2
    assert "warp_factor" in capsys.readouterr().err


def test_bad_wave_exits_2(tmp_path, spec_path, capsys):
    code = main(["campaign", "run", str(spec_path),
                 "--root", str(tmp_path / "s"), "--wave", "0"])
    assert code == 2
    assert "wave_size" in capsys.readouterr().err


def test_figures_verb_writes_figure_files(tmp_path, spec_path, capsys):
    root = str(tmp_path / "s")
    assert main(["campaign", "run", str(spec_path), "--root", root,
                 "--jobs", "1"]) == 0
    capsys.readouterr()
    assert main(["campaign", "figures", str(spec_path), "--root", root]) == 0
    out = capsys.readouterr().out
    assert "wrote 5 figures" in out
    fig_dir = tmp_path / "s" / "cli-tiny" / "figures"
    for suffix in (".txt", ".csv", ".json"):
        assert (fig_dir / f"attack_fraction--accuracy{suffix}").is_file()
    payload = json.loads(
        (fig_dir / "attack_fraction--accuracy.json").read_text()
    )
    assert payload["x_label"] == "attack_fraction"
    # --out redirects.
    alt = tmp_path / "alt-figs"
    assert main(["campaign", "figures", str(spec_path), "--root", root,
                 "--out", str(alt)]) == 0
    assert (alt / "attack_fraction--accuracy.csv").is_file()


def test_figures_verb_without_runs_exits_1(tmp_path, spec_path, capsys):
    code = main(["campaign", "figures", str(spec_path),
                 "--root", str(tmp_path / "no")])
    assert code == 1
    assert "no figures" in capsys.readouterr().err


def test_gc_verb_dry_run_then_apply(tmp_path, spec_path, capsys):
    root = str(tmp_path / "s")
    assert main(["campaign", "run", str(spec_path), "--root", root,
                 "--jobs", "1"]) == 0
    junk = tmp_path / "s" / "cli-tiny" / "runs" / "junk.json.x1.tmp"
    junk.write_text("half-written")
    os.utime(junk, (0, 0))  # age it past gc's live-writer guard
    capsys.readouterr()

    assert main(["campaign", "gc", str(spec_path), "--root", root]) == 0
    out = capsys.readouterr().out
    assert "dry run" in out and "would delete" in out
    assert junk.exists()  # dry run is the default

    assert main(["campaign", "gc", str(spec_path), "--root", root,
                 "--apply"]) == 0
    out = capsys.readouterr().out
    assert "deleted 1 files" in out
    assert not junk.exists()
    # The planned artifact survived and the campaign still reports.
    assert main(["campaign", "status", str(spec_path), "--root", root]) == 0


def test_gc_verb_without_store_exits_2(tmp_path, spec_path, capsys):
    code = main(["campaign", "gc", str(spec_path),
                 "--root", str(tmp_path / "no")])
    assert code == 2
    assert "error:" in capsys.readouterr().err


def test_migrate_verb_round_trips_reports(tmp_path, spec_path, capsys):
    from repro.campaign.query import campaign_report
    from repro.campaign.spec import CampaignSpec

    from tests.campaign.schema1 import downgrade_store

    root = str(tmp_path / "s")
    assert main(["campaign", "run", str(spec_path), "--root", root,
                 "--jobs", "1"]) == 0
    spec = CampaignSpec.load(spec_path)
    before = json.dumps(campaign_report(spec, root), sort_keys=True)
    store_dir = tmp_path / "s" / "cli-tiny"
    assert downgrade_store(store_dir) == 1
    assert json.dumps(campaign_report(spec, root), sort_keys=True) == before
    capsys.readouterr()

    assert main(["campaign", "migrate", str(store_dir)]) == 0
    assert "migrated 1 artifacts" in capsys.readouterr().out
    assert json.dumps(campaign_report(spec, root), sort_keys=True) == before
    # Sharded now: no flat artifacts left under runs/.
    assert not list((store_dir / "runs").glob("*.json"))


def test_migrate_verb_missing_store_exits_2(tmp_path, capsys):
    code = main(["campaign", "migrate", str(tmp_path / "nope")])
    assert code == 2
    assert "error:" in capsys.readouterr().err


class TestWorkersWatch:
    """`campaign workers` one-shot and `--watch` live-refresh modes."""

    def _run_campaign(self, spec_path, root):
        assert main([
            "campaign", "run", str(spec_path), "--root", root,
        ]) == 0

    def test_workers_one_shot(self, tmp_path, spec_path, capsys):
        root = str(tmp_path / "store")
        self._run_campaign(spec_path, root)
        assert main([
            "campaign", "workers", str(spec_path), "--root", root,
        ]) == 0
        out = capsys.readouterr().out
        assert "leases" in out and "failure ledger" in out

    def test_watch_refreshes_until_interrupt(
        self, tmp_path, spec_path, capsys, monkeypatch
    ):
        import time as time_module

        root = str(tmp_path / "store")
        self._run_campaign(spec_path, root)

        sleeps = []

        def fake_sleep(seconds):
            sleeps.append(seconds)
            if len(sleeps) >= 3:
                raise KeyboardInterrupt
        monkeypatch.setattr(time_module, "sleep", fake_sleep)

        code = main([
            "campaign", "workers", str(spec_path), "--root", root,
            "--watch", "--interval", "0.5",
        ])
        assert code == 0  # Ctrl-C is a clean exit for a watch view
        assert sleeps == [0.5, 0.5, 0.5]
        out = capsys.readouterr().out
        # Three frames rendered, each behind an ANSI clear.
        assert out.count("\x1b[2J") == 3
        assert out.count("failure ledger") == 3
        assert "watching every 0.5s" in out

    def test_watch_requires_existing_store(self, tmp_path, spec_path, capsys):
        code = main([
            "campaign", "workers", str(spec_path),
            "--root", str(tmp_path / "missing"), "--watch",
        ])
        assert code == 2
        assert "no store" in capsys.readouterr().err
