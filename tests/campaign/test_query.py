"""Tests for repro.campaign.query over fabricated (simulation-free) stores."""

import json
from pathlib import Path

import pytest

from repro.campaign.orchestrator import open_store
from repro.campaign.query import (
    aggregate_by_point,
    campaign_report,
    group_by_point,
    load_runs,
    report_rows,
    runs_where,
    to_sweep_result,
)
from repro.campaign.spec import CampaignSpec

from tests.campaign.conftest import fabricate_result, tiny_spec


@pytest.fixture
def populated(tmp_path) -> tuple[CampaignSpec, object]:
    """A fully fabricated two-axis-point, two-seed campaign store."""
    spec = tiny_spec(name="fab")
    store = open_store(spec, tmp_path).ensure()
    for planned in spec.plan():
        store.write_result(fabricate_result(planned.config), point=planned.point)
    return spec, tmp_path


class TestLoadRuns:
    def test_plan_order_and_completeness(self, populated):
        spec, root = populated
        runs = load_runs(spec, root)
        assert [run.run_id for run in runs] == [
            planned.run_id for planned in spec.plan()
        ]

    def test_where_filter(self, populated):
        spec, root = populated
        runs = load_runs(spec, root, where=lambda run: run.seed == 2)
        assert len(runs) == 2
        assert all(run.seed == 2 for run in runs)

    def test_missing_runs_skipped(self, populated):
        spec, root = populated
        store = open_store(spec, root)
        store.run_path(spec.plan()[0].run_id).unlink()
        assert len(load_runs(spec, root)) == 3

    def test_stale_artifacts_ignored(self, populated):
        spec, root = populated
        # An artifact the plan no longer mentions must not surface.
        stray = spec.plan()[0].config.with_overrides(seed=77)
        open_store(spec, root).write_result(fabricate_result(stray))
        assert len(load_runs(spec, root)) == 4

    def test_points_come_from_the_plan_not_the_artifact(self, tmp_path):
        """Artifacts written without axis metadata (ad-hoc cached
        batches, older spec revisions) still aggregate by grid cell."""
        spec = tiny_spec(name="pointless")
        store = open_store(spec, tmp_path).ensure()
        for planned in spec.plan():
            # What StoreCache.put writes: no point at all.
            store.write_result(fabricate_result(planned.config))
        runs = load_runs(spec, tmp_path)
        assert all(run.point.keys() == {"attack_fraction"} for run in runs)
        report = campaign_report(spec, tmp_path)
        assert len(report["points"]) == 2
        assert {p["point"]["attack_fraction"] for p in report["points"]} == {
            0.25, 0.5,
        }


class TestGroupingAndAggregation:
    def test_group_by_point_collapses_seeds(self, populated):
        spec, root = populated
        groups = group_by_point(load_runs(spec, root))
        assert len(groups) == 2
        for key, group in groups.items():
            assert dict(key).keys() == {"attack_fraction"}
            assert sorted(run.seed for run in group) == [1, 2]

    def test_aggregate_by_point_means(self, populated):
        spec, root = populated
        aggregated = aggregate_by_point(load_runs(spec, root))
        assert len(aggregated) == 2
        for _point, metrics in aggregated:
            # Seeds 1, 2 -> accuracy 0.91, 0.92 (fabricated).
            assert metrics["accuracy"].mean == pytest.approx(0.915)
            assert metrics["accuracy"].n == 2


class TestSweepReload:
    def test_to_sweep_result(self, populated):
        spec, root = populated
        sweep = to_sweep_result(
            load_runs(spec, root), "attack_fraction", name="alpha-vs-attack"
        )
        assert sweep.name == "alpha-vs-attack"
        assert sweep.x_values == [0.25, 0.5]
        # Default reduce: lowest seed represents each point.
        assert [p.result.config.seed for p in sweep.points] == [1, 1]
        ys = sweep.ys(lambda result: result.summary.accuracy)
        assert ys == pytest.approx([0.91, 0.91])

    def test_custom_reduce(self, populated):
        spec, root = populated
        sweep = to_sweep_result(
            load_runs(spec, root), "attack_fraction",
            reduce=lambda group: group[-1],
        )
        assert [p.result.config.seed for p in sweep.points] == [2, 2]

    def test_unknown_axis_raises(self, populated):
        spec, root = populated
        with pytest.raises(KeyError, match="not_an_axis"):
            to_sweep_result(load_runs(spec, root), "not_an_axis")

    def test_list_valued_axis_groups_and_sweeps(self, tmp_path):
        """Axes over list-valued builder args (ingress_subset) must
        group and report, not crash on unhashable keys."""
        spec = tiny_spec(
            name="listy",
            axes=[{
                "field": "attack_args.ingress_subset",
                "values": (["ingress0"], ["ingress1"]),
            }],
        )
        store = open_store(spec, tmp_path).ensure()
        for planned in spec.plan():
            store.write_result(fabricate_result(planned.config), planned.point)
        runs = load_runs(spec, tmp_path)
        assert len(group_by_point(runs)) == 2
        report = campaign_report(spec, tmp_path)
        assert len(report["points"]) == 2
        sweep = to_sweep_result(runs, "attack_args.ingress_subset")
        assert sweep.x_values == [["ingress0"], ["ingress1"]]

    def test_categorical_axis_keeps_raw_values(self, tmp_path):
        spec = tiny_spec(
            name="cat",
            axes=[{"field": "defense", "values": ("mafic", "proportional")}],
        )
        store = open_store(spec, tmp_path).ensure()
        for planned in spec.plan():
            store.write_result(fabricate_result(planned.config), planned.point)
        sweep = to_sweep_result(load_runs(spec, tmp_path), "defense")
        assert sweep.x_values == ["mafic", "proportional"]
        assert [p.result.config.defense for p in sweep.points] == [
            "mafic", "proportional",
        ]


class TestReport:
    def test_report_shape(self, populated):
        spec, root = populated
        report = campaign_report(spec, root)
        assert report["campaign"] == "fab"
        assert report["planned"] == report["complete"] == 4
        assert len(report["points"]) == 2
        entry = report["points"][0]
        assert entry["seeds"] == [1, 2]
        assert set(entry["metrics"]) == {
            "accuracy", "traffic_reduction", "false_positive_rate",
            "false_negative_rate", "legit_drop_rate",
        }

    def test_report_rows_flatten(self, populated):
        spec, root = populated
        rows = report_rows(campaign_report(spec, root))
        assert rows[0][:2] == ["attack_fraction", "n_runs"]
        assert len(rows) == 3
        assert rows[1][0] == 0.25
        assert rows[2][0] == 0.5

    def test_report_is_deterministic(self, populated):
        spec, root = populated
        assert campaign_report(spec, root) == campaign_report(spec, root)


class TestRunsWhere:
    def test_config_field_query(self, populated):
        spec, root = populated
        store = open_store(spec, root)
        assert len(runs_where(store, seed=1)) == 2
        assert len(runs_where(store, seed=1, attack_fraction=0.5)) == 1
        assert runs_where(store, seed=99) == []

    def test_summary_only_scan_skips_series(self, populated, monkeypatch):
        """runs_where(load_series=False) must never materialize a
        bandwidth series — on a schema-2 store it never even opens a
        sidecar."""
        from repro.campaign.store import CampaignStore

        spec, root = populated
        store = open_store(spec, root)

        def boom(self, run_path, run_id):
            raise AssertionError(f"sidecar opened for {run_id}")

        monkeypatch.setattr(CampaignStore, "_read_series_payload", boom)
        runs = runs_where(store, load_series=False, seed=2)
        assert len(runs) == 2
        assert all(run.series.times == [] for run in runs)
        # Schema-1 stores honor the flag too (inline series skipped).
        from tests.campaign.schema1 import write_schema1_result

        legacy = CampaignStore(Path(root) / "legacy-q").ensure()
        config = spec.plan()[0].config
        write_schema1_result(legacy, fabricate_result(config))
        lite = runs_where(legacy, load_series=False, seed=config.seed)
        assert len(lite) == 1
        assert lite[0].series.times == []


class TestCampaignFigures:
    def test_figures_from_store_without_simulation(
        self, populated, monkeypatch
    ):
        from repro.campaign.query import REPORT_METRICS, campaign_figures
        from repro.campaign.store import CampaignStore

        spec, root = populated

        def boom(self, run_path, run_id):
            raise AssertionError("figures must not read series sidecars")

        monkeypatch.setattr(CampaignStore, "_read_series_payload", boom)
        figures = campaign_figures(spec, root)
        # One numeric axis x the five headline metrics.
        assert [f.figure_id for f in figures] == [
            f"attack_fraction--{m}" for m in REPORT_METRICS
        ]
        accuracy = figures[0]
        assert accuracy.x_label == "attack_fraction"
        assert list(accuracy.series) == ["all runs"]
        # Seeds 1, 2 -> fabricated accuracy 0.91, 0.92: mean 0.915.
        assert accuracy.series["all runs"] == [
            (0.25, pytest.approx(0.915)), (0.5, pytest.approx(0.915)),
        ]

    def test_categorical_axes_become_series_not_x(self, tmp_path):
        from repro.campaign.query import campaign_figures

        spec = tiny_spec(
            name="mixed",
            axes=[
                {"field": "attack_fraction", "values": (0.25, 0.5)},
                {"field": "defense", "values": ("mafic", "proportional")},
            ],
        )
        store = open_store(spec, tmp_path).ensure()
        for planned in spec.plan():
            store.write_result(fabricate_result(planned.config), planned.point)
        figures = campaign_figures(spec, tmp_path)
        # Only the numeric axis makes figures; defense labels series.
        assert len(figures) == 5
        assert set(figures[0].series) == {
            "defense=mafic", "defense=proportional",
        }
        for points in figures[0].series.values():
            assert [x for x, _ in points] == [0.25, 0.5]

    def test_empty_store_yields_no_figures(self, tmp_path):
        from repro.campaign.query import campaign_figures

        spec = tiny_spec(name="empty")
        open_store(spec, tmp_path).ensure()
        assert campaign_figures(spec, tmp_path) == []

    def test_figures_deterministic_across_stores(self, populated, tmp_path):
        """Same artifacts -> identical figure payloads, independent of
        which root they live under (the regeneration analogue of report
        determinism)."""
        from repro.analysis.export import figure_to_dict
        from repro.campaign.query import campaign_figures

        spec, root = populated
        other_root = tmp_path / "other"
        store = open_store(spec, other_root).ensure()
        for planned in spec.plan():
            store.write_result(fabricate_result(planned.config), planned.point)
        a = [figure_to_dict(f) for f in campaign_figures(spec, root)]
        b = [figure_to_dict(f) for f in campaign_figures(spec, other_root)]
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
