"""Tests for repro.campaign.store: artifacts, atomicity, cache adapter,
the schema-2 sharded sidecar layout, and schema-1 back-compat."""

import json
import threading

import pytest

from repro.campaign.store import CampaignStore, StoreError
from repro.experiments.config import ExperimentConfig

from tests.campaign.conftest import fabricate_result
from tests.campaign.schema1 import write_schema1_result


@pytest.fixture
def store(tmp_path) -> CampaignStore:
    return CampaignStore(tmp_path / "camp").ensure()


def config_for(seed: int = 1) -> ExperimentConfig:
    return ExperimentConfig(total_flows=8, n_routers=6, duration=1.4, seed=seed)


class TestArtifacts:
    def test_write_read_round_trip(self, store):
        config = config_for()
        result = fabricate_result(config)
        path = store.write_result(result, point={"attack_fraction": 0.4})
        assert path.name == f"{config.config_hash()}.json"

        run = store.read_run(config.config_hash())
        assert run.config == config
        assert run.summary == result.summary
        assert run.point == {"attack_fraction": 0.4}
        assert run.identified_atrs == {"ingress0"}
        assert run.true_atrs == {"ingress0", "ingress1"}
        assert run.events_executed == result.events_executed
        assert run.series.times == result.series.times
        assert run.series.total_kbps == result.series.total_kbps
        assert run.wall_seconds == result.wall_seconds
        assert run.seed == config.seed

    def test_to_result_rehydrates_detached(self, store):
        result = fabricate_result(config_for())
        store.write_result(result)
        rehydrated = store.read_run(result.config.config_hash()).to_result()
        assert rehydrated.scenario is None
        assert rehydrated.summary == result.summary
        assert rehydrated.config == result.config
        assert rehydrated.atr_recall == result.atr_recall

    def test_has_and_run_ids(self, store):
        assert store.run_ids() == set()
        config = config_for()
        assert not store.has(config.config_hash())
        store.write_result(fabricate_result(config))
        assert store.has(config.config_hash())
        assert store.run_ids() == {config.config_hash()}

    def test_iter_runs_sorted_by_id(self, store):
        ids = []
        for seed in (3, 1, 2):
            config = config_for(seed)
            store.write_result(fabricate_result(config))
            ids.append(config.config_hash())
        assert [run.run_id for run in store.iter_runs()] == sorted(ids)

    def test_rewrite_is_idempotent_and_atomic(self, store):
        config = config_for()
        store.write_result(fabricate_result(config))
        first = store.run_path(config.config_hash()).read_text()
        store.write_result(fabricate_result(config))
        assert store.run_path(config.config_hash()).read_text() == first
        assert not list(store.runs_dir.glob("*.tmp"))

    def test_deterministic_fields_exclude_timing(self, store):
        """Two runs differing only in wall clock file identical artifacts
        outside the quarantined 'timing' key."""
        config = config_for()
        result = fabricate_result(config)
        store.write_result(result)
        a = json.loads(store.run_path(config.config_hash()).read_text())

        slower = fabricate_result(config)
        slower.wall_seconds = 99.9
        store.write_result(slower)
        b = json.loads(store.run_path(config.config_hash()).read_text())

        assert a["timing"] != b["timing"]
        del a["timing"], b["timing"]
        assert a == b


class TestCorruption:
    def test_missing_artifact_raises(self, store):
        with pytest.raises(StoreError, match="no artifact"):
            store.read_run("deadbeefdeadbeef")

    def test_corrupt_json_raises(self, store):
        config = config_for()
        store.write_result(fabricate_result(config))
        store.run_path(config.config_hash()).write_text("{not json")
        with pytest.raises(StoreError, match="corrupt"):
            store.read_run(config.config_hash())

    def test_tampered_config_detected(self, store):
        config = config_for()
        store.write_result(fabricate_result(config))
        path = store.run_path(config.config_hash())
        payload = json.loads(path.read_text())
        payload["config"]["seed"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="hash"):
            store.read_run(config.config_hash())

    def test_wrong_schema_rejected(self, store):
        config = config_for()
        store.write_result(fabricate_result(config))
        path = store.run_path(config.config_hash())
        payload = json.loads(path.read_text())
        payload["schema"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="schema"):
            store.read_run(config.config_hash())


class TestManifest:
    def test_manifest_round_trip(self, store):
        spec_dict = {"name": "x", "seeds": [1], "axes": []}
        store.write_manifest(spec_dict)
        assert store.read_manifest() == spec_dict

    def test_pin_survives_manifest_resnapshot(self, store):
        """Regression: write_manifest(spec) with the default width used
        to drop a previously pinned series_bin_width, un-pinning the
        store and letting a later writer file mixed-resolution series."""
        store.pin_series_bin_width(0.05)
        store.write_manifest({"name": "x", "seeds": [1, 2], "axes": []})
        assert store.series_bin_width() == 0.05
        # The pin still arbitrates writers after the re-snapshot.
        with pytest.raises(StoreError, match="bin width"):
            store.pin_series_bin_width(0.2)
        # An explicit matching width round-trips as before.
        store.write_manifest({"name": "x"}, series_bin_width=0.05)
        assert store.series_bin_width() == 0.05


class TestSchema2Layout:
    def test_artifacts_shard_by_hash_prefix_with_sidecars(self, store):
        config = config_for()
        run_id = config.config_hash()
        path = store.write_result(fabricate_result(config))
        assert path == store.runs_dir / run_id[:2] / f"{run_id}.json"
        payload = json.loads(path.read_text())
        assert "series" not in payload  # summary doc stays small
        sidecar = store.series_path(path)
        side_payload = json.loads(sidecar.read_text())
        assert side_payload["run_id"] == run_id
        assert side_payload["series"]["times"] == [0.5, 1.5]
        assert store.run_ids() == {run_id}  # sidecar doesn't count

    def test_summary_only_reads_never_open_the_sidecar(
        self, store, monkeypatch
    ):
        for seed in (1, 2):
            store.write_result(fabricate_result(config_for(seed)))

        def boom(self, run_path, run_id):
            raise AssertionError(f"sidecar opened for {run_id}")

        monkeypatch.setattr(CampaignStore, "_read_series_payload", boom)
        run = store.read_run(config_for().config_hash(), load_series=False)
        assert run.series.times == []
        assert len(list(store.iter_runs(load_series=False))) == 2

    def test_missing_sidecar_fails_series_reads_only(self, store):
        config = config_for()
        store.write_result(fabricate_result(config))
        store.series_path(store.run_path(config.config_hash())).unlink()
        with pytest.raises(StoreError, match="sidecar"):
            store.read_run(config.config_hash())
        run = store.read_run(config.config_hash(), load_series=False)
        assert run.summary == fabricate_result(config).summary

    def test_mismatched_sidecar_rejected(self, store):
        a, b = config_for(1), config_for(2)
        store.write_result(fabricate_result(a))
        store.write_result(fabricate_result(b))
        path_a = store.run_path(a.config_hash())
        store.series_path(path_a).write_text(
            store.series_path(store.run_path(b.config_hash())).read_text()
        )
        with pytest.raises(StoreError, match="belongs to"):
            store.read_run(a.config_hash())


class TestSchema1BackCompat:
    def test_flat_inline_artifact_reads_transparently(self, store):
        config = config_for()
        result = fabricate_result(config)
        path = write_schema1_result(
            store, result, point={"attack_fraction": 0.4},
            series_bin_width=0.05,
        )
        assert path == store.runs_dir / f"{config.config_hash()}.json"
        assert store.has(config.config_hash())
        assert store.run_ids() == {config.config_hash()}
        run = store.read_run(config.config_hash())
        assert run.series.times == result.series.times
        assert run.summary == result.summary
        assert run.series_bin_width == 0.05
        # Summary-only reads skip the inline series on schema 1 too.
        lite = store.read_run(config.config_hash(), load_series=False)
        assert lite.series.times == []
        assert [r.run_id for r in store.iter_runs(load_series=False)] == [
            config.config_hash()
        ]

    def test_rewrite_keeps_one_copy_at_the_existing_location(self, store):
        """Overwriting a schema-1 run must not fork a second, sharded
        copy — the store would otherwise serve whichever it found
        first."""
        config = config_for()
        write_schema1_result(store, fabricate_result(config))
        store.write_result(fabricate_result(config))
        flat = store.runs_dir / f"{config.config_hash()}.json"
        assert flat.is_file()
        assert store.series_path(flat).is_file()
        sharded_dir = store.runs_dir / config.config_hash()[:2]
        assert not (sharded_dir / f"{config.config_hash()}.json").exists()
        assert store.run_ids() == {config.config_hash()}
        assert store.read_run(config.config_hash()).series.times == [0.5, 1.5]


class TestAtomicWrites:
    def test_concurrent_writers_never_tear_an_artifact(self, store):
        """Regression: the fixed '<path>.json.tmp' temp name let two
        concurrent writers of the same run_id interleave into one temp
        file and os.replace a torn artifact into place.  With unique
        mkstemp names, every rename lands a whole document."""
        config = config_for()
        run_id = config.config_hash()
        errors: list[Exception] = []
        stop = threading.Event()

        def writer(wall: float) -> None:
            result = fabricate_result(config)
            result.wall_seconds = wall  # quarantined; differs per writer
            try:
                for _ in range(30):
                    store.write_result(result, series_bin_width=0.05)
            except Exception as exc:  # pragma: no cover - fail loudly
                errors.append(exc)

        def reader() -> None:
            while not stop.is_set():
                if not store.has(run_id):
                    continue
                try:
                    store.read_run(run_id)
                except StoreError as exc:
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=writer, args=(float(k),))
            for k in range(4)
        ] + [threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads[:-1]:
            t.join()
        stop.set()
        threads[-1].join()

        assert errors == []
        run = store.read_run(run_id)  # final state is whole and valid
        assert run.summary == fabricate_result(config).summary
        assert not list(store.runs_dir.glob("**/*.tmp"))


class TestStoreCache:
    def test_get_miss_then_hit(self, store):
        cache = store.as_cache()
        config = config_for()
        assert cache.get(config) is None
        cache.put(fabricate_result(config))
        hit = cache.get(config)
        assert hit is not None
        assert hit.summary == fabricate_result(config).summary

    def test_cache_pins_the_store_series_bin_width(self, store):
        """The first writer pins the store's resolution; a cache asking
        for a different width is refused outright."""
        config = config_for()
        store.as_cache(series_bin_width=0.05).put(fabricate_result(config))
        assert store.read_run(config.config_hash()).series_bin_width == 0.05
        assert store.series_bin_width() == 0.05
        with pytest.raises(StoreError, match="bin width"):
            store.as_cache(series_bin_width=0.2)
        assert store.as_cache(series_bin_width=0.05).get(config) is not None

    def test_unpinned_artifact_is_a_cache_miss(self, store):
        """Artifacts with no recorded width (written directly) re-run
        rather than passing for any requested resolution."""
        config = config_for()
        store.write_result(fabricate_result(config))  # width unrecorded
        assert store.as_cache(series_bin_width=0.05).get(config) is None

    def test_run_batch_rejects_mismatched_cache_width(self, store):
        from repro.experiments.parallel import run_batch

        with pytest.raises(ValueError, match="bin width"):
            run_batch(
                [config_for()], jobs=1, series_bin_width=0.2,
                cache=store.as_cache(series_bin_width=0.05),
            )

    def test_read_run_without_series(self, store):
        config = config_for()
        store.write_result(fabricate_result(config))
        run = store.read_run(config.config_hash(), load_series=False)
        assert run.series.times == []
        assert run.summary == fabricate_result(config).summary

    def test_cache_feeds_run_batch(self, store):
        """run_batch(cache=...) skips stored configs entirely."""
        from repro.experiments.parallel import run_batch

        cache = store.as_cache()
        configs = [config_for(seed) for seed in (1, 2)]
        cache.put(fabricate_result(configs[0]))

        calls = []
        real_get = cache.get

        def counting_get(config):
            calls.append(config.seed)
            return real_get(config)

        cache.get = counting_get
        batch = run_batch(configs, jobs=1, cache=cache)
        assert calls == [1, 2]
        # Seed 1 came from the store (fabricated), seed 2 really ran.
        assert batch.results[0].summary == fabricate_result(configs[0]).summary
        assert batch.results[1].events_executed > 0
        assert store.has(configs[1].config_hash())


class TestAtomicWriteHelpers:
    """Regression tests for the module-level atomic write helpers the
    `atomic-write` lint rule routes campaign code through."""

    def test_atomic_write_text_content_and_no_temp_litter(self, tmp_path):
        from repro.campaign.store import atomic_write_text

        target = tmp_path / "figures" / "fig4.txt"
        atomic_write_text(target, "alpha beta\n")
        assert target.read_text(encoding="utf-8") == "alpha beta\n"
        # mkstemp siblings must be renamed or unlinked, never left.
        assert sorted(p.name for p in target.parent.iterdir()) == ["fig4.txt"]

    def test_atomic_write_replaces_whole_file(self, tmp_path):
        from repro.campaign.store import atomic_write_text

        target = tmp_path / "out.txt"
        atomic_write_text(target, "long old contents that must vanish\n")
        atomic_write_text(target, "new\n")
        assert target.read_text(encoding="utf-8") == "new\n"

    def test_figures_txt_goes_through_atomic_helper(self):
        """The `campaign figures` .txt writer (the violation this PR
        fixed) now routes through atomic_write_text."""
        import ast
        import inspect

        from repro.campaign import cli as campaign_cli

        src = inspect.getsource(campaign_cli._cmd_figures)
        tree = ast.parse(src.lstrip())
        calls = {
            node.func.attr if isinstance(node.func, ast.Attribute)
            else getattr(node.func, "id", "")
            for node in ast.walk(tree)
            if isinstance(node, ast.Call)
        }
        assert "atomic_write_text" in calls
        assert "write_text" not in calls
