"""Tests for repro.campaign.store: artifacts, atomicity, cache adapter."""

import json

import pytest

from repro.campaign.store import CampaignStore, StoreError
from repro.experiments.config import ExperimentConfig

from tests.campaign.conftest import fabricate_result


@pytest.fixture
def store(tmp_path) -> CampaignStore:
    return CampaignStore(tmp_path / "camp").ensure()


def config_for(seed: int = 1) -> ExperimentConfig:
    return ExperimentConfig(total_flows=8, n_routers=6, duration=1.4, seed=seed)


class TestArtifacts:
    def test_write_read_round_trip(self, store):
        config = config_for()
        result = fabricate_result(config)
        path = store.write_result(result, point={"attack_fraction": 0.4})
        assert path.name == f"{config.config_hash()}.json"

        run = store.read_run(config.config_hash())
        assert run.config == config
        assert run.summary == result.summary
        assert run.point == {"attack_fraction": 0.4}
        assert run.identified_atrs == {"ingress0"}
        assert run.true_atrs == {"ingress0", "ingress1"}
        assert run.events_executed == result.events_executed
        assert run.series.times == result.series.times
        assert run.series.total_kbps == result.series.total_kbps
        assert run.wall_seconds == result.wall_seconds
        assert run.seed == config.seed

    def test_to_result_rehydrates_detached(self, store):
        result = fabricate_result(config_for())
        store.write_result(result)
        rehydrated = store.read_run(result.config.config_hash()).to_result()
        assert rehydrated.scenario is None
        assert rehydrated.summary == result.summary
        assert rehydrated.config == result.config
        assert rehydrated.atr_recall == result.atr_recall

    def test_has_and_run_ids(self, store):
        assert store.run_ids() == set()
        config = config_for()
        assert not store.has(config.config_hash())
        store.write_result(fabricate_result(config))
        assert store.has(config.config_hash())
        assert store.run_ids() == {config.config_hash()}

    def test_iter_runs_sorted_by_id(self, store):
        ids = []
        for seed in (3, 1, 2):
            config = config_for(seed)
            store.write_result(fabricate_result(config))
            ids.append(config.config_hash())
        assert [run.run_id for run in store.iter_runs()] == sorted(ids)

    def test_rewrite_is_idempotent_and_atomic(self, store):
        config = config_for()
        store.write_result(fabricate_result(config))
        first = store.run_path(config.config_hash()).read_text()
        store.write_result(fabricate_result(config))
        assert store.run_path(config.config_hash()).read_text() == first
        assert not list(store.runs_dir.glob("*.tmp"))

    def test_deterministic_fields_exclude_timing(self, store):
        """Two runs differing only in wall clock file identical artifacts
        outside the quarantined 'timing' key."""
        config = config_for()
        result = fabricate_result(config)
        store.write_result(result)
        a = json.loads(store.run_path(config.config_hash()).read_text())

        slower = fabricate_result(config)
        slower.wall_seconds = 99.9
        store.write_result(slower)
        b = json.loads(store.run_path(config.config_hash()).read_text())

        assert a["timing"] != b["timing"]
        del a["timing"], b["timing"]
        assert a == b


class TestCorruption:
    def test_missing_artifact_raises(self, store):
        with pytest.raises(StoreError, match="no artifact"):
            store.read_run("deadbeefdeadbeef")

    def test_corrupt_json_raises(self, store):
        config = config_for()
        store.write_result(fabricate_result(config))
        store.run_path(config.config_hash()).write_text("{not json")
        with pytest.raises(StoreError, match="corrupt"):
            store.read_run(config.config_hash())

    def test_tampered_config_detected(self, store):
        config = config_for()
        store.write_result(fabricate_result(config))
        path = store.run_path(config.config_hash())
        payload = json.loads(path.read_text())
        payload["config"]["seed"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="hash"):
            store.read_run(config.config_hash())

    def test_wrong_schema_rejected(self, store):
        config = config_for()
        store.write_result(fabricate_result(config))
        path = store.run_path(config.config_hash())
        payload = json.loads(path.read_text())
        payload["schema"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreError, match="schema"):
            store.read_run(config.config_hash())


class TestManifest:
    def test_manifest_round_trip(self, store):
        spec_dict = {"name": "x", "seeds": [1], "axes": []}
        store.write_manifest(spec_dict)
        assert store.read_manifest() == spec_dict


class TestStoreCache:
    def test_get_miss_then_hit(self, store):
        cache = store.as_cache()
        config = config_for()
        assert cache.get(config) is None
        cache.put(fabricate_result(config))
        hit = cache.get(config)
        assert hit is not None
        assert hit.summary == fabricate_result(config).summary

    def test_cache_pins_the_store_series_bin_width(self, store):
        """The first writer pins the store's resolution; a cache asking
        for a different width is refused outright."""
        config = config_for()
        store.as_cache(series_bin_width=0.05).put(fabricate_result(config))
        assert store.read_run(config.config_hash()).series_bin_width == 0.05
        assert store.series_bin_width() == 0.05
        with pytest.raises(StoreError, match="bin width"):
            store.as_cache(series_bin_width=0.2)
        assert store.as_cache(series_bin_width=0.05).get(config) is not None

    def test_unpinned_artifact_is_a_cache_miss(self, store):
        """Artifacts with no recorded width (written directly) re-run
        rather than passing for any requested resolution."""
        config = config_for()
        store.write_result(fabricate_result(config))  # width unrecorded
        assert store.as_cache(series_bin_width=0.05).get(config) is None

    def test_run_batch_rejects_mismatched_cache_width(self, store):
        from repro.experiments.parallel import run_batch

        with pytest.raises(ValueError, match="bin width"):
            run_batch(
                [config_for()], jobs=1, series_bin_width=0.2,
                cache=store.as_cache(series_bin_width=0.05),
            )

    def test_read_run_without_series(self, store):
        config = config_for()
        store.write_result(fabricate_result(config))
        run = store.read_run(config.config_hash(), load_series=False)
        assert run.series.times == []
        assert run.summary == fabricate_result(config).summary

    def test_cache_feeds_run_batch(self, store):
        """run_batch(cache=...) skips stored configs entirely."""
        from repro.experiments.parallel import run_batch

        cache = store.as_cache()
        configs = [config_for(seed) for seed in (1, 2)]
        cache.put(fabricate_result(configs[0]))

        calls = []
        real_get = cache.get

        def counting_get(config):
            calls.append(config.seed)
            return real_get(config)

        cache.get = counting_get
        batch = run_batch(configs, jobs=1, cache=cache)
        assert calls == [1, 2]
        # Seed 1 came from the store (fabricated), seed 2 really ran.
        assert batch.results[0].summary == fabricate_result(configs[0]).summary
        assert batch.results[1].events_executed > 0
        assert store.has(configs[1].config_hash())
