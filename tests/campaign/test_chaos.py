"""The crash-injection harness, and the convergence claim it checks.

ISSUE 9's acceptance criterion: for worker deaths at randomized points
(mid-claim, mid-run, mid-artifact-write), ``campaign resume`` converges
with zero lost or duplicated cells and a final report byte-identical to
serial execution.  The targeted tests pin each torn on-disk state with
a probability-1.0 chaos point; the randomized test lets a seeded chaos
stream kill a two-worker pool wherever it lands.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign.chaos import (
    ChaosSpecError,
    chaos_active,
    parse_chaos_spec,
    reload_chaos,
)
from repro.campaign.diff import diff_stores
from repro.campaign.orchestrator import open_store, run_campaign
from repro.campaign.pool import run_pool
from repro.campaign.query import campaign_report
from repro.campaign.store import CampaignStore, SERIES_SUFFIX
from repro.campaign.worker import run_worker
from repro.obs.bus import CallbackSink, EventBus

from tests.campaign.conftest import tiny_spec


class TestSpecParsing:
    def test_parses_points_and_probabilities(self):
        assert parse_chaos_spec("claim:0.2, write:1.0") \
            == {"claim": 0.2, "write": 1.0}

    def test_empty_spec_is_empty(self):
        assert parse_chaos_spec("") == {}
        assert parse_chaos_spec(" , ") == {}

    @pytest.mark.parametrize(
        "text", ["claim", ":0.5", "claim:not-a-number", "claim:1.5",
                 "claim:-0.1"],
    )
    def test_rejects_malformed_entries(self, text):
        with pytest.raises(ChaosSpecError):
            parse_chaos_spec(text)

    def test_chaos_active_tracks_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        reload_chaos()
        assert not chaos_active()
        monkeypatch.setenv("REPRO_CHAOS", "run:0.5")
        reload_chaos()
        try:
            assert chaos_active()
            assert chaos_active("run")
            assert not chaos_active("claim")
        finally:
            monkeypatch.delenv("REPRO_CHAOS")
            reload_chaos()

    def test_chaos_point_is_sigkill(self, tmp_path):
        """The armed point must die like a machine crash: SIGKILL, no
        cleanup — verified on a sacrificial interpreter."""
        script = (
            "import sys\n"
            "from repro.campaign.chaos import chaos_point\n"
            "chaos_point('x')\n"
            "print('survived')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env={**os.environ, "REPRO_CHAOS": "x:1.0"},
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL
        assert "survived" not in proc.stdout
        assert "chaos: SIGKILL at point 'x'" in proc.stderr


def _prepared(spec, root) -> CampaignStore:
    store = open_store(spec, root).ensure()
    store.pin_series_bin_width(0.05)
    store.write_manifest(spec.to_dict(), series_bin_width=0.05)
    return store


@pytest.fixture(scope="module")
def serial_store(tmp_path_factory):
    """The reference: the tiny campaign executed serially, once."""
    spec = tiny_spec()
    root = tmp_path_factory.mktemp("serial-ref")
    report = run_campaign(spec, root, jobs=1)
    assert report.complete
    return spec, open_store(spec, root)


def _kill_worker_at(store, point: str) -> subprocess.CompletedProcess:
    """One worker subprocess, armed to die at ``point`` on first visit."""
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.campaign.worker",
            str(store.directory), "--worker", "w0", "--lease-ttl", "0.5",
        ],
        env={**os.environ, "REPRO_CHAOS": f"{point}:1.0"},
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, (
        point, proc.returncode, proc.stderr,
    )
    assert f"chaos: SIGKILL at point {point!r}" in proc.stderr
    return proc


def _assert_converges(spec, root, serial_store):
    """Resume (no chaos) and check the byte-identical-report claim."""
    report = run_worker(
        open_store(spec, root).directory, worker="resume", lease_ttl=0.5
    )
    assert report.remaining == 0, report
    _, reference = serial_store
    result = diff_stores(
        reference.directory, open_store(spec, root).directory
    )
    assert result.identical, (
        result.missing_in_a, result.missing_in_b, result.differing,
    )
    assert json.dumps(campaign_report(spec, root), sort_keys=True) \
        == json.dumps(
            campaign_report(spec, reference.directory.parent),
            sort_keys=True,
        )


class TestTargetedDeaths:
    """One test per chaos point: pin the torn state, then converge."""

    def test_death_mid_claim(self, tmp_path, serial_store):
        spec, _ = serial_store
        store = _prepared(spec, tmp_path)
        _kill_worker_at(store, "claim")
        # Torn state: a lease filed by a now-dead worker, nothing else.
        assert len(store.iter_leases()) == 1
        assert store.run_ids() == set()
        time.sleep(0.6)  # let the orphaned lease expire
        _assert_converges(spec, tmp_path, serial_store)

    def test_death_mid_run(self, tmp_path, serial_store):
        spec, _ = serial_store
        store = _prepared(spec, tmp_path)
        _kill_worker_at(store, "run")
        assert len(store.iter_leases()) == 1
        assert store.run_ids() == set()
        time.sleep(0.6)
        _assert_converges(spec, tmp_path, serial_store)

    def test_death_after_run_before_write(self, tmp_path, serial_store):
        spec, _ = serial_store
        store = _prepared(spec, tmp_path)
        _kill_worker_at(store, "result")
        assert store.run_ids() == set()  # the whole run's work is lost
        time.sleep(0.6)
        _assert_converges(spec, tmp_path, serial_store)

    def test_death_mid_artifact_write(self, tmp_path, serial_store):
        spec, _ = serial_store
        store = _prepared(spec, tmp_path)
        _kill_worker_at(store, "write")
        # Torn state: the series sidecar landed, the summary did not —
        # an orphan sidecar resume simply overwrites.
        assert store.run_ids() == set()
        orphans = list(store.runs_dir.rglob(f"*{SERIES_SUFFIX}"))
        assert len(orphans) == 1
        time.sleep(0.6)
        _assert_converges(spec, tmp_path, serial_store)

    def test_death_before_index_append(self, tmp_path, serial_store):
        spec, _ = serial_store
        store = _prepared(spec, tmp_path)
        _kill_worker_at(store, "index")
        # Torn state: the artifact committed but its index row did not —
        # readers fall back to the artifact, nothing re-executes.
        assert len(store.run_ids()) == 1
        (done,) = store.run_ids()
        assert done not in store.read_index()
        time.sleep(0.6)
        _assert_converges(spec, tmp_path, serial_store)
        assert done in store.run_ids()  # never re-claimed or lost


class TestRandomizedPool:
    def test_seeded_chaos_pool_then_resume_converges(
        self, tmp_path, serial_store
    ):
        """The acceptance criterion end-to-end: a two-worker pool under
        a seeded random chaos stream (deaths wherever the dice land,
        respawns included), then a clean resume; the store and report
        must match serial execution exactly."""
        spec, _ = serial_store
        store = _prepared(spec, tmp_path)
        deaths: list = []
        bus = EventBus()
        bus.subscribe(
            CallbackSink(deaths.append), kinds=("worker.died",)
        )
        report = run_pool(
            store.directory, jobs=2, lease_ttl=0.5,
            env={
                "REPRO_CHAOS": "claim:0.4,result:0.3",
                "REPRO_CHAOS_SEED": "icdcsw-9",
            },
            bus=bus,
        )
        assert report.deaths == len(deaths)
        for event in deaths:
            assert event.reason == "signal"
        # Whatever the pool left undone, a clean resume finishes.
        time.sleep(0.6)
        _assert_converges(spec, tmp_path, serial_store)

    def test_certain_death_exhausts_respawn_budget(self, tmp_path, spec):
        """With every claim fatal the pool must give up (bounded
        respawns), not fork-bomb — and report honestly."""
        store = _prepared(spec, tmp_path)
        report = run_pool(
            store.directory, jobs=1, lease_ttl=0.5, respawn_limit=2,
            env={"REPRO_CHAOS": "claim:1.0"},
        )
        assert not report.complete
        assert report.executed == 0
        assert report.respawns == 2
        assert report.deaths == 3  # the original worker + both respawns
        assert {e.reason for e in report.exits} == {"signal"}
