"""``campaign diff``: cell-by-cell store comparison, CI-usable exits.

This is the checker behind the chaos harness's convergence claim: a
resumed store must diff *identical* against a serial one.  Tests here
fabricate the divergences (missing cells, perturbed metrics, schema
skew) and assert they are reported — and that byte-irrelevant noise
(timing, point provenance, schema version, compression) is not.
"""

from __future__ import annotations

import json

import pytest

from repro.campaign.diff import diff_stores
from repro.campaign.orchestrator import open_store
from repro.campaign.store import CampaignStore, StoreError
from repro.experiments.cli import main

from tests.campaign.conftest import fabricate_result
from tests.campaign.schema1 import downgrade_store, write_schema1_manifest


def _fill(spec, root, skip=(), perturb=None) -> CampaignStore:
    store = open_store(spec, root).ensure()
    store.pin_series_bin_width(0.05)
    store.write_manifest(spec.to_dict(), series_bin_width=0.05)
    for planned in spec.plan():
        if planned.run_id in skip:
            continue
        result = fabricate_result(planned.config)
        store.write_result(
            result, point=planned.point, series_bin_width=0.05
        )
        if perturb and planned.run_id in perturb:
            path = store.run_path(planned.run_id)
            payload = json.loads(path.read_text(encoding="utf-8"))
            payload["summary"]["accuracy"] += perturb[planned.run_id]
            path.write_text(json.dumps(payload), encoding="utf-8")
    return store


class TestDiffStores:
    def test_identical_stores(self, tmp_path, spec):
        a = _fill(spec, tmp_path / "a")
        b = _fill(spec, tmp_path / "b")
        result = diff_stores(a.directory, b.directory)
        assert result.identical
        assert result.compared == len(spec.plan())
        assert result.missing_in_a == result.missing_in_b == []
        assert result.differing == []

    def test_missing_and_extra_cells(self, tmp_path, spec):
        gone = spec.plan()[0].run_id
        a = _fill(spec, tmp_path / "a")
        b = _fill(spec, tmp_path / "b", skip={gone})
        result = diff_stores(a.directory, b.directory)
        assert result.missing_in_b == [gone]
        assert result.missing_in_a == []
        assert not result.identical
        flipped = diff_stores(b.directory, a.directory)
        assert flipped.missing_in_a == [gone]

    def test_metric_delta_is_reported_per_field(self, tmp_path, spec):
        victim = spec.plan()[0].run_id
        a = _fill(spec, tmp_path / "a")
        b = _fill(spec, tmp_path / "b", perturb={victim: 1e-3})
        result = diff_stores(a.directory, b.directory)
        assert not result.identical
        assert [(d.run_id, d.field) for d in result.differing] \
            == [(victim, "summary.accuracy")]
        delta = result.differing[0]
        assert delta.b == pytest.approx(delta.a + 1e-3)

    def test_tolerance_absorbs_small_numeric_drift(self, tmp_path, spec):
        victim = spec.plan()[0].run_id
        a = _fill(spec, tmp_path / "a")
        b = _fill(spec, tmp_path / "b", perturb={victim: 1e-9})
        assert not diff_stores(a.directory, b.directory).identical
        assert diff_stores(
            a.directory, b.directory, tolerance=1e-6
        ).identical

    def test_schema1_store_diffs_clean_against_schema2(
        self, tmp_path, spec
    ):
        a = _fill(spec, tmp_path / "a")
        b = _fill(spec, tmp_path / "b")
        downgrade_store(b.directory)
        write_schema1_manifest(
            CampaignStore(b.directory), spec.to_dict(), 0.05
        )
        result = diff_stores(a.directory, b.directory)
        assert result.identical, result.differing

    def test_missing_store_raises(self, tmp_path, spec):
        a = _fill(spec, tmp_path / "a")
        with pytest.raises(StoreError, match="no campaign store"):
            diff_stores(a.directory, tmp_path / "nope")


class TestCli:
    def test_exit_zero_on_identical(self, tmp_path, spec, capsys):
        a = _fill(spec, tmp_path / "a")
        b = _fill(spec, tmp_path / "b")
        code = main(
            ["campaign", "diff", str(a.directory), str(b.directory)]
        )
        assert code == 0
        assert "identical" in capsys.readouterr().out

    def test_exit_nonzero_on_divergence(self, tmp_path, spec, capsys):
        victim = spec.plan()[0].run_id
        a = _fill(spec, tmp_path / "a")
        b = _fill(spec, tmp_path / "b", perturb={victim: 0.5})
        code = main(
            ["campaign", "diff", str(a.directory), str(b.directory)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "summary.accuracy" in out
        assert victim in out

    def test_exit_nonzero_on_missing_cell(self, tmp_path, spec, capsys):
        gone = spec.plan()[0].run_id
        a = _fill(spec, tmp_path / "a")
        b = _fill(spec, tmp_path / "b", skip={gone})
        code = main(
            ["campaign", "diff", str(a.directory), str(b.directory)]
        )
        assert code == 1
        assert gone in capsys.readouterr().out

    def test_tolerance_flag(self, tmp_path, spec):
        victim = spec.plan()[0].run_id
        a = _fill(spec, tmp_path / "a")
        b = _fill(spec, tmp_path / "b", perturb={victim: 1e-9})
        assert main(
            ["campaign", "diff", str(a.directory), str(b.directory),
             "--tolerance", "1e-6"]
        ) == 0

    def test_missing_store_is_a_usage_error(self, tmp_path, spec, capsys):
        a = _fill(spec, tmp_path / "a")
        code = main(
            ["campaign", "diff", str(a.directory), str(tmp_path / "nope")]
        )
        assert code == 2
        assert "no campaign store" in capsys.readouterr().err
