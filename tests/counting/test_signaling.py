"""Tests for repro.counting.signaling (control-plane latency)."""

import networkx as nx
import pytest

from repro.counting.pushback import PushbackRequest
from repro.counting.signaling import ControlPlane


def request(atr="ingress0", action="start", time=1.0):
    return PushbackRequest(
        time=time, atr_name=atr, victim_router="lasthop", action=action
    )


def line_graph():
    """lasthop - core - ingress0 with 10 ms links."""
    g = nx.Graph()
    g.add_edge("lasthop", "core", delay=0.010)
    g.add_edge("core", "ingress0", delay=0.010)
    return g


class TestInstantMode:
    def test_passthrough_dispatches_synchronously(self, sim):
        seen = []
        plane = ControlPlane(sim, line_graph(), "lasthop", seen.append,
                             instant=True)
        plane.send(request())
        assert len(seen) == 1
        assert plane.delivered[0].delivered_at == sim.now


class TestLatencyMode:
    def test_delivery_delayed_by_path(self, sim):
        seen = []
        plane = ControlPlane(
            sim, line_graph(), "lasthop",
            lambda r: seen.append((sim.now, r)),
            per_hop_processing=0.001,
        )
        plane.send(request())
        assert seen == []  # not yet delivered
        sim.run()
        delivered_at, _ = seen[0]
        # 2 links x 10 ms + 2 hops x 1 ms.
        assert delivered_at == pytest.approx(0.022)

    def test_latency_to_reports_path(self, sim):
        plane = ControlPlane(sim, line_graph(), "lasthop", lambda r: None)
        delay, hops = plane.latency_to("ingress0")
        assert delay == pytest.approx(0.020)
        assert hops == 2

    def test_latency_cached(self, sim):
        plane = ControlPlane(sim, line_graph(), "lasthop", lambda r: None)
        assert plane.latency_to("ingress0") is plane.latency_to("ingress0")

    def test_unreachable_atr_recorded_undeliverable(self, sim):
        g = line_graph()
        g.add_node("island")
        seen = []
        plane = ControlPlane(sim, g, "lasthop", seen.append)
        plane.send(request(atr="island"))
        sim.run()
        assert seen == []
        assert len(plane.undeliverable) == 1

    def test_unknown_node_undeliverable(self, sim):
        plane = ControlPlane(sim, line_graph(), "lasthop", lambda r: None)
        plane.send(request(atr="ghost"))
        assert len(plane.undeliverable) == 1

    def test_mean_latency(self, sim):
        plane = ControlPlane(sim, line_graph(), "lasthop", lambda r: None,
                             per_hop_processing=0.0)
        plane.send(request())
        plane.send(request())
        sim.run()
        assert plane.mean_latency() == pytest.approx(0.020)

    def test_mean_latency_empty(self, sim):
        plane = ControlPlane(sim, line_graph(), "lasthop", lambda r: None)
        assert plane.mean_latency() == 0.0

    def test_negative_processing_rejected(self, sim):
        with pytest.raises(ValueError):
            ControlPlane(sim, line_graph(), "lasthop", lambda r: None,
                         per_hop_processing=-1)


class TestScenarioIntegration:
    def test_control_latency_delays_activation(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        # Transit-stub (the default): long enough paths that the flood
        # stands out against the window-limited TCP load.
        base = dict(total_flows=10, n_routers=10, duration=3.0, seed=67)
        instant = run_experiment(ExperimentConfig(**base))
        delayed = run_experiment(
            ExperimentConfig(**base, control_latency=True)
        )
        assert instant.activation_time is not None
        assert delayed.activation_time is not None
        assert delayed.activation_time > instant.activation_time
        # Still a working defence.
        assert delayed.summary.accuracy > 0.9
        plane = delayed.scenario.control_plane
        assert plane.mean_latency() > 0
