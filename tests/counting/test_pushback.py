"""Tests for repro.counting.pushback."""

import numpy as np
import pytest

from repro.counting.pushback import (
    PushbackCoordinator,
    PushbackPolicyConfig,
)
from repro.sim.monitor import MatrixSnapshot


def snap(time, egress, shares):
    """Build a snapshot where 'victim' receives ``egress`` packets and each
    named ingress contributes ``shares[name]`` of them."""
    sources = sorted(shares)
    matrix = np.array([[egress * shares[s]] for s in sources])
    return MatrixSnapshot(
        time=time,
        sources=sources,
        destinations=["victim"],
        matrix=matrix,
        ingress_totals={s: egress * shares[s] for s in sources},
        egress_totals={"victim": egress},
    )


def make_coordinator(**overrides):
    defaults = dict(
        overload_factor=2.0,
        share_threshold=0.10,
        baseline_rate=100.0,
        min_absolute=10.0,
        hysteresis_epochs=2,
        warmup_epochs=2,
        calm_band=1.5,
    )
    defaults.update(overrides)
    requests = []
    coord = PushbackCoordinator(
        victim_router="victim",
        config=PushbackPolicyConfig(**defaults),
        on_request=requests.append,
    )
    return coord, requests


class TestWarmup:
    def test_no_alarm_during_warmup(self):
        coord, requests = make_coordinator(warmup_epochs=3)
        for t in (1.0, 2.0, 3.0):
            coord.on_snapshot(snap(t, 10_000, {"in0": 1.0}))
        assert requests == []
        assert not coord.active

    def test_baseline_learned_from_first_epoch(self):
        coord, _ = make_coordinator(warmup_epochs=1)
        coord.on_snapshot(snap(1.0, 200, {"in0": 1.0}))
        assert coord.baseline == pytest.approx(200)


class TestDetection:
    def _warmed(self, calm=100.0):
        coord, requests = make_coordinator()
        coord.on_snapshot(snap(1.0, calm, {"in0": 0.5, "in1": 0.5}))
        coord.on_snapshot(snap(2.0, calm, {"in0": 0.5, "in1": 0.5}))
        return coord, requests

    def test_overload_triggers_start_requests(self):
        coord, requests = self._warmed()
        coord.on_snapshot(snap(3.0, 1000, {"in0": 0.8, "in1": 0.2}))
        starts = [r for r in requests if r.action == "start"]
        assert {r.atr_name for r in starts} == {"in0", "in1"}
        assert coord.active

    def test_share_threshold_excludes_minor_contributors(self):
        coord, requests = self._warmed()
        coord.on_snapshot(snap(3.0, 1000, {"in0": 0.95, "in1": 0.05}))
        starts = {r.atr_name for r in requests if r.action == "start"}
        assert starts == {"in0"}

    def test_min_absolute_guards_sketch_noise(self):
        coord, requests = make_coordinator(min_absolute=500.0)
        coord.on_snapshot(snap(1.0, 100, {"in0": 1.0}))
        coord.on_snapshot(snap(2.0, 100, {"in0": 1.0}))
        coord.on_snapshot(snap(3.0, 1000, {"in0": 0.3, "in1": 0.7}))
        starts = {r.atr_name for r in requests if r.action == "start"}
        assert starts == {"in1"}  # 300 < 500 <= 700

    def test_refresh_while_attack_persists(self):
        coord, requests = self._warmed()
        coord.on_snapshot(snap(3.0, 1000, {"in0": 1.0, "in1": 0.0}))
        coord.on_snapshot(snap(4.0, 1000, {"in0": 1.0, "in1": 0.0}))
        actions = [r.action for r in requests if r.atr_name == "in0"]
        assert actions == ["start", "refresh"]

    def test_new_atr_added_mid_attack(self):
        coord, requests = self._warmed()
        coord.on_snapshot(snap(3.0, 1000, {"in0": 1.0, "in1": 0.0}))
        coord.on_snapshot(snap(4.0, 1000, {"in0": 0.5, "in1": 0.5}))
        starts = [r for r in requests if r.action == "start"]
        assert {r.atr_name for r in starts} == {"in0", "in1"}

    def test_report_records_shares(self):
        coord, _ = self._warmed()
        coord.on_snapshot(snap(3.0, 1000, {"in0": 0.75, "in1": 0.25}))
        report = coord.reports[-1]
        assert report.shares["in0"] == pytest.approx(0.75)
        assert report.egress_estimate == 1000


class TestStandDown:
    def test_stop_after_hysteresis(self):
        coord, requests = make_coordinator(hysteresis_epochs=2)
        coord.on_snapshot(snap(1.0, 100, {"in0": 1.0}))
        coord.on_snapshot(snap(2.0, 100, {"in0": 1.0}))
        coord.on_snapshot(snap(3.0, 1000, {"in0": 1.0}))
        assert coord.active
        coord.on_snapshot(snap(4.0, 100, {"in0": 1.0}))
        assert coord.active  # one calm epoch: not yet
        coord.on_snapshot(snap(5.0, 100, {"in0": 1.0}))
        assert not coord.active
        stops = [r for r in requests if r.action == "stop"]
        assert [r.atr_name for r in stops] == ["in0"]

    def test_attack_resumption_resets_hysteresis(self):
        coord, _ = make_coordinator(hysteresis_epochs=2)
        coord.on_snapshot(snap(1.0, 100, {"in0": 1.0}))
        coord.on_snapshot(snap(2.0, 100, {"in0": 1.0}))
        coord.on_snapshot(snap(3.0, 1000, {"in0": 1.0}))
        coord.on_snapshot(snap(4.0, 100, {"in0": 1.0}))
        coord.on_snapshot(snap(5.0, 1000, {"in0": 1.0}))  # resumes
        coord.on_snapshot(snap(6.0, 100, {"in0": 1.0}))
        assert coord.active  # hysteresis restarted


class TestBaselineGuard:
    def test_calm_band_blocks_poisoning(self):
        coord, _ = make_coordinator(calm_band=1.2, overload_factor=2.0)
        coord.on_snapshot(snap(1.0, 100, {"in0": 1.0}))
        coord.on_snapshot(snap(2.0, 100, {"in0": 1.0}))
        baseline = coord.baseline
        # 1.5x the baseline: above the calm band, below the alarm.
        coord.on_snapshot(snap(3.0, 150, {"in0": 1.0}))
        assert coord.baseline == baseline  # not absorbed

    def test_calm_updates_inside_band(self):
        coord, _ = make_coordinator(calm_band=1.4)
        coord.on_snapshot(snap(1.0, 100, {"in0": 1.0}))
        coord.on_snapshot(snap(2.0, 100, {"in0": 1.0}))
        coord.on_snapshot(snap(3.0, 110, {"in0": 1.0}))
        assert coord.baseline > 100


class TestConfigValidation:
    def test_calm_band_must_undershoot_overload(self):
        with pytest.raises(ValueError):
            PushbackPolicyConfig(overload_factor=1.5, calm_band=1.5)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            PushbackPolicyConfig(warmup_epochs=-1)

    def test_bad_hysteresis_rejected(self):
        with pytest.raises(ValueError):
            PushbackPolicyConfig(hysteresis_epochs=0)

    def test_missing_victim_column_ignored(self):
        coord, requests = make_coordinator(warmup_epochs=0)
        other = MatrixSnapshot(
            time=1.0, sources=["in0"], destinations=["other"],
            matrix=np.array([[5.0]]), ingress_totals={"in0": 5.0},
            egress_totals={"other": 5.0},
        )
        coord.on_snapshot(other)
        assert requests == []
