"""Tests for repro.counting.setunion."""

import pytest

from repro.counting.loglog import LogLogLinkCounter
from repro.counting.setunion import TrafficMatrixEstimator


def _feed(counter, uids):
    for uid in uids:
        counter.sketch.add(uid)
        counter.packets_seen += 1


class TestTrafficMatrixEstimator:
    def _two_by_one(self):
        est = TrafficMatrixEstimator()
        in0 = LogLogLinkCounter("in0", k=12)
        in1 = LogLogLinkCounter("in1", k=12)
        out = LogLogLinkCounter("victim", k=12)
        est.register_ingress(in0)
        est.register_ingress(in1)
        est.register_egress(out)
        return est, in0, in1, out

    def test_pair_estimate_recovers_flow_volume(self):
        est, in0, in1, out = self._two_by_one()
        # in0 sends packets 0..999 to the victim; in1 sends 1000..1499
        # elsewhere (never seen at the victim).
        _feed(in0, range(1000))
        _feed(in1, range(1000, 1500))
        _feed(out, range(1000))
        assert est.pair_estimate("in0", "victim") == pytest.approx(1000, rel=0.3)
        assert est.pair_estimate("in1", "victim") <= 250  # noise floor

    def test_matrix_shape_and_labels(self):
        est, *_ = self._two_by_one()
        sources, destinations, matrix = est.traffic_matrix()
        assert sources == ["in0", "in1"]
        assert destinations == ["victim"]
        assert matrix.shape == (2, 1)

    def test_split_contributions(self):
        est, in0, in1, out = self._two_by_one()
        _feed(in0, range(0, 600))
        _feed(in1, range(600, 1000))
        _feed(out, range(1000))
        m = {
            (i, j): est.pair_estimate(i, j)
            for i in est.ingress_names
            for j in est.egress_names
        }
        assert m[("in0", "victim")] == pytest.approx(600, rel=0.35)
        assert m[("in1", "victim")] == pytest.approx(400, rel=0.35)

    def test_totals(self):
        est, in0, in1, out = self._two_by_one()
        _feed(in0, range(100))
        _feed(out, range(100))
        assert est.ingress_totals()["in0"] == pytest.approx(100, rel=0.25)
        assert est.egress_totals()["victim"] == pytest.approx(100, rel=0.25)

    def test_duplicate_registration_rejected(self):
        est = TrafficMatrixEstimator()
        est.register_ingress(LogLogLinkCounter("a", k=8))
        with pytest.raises(ValueError):
            est.register_ingress(LogLogLinkCounter("a", k=8))
        est.register_egress(LogLogLinkCounter("a", k=8))  # egress namespace separate
        with pytest.raises(ValueError):
            est.register_egress(LogLogLinkCounter("a", k=8))

    def test_reset_clears_all(self):
        est, in0, _, out = self._two_by_one()
        _feed(in0, range(100))
        _feed(out, range(100))
        est.reset()
        assert est.ingress_totals()["in0"] < 1.0
        assert est.egress_totals()["victim"] < 1.0

    def test_names_sorted(self):
        est = TrafficMatrixEstimator()
        est.register_ingress(LogLogLinkCounter("zeta", k=8))
        est.register_ingress(LogLogLinkCounter("alpha", k=8))
        assert est.ingress_names == ["alpha", "zeta"]
