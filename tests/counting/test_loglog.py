"""Tests for repro.counting.loglog."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counting.loglog import LogLogCounter, LogLogLinkCounter
from repro.sim.packet import FlowKey, Packet, PacketType


class TestEstimation:
    @pytest.mark.parametrize("n", [50, 500, 5000, 50000])
    def test_estimate_within_expected_error(self, n):
        c = LogLogCounter(k=10)
        for i in range(n):
            c.add(i)
        # Allow 5 standard errors (1.30/sqrt(1024) ~ 4%).
        tolerance = 5 * c.standard_error
        assert c.estimate() == pytest.approx(n, rel=max(tolerance, 0.15))

    def test_empty_estimates_zero(self):
        assert LogLogCounter(k=8).estimate() < 1.0

    def test_duplicates_not_double_counted(self):
        c = LogLogCounter(k=10)
        for _ in range(10):
            for i in range(1000):
                c.add(i)
        assert c.estimate() == pytest.approx(1000, rel=0.2)
        assert c.items_added == 10_000

    def test_small_range_uses_linear_counting(self):
        c = LogLogCounter(k=10)
        for i in range(20):
            c.add(i)
        assert c.estimate() == pytest.approx(20, rel=0.3)

    def test_reset(self):
        c = LogLogCounter(k=8)
        for i in range(100):
            c.add(i)
        c.reset()
        assert c.estimate() < 1.0
        assert c.items_added == 0

    def test_copy_independent(self):
        c = LogLogCounter(k=8)
        c.add(1)
        dup = c.copy()
        dup.add(2)
        assert not np.array_equal(c.registers, dup.registers)

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            LogLogCounter(k=3)
        with pytest.raises(ValueError):
            LogLogCounter(k=21)

    def test_standard_error_formula(self):
        assert LogLogCounter(k=10).standard_error == pytest.approx(1.30 / 32)


class TestMergeAndSetOps:
    def test_merge_equals_union(self):
        a, b = LogLogCounter(k=10), LogLogCounter(k=10)
        for i in range(1000):
            a.add(i)
        for i in range(500, 1500):
            b.add(i)
        merged = a.merge(b)
        assert merged.estimate() == pytest.approx(1500, rel=0.2)

    def test_merge_idempotent_for_same_set(self):
        a, b = LogLogCounter(k=10), LogLogCounter(k=10)
        for i in range(1000):
            a.add(i)
            b.add(i)
        assert a.merge(b).estimate() == pytest.approx(a.estimate(), rel=0.01)

    def test_union_estimate_matches_merge(self):
        a, b = LogLogCounter(k=10), LogLogCounter(k=10)
        for i in range(300):
            a.add(i)
        for i in range(200, 600):
            b.add(i)
        assert a.union_estimate(b) == pytest.approx(a.merge(b).estimate(), rel=1e-9)

    def test_intersection_via_union_transform(self):
        # The paper's a_ij = |Si| + |Dj| - |Si U Dj|.
        a, b = LogLogCounter(k=12), LogLogCounter(k=12)
        for i in range(2000):
            a.add(i)
        for i in range(1000, 3000):
            b.add(i)
        assert a.intersection_estimate(b) == pytest.approx(1000, rel=0.35)

    def test_disjoint_intersection_near_zero(self):
        a, b = LogLogCounter(k=12), LogLogCounter(k=12)
        for i in range(1000):
            a.add(i)
        for i in range(10_000, 11_000):
            b.add(i)
        # Clamped at zero; noise keeps it small relative to the sets.
        assert a.intersection_estimate(b) <= 200

    def test_incompatible_merge_rejected(self):
        with pytest.raises(ValueError):
            LogLogCounter(k=8).merge(LogLogCounter(k=10))
        with pytest.raises(ValueError):
            LogLogCounter(k=8, salt=1).merge(LogLogCounter(k=8, salt=2))

    @given(st.integers(min_value=0, max_value=2**63))
    @settings(max_examples=50)
    def test_add_never_raises(self, item):
        c = LogLogCounter(k=6)
        c.add(item)
        assert c.estimate() >= 0

    @given(
        st.sets(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200),
        st.sets(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200),
    )
    @settings(max_examples=25)
    def test_union_bounds_property(self, xs, ys):
        """|A U B| >= max(|A|, |B|) estimates (monotonicity of max-merge)."""
        a, b = LogLogCounter(k=10), LogLogCounter(k=10)
        for x in xs:
            a.add(x)
        for y in ys:
            b.add(y)
        union = a.union_estimate(b)
        assert union >= a.estimate() - 1e-9
        assert union >= b.estimate() - 1e-9


class TestLinkCounter:
    def test_counts_data_packets(self):
        counter = LogLogLinkCounter("ingress0", k=8)
        flow = FlowKey(1, 2, 3, 4)
        for _ in range(50):
            assert counter.on_packet(Packet(flow=flow), None, 0.0)
        assert counter.packets_seen == 50
        assert counter.sketch.estimate() == pytest.approx(50, rel=0.3)

    def test_ignores_non_data(self):
        counter = LogLogLinkCounter("ingress0", k=8)
        counter.on_packet(
            Packet(flow=FlowKey(1, 2, 3, 4), ptype=PacketType.ACK), None, 0.0
        )
        assert counter.packets_seen == 0

    def test_stamps_ingress_router(self):
        counter = LogLogLinkCounter("ingress7", k=8)
        p = Packet(flow=FlowKey(1, 2, 3, 4))
        counter.on_packet(p, None, 0.0)
        assert p.ingress_router == "ingress7"

    def test_does_not_overwrite_ingress_stamp(self):
        counter = LogLogLinkCounter("core0", k=8)
        p = Packet(flow=FlowKey(1, 2, 3, 4))
        p.ingress_router = "ingress0"
        counter.on_packet(p, None, 0.0)
        assert p.ingress_router == "ingress0"

    def test_reset(self):
        counter = LogLogLinkCounter("x", k=8)
        counter.on_packet(Packet(flow=FlowKey(1, 2, 3, 4)), None, 0.0)
        counter.reset()
        assert counter.packets_seen == 0
        assert counter.sketch.estimate() < 1.0
