"""Tests for repro.sim.queues."""

import numpy as np
import pytest

from repro.sim.packet import FlowKey, Packet
from repro.sim.queues import DropTailQueue, REDQueue


def pkt(seq=0):
    return Packet(flow=FlowKey(1, 2, 3, 4), seq=seq)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(capacity=4)
        for i in range(3):
            assert q.enqueue(pkt(i), now=0.0)
        assert [q.dequeue().seq for _ in range(3)] == [0, 1, 2]

    def test_drops_when_full(self):
        q = DropTailQueue(capacity=2)
        assert q.enqueue(pkt(), 0.0)
        assert q.enqueue(pkt(), 0.0)
        assert not q.enqueue(pkt(), 0.0)
        assert q.drops == 1
        assert q.enqueued == 2

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue().dequeue() is None

    def test_len(self):
        q = DropTailQueue()
        q.enqueue(pkt(), 0.0)
        assert len(q) == 1
        q.dequeue()
        assert len(q) == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)


class TestRED:
    def test_under_min_threshold_never_drops(self):
        q = REDQueue(capacity=64, min_thresh=10, max_thresh=30,
                     rng=np.random.default_rng(0))
        for i in range(5):
            assert q.enqueue(pkt(i), 0.0)
        assert q.drops == 0

    def test_early_drops_between_thresholds(self):
        q = REDQueue(capacity=64, min_thresh=2, max_thresh=10, max_prob=0.5,
                     weight=1.0, rng=np.random.default_rng(1))
        outcomes = [q.enqueue(pkt(i), 0.0) for i in range(40)]
        assert q.early_drops > 0
        assert any(outcomes)  # not everything dropped

    def test_above_max_threshold_drops_all(self):
        q = REDQueue(capacity=64, min_thresh=2, max_thresh=4, weight=1.0,
                     rng=np.random.default_rng(2))
        for i in range(20):
            q.enqueue(pkt(i), 0.0)
        # Average occupancy is above max_thresh by now: forced drop.
        before = q.drops
        assert not q.enqueue(pkt(99), 0.0)
        assert q.drops == before + 1

    def test_hard_capacity_enforced(self):
        q = REDQueue(capacity=4, min_thresh=1, max_thresh=4, weight=0.001,
                     rng=np.random.default_rng(3))
        accepted = sum(q.enqueue(pkt(i), 0.0) for i in range(50))
        assert accepted <= 4 + q.early_drops + 50  # sanity
        assert len(q) <= 4

    def test_fifo_order_preserved(self):
        q = REDQueue(capacity=16, min_thresh=8, max_thresh=15,
                     rng=np.random.default_rng(4))
        for i in range(4):
            q.enqueue(pkt(i), 0.0)
        assert [q.dequeue().seq for _ in range(4)] == [0, 1, 2, 3]

    def test_parameter_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            REDQueue(capacity=0, rng=rng)
        with pytest.raises(ValueError):
            REDQueue(min_thresh=10, max_thresh=5, rng=rng)
        with pytest.raises(ValueError):
            REDQueue(max_prob=0.0, rng=rng)
        with pytest.raises(ValueError):
            REDQueue(weight=1.5, rng=rng)

    def test_average_occupancy_tracks(self):
        q = REDQueue(capacity=64, min_thresh=20, max_thresh=40, weight=0.5,
                     rng=np.random.default_rng(5))
        for i in range(10):
            q.enqueue(pkt(i), 0.0)
        assert q.average_occupancy > 0.0


class TestREDDropRamp:
    @staticmethod
    def _drop_rate_at_occupancy(level, trials=400, seed=11):
        """Empirical early-drop probability with the EWMA pinned at
        ``level``: the queue is preloaded directly (bypassing admission)
        and weight=1 makes the average track the held queue length."""
        q = REDQueue(capacity=64, min_thresh=5, max_thresh=20, max_prob=0.2,
                     weight=1.0, rng=np.random.default_rng(seed))
        for i in range(level):
            q._queue.append(pkt(i))
        q._avg = float(level)
        drops = 0
        for i in range(trials):
            if q.enqueue(pkt(100 + i), 0.0):
                q._queue.pop()  # hold the length constant at `level`
            else:
                drops += 1
        return drops / trials

    def test_probability_ramps_between_thresholds(self):
        low = self._drop_rate_at_occupancy(7)
        mid = self._drop_rate_at_occupancy(12)
        high = self._drop_rate_at_occupancy(18)
        assert low < mid < high

    def test_zero_below_min_threshold(self):
        assert self._drop_rate_at_occupancy(4) == 0.0

    def test_certain_at_max_threshold(self):
        assert self._drop_rate_at_occupancy(20) == 1.0

    def test_early_drops_counted_separately_from_overflow(self):
        q = REDQueue(capacity=4, min_thresh=1, max_thresh=4, weight=1.0,
                     rng=np.random.default_rng(6))
        for i in range(30):
            q.enqueue(pkt(i), 0.0)
        assert len(q) <= 4
        assert q.drops >= q.early_drops
        assert q.drops > 0

    def test_dequeue_empty_and_after_drain(self):
        q = REDQueue(capacity=8, min_thresh=2, max_thresh=6,
                     rng=np.random.default_rng(7))
        assert q.dequeue() is None
        q.enqueue(pkt(0), 0.0)
        assert q.dequeue().seq == 0
        assert q.dequeue() is None
