"""Property-based tests on the simulator substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.packet import FlowKey, Packet
from repro.sim.queues import DropTailQueue, DRRQueue
from repro.sim.topology import build_star_domain, build_transit_stub_domain


class TestEngineOrderingProperty:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                    max_size=60))
    @settings(max_examples=50)
    def test_execution_order_is_sorted(self, delays):
        """Events always run in non-decreasing time order, regardless of
        the order they were scheduled in."""
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.tuples(st.floats(min_value=0, max_value=10),
                              st.booleans()),
                    min_size=1, max_size=40))
    @settings(max_examples=30)
    def test_cancelled_events_never_fire(self, entries):
        sim = Simulator()
        fired = []
        events = []
        for delay, cancel in entries:
            ev = sim.schedule(delay, lambda: fired.append(1))
            if cancel:
                ev.cancel()
        expected = sum(1 for _, cancel in entries if not cancel)
        sim.run()
        assert len(fired) == expected


class TestQueueConservationProperty:
    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1,
                    max_size=80),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=30)
    def test_droptail_conserves_packets(self, flows, capacity):
        """accepted == dequeued + still-queued; drops + accepted == offers."""
        q = DropTailQueue(capacity=capacity)
        accepted = 0
        for i, flow in enumerate(flows):
            if q.enqueue(Packet(flow=FlowKey(flow, 2, 3, 4), seq=i), 0.0):
                accepted += 1
        drained = 0
        while q.dequeue() is not None:
            drained += 1
        assert accepted == drained
        assert accepted + q.drops == len(flows)

    @given(st.lists(st.integers(min_value=1, max_value=5), min_size=1,
                    max_size=80),
           st.integers(min_value=2, max_value=20))
    @settings(max_examples=30)
    def test_drr_conserves_packets(self, flows, capacity):
        q = DRRQueue(capacity=capacity)
        offered = len(flows)
        for i, flow in enumerate(flows):
            q.enqueue(Packet(flow=FlowKey(flow, 2, 3, 4), seq=i), 0.0)
        drained = 0
        while q.dequeue() is not None:
            drained += 1
        assert drained + q.drops == offered
        assert len(q) == 0
        assert q.active_flows == 0

    @given(st.lists(st.integers(min_value=1, max_value=3), min_size=6,
                    max_size=60))
    @settings(max_examples=30)
    def test_drr_per_flow_fifo(self, flows):
        """Within one flow, DRR never reorders packets."""
        q = DRRQueue(capacity=1000)
        for i, flow in enumerate(flows):
            q.enqueue(Packet(flow=FlowKey(flow, 2, 3, 4), seq=i), 0.0)
        last_seq: dict[int, int] = {}
        while (p := q.dequeue()) is not None:
            flow = p.flow.src_ip
            if flow in last_seq:
                assert p.seq > last_seq[flow]
            last_seq[flow] = p.seq


class TestTopologyProperties:
    @pytest.mark.parametrize("n", [5, 11, 23, 40])
    def test_transit_stub_every_ingress_routes_to_victim(self, n):
        if n < 3:
            return
        topo = build_transit_stub_domain(n_routers=max(5, n))
        victim_subnet = topo.subnet_of_router[topo.victim_router_name]
        for name in topo.ingress_names:
            table = topo.routers[name].routing_table
            assert table.next_hop(victim_subnet.base) is not None, name

    @pytest.mark.parametrize("n", [5, 11, 23])
    def test_transit_stub_reverse_paths_exist(self, n):
        """Victim-side ACKs must be routable back to every ingress subnet."""
        topo = build_transit_stub_domain(n_routers=max(5, n))
        victim_table = topo.victim_router.routing_table
        for name in topo.ingress_names:
            subnet = topo.subnet_of_router[name]
            assert victim_table.next_hop(subnet.base) is not None, name

    def test_star_subnets_disjoint(self):
        topo = build_star_domain(n_ingress=6)
        subnets = list(topo.subnet_of_router.values())
        for i, a in enumerate(subnets):
            for b in subnets[i + 1:]:
                assert not a.contains(b.base)
                assert not b.contains(a.base)

    @pytest.mark.parametrize("n", [6, 14, 30])
    def test_uplinks_distinct_per_ingress(self, n):
        topo = build_transit_stub_domain(n_routers=n)
        uplinks = {id(topo.ingress_uplink(name)) for name in topo.ingress_names}
        assert len(uplinks) == len(topo.ingress_names)
