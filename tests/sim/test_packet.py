"""Tests for repro.sim.packet."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.packet import FlowKey, Packet, PacketType, reset_packet_ids

ports = st.integers(min_value=0, max_value=0xFFFF)
ips = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestFlowKey:
    def test_hashed_is_stable(self):
        k = FlowKey(1, 2, 3, 4)
        assert k.hashed() == FlowKey(1, 2, 3, 4).hashed()

    def test_different_tuples_differ(self):
        assert FlowKey(1, 2, 3, 4).hashed() != FlowKey(1, 2, 4, 3).hashed()

    def test_reversed_swaps_endpoints(self):
        k = FlowKey(1, 2, 3, 4)
        r = k.reversed()
        assert (r.src_ip, r.dst_ip, r.src_port, r.dst_port) == (2, 1, 4, 3)

    def test_double_reverse_is_identity(self):
        k = FlowKey(9, 8, 7, 6)
        assert k.reversed().reversed() == k

    def test_port_range_enforced(self):
        with pytest.raises(ValueError):
            FlowKey(1, 2, 70000, 80)
        with pytest.raises(ValueError):
            FlowKey(1, 2, 80, -1)

    @given(ips, ips, ports, ports)
    def test_hash_in_64_bit_range(self, a, b, c, d):
        assert 0 <= FlowKey(a, b, c, d).hashed() < (1 << 64)

    def test_frozen(self):
        k = FlowKey(1, 2, 3, 4)
        with pytest.raises(AttributeError):
            k.src_ip = 9  # type: ignore[misc]


class TestPacket:
    def test_uids_unique_and_increasing(self):
        k = FlowKey(1, 2, 3, 4)
        a, b = Packet(flow=k), Packet(flow=k)
        assert b.uid == a.uid + 1

    def test_reset_packet_ids(self):
        k = FlowKey(1, 2, 3, 4)
        Packet(flow=k)
        reset_packet_ids()
        assert Packet(flow=k).uid == 1

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            Packet(flow=FlowKey(1, 2, 3, 4), size=0)

    def test_flow_hash_matches_key(self):
        k = FlowKey(5, 6, 7, 8)
        assert Packet(flow=k).flow_hash == k.hashed()

    def test_src_dst_accessors(self):
        p = Packet(flow=FlowKey(5, 6, 7, 8))
        assert p.src_ip == 5
        assert p.dst_ip == 6

    def test_default_type_is_data(self):
        assert Packet(flow=FlowKey(1, 2, 3, 4)).ptype is PacketType.DATA

    def test_make_ack_reverses_flow_and_echoes_timestamp(self):
        p = Packet(flow=FlowKey(1, 2, 3, 4), seq=7, ts_val=1.25)
        ack = p.make_ack(ack_seq=8, now=1.5)
        assert ack.ptype is PacketType.ACK
        assert ack.flow == p.flow.reversed()
        assert ack.ack == 8
        assert ack.ts_ecr == 1.25
        assert ack.ts_val == 1.5
        assert ack.size == 40

    def test_attack_flag_defaults_false(self):
        assert not Packet(flow=FlowKey(1, 2, 3, 4)).is_attack
