"""Tests for repro.sim.packet."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.packet import (
    FlowKey,
    Packet,
    PacketType,
    enable_packet_pool,
    packet_pool_stats,
    reset_packet_ids,
)

ports = st.integers(min_value=0, max_value=0xFFFF)
ips = st.integers(min_value=0, max_value=0xFFFFFFFF)


class TestFlowKey:
    def test_hashed_is_stable(self):
        k = FlowKey(1, 2, 3, 4)
        assert k.hashed() == FlowKey(1, 2, 3, 4).hashed()

    def test_different_tuples_differ(self):
        assert FlowKey(1, 2, 3, 4).hashed() != FlowKey(1, 2, 4, 3).hashed()

    def test_reversed_swaps_endpoints(self):
        k = FlowKey(1, 2, 3, 4)
        r = k.reversed()
        assert (r.src_ip, r.dst_ip, r.src_port, r.dst_port) == (2, 1, 4, 3)

    def test_double_reverse_is_identity(self):
        k = FlowKey(9, 8, 7, 6)
        assert k.reversed().reversed() == k

    def test_port_range_enforced(self):
        with pytest.raises(ValueError):
            FlowKey(1, 2, 70000, 80)
        with pytest.raises(ValueError):
            FlowKey(1, 2, 80, -1)

    @given(ips, ips, ports, ports)
    def test_hash_in_64_bit_range(self, a, b, c, d):
        assert 0 <= FlowKey(a, b, c, d).hashed() < (1 << 64)

    def test_frozen(self):
        k = FlowKey(1, 2, 3, 4)
        with pytest.raises(AttributeError):
            k.src_ip = 9  # type: ignore[misc]


class TestPacket:
    def test_uids_unique_and_increasing(self):
        k = FlowKey(1, 2, 3, 4)
        a, b = Packet(flow=k), Packet(flow=k)
        assert b.uid == a.uid + 1

    def test_reset_packet_ids(self):
        k = FlowKey(1, 2, 3, 4)
        Packet(flow=k)
        reset_packet_ids()
        assert Packet(flow=k).uid == 1

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            Packet(flow=FlowKey(1, 2, 3, 4), size=0)

    def test_flow_hash_matches_key(self):
        k = FlowKey(5, 6, 7, 8)
        assert Packet(flow=k).flow_hash == k.hashed()

    def test_src_dst_accessors(self):
        p = Packet(flow=FlowKey(5, 6, 7, 8))
        assert p.src_ip == 5
        assert p.dst_ip == 6

    def test_default_type_is_data(self):
        assert Packet(flow=FlowKey(1, 2, 3, 4)).ptype is PacketType.DATA

    def test_make_ack_reverses_flow_and_echoes_timestamp(self):
        p = Packet(flow=FlowKey(1, 2, 3, 4), seq=7, ts_val=1.25)
        ack = p.make_ack(ack_seq=8, now=1.5)
        assert ack.ptype is PacketType.ACK
        assert ack.flow == p.flow.reversed()
        assert ack.ack == 8
        assert ack.ts_ecr == 1.25
        assert ack.ts_val == 1.5
        assert ack.size == 40

    def test_attack_flag_defaults_false(self):
        assert not Packet(flow=FlowKey(1, 2, 3, 4)).is_attack


class TestFlowKeyCaches:
    def test_reversed_is_memoized_both_ways(self):
        k = FlowKey(1, 2, 3, 4)
        r = k.reversed()
        assert r is k.reversed()
        assert r.reversed() is k

    def test_hash_is_precomputed_attribute(self):
        k = FlowKey(1, 2, 3, 4)
        assert k._hash64 == k.hashed()
        assert hash(k) == k.hashed()

    def test_equality_and_ordering_match_field_tuples(self):
        a, b = FlowKey(1, 2, 3, 4), FlowKey(1, 2, 3, 4)
        assert a == b and not (a != b)
        assert a != FlowKey(1, 2, 4, 3)
        keys = [FlowKey(2, 1, 1, 1), FlowKey(1, 2, 3, 4), FlowKey(1, 2, 3, 3)]
        assert sorted(keys) == [
            FlowKey(1, 2, 3, 3), FlowKey(1, 2, 3, 4), FlowKey(2, 1, 1, 1)
        ]

    def test_ordering_against_other_types_raises_type_error(self):
        with pytest.raises(TypeError):
            FlowKey(1, 2, 3, 4) < 5  # noqa: B015 - the comparison IS the test
        assert FlowKey(1, 2, 3, 4) != 5

    def test_usable_as_dict_key(self):
        table = {FlowKey(1, 2, 3, 4): "x"}
        assert table[FlowKey(1, 2, 3, 4)] == "x"

    def test_pickle_roundtrip(self):
        import pickle

        k = FlowKey(9, 8, 7, 6)
        clone = pickle.loads(pickle.dumps(k))
        assert clone == k and clone.hashed() == k.hashed()


@pytest.fixture
def pool():
    """Enable the packet pool for one test, always disabling after."""
    enable_packet_pool(True)
    yield
    enable_packet_pool(False)


class TestPacketPool:
    def test_release_is_noop_while_disabled(self):
        before = packet_pool_stats()
        p = Packet(flow=FlowKey(1, 2, 3, 4))
        p.release()
        p.release()  # no pool, no double-release bookkeeping
        after = packet_pool_stats()
        assert after["released"] == before["released"]
        assert after["free"] == 0

    def test_acquire_reuses_released_packets(self, pool):
        p = Packet.acquire(flow=FlowKey(1, 2, 3, 4))
        p.release()
        q = Packet.acquire(flow=FlowKey(5, 6, 7, 8))
        assert q is p
        stats = packet_pool_stats()
        assert stats["reused"] == 1 and stats["released"] == 1

    def test_reuse_never_leaks_a_stale_field(self, pool):
        """Every field of a recycled packet must be reset — a stale
        ``is_attack`` or timestamp would silently corrupt metrics."""
        dirty = Packet.acquire(
            flow=FlowKey(1, 2, 3, 4), ptype=PacketType.DUP_ACK, size=40,
            seq=77, ack=88, ts_val=1.5, ts_ecr=2.5, created_at=3.5,
            is_attack=True,
        )
        dirty.hop_count = 9
        dirty.ingress_router = "atr3"
        dirty._uid_hash = 123456  # pretend a sketch hashed it
        old_uid = dirty.uid
        dirty.release()

        fresh = Packet.acquire(flow=FlowKey(9, 9, 9, 9))
        assert fresh is dirty  # recycled object...
        assert fresh.flow == FlowKey(9, 9, 9, 9)  # ...with no stale field
        assert fresh.ptype is PacketType.DATA
        assert fresh.size == 1000
        assert fresh.seq == 0 and fresh.ack == 0
        assert fresh.ts_val == 0.0 and fresh.ts_ecr == 0.0
        assert fresh.created_at == 0.0
        assert not fresh.is_attack
        assert fresh.hop_count == 0
        assert fresh.ingress_router is None
        assert fresh._uid_hash is None
        assert fresh.uid == old_uid + 1  # fresh identity for the sketches

    def test_double_release_raises(self, pool):
        p = Packet.acquire(flow=FlowKey(1, 2, 3, 4))
        p.release()
        with pytest.raises(RuntimeError, match="double release"):
            p.release()

    def test_uid_sequence_identical_with_and_without_pool(self):
        reset_packet_ids()
        unpooled = [Packet(flow=FlowKey(1, 2, 3, 4)).uid for _ in range(5)]
        reset_packet_ids()
        enable_packet_pool(True)
        try:
            pooled = []
            for _ in range(5):
                p = Packet.acquire(flow=FlowKey(1, 2, 3, 4))
                pooled.append(p.uid)
                p.release()
        finally:
            enable_packet_pool(False)
        assert pooled == unpooled

    def test_acquire_validates_size(self, pool):
        Packet.acquire(flow=FlowKey(1, 2, 3, 4)).release()
        with pytest.raises(ValueError):
            Packet.acquire(flow=FlowKey(1, 2, 3, 4), size=0)

    def test_rejected_acquire_is_side_effect_free(self, pool):
        """A size-rejected acquire must not pop the pool, skew the
        counters, or leak the recycled object half-reset."""
        p = Packet.acquire(flow=FlowKey(1, 2, 3, 4))
        p.release()
        before = packet_pool_stats()
        with pytest.raises(ValueError):
            Packet.acquire(flow=FlowKey(5, 6, 7, 8), size=-1)
        assert packet_pool_stats() == before
        q = Packet.acquire(flow=FlowKey(5, 6, 7, 8))
        assert q is p  # the pooled packet is still available and intact
