"""Calendar-queue backend: ordering parity with the heap, cancellation,
resize behaviour under skewed schedules, series events, and the
non-finite-time regression (NaN/inf corrupting queue order)."""

from __future__ import annotations

import math
import random

import pytest

from repro.sim.engine import Simulator


def _run_trace(queue: str, script) -> list:
    """Execute ``script(sim, log)`` and return the logged execution."""
    sim = Simulator(queue=queue)
    log: list = []
    script(sim, log)
    sim.run()
    return log


class TestNonFiniteTimes:
    """Regression: ``NaN < now`` is False, so a NaN time used to slip
    past the past-time guard and corrupt heap ordering; +inf parked an
    unreachable event forever."""

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_schedule_at_rejects_non_finite(self, sim, bad):
        with pytest.raises(ValueError, match="finite|past"):
            sim.schedule_at(bad, lambda: None)

    def test_schedule_rejects_nan_delay(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(math.nan, lambda: None)

    def test_schedule_rejects_inf_delay(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(math.inf, lambda: None)

    def test_queue_intact_after_rejection(self, sim):
        ran = []
        sim.schedule(1.0, ran.append, "ok")
        with pytest.raises(ValueError):
            sim.schedule_at(math.nan, ran.append, "bad")
        sim.run()
        assert ran == ["ok"]


class TestBackendParity:
    """Both backends must execute the exact same sequence."""

    def test_randomized_schedule_identical_order(self):
        def script(sim, log):
            rng = random.Random(20260728)
            events = []
            for i in range(2000):
                t = round(rng.uniform(0.0, 10.0), 3)  # forces time ties
                prio = rng.choice([-1, 0, 1])
                events.append((t, prio, i))
            for t, prio, i in events:
                sim.schedule_at(t, log.append, (t, prio, i), priority=prio)

        assert _run_trace("heap", script) == _run_trace("calendar", script)

    def test_same_time_priority_and_seq_ties(self):
        def script(sim, log):
            for i in range(50):
                sim.schedule_at(1.0, log.append, ("late", i), priority=1)
                sim.schedule_at(1.0, log.append, ("early", i), priority=-1)
                sim.schedule_at(1.0, log.append, ("mid", i))

        heap_order = _run_trace("heap", script)
        assert _run_trace("calendar", script) == heap_order
        # Priority buckets, each FIFO by scheduling order.
        labels = [tag for tag, _ in heap_order]
        assert labels == ["early"] * 50 + ["mid"] * 50 + ["late"] * 50

    def test_cancellation_interleaved_with_execution(self):
        def script(sim, log):
            rng = random.Random(7)
            handles = []
            for i in range(500):
                handles.append(sim.schedule_at(rng.uniform(0, 5), log.append, i))
            for h in rng.sample(handles, 250):
                h.cancel()

        assert _run_trace("heap", script) == _run_trace("calendar", script)


class TestCalendarInternals:
    def test_far_future_overflow_and_migration(self):
        sim = Simulator(queue="calendar")
        ran = []
        # A dense near cluster plus timers far beyond any initial window.
        for i in range(100):
            sim.schedule_at(0.001 * i, ran.append, ("near", i))
        for i in range(10):
            sim.schedule_at(1000.0 + i, ran.append, ("far", i))
        sim.schedule_at(59.9, ran.append, ("mid", 0))
        sim.run()
        assert ran[:100] == [("near", i) for i in range(100)]
        assert ran[100] == ("mid", 0)
        assert ran[101:] == [("far", i) for i in range(10)]

    def test_bucket_resize_under_skewed_schedule(self):
        """Growth under a dense burst, shrink while draining a sparse
        tail, with ties and far-future outliers mixed in — execution
        order must survive every rebuild."""
        sim = Simulator(queue="calendar")
        ran = []
        expected = []
        # Dense burst: thousands of events across a few milliseconds,
        # many at identical times (zero gaps must not break width tuning).
        for i in range(4000):
            t = 0.001 * (i % 10)
            sim.schedule_at(t, ran.append, (t, i))
        expected.extend(sorted([(0.001 * (i % 10), i) for i in range(4000)]))
        # Sparse skewed tail: exponentially spread timers.
        t = 1.0
        for i in range(50):
            t *= 1.2
            sim.schedule_at(t, ran.append, (t, 4000 + i))
            expected.append((t, 4000 + i))
        sim.run()
        assert ran == expected
        assert sim.pending() == 0
        stats = sim.queue_stats()
        assert stats["backend"] == "calendar"
        assert stats["peak_occupancy"] >= 4050
        assert stats["resizes"] > 0  # the wheel actually re-tuned itself

    def test_mass_cancellation_compacts_storage(self):
        """Cancel is O(1) bookkeeping; once dead entries outnumber live
        ones the wheel compacts them away instead of scanning past them
        forever."""
        sim = Simulator(queue="calendar")
        events = [sim.schedule_at(1.0 + i * 1e-4, lambda: None) for i in range(5000)]
        assert sim.queue_stats()["queued"] == 5000
        for ev in events[:4900]:
            ev.cancel()
        assert sim.pending() == 100
        # Compaction bound: dead entries never linger past max(64, live)
        # (each time they outnumber live ones the wheel rebuilds), so
        # storage holds ~100 live + at most ~100 uncompacted dead — not
        # the 4900 cancelled tuples.
        stats = sim.queue_stats()
        assert stats["queued"] - sim.pending() == stats["dead"]
        assert stats["dead"] <= 100
        sim.run()
        assert sim.pending() == 0

    def test_anchor_jump_skips_empty_windows(self):
        """An empty wheel re-anchors directly at the next epoch instead
        of stepping window by window."""
        sim = Simulator(queue="calendar")
        ran = []
        sim.schedule_at(0.0, ran.append, "a")
        sim.schedule_at(1e6 - 1.0, ran.append, "b")  # far future, finite
        sim.run()
        assert ran == ["a", "b"]
        assert sim.now == 1e6 - 1.0


class TestSeriesEvents:
    def test_fires_at_each_time(self, sim):
        fired = []
        sim.schedule_series([1.0, 2.0, 3.5], lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0, 2.0, 3.5]
        assert sim.events_executed == 3

    def test_counts_as_one_pending_event(self, sim):
        series = sim.schedule_series([1.0, 2.0, 3.0], lambda: None)
        assert sim.pending() == 1
        sim.run(until=1.5)
        assert sim.pending() == 1
        sim.run()
        assert sim.pending() == 0
        assert series.cancelled

    def test_extend_from_callback(self, sim):
        fired = []

        def tick():
            fired.append(sim.now)
            if series.index + 1 >= len(series.times) and len(fired) < 5:
                series.extend([sim.now + 1.0])

        series = sim.schedule_series([1.0], tick)
        sim.run()
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_from_callback(self, sim):
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) == 2:
                series.stop()

        series = sim.schedule_series([1.0, 2.0, 3.0, 4.0], tick)
        sim.run()
        assert fired == [1.0, 2.0]
        assert series.cancelled
        assert sim.pending() == 0

    def test_stop_while_queued_cancels_next_firing(self, sim):
        fired = []
        series = sim.schedule_series([1.0, 2.0, 3.0], lambda: fired.append(sim.now))
        sim.run(until=1.5)
        series.stop()  # external quiesce between firings
        sim.run()
        assert fired == [1.0]
        assert sim.pending() == 0

    def test_cancel_while_queued(self, sim):
        fired = []
        series = sim.schedule_series([1.0, 2.0], lambda: fired.append(sim.now))
        series.cancel()
        assert sim.pending() == 0
        sim.run()
        assert fired == []

    def test_cancel_from_own_callback_ends_series(self, sim):
        fired = []

        def tick():
            fired.append(sim.now)
            series.cancel()

        series = sim.schedule_series([1.0, 2.0, 3.0], tick)
        sim.run()
        assert fired == [1.0]
        assert sim.pending() == 0

    def test_seq_interleaving_matches_self_rescheduling(self):
        """A series and a handler that re-schedules itself as its last
        statement must interleave identically with same-time events."""

        def with_series(sim, log):
            sim.schedule_series([1.0, 2.0, 3.0], lambda: (
                log.append(("tick", sim.now)),
                sim.schedule_at(sim.now, log.append, ("follow", sim.now)),
            ))
            for t in (1.0, 2.0, 3.0):
                sim.schedule_at(t, log.append, ("other", t))

        def with_reschedule(sim, log):
            def tick():
                log.append(("tick", sim.now))
                sim.schedule_at(sim.now, log.append, ("follow", sim.now))
                if sim.now < 3.0:
                    sim.schedule_at(sim.now + 1.0, tick)

            sim.schedule_at(1.0, tick)
            for t in (1.0, 2.0, 3.0):
                sim.schedule_at(t, log.append, ("other", t))

        for queue in ("heap", "calendar"):
            assert (
                _run_trace(queue, with_series)
                == _run_trace(queue, with_reschedule)
            )

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            sim.schedule_series([], lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_series([2.0, 1.0], lambda: None)  # not ascending
        with pytest.raises(ValueError):
            sim.schedule_series([math.nan], lambda: None)
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_series([0.5], lambda: None)  # in the past
        with pytest.raises(TypeError):
            sim.schedule_series([2.0], "not callable")  # type: ignore[arg-type]

    def test_extend_validates_like_schedule_series(self, sim):
        """Regression: extend() is an insertion path into the queue — an
        unchecked NaN appended mid-series used to wedge the clock."""
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) == 1:
                with pytest.raises(ValueError):
                    series.extend([math.nan])
                with pytest.raises(ValueError):
                    series.extend([sim.now - 1.0])  # behind the schedule
                with pytest.raises(ValueError):
                    series.extend([math.inf])
                series.extend([sim.now + 1.0])  # valid continuation

        series = sim.schedule_series([1.0], tick)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]
        assert len(series.times) == 2  # failed extends appended nothing

    def test_equal_times_allowed_within_series(self, sim):
        fired = []
        sim.schedule_series([1.0, 1.0, 2.0], lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0, 1.0, 2.0]

    def test_extend_prunes_consumed_history(self, sim):
        """A long-lived chunked series must hold ~one chunk, not its
        whole departure history (an O(total ticks) leak otherwise)."""
        fired = [0]
        chunk = 16

        def tick():
            fired[0] += 1
            if series.index + 1 >= len(series.times) and fired[0] < 200:
                series.extend(sim.now + 0.1 * (i + 1) for i in range(chunk))

        series = sim.schedule_series([1.0], tick)
        sim.run()
        assert fired[0] >= 200
        assert len(series.times) <= 2 * chunk
