"""Tests for the DRR fair queue."""

import pytest

from repro.sim.packet import FlowKey, Packet
from repro.sim.queues import DRRQueue


def pkt(flow_id, seq=0, size=1000):
    return Packet(flow=FlowKey(flow_id, 2, 3, 4), seq=seq, size=size)


class TestDRRBasics:
    def test_single_flow_fifo(self):
        q = DRRQueue(capacity=8)
        for i in range(4):
            assert q.enqueue(pkt(1, seq=i), 0.0)
        assert [q.dequeue().seq for _ in range(4)] == [0, 1, 2, 3]

    def test_empty_dequeue(self):
        assert DRRQueue().dequeue() is None

    def test_len_and_active_flows(self):
        q = DRRQueue(capacity=8)
        q.enqueue(pkt(1), 0.0)
        q.enqueue(pkt(2), 0.0)
        assert len(q) == 2
        assert q.active_flows == 2
        q.dequeue()
        q.dequeue()
        assert len(q) == 0
        assert q.active_flows == 0

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            DRRQueue(capacity=0)
        with pytest.raises(ValueError):
            DRRQueue(quantum=0)


class TestFairness:
    def test_interleaves_flows(self):
        q = DRRQueue(capacity=16, quantum=1000)
        for i in range(4):
            q.enqueue(pkt(1, seq=i), 0.0)
            q.enqueue(pkt(2, seq=i + 100), 0.0)
        served = [q.dequeue().flow.src_ip for _ in range(8)]
        # Both flows served in alternation (neither starves).
        assert served.count(1) == 4
        assert served.count(2) == 4
        first_half = served[:4]
        assert set(first_half) == {1, 2}

    def test_flood_cannot_starve_mouse(self):
        q = DRRQueue(capacity=10, quantum=1000)
        # Flow 1 floods; flow 2 sends one packet.
        for i in range(9):
            q.enqueue(pkt(1, seq=i), 0.0)
        q.enqueue(pkt(2, seq=99), 0.0)
        served = [q.dequeue().flow.src_ip for _ in range(4)]
        assert 2 in served  # the mouse gets through early

    def test_quantum_smaller_than_packet_still_serves(self):
        q = DRRQueue(capacity=4, quantum=100)  # 10 visits per 1000B packet
        q.enqueue(pkt(1), 0.0)
        assert q.dequeue() is not None

    def test_byte_fairness_with_mixed_sizes(self):
        q = DRRQueue(capacity=32, quantum=1000)
        # Flow 1: large packets; flow 2: small packets.
        for i in range(8):
            q.enqueue(pkt(1, seq=i, size=1000), 0.0)
        for i in range(8):
            q.enqueue(pkt(2, seq=i, size=250), 0.0)
        first_8 = [q.dequeue() for _ in range(8)]
        bytes_1 = sum(p.size for p in first_8 if p.flow.src_ip == 1)
        bytes_2 = sum(p.size for p in first_8 if p.flow.src_ip == 2)
        # Byte shares comparable (within one quantum).
        assert abs(bytes_1 - bytes_2) <= 1000 + 250


class TestOverflow:
    def test_longest_queue_drop(self):
        q = DRRQueue(capacity=4, quantum=1000)
        for i in range(3):
            q.enqueue(pkt(1, seq=i), 0.0)
        q.enqueue(pkt(2, seq=0), 0.0)
        # Full: a new flow-3 arrival evicts from flow 1 (the longest).
        assert q.enqueue(pkt(3, seq=0), 0.0)
        assert q.drops == 1
        assert len(q) == 4
        served = []
        while (p := q.dequeue()) is not None:
            served.append(p)
        flow1_count = sum(1 for p in served if p.flow.src_ip == 1)
        assert flow1_count == 2  # one was evicted

    def test_arrival_to_longest_queue_dropped(self):
        q = DRRQueue(capacity=3, quantum=1000)
        for i in range(3):
            q.enqueue(pkt(1, seq=i), 0.0)
        assert not q.enqueue(pkt(1, seq=3), 0.0)
        assert q.drops == 1


class TestLinkIntegration:
    def test_drr_behind_link(self, sim):
        from repro.sim.link import SimplexLink

        class _Cap:
            def __init__(self, name):
                self.name = name
                self.got = []

            def receive(self, packet, via=None):
                self.got.append(packet)

            def attach_link(self, link):
                pass

        src, dst = _Cap("a"), _Cap("b")
        link = SimplexLink(sim, src, dst, 8e6, 0.001, DRRQueue(capacity=16))
        for i in range(3):
            link.send(pkt(1, seq=i))
            link.send(pkt(2, seq=i))
        sim.run()
        assert len(dst.got) == 6


class TestDeficitAccounting:
    def test_long_run_byte_fairness_under_backlog(self):
        """Two continuously backlogged flows with unequal packet sizes
        converge to equal byte shares (deficit carryover is exact).

        Both flows are topped up independently so neither ever drains —
        DRR's fairness guarantee is for backlogged flows only.
        """
        q = DRRQueue(capacity=64, quantum=500)
        sizes = {1: 1000, 2: 400}
        seq = {1: 0, 2: 0}
        backlog = {1: 0, 2: 0}

        def refill():
            for flow, size in sizes.items():
                while backlog[flow] < 8:
                    assert q.enqueue(pkt(flow, seq=seq[flow], size=size), 0.0)
                    seq[flow] += 1
                    backlog[flow] += 1

        served_bytes = {1: 0, 2: 0}
        refill()
        for _ in range(600):
            p = q.dequeue()
            served_bytes[p.flow.src_ip] += p.size
            backlog[p.flow.src_ip] -= 1
            refill()
        total = sum(served_bytes.values())
        share_1 = served_bytes[1] / total
        # Equal byte shares within a couple of quanta over the run.
        assert abs(share_1 - 0.5) < 0.02

    def test_deficit_forgotten_when_flow_drains(self):
        """A flow that empties loses its deficit: no banked credit."""
        q = DRRQueue(capacity=8, quantum=1000)
        q.enqueue(pkt(1, size=1000), 0.0)
        assert q.dequeue() is not None
        assert q.active_flows == 0
        # Re-arrival starts from zero deficit (needs a fresh quantum).
        q.enqueue(pkt(1, seq=1, size=1000), 0.0)
        assert q.dequeue().seq == 1

    def test_eviction_emptying_flow_forgets_it(self):
        q = DRRQueue(capacity=2, quantum=1000)
        q.enqueue(pkt(1, seq=0), 0.0)
        q.enqueue(pkt(2, seq=0), 0.0)
        # Overflow: both queues length 1; max() picks one victim whose
        # only packet is evicted, so the flow must be fully forgotten.
        q.enqueue(pkt(3, seq=0), 0.0)
        assert len(q) == 2
        assert q.active_flows == 2
        drained = []
        while (p := q.dequeue()) is not None:
            drained.append(p.flow.src_ip)
        assert len(drained) == 2
