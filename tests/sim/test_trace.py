"""Tests for repro.sim.trace."""

from repro.sim.trace import EventTrace, TraceRecord


class TestEventTrace:
    def test_record_and_select(self):
        trace = EventTrace()
        trace.record(1.0, "drop.probe", flow=42)
        trace.record(2.0, "drop.pdt", flow=42)
        trace.record(3.0, "probe.sent", flow=42)
        assert trace.count("drop.probe") == 1
        assert trace.count("drop.") == 2  # prefix match
        assert len(trace) == 3

    def test_disabled_trace_is_noop(self):
        trace = EventTrace(enabled=False)
        trace.record(1.0, "drop.probe")
        assert len(trace) == 0

    def test_max_records_cap(self):
        trace = EventTrace(max_records=2)
        for i in range(5):
            trace.record(float(i), "x")
        assert len(trace) == 2
        assert trace.dropped_records == 3

    def test_between(self):
        trace = EventTrace()
        for t in (0.5, 1.5, 2.5):
            trace.record(t, "x")
        assert len(trace.between(1.0, 2.0)) == 1
        # Interval is half-open: [start, end).
        assert len(trace.between(0.5, 1.5)) == 1

    def test_detail_kept(self):
        trace = EventTrace()
        trace.record(1.0, "flow.cut", flow=7, atr="ingress0")
        record = trace.select("flow.cut")[0]
        assert record.detail == {"flow": 7, "atr": "ingress0"}

    def test_categories(self):
        trace = EventTrace()
        trace.record(1.0, "a")
        trace.record(2.0, "b")
        assert trace.categories() == {"a", "b"}

    def test_clear(self):
        trace = EventTrace()
        trace.record(1.0, "a")
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped_records == 0

    def test_extend_respects_cap(self):
        trace = EventTrace(max_records=1)
        records = [TraceRecord(float(i), "x") for i in range(3)]
        trace.extend(records)
        assert len(trace) == 1
        assert trace.dropped_records == 2

    def test_iteration(self):
        trace = EventTrace()
        trace.record(1.0, "a")
        trace.record(2.0, "b")
        assert [r.category for r in trace] == ["a", "b"]
