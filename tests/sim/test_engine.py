"""Tests for repro.sim.engine."""

import math

import pytest



class TestScheduling:
    def test_now_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self, sim):
        order = []
        for tag in ("x", "y", "z"):
            sim.schedule(1.0, order.append, tag)
        sim.run()
        assert order == ["x", "y", "z"]

    def test_priority_breaks_ties(self, sim):
        order = []
        sim.schedule(1.0, order.append, "late", priority=1)
        sim.schedule(1.0, order.append, "early", priority=-1)
        sim.run()
        assert order == ["early", "late"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_non_callable_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.schedule(1.0, "not callable")  # type: ignore[arg-type]

    def test_handler_args_passed(self, sim):
        got = []
        sim.schedule(0.1, lambda a, b: got.append((a, b)), 1, "two")
        sim.run()
        assert got == [(1, "two")]


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        ran = []
        sim.schedule(1.0, ran.append, 1)
        sim.schedule(5.0, ran.append, 2)
        sim.run(until=2.0)
        assert ran == [1]
        assert sim.now == 2.0

    def test_until_advances_clock_even_when_queue_drains(self, sim):
        sim.schedule(0.5, lambda: None)
        assert sim.run(until=3.0) == 3.0

    def test_pending_events_survive_partial_run(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run(until=1.0)
        assert sim.pending() == 1
        sim.run(until=10.0)
        assert sim.pending() == 0

    def test_stop_halts_immediately(self, sim):
        ran = []
        sim.schedule(1.0, lambda: (ran.append(1), sim.stop()))
        sim.schedule(2.0, ran.append, 2)
        sim.run()
        assert ran == [1]

    def test_max_events(self, sim):
        ran = []
        for i in range(5):
            sim.schedule(i + 1.0, ran.append, i)
        sim.run(max_events=3)
        assert ran == [0, 1, 2]

    def test_events_executed_counter(self, sim):
        for i in range(4):
            sim.schedule(0.1 * (i + 1), lambda: None)
        sim.run()
        assert sim.events_executed == 4

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_handler_scheduling_followups(self, sim):
        times = []

        def tick():
            times.append(sim.now)
            if len(times) < 3:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        assert times == [1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_skipped(self, sim):
        ran = []
        ev = sim.schedule(1.0, ran.append, "no")
        ev.cancel()
        sim.run()
        assert ran == []

    def test_peek_time_skips_cancelled(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.peek_time() == 2.0

    def test_peek_time_empty(self, sim):
        assert sim.peek_time() == math.inf

    def test_pending_excludes_cancelled(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.pending() == 1

    def test_double_cancel_counts_once(self, sim):
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        ev.cancel()
        assert sim.pending() == 1

    def test_cancel_after_run_is_noop(self, sim):
        ran = []
        ev = sim.schedule(1.0, ran.append, "yes")
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        ev.cancel()
        assert ran == ["yes"]
        assert sim.pending() == 1


class TestMassCancellation:
    """pending() must stay O(1) and exact under heavy lazy cancellation."""

    def test_pending_constant_time_under_mass_cancellation(self, sim):
        import time

        events = [sim.schedule(1.0 + i * 1e-6, lambda: None) for i in range(20_000)]
        for ev in events[::2]:
            ev.cancel()
        # O(1): pending() is a counter read, not a heap scan.  Calling it
        # many times must be near-instant even with 10k live + dead
        # entries queued; a linear scan would take seconds here.
        started = time.perf_counter()
        for _ in range(10_000):
            count = sim.pending()
        elapsed = time.perf_counter() - started
        assert count == 10_000
        assert elapsed < 1.0

    def test_compaction_keeps_execution_exact(self, sim):
        """Cancelling most of the queue still runs the survivors in order."""
        ran = []
        events = []
        for i in range(5_000):
            events.append(sim.schedule(1.0 + i, ran.append, i))
        for i, ev in enumerate(events):
            if i % 100 != 0:
                ev.cancel()
        assert sim.pending() == 50
        sim.run()
        assert ran == list(range(0, 5_000, 100))
        assert sim.pending() == 0

    def test_cancel_all_then_schedule_more(self, sim):
        events = [sim.schedule(1.0, lambda: None) for _ in range(1_000)]
        for ev in events:
            ev.cancel()
        assert sim.pending() == 0
        ran = []
        sim.schedule(2.0, ran.append, "still works")
        sim.run()
        assert ran == ["still works"]

    def test_peek_time_after_mass_cancellation(self, sim):
        events = [sim.schedule(1.0 + i, lambda: None) for i in range(500)]
        for ev in events[:-1]:
            ev.cancel()
        assert sim.peek_time() == events[-1].time
