"""Queue-churn regressions: lazy RTO timers and pooled event handles.

PR 7 removed two per-event costs from the hot path: TCP's per-ACK RTO
cancel+reschedule round trip (now an in-place ``Simulator.postpone``)
and the allocation of a fresh Event for every fire-and-forget link
callback (now recycled through a free list).  Both are required to be
bit-exact — same results, same event counts — so the *only* observable
difference is bookkeeping: fewer queue pushes, recycled handles.  These
tests pin that claim with the ``pushes`` and ``event_pool_*`` counters
so a refactor that quietly reverts to the eager formulation fails
loudly instead of just getting slower.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.perf import engine_mode


def _small_config():
    return ExperimentConfig(total_flows=12, n_routers=10, duration=3.0, seed=11)


def _fingerprint(result):
    return (
        dataclasses.asdict(result.summary),
        result.events_executed,
        sorted(result.identified_atrs),
        result.activation_time,
    )


class TestLazyRtoTimers:
    def test_bit_exact_and_fewer_pushes(self):
        with engine_mode(lazy_timers=True):
            lazy = run_experiment(_small_config())
            lazy_stats = lazy.scenario.sim.queue_stats()
        with engine_mode(lazy_timers=False):
            eager = run_experiment(_small_config())
            eager_stats = eager.scenario.sim.queue_stats()

        # Identical simulation: the postpone path draws exactly one seq
        # per ACK, like cancel+reschedule does.
        assert _fingerprint(lazy) == _fingerprint(eager)

        # The point of the lazy path: every ACK that used to cancel and
        # re-push its RTO timer now updates it in place, so whole
        # percents of all queue traffic disappear (a stale tuple only
        # costs a re-push when the old deadline actually surfaces
        # first).  ~7% of total pushes on this workload; gate at 5% so
        # the test pins "substantial", not this exact scenario mix.
        assert lazy_stats["pushes"] < eager_stats["pushes"]
        saved = eager_stats["pushes"] - lazy_stats["pushes"]
        assert saved > eager_stats["pushes"] * 0.05


class TestEventPool:
    def test_bit_exact_and_recycles(self):
        with engine_mode(event_pool=True):
            pooled = run_experiment(_small_config())
            pooled_stats = pooled.scenario.sim.queue_stats()
        with engine_mode(event_pool=False):
            plain = run_experiment(_small_config())
            plain_stats = plain.scenario.sim.queue_stats()

        assert _fingerprint(pooled) == _fingerprint(plain)

        # With the pool off nothing is created or reused; with it on the
        # free list carries nearly every fire-and-forget link event.
        assert plain_stats["event_pool_created"] == 0
        assert plain_stats["event_pool_reused"] == 0
        assert pooled_stats["event_pool_reused"] > 0
        assert (
            pooled_stats["event_pool_reused"]
            > 10 * pooled_stats["event_pool_created"]
        )
