"""Tests for repro.sim.routing."""

import networkx as nx
import pytest

from repro.sim.address import Subnet
from repro.sim.link import SimplexLink
from repro.sim.node import Router
from repro.sim.routing import RoutingTable, build_static_routes


class TestRoutingTable:
    def test_longest_prefix_match(self):
        t = RoutingTable()
        t.add_route(Subnet(0x0A000000, 8), "coarse")
        t.add_route(Subnet(0x0A010000, 16), "fine")
        assert t.next_hop(0x0A010203) == "fine"
        assert t.next_hop(0x0A990203) == "coarse"

    def test_default_route_fallback(self):
        t = RoutingTable()
        t.set_default("gw")
        assert t.next_hop(0x01020304) == "gw"

    def test_no_match_returns_none(self):
        assert RoutingTable().next_hop(1) is None

    def test_routes_sorted_by_prefix(self):
        t = RoutingTable()
        t.add_route(Subnet(0x0A000000, 8), "a")
        t.add_route(Subnet(0x0A000000, 24), "b")
        assert t.routes()[0][0].prefix_len == 24

    def test_len(self):
        t = RoutingTable()
        t.add_route(Subnet(0x0A000000, 24), "x")
        assert len(t) == 1


def _build_line(sim):
    """a - b - c with one subnet at each end."""
    routers = {name: Router(sim, name) for name in "abc"}
    graph = nx.Graph()
    graph.add_edge("a", "b", delay=1.0)
    graph.add_edge("b", "c", delay=1.0)
    for u, v in (("a", "b"), ("b", "a"), ("b", "c"), ("c", "b")):
        link = SimplexLink(sim, routers[u], routers[v])
        routers[u].attach_link(link)
    subnets = {"a": Subnet(0x0A000000, 24), "c": Subnet(0x0A010000, 24)}
    return routers, graph, subnets


class TestBuildStaticRoutes:
    def test_installs_first_hop(self, sim):
        routers, graph, subnets = _build_line(sim)
        build_static_routes(graph, routers, subnets.items())
        assert routers["a"].routing_table.next_hop(0x0A010005) == "b"
        assert routers["b"].routing_table.next_hop(0x0A010005) == "c"
        assert routers["c"].routing_table.next_hop(0x0A000005) == "b"

    def test_attachment_router_has_no_self_route(self, sim):
        routers, graph, subnets = _build_line(sim)
        build_static_routes(graph, routers, subnets.items())
        # Router a owns subnet a: no route needed (local delivery).
        assert routers["a"].routing_table.next_hop(0x0A000005) is None

    def test_every_router_gets_a_table(self, sim):
        routers, graph, subnets = _build_line(sim)
        build_static_routes(graph, routers, subnets.items())
        assert all(r.routing_table is not None for r in routers.values())

    def test_unknown_attachment_rejected(self, sim):
        routers, graph, _ = _build_line(sim)
        with pytest.raises(ValueError):
            build_static_routes(
                graph, routers, [("ghost", Subnet(0x0A020000, 24))]
            )

    def test_shortest_path_chosen(self, sim):
        # Square with a shortcut: a-b-d (2 hops) vs a-c-d with c slow.
        routers = {name: Router(sim, name) for name in "abcd"}
        graph = nx.Graph()
        graph.add_edge("a", "b", delay=1.0)
        graph.add_edge("b", "d", delay=1.0)
        graph.add_edge("a", "c", delay=5.0)
        graph.add_edge("c", "d", delay=5.0)
        for u, v in graph.edges:
            for s, t in ((u, v), (v, u)):
                link = SimplexLink(sim, routers[s], routers[t])
                routers[s].attach_link(link)
        subnet = Subnet(0x0A000000, 24)
        build_static_routes(graph, routers, [("d", subnet)])
        assert routers["a"].routing_table.next_hop(subnet.base) == "b"
