"""Tests for repro.sim.topology."""

import pytest

from repro.sim.packet import FlowKey, Packet
from repro.sim.topology import (
    build_dumbbell,
    build_star_domain,
    build_transit_stub_domain,
    build_tree_domain,
)


class _Recorder:
    def __init__(self):
        self.packets = []

    def handle_packet(self, packet, now):
        self.packets.append(packet)


def _assert_end_to_end(topology):
    """A packet from each src host reaches the victim."""
    victim = topology.victim_host
    sink = _Recorder()
    victim.bind_port(80, sink)
    senders = 0
    for i, _ in enumerate(topology.ingress_names):
        host = topology.hosts.get(f"src{i}")
        if host is None:
            continue
        senders += 1
        flow = FlowKey(host.address, victim.address, 1000 + i, 80)
        host.send(Packet(flow=flow))
    topology.sim.run(until=2.0)
    assert len(sink.packets) == senders


class TestStarDomain:
    def test_end_to_end_delivery(self):
        _assert_end_to_end(build_star_domain(n_ingress=4))

    def test_counts(self):
        topo = build_star_domain(n_ingress=5)
        assert len(topo.ingress_names) == 5
        assert len(topo.routers) == 6  # 5 ingress + last hop
        assert topo.victim_router_name == "lasthop"

    def test_victim_access_link(self):
        topo = build_star_domain(n_ingress=2)
        link = topo.victim_access_link()
        assert link.dst.name == "victim"

    def test_ingress_uplink_points_at_core(self):
        topo = build_star_domain(n_ingress=2)
        assert topo.ingress_uplink("ingress0").dst.name == "lasthop"

    def test_rejects_zero_ingress(self):
        with pytest.raises(ValueError):
            build_star_domain(n_ingress=0)


class TestTreeDomain:
    def test_end_to_end_delivery(self):
        _assert_end_to_end(build_tree_domain(depth=2, fanout=2))

    def test_leaf_count(self):
        topo = build_tree_domain(depth=2, fanout=3)
        assert len(topo.ingress_names) == 9

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            build_tree_domain(depth=0)


class TestTransitStubDomain:
    def test_end_to_end_delivery(self):
        _assert_end_to_end(build_transit_stub_domain(n_routers=12))

    def test_router_count_matches_n(self):
        topo = build_transit_stub_domain(n_routers=20)
        assert len(topo.routers) == 20

    def test_ingresses_have_subnets(self):
        topo = build_transit_stub_domain(n_routers=15)
        for name in topo.ingress_names:
            assert name in topo.subnet_of_router

    def test_larger_domains(self):
        topo = build_transit_stub_domain(n_routers=80)
        assert len(topo.routers) == 80
        _assert_end_to_end(topo)

    def test_rejects_tiny_domain(self):
        with pytest.raises(ValueError):
            build_transit_stub_domain(n_routers=2)

    def test_address_space_legality(self):
        topo = build_transit_stub_domain(n_routers=12)
        for name, subnet in topo.subnet_of_router.items():
            assert topo.address_space.is_legal_source(subnet.host(1))


class TestDumbbell:
    def test_end_to_end_delivery(self):
        topo = build_dumbbell()
        victim = topo.victim_host
        sink = _Recorder()
        victim.bind_port(80, sink)
        src = topo.hosts["src0"]
        src.send(Packet(flow=FlowKey(src.address, victim.address, 1000, 80)))
        topo.sim.run(until=1.0)
        assert len(sink.packets) == 1

    def test_bottleneck_is_core_link(self):
        topo = build_dumbbell(bottleneck_bps=1e6)
        link = topo.routers["left"].link_to("lasthop")
        assert link.bandwidth_bps == 1e6
