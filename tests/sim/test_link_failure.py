"""Tests for link up/down failure behaviour."""

from repro.sim.link import SimplexLink
from repro.sim.packet import FlowKey, Packet


class _Cap:
    def __init__(self, sim, name):
        self.sim = sim
        self.name = name
        self.got = []

    def receive(self, packet, via=None):
        self.got.append((self.sim.now, packet))

    def attach_link(self, link):
        pass


def pkt(seq=0):
    return Packet(flow=FlowKey(1, 2, 3, 4), seq=seq)


class TestLinkFailure:
    def test_down_link_drops_offers(self, sim):
        src, dst = _Cap(sim, "a"), _Cap(sim, "b")
        link = SimplexLink(sim, src, dst)
        link.set_down()
        assert not link.send(pkt())
        assert link.failure_drops == 1
        sim.run()
        assert dst.got == []

    def test_up_by_default(self, sim):
        src, dst = _Cap(sim, "a"), _Cap(sim, "b")
        assert SimplexLink(sim, src, dst).is_up

    def test_in_flight_packets_still_arrive(self, sim):
        src, dst = _Cap(sim, "a"), _Cap(sim, "b")
        link = SimplexLink(sim, src, dst, 8e6, 0.05)
        link.send(pkt(0))  # on the wire before the failure
        link.set_down()
        sim.run()
        assert len(dst.got) == 1

    def test_recovery_restores_service(self, sim):
        src, dst = _Cap(sim, "a"), _Cap(sim, "b")
        link = SimplexLink(sim, src, dst)
        link.set_down()
        link.send(pkt(0))
        link.set_up()
        assert link.send(pkt(1))
        sim.run()
        assert [p.seq for _, p in dst.got] == [1]

    def test_failed_atr_path_stalls_defense_scenario(self):
        """End-to-end: failing an ingress uplink silences that ingress
        entirely (its traffic — attack and legit — stops reaching the
        victim), while other ingresses keep flowing."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.scenario import build_scenario

        cfg = ExperimentConfig(total_flows=10, n_routers=10, duration=2.5,
                               seed=91)
        sc = build_scenario(cfg)
        victim_before = sc.victim_collector
        # Fail one ingress uplink before traffic starts.
        sc.topology.ingress_uplink(sc.topology.ingress_names[0]).set_down()
        sc.sim.run(until=cfg.duration)
        failed_link = sc.topology.ingress_uplink(sc.topology.ingress_names[0])
        assert failed_link.failure_drops > 0
        assert failed_link.packets_sent == 0
        # The victim still receives from the healthy ingresses.
        assert victim_before.attack_packets + victim_before.legit_packets > 0
