"""Simulator fixtures for the sim-layer tests.

Overrides the top-level ``sim`` fixture to run every engine-facing test
against BOTH queue backends: the two implementations must expose the
identical ``(time, priority, seq)`` semantics, so any behavioural test
that passes on one and fails on the other is a backend bug by
definition.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator


@pytest.fixture(params=["heap", "calendar"])
def sim(request) -> Simulator:
    """A fresh simulator clock, once per queue backend."""
    return Simulator(queue=request.param)
