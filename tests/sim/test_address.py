"""Tests for repro.sim.address."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.address import AddressSpace, IPv4Address, Subnet


class TestIPv4Address:
    def test_parse_and_render(self):
        a = IPv4Address.from_string("10.1.2.3")
        assert str(a) == "10.1.2.3"
        assert int(a) == (10 << 24) | (1 << 16) | (2 << 8) | 3

    def test_rejects_bad_quad(self):
        with pytest.raises(ValueError):
            IPv4Address.from_string("1.2.3")
        with pytest.raises(ValueError):
            IPv4Address.from_string("1.2.3.256")

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)
        with pytest.raises(ValueError):
            IPv4Address(-1)

    def test_ordering(self):
        assert IPv4Address(1) < IPv4Address(2)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_roundtrip(self, value):
        assert IPv4Address.from_string(str(IPv4Address(value))).value == value


class TestSubnet:
    def test_contains(self):
        s = Subnet(IPv4Address.from_string("10.0.1.0").value, 24)
        assert s.contains(IPv4Address.from_string("10.0.1.7"))
        assert not s.contains(IPv4Address.from_string("10.0.2.7"))

    def test_size(self):
        assert Subnet(0x0A000000, 24).size == 256
        assert Subnet(0x0A000000, 30).size == 4

    def test_host_indexing(self):
        s = Subnet(0x0A000000, 24)
        assert int(s.host(5)) == 0x0A000005
        with pytest.raises(ValueError):
            s.host(256)

    def test_rejects_host_bits_in_base(self):
        with pytest.raises(ValueError):
            Subnet(0x0A000001, 24)

    def test_rejects_bad_prefix(self):
        with pytest.raises(ValueError):
            Subnet(0, 33)

    def test_str(self):
        assert str(Subnet(0x0A000000, 24)) == "10.0.0.0/24"

    def test_netmask_zero_prefix(self):
        assert Subnet(0, 0).netmask == 0


class TestAddressSpace:
    def test_allocation_is_disjoint(self):
        space = AddressSpace()
        a = space.allocate_subnet(24)
        b = space.allocate_subnet(24)
        assert a.base != b.base
        assert not a.contains(b.base)

    def test_legal_source_inside_allocated(self):
        space = AddressSpace()
        subnet = space.allocate_subnet(24)
        assert space.is_legal_source(subnet.host(3))

    def test_illegal_outside_allocated(self):
        space = AddressSpace()
        space.allocate_subnet(24)
        assert not space.is_legal_source(IPv4Address.from_string("200.1.2.3"))

    def test_reserved_never_legal(self):
        space = AddressSpace()
        space.allocate_subnet(24)
        assert not space.is_legal_source(IPv4Address.from_string("127.0.0.1"))
        assert not space.is_legal_source(IPv4Address.from_string("224.0.0.1"))
        assert space.is_reserved(IPv4Address.from_string("0.1.2.3"))

    def test_random_legal_address_is_legal(self):
        space = AddressSpace()
        for _ in range(4):
            space.allocate_subnet(24)
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert space.is_legal_source(space.random_legal_address(rng))

    def test_random_illegal_address_is_illegal(self):
        space = AddressSpace()
        space.allocate_subnet(24)
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert not space.is_legal_source(space.random_illegal_address(rng))

    def test_random_legal_requires_allocation(self):
        with pytest.raises(RuntimeError):
            AddressSpace().random_legal_address(np.random.default_rng(0))

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            AddressSpace().allocate_subnet(31)

    def test_many_allocations(self):
        space = AddressSpace()
        subnets = [space.allocate_subnet(24) for _ in range(200)]
        assert len({s.base for s in subnets}) == 200
