"""Tests for repro.sim.monitor."""

import pytest

from repro.counting.loglog import LogLogLinkCounter
from repro.counting.setunion import TrafficMatrixEstimator
from repro.sim.monitor import TrafficMonitor


def _estimator_with_counters():
    est = TrafficMatrixEstimator()
    ingress = LogLogLinkCounter("in0", k=8)
    egress = LogLogLinkCounter("out0", k=8)
    est.register_ingress(ingress)
    est.register_egress(egress)
    return est, ingress, egress


class TestTrafficMonitor:
    def test_periodic_snapshots(self, sim):
        est, _, _ = _estimator_with_counters()
        monitor = TrafficMonitor(sim, est, period=0.5)
        monitor.start()
        sim.run(until=2.1)
        assert len(monitor.snapshots) == 4
        assert [round(s.time, 1) for s in monitor.snapshots] == [0.5, 1.0, 1.5, 2.0]

    def test_snapshot_contains_totals(self, sim):
        est, ingress, egress = _estimator_with_counters()
        for uid in range(100):
            ingress.sketch.add(uid)
            egress.sketch.add(uid)
        monitor = TrafficMonitor(sim, est, period=1.0)
        monitor.start()
        sim.run(until=1.0)
        snap = monitor.latest
        assert snap.ingress_totals["in0"] == pytest.approx(100, rel=0.2)
        assert snap.egress_totals["out0"] == pytest.approx(100, rel=0.2)

    def test_reset_each_epoch(self, sim):
        est, ingress, _ = _estimator_with_counters()
        for uid in range(50):
            ingress.sketch.add(uid)
        monitor = TrafficMonitor(sim, est, period=1.0, reset_each_epoch=True)
        monitor.start()
        sim.run(until=2.0)
        # Second epoch saw no traffic: estimate near zero.
        assert monitor.snapshots[1].ingress_totals["in0"] < 5

    def test_no_reset_accumulates(self, sim):
        est, ingress, _ = _estimator_with_counters()
        for uid in range(50):
            ingress.sketch.add(uid)
        monitor = TrafficMonitor(sim, est, period=1.0, reset_each_epoch=False)
        monitor.start()
        sim.run(until=2.0)
        assert monitor.snapshots[1].ingress_totals["in0"] == pytest.approx(50, rel=0.3)

    def test_callback_invoked(self, sim):
        est, _, _ = _estimator_with_counters()
        seen = []
        monitor = TrafficMonitor(sim, est, period=0.5, on_snapshot=seen.append)
        monitor.start()
        sim.run(until=1.0)
        assert len(seen) == 2

    def test_double_start_rejected(self, sim):
        est, _, _ = _estimator_with_counters()
        monitor = TrafficMonitor(sim, est, period=0.5)
        monitor.start()
        with pytest.raises(RuntimeError):
            monitor.start()

    def test_bad_period_rejected(self, sim):
        est, _, _ = _estimator_with_counters()
        with pytest.raises(ValueError):
            TrafficMonitor(sim, est, period=0.0)

    def test_latest_none_before_any(self, sim):
        est, _, _ = _estimator_with_counters()
        assert TrafficMonitor(sim, est).latest is None

    def test_matrix_shape(self, sim):
        est, _, _ = _estimator_with_counters()
        monitor = TrafficMonitor(sim, est, period=1.0)
        monitor.start()
        sim.run(until=1.0)
        snap = monitor.latest
        assert snap.matrix.shape == (1, 1)
        assert snap.sources == ["in0"]
        assert snap.destinations == ["out0"]


class TestMonitorBusPublish:
    """Regression tests for the bus-guard fix in `_publish`.

    `_publish` must be self-guarding (`if not bus: return`), not rely
    on its caller's check — the shape the `bus-guard` lint rule
    enforces for every multi-emit publisher.
    """

    def test_publish_on_falsy_bus_never_calls_emit(self, sim):
        class FalsyRecordingBus:
            def __init__(self):
                self.emitted = []

            def __bool__(self):
                return False

            def emit(self, event):
                self.emitted.append(event)

        est, _, _ = _estimator_with_counters()
        bus = FalsyRecordingBus()
        monitor = TrafficMonitor(sim, est, period=1.0, bus=bus)
        snapshot = monitor.take_snapshot()
        # Direct call, bypassing the caller's own check: the guard
        # clause must bail before constructing or emitting any event.
        monitor._publish(snapshot)
        assert bus.emitted == []

    def test_snapshot_publishes_monitor_and_engine_events(self, sim):
        from repro.obs.bus import BufferedSink, EventBus

        est, _, _ = _estimator_with_counters()
        bus = EventBus()
        sink = bus.subscribe(BufferedSink())
        monitor = TrafficMonitor(sim, est, period=1.0, bus=bus)
        monitor.start()
        sim.run(until=1.0)
        kinds = [e.kind for e in sink.events]
        assert kinds == ["monitor.snapshot", "engine.stats"]
