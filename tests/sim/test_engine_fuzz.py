"""Randomized scheduler fuzz: every backend × every engine core.

One seeded operation stream — schedule/schedule_anon/cancel/postpone/
series/partial-run, interleaved — is replayed against the heap and
calendar backends of both the pure-Python engine and the compiled C
core (when built).  All four executions must produce the identical
callback firing order, the identical ``seq`` draws for every returned
handle, and identical pending/cancel bookkeeping.  This is the
edge-case net under the golden master: golden runs exercise the hot
paths, the fuzz stream hammers the rare interleavings (postpone-earlier
fallbacks, cancel-after-fire, series stopped while queued, compaction
mid-stream).
"""

from __future__ import annotations

import random

import pytest

from repro.sim import engine
from repro.sim._core import compiled

IMPLS = [("pure", engine.PySimulator)]
if compiled is not None:
    IMPLS.append(("compiled", compiled.Simulator))

QUEUES = ("heap", "calendar")

SEEDS = (20260808, 4242, 77)


def _run_fuzz(sim_cls, queue: str, seed: int, ops: int = 800):
    """Replay the seeded op stream; return everything order-sensitive."""
    rng = random.Random(seed)
    sim = sim_cls(queue=queue)
    log: list = []
    seqs: list[int] = []
    handles: list = []   # plain-event handles we may cancel/postpone
    series: list = []

    def cb(tag):
        def fire():
            log.append((tag, sim.now))
        return fire

    for i in range(ops):
        r = rng.random()
        if r < 0.40:
            t = sim.now + round(rng.uniform(0.0, 4.0), 3)
            ev = sim.schedule_at(t, cb(i), priority=rng.choice((-1, 0, 1)))
            handles.append(ev)
            seqs.append(ev.seq)
        elif r < 0.50:
            t = sim.now + round(rng.uniform(0.0, 4.0), 3)
            # Fire-and-forget: the handle must be discarded (recycled on
            # firing), so only the callback log observes it.
            sim.schedule_anon(t, cb(("anon", i)))
        elif r < 0.60 and handles:
            # May already have fired or been cancelled — cancel() is
            # idempotent and a no-op then, which is part of the contract.
            handles.pop(rng.randrange(len(handles))).cancel()
        elif r < 0.70 and handles:
            j = rng.randrange(len(handles))
            ev = handles[j]
            if not ev.cancelled:
                # Uniform around ``now`` regardless of ev.time: hits the
                # lazy in-place path (later deadline) and the eager
                # cancel+reschedule fallback (earlier deadline).
                t = sim.now + round(rng.uniform(0.0, 6.0), 3)
                handles[j] = sim.postpone(ev, t)
                seqs.append(handles[j].seq)
        elif r < 0.78:
            start = sim.now + round(rng.uniform(0.001, 2.0), 3)
            times = [start]
            for _ in range(rng.randrange(0, 3)):
                times.append(times[-1] + round(rng.uniform(0.0, 1.0), 3))
            sv = sim.schedule_series(times, cb(("series", i)))
            series.append(sv)
            seqs.append(sv.seq)
        elif r < 0.83 and series:
            sv = series.pop(rng.randrange(len(series)))
            if rng.random() < 0.5:
                sv.stop()
            else:
                sv.cancel()
        else:
            sim.run(until=sim.now + round(rng.uniform(0.0, 1.5), 3))

    sim.run()  # drain
    return {
        "log": log,
        "seqs": seqs,
        "pending": sim.pending(),
        "events_executed": sim.events_executed,
        "now": sim.now,
        "stats": sim.queue_stats(),
    }


#: queue_stats keys that must agree across *backends* too.  queued/dead/
#: peak/pushes/resizes legitimately differ between heap and calendar
#: (different compaction and rebuild schedules), but live events and the
#: free-list recycling trace are backend-independent facts.
BACKEND_FREE_KEYS = ("live", "event_pool_created", "event_pool_reused")


@pytest.mark.parametrize("seed", SEEDS)
def test_identical_across_backends_and_cores(seed):
    runs = {
        (impl, queue): _run_fuzz(sim_cls, queue, seed)
        for impl, sim_cls in IMPLS
        for queue in QUEUES
    }
    reference = runs[("pure", "heap")]
    assert reference["events_executed"] > 100  # the stream actually ran

    for key, run in runs.items():
        assert run["log"] == reference["log"], key
        assert run["seqs"] == reference["seqs"], key
        assert run["pending"] == reference["pending"], key
        assert run["events_executed"] == reference["events_executed"], key
        assert run["now"] == reference["now"], key
        for stat in BACKEND_FREE_KEYS:
            assert run["stats"][stat] == reference["stats"][stat], (key, stat)

    # Full counter parity is a per-backend claim: the compiled core must
    # mirror the pure bookkeeping exactly, dead/peak/pushes included.
    if compiled is not None:
        for queue in QUEUES:
            assert (
                runs[("compiled", queue)]["stats"]
                == runs[("pure", queue)]["stats"]
            ), queue


@pytest.mark.skipif(compiled is None, reason="compiled core not built")
def test_public_engine_exports_compiled_when_built():
    """When the extension is importable (and not forced off), the public
    ``Simulator`` IS the compiled one — no silent fallback."""
    assert engine.Simulator is compiled.Simulator
    assert engine.Event is compiled.Event
    assert engine.SeriesEvent is compiled.SeriesEvent


def test_pure_engine_always_importable():
    """The pure twins stay reachable for side-by-side testing."""
    sim = engine.PySimulator()
    fired = []
    sim.schedule(1.0, fired.append, "ok")
    sim.run()
    assert fired == ["ok"]
