"""Tests for repro.sim.link."""

import pytest

from repro.sim.link import SimplexLink
from repro.sim.packet import FlowKey, Packet
from repro.sim.queues import DropTailQueue


class _Capture:
    """A node stand-in that records deliveries."""

    def __init__(self, sim, name="cap"):
        self.sim = sim
        self.name = name
        self.received = []

    def receive(self, packet, via=None):
        self.received.append((self.sim.now, packet))

    def attach_link(self, link):
        pass


def make_link(sim, bandwidth=8e6, delay=0.01, capacity=4):
    src = _Capture(sim, "src")
    dst = _Capture(sim, "dst")
    link = SimplexLink(sim, src, dst, bandwidth, delay, DropTailQueue(capacity))
    return link, dst


def pkt(size=1000, seq=0):
    return Packet(flow=FlowKey(1, 2, 3, 4), size=size, seq=seq)


class TestTransmission:
    def test_delivery_after_tx_plus_prop_delay(self, sim):
        link, dst = make_link(sim, bandwidth=8e6, delay=0.01)
        link.send(pkt(size=1000))  # tx = 1ms, prop = 10ms
        sim.run()
        t, _ = dst.received[0]
        assert t == pytest.approx(0.011)

    def test_serialization_spaces_packets(self, sim):
        link, dst = make_link(sim, bandwidth=8e6, delay=0.0)
        link.send(pkt(seq=0))
        link.send(pkt(seq=1))
        sim.run()
        t0, t1 = dst.received[0][0], dst.received[1][0]
        assert t1 - t0 == pytest.approx(0.001)  # one tx time apart

    def test_queue_overflow_drops(self, sim):
        link, dst = make_link(sim, capacity=2)
        # One in flight + 2 queued fit; more are dropped.
        results = [link.send(pkt(seq=i)) for i in range(5)]
        sim.run()
        assert results.count(False) == 2
        assert len(dst.received) == 3

    def test_counters(self, sim):
        link, _ = make_link(sim)
        link.send(pkt())
        link.send(pkt())
        sim.run()
        assert link.packets_sent == 2
        assert link.bytes_sent == 2000
        assert link.packets_offered == 2

    def test_hop_count_incremented(self, sim):
        link, dst = make_link(sim)
        p = pkt()
        link.send(p)
        sim.run()
        assert dst.received[0][1].hop_count == 1

    def test_utilization(self, sim):
        link, _ = make_link(sim, bandwidth=8e6)
        link.send(pkt(size=1000))
        sim.run()
        assert link.utilization(1.0) == pytest.approx(0.001)
        assert link.utilization(0.0) == 0.0

    def test_invalid_parameters(self, sim):
        src, dst = _Capture(sim), _Capture(sim)
        with pytest.raises(ValueError):
            SimplexLink(sim, src, dst, bandwidth_bps=0)
        with pytest.raises(ValueError):
            SimplexLink(sim, src, dst, delay=-1)


class _CountingHook:
    def __init__(self, verdict=True):
        self.seen = 0
        self.verdict = verdict

    def on_packet(self, packet, link, now):
        self.seen += 1
        return self.verdict


class TestHeadHooks:
    def test_hook_sees_every_offer(self, sim):
        link, _ = make_link(sim)
        hook = _CountingHook()
        link.add_head_hook(hook)
        for i in range(3):
            link.send(pkt(seq=i))
        assert hook.seen == 3

    def test_consuming_hook_drops(self, sim):
        link, dst = make_link(sim)
        link.add_head_hook(_CountingHook(verdict=False))
        assert not link.send(pkt())
        sim.run()
        assert dst.received == []
        assert link.hook_drops == 1

    def test_hooks_run_in_order_and_short_circuit(self, sim):
        link, _ = make_link(sim)
        first = _CountingHook(verdict=False)
        second = _CountingHook()
        link.add_head_hook(first)
        link.add_head_hook(second)
        link.send(pkt())
        assert first.seen == 1
        assert second.seen == 0

    def test_remove_hook(self, sim):
        link, _ = make_link(sim)
        hook = _CountingHook(verdict=False)
        link.add_head_hook(hook)
        link.remove_head_hook(hook)
        assert link.send(pkt())
        assert hook.seen == 0

    def test_head_hooks_property(self, sim):
        link, _ = make_link(sim)
        hook = _CountingHook()
        link.add_head_hook(hook)
        assert link.head_hooks == (hook,)
