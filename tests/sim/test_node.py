"""Tests for repro.sim.node."""

import pytest

from repro.sim.link import SimplexLink
from repro.sim.node import Host, Router
from repro.sim.packet import FlowKey, Packet, PacketType
from repro.sim.routing import RoutingTable
from repro.sim.address import Subnet


class _Recorder:
    def __init__(self):
        self.packets = []

    def handle_packet(self, packet, now):
        self.packets.append(packet)


class TestHost:
    def test_port_dispatch(self, sim):
        host = Host(sim, "h", 0x0A000001)
        agent = _Recorder()
        host.bind_port(80, agent)
        host.receive(Packet(flow=FlowKey(1, 0x0A000001, 9, 80)))
        assert len(agent.packets) == 1

    def test_default_handler_catches_unbound(self, sim):
        host = Host(sim, "h", 1)
        fallback = _Recorder()
        host.set_default_handler(fallback)
        host.receive(Packet(flow=FlowKey(1, 1, 9, 4242)))
        assert len(fallback.packets) == 1

    def test_unhandled_counted(self, sim):
        host = Host(sim, "h", 1)
        host.receive(Packet(flow=FlowKey(1, 1, 9, 4242)))
        assert host.unhandled_packets == 1

    def test_double_bind_rejected(self, sim):
        host = Host(sim, "h", 1)
        host.bind_port(80, _Recorder())
        with pytest.raises(ValueError):
            host.bind_port(80, _Recorder())

    def test_unbind(self, sim):
        host = Host(sim, "h", 1)
        host.bind_port(80, _Recorder())
        host.unbind_port(80)
        host.receive(Packet(flow=FlowKey(1, 1, 9, 80)))
        assert host.unhandled_packets == 1

    def test_send_requires_gateway(self, sim):
        host = Host(sim, "h", 1)
        with pytest.raises(RuntimeError):
            host.send(Packet(flow=FlowKey(1, 2, 3, 4)))

    def test_send_uses_gateway_link(self, sim):
        host = Host(sim, "h", 1)
        router = Router(sim, "r")
        link = SimplexLink(sim, host, router)
        host.attach_link(link)
        host.gateway = router
        assert host.send(Packet(flow=FlowKey(1, 2, 3, 4)))
        assert link.packets_offered == 1

    def test_attach_foreign_link_rejected(self, sim):
        host = Host(sim, "h", 1)
        other = Host(sim, "o", 2)
        router = Router(sim, "r")
        link = SimplexLink(sim, other, router)
        with pytest.raises(ValueError):
            host.attach_link(link)


class TestRouter:
    def _two_routers(self, sim):
        a, b = Router(sim, "a"), Router(sim, "b")
        link = SimplexLink(sim, a, b)
        a.attach_link(link)
        return a, b, link

    def test_forwards_via_routing_table(self, sim):
        a, b, link = self._two_routers(sim)
        table = RoutingTable()
        table.add_route(Subnet(0x0A000000, 24), "b")
        a.routing_table = table
        a.receive(Packet(flow=FlowKey(1, 0x0A000005, 3, 4)))
        assert a.packets_forwarded == 1
        assert link.packets_offered == 1

    def test_drops_without_route(self, sim):
        a, _, _ = self._two_routers(sim)
        a.routing_table = RoutingTable()
        a.receive(Packet(flow=FlowKey(1, 0x0B000005, 3, 4)))
        assert a.packets_dropped_no_route == 1

    def test_drops_without_table(self, sim):
        a = Router(sim, "a")
        a.receive(Packet(flow=FlowKey(1, 2, 3, 4)))
        assert a.packets_dropped_no_route == 1

    def test_drops_when_next_hop_link_missing(self, sim):
        a = Router(sim, "a")
        table = RoutingTable()
        table.add_route(Subnet(0x0A000000, 24), "ghost")
        a.routing_table = table
        a.receive(Packet(flow=FlowKey(1, 0x0A000005, 3, 4)))
        assert a.packets_dropped_no_route == 1

    def test_local_delivery_bypasses_forwarding(self, sim):
        a, _, _ = self._two_routers(sim)
        agent = _Recorder()
        a.add_local_delivery(lambda ip: ip == 42, agent)
        a.receive(Packet(flow=FlowKey(1, 42, 3, 4)))
        assert len(agent.packets) == 1
        assert a.packets_delivered == 1

    def test_control_handler(self, sim):
        a = Router(sim, "a", address=777)
        handler = _Recorder()
        a.add_control_handler(handler)
        a.receive(Packet(flow=FlowKey(1, 777, 0, 0), ptype=PacketType.CONTROL))
        assert len(handler.packets) == 1

    def test_control_to_other_address_forwarded(self, sim):
        a = Router(sim, "a", address=777)
        handler = _Recorder()
        a.add_control_handler(handler)
        a.routing_table = RoutingTable()
        a.receive(Packet(flow=FlowKey(1, 888, 0, 0), ptype=PacketType.CONTROL))
        assert handler.packets == []
        assert a.packets_dropped_no_route == 1
