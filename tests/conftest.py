"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.packet import FlowKey, Packet, reset_packet_ids


@pytest.fixture(autouse=True)
def _fresh_packet_ids():
    """Isolate the global packet-uid counter between tests."""
    reset_packet_ids()
    yield
    reset_packet_ids()


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator clock."""
    return Simulator()


def make_flow(
    src_ip: int = 0x0A000001,
    dst_ip: int = 0x0A010001,
    src_port: int = 1234,
    dst_port: int = 80,
) -> FlowKey:
    """A flow key with overridable fields."""
    return FlowKey(src_ip, dst_ip, src_port, dst_port)


def make_packet(flow: FlowKey | None = None, **kwargs) -> Packet:
    """A DATA packet on the given (or default) flow."""
    return Packet(flow=flow if flow is not None else make_flow(), **kwargs)
