"""Tests for repro.util.validation."""

import pytest

from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability,
    check_type,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 3) == 3.0

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative("x", -0.001)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError, match="p"):
            check_probability("p", bad)

    def test_fraction_alias(self):
        assert check_fraction("f", 0.3) == 0.3
        with pytest.raises(ValueError):
            check_fraction("f", 1.5)


class TestCheckType:
    def test_accepts_match(self):
        assert check_type("n", 5, int) == 5

    def test_accepts_tuple(self):
        assert check_type("n", "s", (int, str)) == "s"

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="n must be int"):
            check_type("n", "s", int)

    def test_error_names_all_options(self):
        with pytest.raises(TypeError, match="int | str"):
            check_type("n", 1.5, (int, str))
