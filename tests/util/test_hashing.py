"""Tests for repro.util.hashing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.hashing import fmix64, fnv1a_64, stable_hash64


class TestFnv1a:
    def test_empty_input_is_offset_basis(self):
        assert fnv1a_64(b"") == 0xCBF29CE484222325

    def test_known_vector(self):
        # FNV-1a 64 of "a" is a published test vector.
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C

    def test_different_inputs_differ(self):
        assert fnv1a_64(b"hello") != fnv1a_64(b"world")

    def test_deterministic(self):
        assert fnv1a_64(b"mafic") == fnv1a_64(b"mafic")

    @given(st.binary(max_size=64))
    def test_output_is_64_bit(self, data):
        assert 0 <= fnv1a_64(data) < (1 << 64)


class TestFmix64:
    def test_zero_maps_to_zero(self):
        assert fmix64(0) == 0

    def test_output_in_range(self):
        assert 0 <= fmix64(0xFFFFFFFFFFFFFFFF) < (1 << 64)

    def test_bijective_on_samples(self):
        # fmix64 is a bijection; no collisions on a large sample.
        outputs = {fmix64(i) for i in range(10_000)}
        assert len(outputs) == 10_000

    def test_avalanche_quality_high_bits(self):
        # Consecutive integers must spread across the top 10 bits —
        # the property LogLog bucketing depends on.
        buckets = {fmix64(i) >> 54 for i in range(4096)}
        assert len(buckets) > 900  # of 1024 possible


class TestStableHash64:
    def test_deterministic_across_calls(self):
        assert stable_hash64(1, "a", b"x") == stable_hash64(1, "a", b"x")

    def test_order_sensitivity(self):
        assert stable_hash64("a", "b") != stable_hash64("b", "a")

    def test_boundary_confusion_resistant(self):
        assert stable_hash64("ab", "c") != stable_hash64("a", "bc")

    def test_type_tagging_separates_int_and_str(self):
        assert stable_hash64(49) != stable_hash64("1")

    def test_bool_distinct_from_int(self):
        assert stable_hash64(True) != stable_hash64(1)

    def test_negative_int_masked(self):
        # Negative ints are masked to 64 bits, not rejected.
        assert 0 <= stable_hash64(-1) < (1 << 64)

    def test_rejects_unsupported_type(self):
        with pytest.raises(TypeError):
            stable_hash64(3.14)

    @given(
        st.lists(
            st.one_of(
                st.integers(min_value=-(2**63), max_value=2**64 - 1),
                st.text(max_size=16),
                st.binary(max_size=16),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_always_64_bit(self, parts):
        assert 0 <= stable_hash64(*parts) < (1 << 64)

    def test_collision_rate_on_flow_like_tuples(self):
        # 4-tuple labels must not collide in realistic table sizes.
        seen = set()
        for src in range(100):
            for port in range(100):
                seen.add(stable_hash64(src, 42, port, 80))
        assert len(seen) == 100 * 100

    def test_high_bits_uniform_for_buckets(self):
        counts = np.zeros(64, dtype=int)
        for i in range(64 * 200):
            counts[stable_hash64(i) >> 58] += 1
        assert counts.min() > 100  # no starving bucket
