"""Tests for repro.util.units."""

import pytest

from repro.util.units import (
    bits_to_bytes,
    bytes_to_bits,
    kbps,
    mbps,
    pkts_per_sec,
    transmission_delay,
)


class TestConversions:
    def test_bytes_to_bits(self):
        assert bytes_to_bits(1000) == 8000

    def test_bits_to_bytes(self):
        assert bits_to_bytes(8000) == 1000

    def test_roundtrip(self):
        assert bits_to_bytes(bytes_to_bits(123.5)) == 123.5

    def test_kbps(self):
        assert kbps(100) == 100_000

    def test_mbps(self):
        assert mbps(1.5) == 1_500_000


class TestRates:
    def test_pkts_per_sec(self):
        # 1 Mbps with 1000-byte packets = 125 packets/s.
        assert pkts_per_sec(1e6, 1000) == 125.0

    def test_pkts_per_sec_rejects_zero_size(self):
        with pytest.raises(ValueError):
            pkts_per_sec(1e6, 0)

    def test_transmission_delay(self):
        # 1000 bytes on 8 Mbps = 1 ms.
        assert transmission_delay(1000, 8e6) == pytest.approx(0.001)

    def test_transmission_delay_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            transmission_delay(1000, 0)
