"""Tests for repro.util.rng."""

import pytest

from repro.util.rng import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", "b") == derive_seed(1, "a", "b")

    def test_root_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_name_matters(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_mixed_name_types(self):
        assert derive_seed(1, "flow", 3) != derive_seed(1, "flow", 4)


class TestRngRegistry:
    def test_same_name_same_generator(self):
        reg = RngRegistry(42)
        assert reg.stream("drops") is reg.stream("drops")

    def test_different_names_different_streams(self):
        reg = RngRegistry(42)
        a = reg.stream("a").random(10).tolist()
        b = reg.stream("b").random(10).tolist()
        assert a != b

    def test_reproducible_across_registries(self):
        a = RngRegistry(7).stream("x").random(5).tolist()
        b = RngRegistry(7).stream("x").random(5).tolist()
        assert a == b

    def test_isolation_from_request_order(self):
        reg1 = RngRegistry(7)
        reg1.stream("first")
        draws1 = reg1.stream("second").random(3).tolist()
        reg2 = RngRegistry(7)
        draws2 = reg2.stream("second").random(3).tolist()
        assert draws1 == draws2

    def test_multi_component_names(self):
        reg = RngRegistry(0)
        assert reg.stream("mafic", "ingress0") is not reg.stream("mafic", "ingress1")

    def test_fork_namespaces(self):
        reg = RngRegistry(3)
        fork = reg.fork("sub")
        assert isinstance(fork, RngRegistry)
        assert fork.root_seed != reg.root_seed
        assert fork.stream("x").random() != reg.stream("x").random()

    def test_fork_reproducible(self):
        a = RngRegistry(3).fork("sub").stream("x").random(4).tolist()
        b = RngRegistry(3).fork("sub").stream("x").random(4).tolist()
        assert a == b

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(0).stream()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngRegistry("seed")  # type: ignore[arg-type]

    def test_root_seed_property(self):
        assert RngRegistry(99).root_seed == 99
