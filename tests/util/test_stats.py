"""Tests for repro.util.stats."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import Ewma, RunningStats, WindowedRate

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestEwma:
    def test_first_sample_is_value(self):
        e = Ewma(0.25)
        assert e.update(10.0) == 10.0

    def test_none_before_samples(self):
        assert Ewma().value is None

    def test_alpha_one_tracks_last(self):
        e = Ewma(1.0)
        e.update(5)
        assert e.update(9) == 9.0

    def test_smoothing_moves_toward_sample(self):
        e = Ewma(0.5)
        e.update(0)
        assert e.update(10) == 5.0

    def test_reset(self):
        e = Ewma()
        e.update(3)
        e.reset()
        assert e.value is None

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ValueError):
            Ewma(alpha)

    @given(st.lists(floats, min_size=1, max_size=50))
    def test_stays_within_sample_range(self, samples):
        e = Ewma(0.3)
        for s in samples:
            e.update(s)
        assert min(samples) - 1e-6 <= e.value <= max(samples) + 1e-6


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_sample(self):
        s = RunningStats()
        s.update(4.0)
        assert s.mean == 4.0
        assert s.variance == 0.0
        assert s.minimum == 4.0
        assert s.maximum == 4.0

    def test_known_values(self):
        s = RunningStats()
        for x in [2, 4, 4, 4, 5, 5, 7, 9]:
            s.update(x)
        assert s.mean == pytest.approx(5.0)
        assert s.stddev == pytest.approx(2.0)

    def test_merge_equals_combined(self):
        a, b, c = RunningStats(), RunningStats(), RunningStats()
        for x in [1.0, 2.0, 3.0]:
            a.update(x)
            c.update(x)
        for x in [10.0, 20.0]:
            b.update(x)
            c.update(x)
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean)
        assert merged.variance == pytest.approx(c.variance)
        assert merged.minimum == c.minimum
        assert merged.maximum == c.maximum

    def test_merge_with_empty(self):
        a, b = RunningStats(), RunningStats()
        a.update(5)
        merged = a.merge(b)
        assert merged.count == 1
        assert merged.mean == 5.0

    def test_merge_two_empties(self):
        assert RunningStats().merge(RunningStats()).count == 0

    @given(st.lists(floats, min_size=2, max_size=100))
    def test_matches_naive_computation(self, samples):
        s = RunningStats()
        for x in samples:
            s.update(x)
        mean = sum(samples) / len(samples)
        var = sum((x - mean) ** 2 for x in samples) / len(samples)
        assert s.mean == pytest.approx(mean, rel=1e-6, abs=1e-6)
        assert s.variance == pytest.approx(var, rel=1e-6, abs=1e-3)


class TestWindowedRate:
    def test_rate_counts_recent_events(self):
        w = WindowedRate(1.0)
        w.record(0.0)
        w.record(0.5)
        assert w.rate(0.5) == pytest.approx(2.0)

    def test_events_expire(self):
        w = WindowedRate(1.0)
        w.record(0.0)
        assert w.rate(1.5) == 0.0

    def test_boundary_is_exclusive(self):
        w = WindowedRate(1.0)
        w.record(0.0)
        # At now=1.0 the event at t=0 is exactly window-old: expired.
        assert w.rate(1.0) == 0.0

    def test_weighted_events(self):
        w = WindowedRate(2.0)
        w.record(0.0, weight=1000.0)
        assert w.rate(0.1) == pytest.approx(500.0)

    def test_count(self):
        w = WindowedRate(1.0)
        for t in (0.0, 0.2, 0.4):
            w.record(t)
        assert w.count(0.5) == 3
        assert w.count(1.3) == 1

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedRate(0.0)

    @given(st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=50))
    def test_rate_never_negative(self, times):
        w = WindowedRate(0.5)
        for t in sorted(times):
            w.record(t)
        assert w.rate(max(times)) >= 0.0

    def test_weight_sum_resets_when_empty(self):
        w = WindowedRate(0.1)
        w.record(0.0, weight=5.0)
        w.record(10.0, weight=1.0)
        assert w.rate(10.0) == pytest.approx(10.0)  # only the new event


class TestWindowedRateWatermarkPruning:
    """The record() hot path prunes one batch per window behind a
    watermark; reads must stay exact and memory bounded regardless."""

    @staticmethod
    def naive_rate(samples, now, window):
        return sum(w for t, w in samples if now - window < t <= now) / window

    @staticmethod
    def naive_count(samples, now, window):
        return sum(1 for t, _ in samples if now - window < t <= now)

    def test_interleaved_reads_match_naive_reference(self):
        """record/rate/count interleaved across many window boundaries
        always agree with a prune-free reference implementation."""
        window = 1.0
        w = WindowedRate(window)
        samples = []
        t = 0.0
        rng = np.random.default_rng(42)
        for step in range(400):
            t += float(rng.uniform(0.0, 0.4))  # frequently crosses windows
            weight = float(rng.uniform(0.5, 2.0))
            w.record(t, weight)
            samples.append((t, weight))
            if step % 3 == 0:
                assert w.rate(t) == pytest.approx(
                    self.naive_rate(samples, t, window)
                )
            if step % 5 == 0:
                assert w.count(t) == self.naive_count(samples, t, window)

    def test_reads_exact_immediately_after_boundary_crossing(self):
        """A read right after the first sample of a new window must not
        see stale entries the watermark hasn't flushed yet."""
        w = WindowedRate(1.0)
        for t in (0.0, 0.3, 0.6, 0.9):
            w.record(t)
        # 2.05 is far beyond every sample's expiry but record() only
        # prunes when now >= watermark; rate() must prune fully anyway.
        w.record(2.05)
        assert w.count(2.05) == 1
        assert w.rate(2.05) == pytest.approx(1.0)

    def test_memory_bounded_under_record_only_workload(self):
        """Without a single rate()/count() call, the deque stays at
        ~2 windows of samples (the watermark batch size), not the full
        history."""
        window = 1.0
        rate_hz = 1000  # samples per second
        w = WindowedRate(window)
        peak = 0
        for i in range(20 * rate_hz):  # 20 seconds of traffic
            w.record(i / rate_hz)
            peak = max(peak, len(w._times))
        # 2 windows of samples plus slack for the batch granularity.
        assert peak <= 2 * rate_hz + rate_hz // 10
        # And the bound is what keeps reads exact: final rate is 1 window.
        now = (20 * rate_hz - 1) / rate_hz
        assert w.count(now) == rate_hz

    def test_watermark_advances_per_batch_not_per_sample(self):
        """Expiry work happens once per window, not on every record."""
        w = WindowedRate(1.0)
        w.record(0.0)
        watermark = w._next_expiry
        for t in (0.1, 0.5, 0.9, 1.4, 1.9):
            w.record(t)
            assert w._next_expiry == watermark  # no prune yet
        w.record(2.0)  # >= watermark: one batch expires
        assert w._next_expiry > watermark
        assert w._times[0] == pytest.approx(1.4)
