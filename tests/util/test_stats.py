"""Tests for repro.util.stats."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import Ewma, RunningStats, WindowedRate

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestEwma:
    def test_first_sample_is_value(self):
        e = Ewma(0.25)
        assert e.update(10.0) == 10.0

    def test_none_before_samples(self):
        assert Ewma().value is None

    def test_alpha_one_tracks_last(self):
        e = Ewma(1.0)
        e.update(5)
        assert e.update(9) == 9.0

    def test_smoothing_moves_toward_sample(self):
        e = Ewma(0.5)
        e.update(0)
        assert e.update(10) == 5.0

    def test_reset(self):
        e = Ewma()
        e.update(3)
        e.reset()
        assert e.value is None

    @pytest.mark.parametrize("alpha", [0.0, -0.1, 1.5])
    def test_invalid_alpha(self, alpha):
        with pytest.raises(ValueError):
            Ewma(alpha)

    @given(st.lists(floats, min_size=1, max_size=50))
    def test_stays_within_sample_range(self, samples):
        e = Ewma(0.3)
        for s in samples:
            e.update(s)
        assert min(samples) - 1e-6 <= e.value <= max(samples) + 1e-6


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_sample(self):
        s = RunningStats()
        s.update(4.0)
        assert s.mean == 4.0
        assert s.variance == 0.0
        assert s.minimum == 4.0
        assert s.maximum == 4.0

    def test_known_values(self):
        s = RunningStats()
        for x in [2, 4, 4, 4, 5, 5, 7, 9]:
            s.update(x)
        assert s.mean == pytest.approx(5.0)
        assert s.stddev == pytest.approx(2.0)

    def test_merge_equals_combined(self):
        a, b, c = RunningStats(), RunningStats(), RunningStats()
        for x in [1.0, 2.0, 3.0]:
            a.update(x)
            c.update(x)
        for x in [10.0, 20.0]:
            b.update(x)
            c.update(x)
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean)
        assert merged.variance == pytest.approx(c.variance)
        assert merged.minimum == c.minimum
        assert merged.maximum == c.maximum

    def test_merge_with_empty(self):
        a, b = RunningStats(), RunningStats()
        a.update(5)
        merged = a.merge(b)
        assert merged.count == 1
        assert merged.mean == 5.0

    def test_merge_two_empties(self):
        assert RunningStats().merge(RunningStats()).count == 0

    @given(st.lists(floats, min_size=2, max_size=100))
    def test_matches_naive_computation(self, samples):
        s = RunningStats()
        for x in samples:
            s.update(x)
        mean = sum(samples) / len(samples)
        var = sum((x - mean) ** 2 for x in samples) / len(samples)
        assert s.mean == pytest.approx(mean, rel=1e-6, abs=1e-6)
        assert s.variance == pytest.approx(var, rel=1e-6, abs=1e-3)


class TestWindowedRate:
    def test_rate_counts_recent_events(self):
        w = WindowedRate(1.0)
        w.record(0.0)
        w.record(0.5)
        assert w.rate(0.5) == pytest.approx(2.0)

    def test_events_expire(self):
        w = WindowedRate(1.0)
        w.record(0.0)
        assert w.rate(1.5) == 0.0

    def test_boundary_is_exclusive(self):
        w = WindowedRate(1.0)
        w.record(0.0)
        # At now=1.0 the event at t=0 is exactly window-old: expired.
        assert w.rate(1.0) == 0.0

    def test_weighted_events(self):
        w = WindowedRate(2.0)
        w.record(0.0, weight=1000.0)
        assert w.rate(0.1) == pytest.approx(500.0)

    def test_count(self):
        w = WindowedRate(1.0)
        for t in (0.0, 0.2, 0.4):
            w.record(t)
        assert w.count(0.5) == 3
        assert w.count(1.3) == 1

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedRate(0.0)

    @given(st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=50))
    def test_rate_never_negative(self, times):
        w = WindowedRate(0.5)
        for t in sorted(times):
            w.record(t)
        assert w.rate(max(times)) >= 0.0

    def test_weight_sum_resets_when_empty(self):
        w = WindowedRate(0.1)
        w.record(0.0, weight=5.0)
        w.record(10.0, weight=1.0)
        assert w.rate(10.0) == pytest.approx(10.0)  # only the new event
