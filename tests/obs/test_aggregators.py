"""Streaming aggregation: bit-exact series, bounded windows, exposition."""

import math
import random

import pytest

from repro.metrics.timeseries import BandwidthSeries, StreamingBandwidthSeries
from repro.obs import (
    DefenseActivation,
    DefenseDecision,
    EngineStats,
    LinkDrop,
    LiveMetrics,
    MonitorSnapshot,
    Verdict,
    VictimArrival,
)
from repro.obs.exposition import render_prometheus


class TestStreamingBandwidthSeries:
    """The streaming builder's contract: **bit-exact** vs from_arrivals."""

    def _random_arrivals(self, seed, n, end):
        rng = random.Random(seed)
        return [
            (rng.uniform(-0.1, end + 0.1), rng.randint(40, 1500),
             rng.random() < 0.3)
            for _ in range(n)
        ]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_from_arrivals_bit_exactly(self, seed):
        end, width = 5.0, 0.05
        arrivals = self._random_arrivals(seed, 2000, end)
        streaming = StreamingBandwidthSeries(
            start=0.0, end=end, bin_width=width
        )
        for t, size, is_attack in arrivals:
            if 0.0 <= t <= end:
                streaming.observe(t, size, is_attack)
        batch = BandwidthSeries.from_arrivals(
            [(t, s, a) for t, s, a in arrivals if 0.0 <= t <= end],
            start=0.0, end=end, bin_width=width,
        )
        got = streaming.finish()
        assert [x.hex() for x in got.total_kbps] == [
            x.hex() for x in batch.total_kbps
        ]
        assert [x.hex() for x in got.attack_kbps] == [
            x.hex() for x in batch.attack_kbps
        ]
        assert [x.hex() for x in got.times] == [x.hex() for x in batch.times]

    def test_interval_edges_match_from_arrivals(self):
        """Same half-open [start, end): t == end is excluded by both
        paths, t just inside clamps into the final bin."""
        edge_cases = [(0.0, 1000, False), (0.999999, 600, True),
                      (1.0, 400, False), (-0.01, 300, False)]
        streaming = StreamingBandwidthSeries(start=0.0, end=1.0, bin_width=0.1)
        for t, size, is_attack in edge_cases:
            streaming.observe(t, size, is_attack)
        batch = BandwidthSeries.from_arrivals(
            edge_cases, start=0.0, end=1.0, bin_width=0.1
        )
        got = streaming.finish()
        assert got.total_kbps == batch.total_kbps
        assert got.attack_kbps == batch.attack_kbps
        assert streaming.observed == 2  # t == end and t < start ignored

    def test_memory_is_bins_not_arrivals(self):
        streaming = StreamingBandwidthSeries(start=0.0, end=1.0, bin_width=0.1)
        for i in range(10_000):
            streaming.observe((i % 100) / 100.0, 500, False)
        # The aggregator holds only its bin arrays — no per-arrival state.
        assert len(streaming._total) == streaming.n_bins == 10


def _feed_scenario(live: LiveMetrics) -> None:
    live.emit(VictimArrival(time=0.1, size=1000, is_attack=False))
    live.emit(VictimArrival(time=0.4, size=500, is_attack=True))
    live.emit(DefenseDecision(time=0.5, action="drop", reason="pdt",
                              truth="attack"))
    live.emit(DefenseDecision(time=0.5, action="pass", reason="",
                              truth="wellbehaved"))
    live.emit(Verdict(time=0.6, label=3, verdict="cut", truth="attack"))
    live.emit(DefenseActivation(time=0.6))
    live.emit(MonitorSnapshot(time=0.75, epoch=3, n_sources=4,
                              n_destinations=1, ingress_total=10.0,
                              egress_total=9.0))
    live.emit(EngineStats(time=0.75, backend="heap", events_executed=1234,
                          pending=56, peak_occupancy=80))
    live.emit(LinkDrop(time=0.8, link="uplink:r1", reason="hook"))


class TestLiveMetrics:
    def test_totals_and_confusion(self):
        live = LiveMetrics(window=1.0)
        _feed_scenario(live)
        snap = live.snapshot()
        assert snap["arrivals_total"] == 2
        assert snap["attack_arrivals_total"] == 1
        assert snap["arrival_bytes_total"] == 1500
        assert snap["examined_total"] == 2
        assert snap["dropped_total"] == 1
        assert snap["drop_ratio"] == 0.5
        assert snap["drops_by_reason"] == {"pdt": 1}
        assert snap["verdict_confusion"] == {"attack:cut": 1}
        assert snap["activation_time"] == 0.6
        assert snap["epochs"] == 3
        assert snap["events_executed"] == 1234
        assert snap["queue_backend"] == "heap"
        assert snap["link_drops"] == {"uplink:r1:hook": 1}

    def test_window_prunes_as_time_advances(self):
        live = LiveMetrics(window=1.0)
        live.emit(VictimArrival(time=0.0, size=1000, is_attack=False))
        assert live.snapshot()["arrival_kbps"] == 1000 * 8.0 / 1e3 / 1.0
        # An event two sim-seconds later evicts the first from the window
        # but not from the totals.
        live.emit(VictimArrival(time=2.0, size=500, is_attack=True))
        snap = live.snapshot()
        assert snap["arrivals_total"] == 2
        assert snap["arrival_kbps"] == 500 * 8.0 / 1e3 / 1.0
        assert snap["attack_kbps"] == snap["arrival_kbps"]
        assert snap["legit_kbps"] == 0.0

    def test_windowed_rates_use_window_not_elapsed(self):
        """Early-run rates ramp from zero (Prometheus rate() style)."""
        live = LiveMetrics(window=2.0)
        live.emit(Verdict(time=0.1, label=1, verdict="nice", truth="legit"))
        assert live.snapshot()["verdicts_per_second"] == 0.5

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            LiveMetrics(window=0.0)

    def test_snapshot_of_fresh_instance_is_all_zero(self):
        snap = LiveMetrics().snapshot()
        assert snap["arrivals_total"] == 0
        assert snap["drop_ratio"] == 0.0
        assert snap["activation_time"] is None
        assert not math.isnan(snap["arrival_kbps"])


class TestPrometheusExposition:
    def test_format_is_pinned(self):
        """Scrapers depend on these exact families; renaming one is a
        breaking change and must show up here."""
        live = LiveMetrics(window=1.0)
        _feed_scenario(live)
        text = render_prometheus(live)
        assert text.endswith("\n")
        for needle in (
            "# TYPE repro_sim_time_seconds gauge",
            'repro_victim_arrivals_total{truth="attack"} 1',
            'repro_victim_arrivals_total{truth="legit"} 1',
            "repro_victim_arrival_bytes_total 1500",
            "repro_defense_examined_total 2",
            'repro_defense_drops_total{reason="pdt"} 1',
            "repro_defense_drop_ratio 0.5",
            'repro_verdicts_total{truth="attack",verdict="cut"} 1',
            'repro_link_drops_total{link="uplink:r1",reason="hook"} 1',
            "repro_engine_events_executed_total 1234",
            "repro_engine_pending_events 56",
            "repro_monitor_epochs_total 3",
            "repro_defense_activated 1",
            "repro_runs_completed_total 0",
        ):
            assert needle in text, needle

    def test_label_values_are_escaped(self):
        live = LiveMetrics()
        live.emit(LinkDrop(time=0.0, link='odd"name\\x', reason="hook"))
        text = render_prometheus(live)
        assert 'link="odd\\"name\\\\x"' in text
