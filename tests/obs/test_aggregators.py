"""Streaming aggregation: bit-exact series, bounded windows, exposition."""

import math
import random

import pytest

from repro.metrics.timeseries import BandwidthSeries, StreamingBandwidthSeries
from repro.obs import (
    DefenseActivation,
    DefenseDecision,
    EngineStats,
    LinkDrop,
    LiveMetrics,
    MonitorSnapshot,
    Verdict,
    VictimArrival,
)
from repro.obs.aggregators import AtrDrilldown, FlowDrilldown
from repro.obs.events import RunStarted
from repro.obs.exposition import render_prometheus


def _drop(time, flow, reason="probe", truth="attack", atr="ingress0"):
    return DefenseDecision(time=time, action="drop", reason=reason,
                           truth=truth, flow=flow, atr=atr)


def _verdict(time, label, verdict, truth="attack", atr="ingress0"):
    return Verdict(time=time, label=label, verdict=verdict, truth=truth,
                   atr=atr)


class TestStreamingBandwidthSeries:
    """The streaming builder's contract: **bit-exact** vs from_arrivals."""

    def _random_arrivals(self, seed, n, end):
        rng = random.Random(seed)
        return [
            (rng.uniform(-0.1, end + 0.1), rng.randint(40, 1500),
             rng.random() < 0.3)
            for _ in range(n)
        ]

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_from_arrivals_bit_exactly(self, seed):
        end, width = 5.0, 0.05
        arrivals = self._random_arrivals(seed, 2000, end)
        streaming = StreamingBandwidthSeries(
            start=0.0, end=end, bin_width=width
        )
        for t, size, is_attack in arrivals:
            if 0.0 <= t <= end:
                streaming.observe(t, size, is_attack)
        batch = BandwidthSeries.from_arrivals(
            [(t, s, a) for t, s, a in arrivals if 0.0 <= t <= end],
            start=0.0, end=end, bin_width=width,
        )
        got = streaming.finish()
        assert [x.hex() for x in got.total_kbps] == [
            x.hex() for x in batch.total_kbps
        ]
        assert [x.hex() for x in got.attack_kbps] == [
            x.hex() for x in batch.attack_kbps
        ]
        assert [x.hex() for x in got.times] == [x.hex() for x in batch.times]

    def test_interval_edges_match_from_arrivals(self):
        """Same half-open [start, end): t == end is excluded by both
        paths, t just inside clamps into the final bin."""
        edge_cases = [(0.0, 1000, False), (0.999999, 600, True),
                      (1.0, 400, False), (-0.01, 300, False)]
        streaming = StreamingBandwidthSeries(start=0.0, end=1.0, bin_width=0.1)
        for t, size, is_attack in edge_cases:
            streaming.observe(t, size, is_attack)
        batch = BandwidthSeries.from_arrivals(
            edge_cases, start=0.0, end=1.0, bin_width=0.1
        )
        got = streaming.finish()
        assert got.total_kbps == batch.total_kbps
        assert got.attack_kbps == batch.attack_kbps
        assert streaming.observed == 2  # t == end and t < start ignored

    def test_memory_is_bins_not_arrivals(self):
        streaming = StreamingBandwidthSeries(start=0.0, end=1.0, bin_width=0.1)
        for i in range(10_000):
            streaming.observe((i % 100) / 100.0, 500, False)
        # The aggregator holds only its bin arrays — no per-arrival state.
        assert len(streaming._total) == streaming.n_bins == 10


def _feed_scenario(live: LiveMetrics) -> None:
    live.emit(VictimArrival(time=0.1, size=1000, is_attack=False))
    live.emit(VictimArrival(time=0.4, size=500, is_attack=True))
    live.emit(DefenseDecision(time=0.5, action="drop", reason="pdt",
                              truth="attack"))
    live.emit(DefenseDecision(time=0.5, action="pass", reason="",
                              truth="wellbehaved"))
    live.emit(Verdict(time=0.6, label=3, verdict="cut", truth="attack"))
    live.emit(DefenseActivation(time=0.6))
    live.emit(MonitorSnapshot(time=0.75, epoch=3, n_sources=4,
                              n_destinations=1, ingress_total=10.0,
                              egress_total=9.0))
    live.emit(EngineStats(time=0.75, backend="heap", events_executed=1234,
                          pending=56, peak_occupancy=80))
    live.emit(LinkDrop(time=0.8, link="uplink:r1", reason="hook"))


class TestLiveMetrics:
    def test_totals_and_confusion(self):
        live = LiveMetrics(window=1.0)
        _feed_scenario(live)
        snap = live.snapshot()
        assert snap["arrivals_total"] == 2
        assert snap["attack_arrivals_total"] == 1
        assert snap["arrival_bytes_total"] == 1500
        assert snap["examined_total"] == 2
        assert snap["dropped_total"] == 1
        assert snap["drop_ratio"] == 0.5
        assert snap["drops_by_reason"] == {"pdt": 1}
        assert snap["verdict_confusion"] == {"attack:cut": 1}
        assert snap["activation_time"] == 0.6
        assert snap["epochs"] == 3
        assert snap["events_executed"] == 1234
        assert snap["queue_backend"] == "heap"
        assert snap["link_drops"] == {"uplink:r1:hook": 1}

    def test_window_prunes_as_time_advances(self):
        live = LiveMetrics(window=1.0)
        live.emit(VictimArrival(time=0.0, size=1000, is_attack=False))
        assert live.snapshot()["arrival_kbps"] == 1000 * 8.0 / 1e3 / 1.0
        # An event two sim-seconds later evicts the first from the window
        # but not from the totals.
        live.emit(VictimArrival(time=2.0, size=500, is_attack=True))
        snap = live.snapshot()
        assert snap["arrivals_total"] == 2
        assert snap["arrival_kbps"] == 500 * 8.0 / 1e3 / 1.0
        assert snap["attack_kbps"] == snap["arrival_kbps"]
        assert snap["legit_kbps"] == 0.0

    def test_windowed_rates_use_window_not_elapsed(self):
        """Early-run rates ramp from zero (Prometheus rate() style)."""
        live = LiveMetrics(window=2.0)
        live.emit(Verdict(time=0.1, label=1, verdict="nice", truth="legit"))
        assert live.snapshot()["verdicts_per_second"] == 0.5

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            LiveMetrics(window=0.0)

    def test_snapshot_of_fresh_instance_is_all_zero(self):
        snap = LiveMetrics().snapshot()
        assert snap["arrivals_total"] == 0
        assert snap["drop_ratio"] == 0.0
        assert snap["activation_time"] is None
        assert not math.isnan(snap["arrival_kbps"])

    def test_engine_build_folds_from_run_started(self):
        live = LiveMetrics()
        assert live.snapshot()["engine_build"] == ""
        live.emit(RunStarted(time=0.0, run_id="x", seed=1, scenario="s",
                             duration=1.0, engine="compiled"))
        assert live.snapshot()["engine_build"] == "compiled"
        # An engine-less run.started (older recording) keeps the value.
        live.emit(RunStarted(time=0.0, run_id="y", seed=2, scenario="s",
                             duration=1.0))
        assert live.snapshot()["engine_build"] == "compiled"

    def test_entry_exactly_one_window_old_survives_pruning(self):
        """Cutoff is strict (`< now - window`): an arrival exactly at
        the epoch boundary still counts toward the windowed rate."""
        live = LiveMetrics(window=1.0)
        live.emit(VictimArrival(time=1.0, size=1000, is_attack=False))
        live.emit(VictimArrival(time=2.0, size=500, is_attack=False))
        # cutoff = 2.0 - 1.0 = 1.0; the t=1.0 arrival is not < cutoff.
        assert live.snapshot()["arrival_kbps"] == 1500 * 8.0 / 1e3 / 1.0
        live.emit(VictimArrival(time=2.0 + 1e-9, size=0, is_attack=False))
        # The slightest advance past the boundary evicts it.
        assert live.snapshot()["arrival_kbps"] == 500 * 8.0 / 1e3 / 1.0

    def test_non_window_events_advance_time_and_prune(self):
        """A monitor epoch (which owns no window) still advances sim
        time and prunes every window — rates decay even when the only
        traffic is old."""
        live = LiveMetrics(window=1.0)
        live.emit(VictimArrival(time=0.5, size=1000, is_attack=True))
        live.emit(_drop(0.5, flow=1))
        live.emit(_verdict(0.6, 1, "cut"))
        live.emit(MonitorSnapshot(time=5.0, epoch=2, n_sources=1,
                                  n_destinations=1, ingress_total=1.0,
                                  egress_total=1.0))
        snap = live.snapshot()
        assert snap["arrival_kbps"] == 0.0
        assert snap["drops_per_second"] == 0.0
        assert snap["verdicts_per_second"] == 0.0
        assert snap["arrivals_total"] == 1  # totals never decay


class TestFlowDrilldown:
    def test_folds_decisions_and_verdicts_per_flow(self):
        flows = FlowDrilldown()
        flows.emit(_drop(0.1, flow=7, reason="probe"))
        flows.emit(_drop(0.2, flow=7, reason="pdt"))
        flows.emit(DefenseDecision(time=0.3, action="pass", reason="",
                                   truth="tcp_legit", flow=9, atr="ingress1"))
        flows.emit(_verdict(0.4, 7, "cut"))
        snap = flows.snapshot()
        assert snap["tracked_flows"] == 2
        assert snap["decisions_seen"] == 3
        assert snap["verdicts_seen"] == 1
        (top,) = snap["top_dropped"]
        assert top["flow"] == 7
        assert top["drops"] == 2
        assert top["drops_by_reason"] == {"probe": 1, "pdt": 1}
        assert top["last_verdict"] == "cut"
        assert top["atr"] == "ingress0"

    def test_top_throttled_ranks_by_probe_drops(self):
        flows = FlowDrilldown()
        for _ in range(3):
            flows.emit(_drop(0.1, flow=1, reason="pdt"))
        flows.emit(_drop(0.2, flow=2, reason="probe"))
        snap = flows.snapshot()
        assert [e["flow"] for e in snap["top_dropped"]] == [1, 2]
        assert [e["flow"] for e in snap["top_throttled"]] == [2]

    def test_capacity_bounds_memory_with_spacesaving_eviction(self):
        flows = FlowDrilldown(capacity=4)
        # A heavy hitter, then a sweep of one-shot flows past capacity.
        for _ in range(10):
            flows.emit(_drop(0.1, flow=99))
        for flow in range(1, 8):
            flows.emit(_drop(0.2, flow=flow))
        snap = flows.snapshot()
        assert snap["tracked_flows"] == 4
        assert snap["evicted_flows"] == 4  # 8 distinct flows, cap 4
        # The heavy hitter survives the churn of singletons.
        assert snap["top_dropped"][0]["flow"] == 99
        assert snap["top_dropped"][0]["drops"] == 10

    def test_top_k_truncates_the_tables(self):
        flows = FlowDrilldown(top_k=2)
        for flow in range(5):
            flows.emit(_drop(0.1, flow=flow))
        assert len(flows.snapshot()["top_dropped"]) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowDrilldown(capacity=0)
        with pytest.raises(ValueError):
            FlowDrilldown(top_k=0)


class TestAtrDrilldown:
    def test_verdict_counts_and_drops_per_atr(self):
        atrs = AtrDrilldown()
        atrs.emit(_verdict(0.1, 1, "nice", atr="a"))
        atrs.emit(_verdict(0.2, 2, "cut", atr="a"))
        atrs.emit(_verdict(0.3, 3, "cut", atr="b"))
        atrs.emit(_drop(0.4, flow=2, atr="a"))
        snap = atrs.snapshot()
        assert [row["atr"] for row in snap["atrs"]] == ["a", "b"]
        a, b = snap["atrs"]
        assert a["verdicts"] == {"cut": 1, "nice": 1}
        assert a["drops"] == 1
        assert a["drops_by_reason"] == {"probe": 1}
        assert b["verdicts_total"] == 1

    def test_flip_is_a_rejudged_flow_with_a_different_outcome(self):
        atrs = AtrDrilldown()
        atrs.emit(_verdict(0.1, 5, "nice", atr="a"))
        atrs.emit(_verdict(0.2, 5, "nice", atr="a"))   # same: no flip
        assert atrs.snapshot()["atrs"][0]["flips"] == 0
        atrs.emit(_verdict(0.3, 5, "cut", atr="a"))    # flip
        assert atrs.snapshot()["atrs"][0]["flips"] == 1
        # The same flow judged at a DIFFERENT atr is not a flip there.
        atrs.emit(_verdict(0.4, 5, "nice", atr="b"))
        rows = {row["atr"]: row for row in atrs.snapshot()["atrs"]}
        assert rows["b"]["flips"] == 0

    def test_verdict_rate_window_prunes(self):
        atrs = AtrDrilldown(window=1.0)
        atrs.emit(_verdict(0.1, 1, "cut", atr="a"))
        atrs.emit(_verdict(0.2, 2, "cut", atr="a"))
        assert atrs.snapshot()["atrs"][0]["verdicts_per_second"] == 2.0
        atrs.emit(_verdict(5.0, 3, "cut", atr="a"))
        row = atrs.snapshot()["atrs"][0]
        assert row["verdicts_per_second"] == 1.0
        assert row["verdicts_total"] == 3  # totals never decay

    def test_flow_memory_is_bounded_per_atr(self):
        atrs = AtrDrilldown(flow_memory=2)
        atrs.emit(_verdict(0.1, 1, "nice", atr="a"))
        atrs.emit(_verdict(0.2, 2, "nice", atr="a"))
        atrs.emit(_verdict(0.3, 3, "nice", atr="a"))  # evicts flow 1
        entry = atrs._atrs["a"]
        assert len(entry.last_flow_verdict) == 2
        assert 1 not in entry.last_flow_verdict
        # A forgotten flow re-judged differently is NOT counted as a
        # flip (its history is gone) — the bound trades that recall.
        atrs.emit(_verdict(0.4, 1, "cut", atr="a"))
        assert atrs.snapshot()["atrs"][0]["flips"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AtrDrilldown(window=0.0)
        with pytest.raises(ValueError):
            AtrDrilldown(flow_memory=0)


class TestPrometheusExposition:
    def test_format_is_pinned(self):
        """Scrapers depend on these exact families; renaming one is a
        breaking change and must show up here."""
        live = LiveMetrics(window=1.0)
        _feed_scenario(live)
        text = render_prometheus(live)
        assert text.endswith("\n")
        for needle in (
            "# TYPE repro_sim_time_seconds gauge",
            'repro_victim_arrivals_total{truth="attack"} 1',
            'repro_victim_arrivals_total{truth="legit"} 1',
            "repro_victim_arrival_bytes_total 1500",
            "repro_defense_examined_total 2",
            'repro_defense_drops_total{reason="pdt"} 1',
            "repro_defense_drop_ratio 0.5",
            'repro_verdicts_total{truth="attack",verdict="cut"} 1',
            'repro_link_drops_total{link="uplink:r1",reason="hook"} 1',
            "repro_engine_events_executed_total 1234",
            "repro_engine_pending_events 56",
            "repro_monitor_epochs_total 3",
            "repro_defense_activated 1",
            "repro_runs_completed_total 0",
        ):
            assert needle in text, needle

    def test_label_values_are_escaped(self):
        live = LiveMetrics()
        live.emit(LinkDrop(time=0.0, link='odd"name\\x', reason="hook"))
        text = render_prometheus(live)
        assert 'link="odd\\"name\\\\x"' in text

    def test_newlines_in_label_values_are_escaped(self):
        live = LiveMetrics()
        live.emit(LinkDrop(time=0.0, link="two\nlines", reason="hook"))
        text = render_prometheus(live)
        assert 'link="two\\nlines"' in text
        # The sample must still be exactly one exposition line.
        assert not any(
            line.startswith("lines") for line in text.splitlines()
        )

    def test_non_finite_values_render_prometheus_spellings(self):
        """text format 0.0.4 wants NaN/+Inf/-Inf; Python's str() gives
        nan/inf, which scrapers reject as unparseable."""
        from repro.obs.exposition import _format_value

        assert _format_value(float("nan")) == "NaN"
        assert _format_value(float("inf")) == "+Inf"
        assert _format_value(float("-inf")) == "-Inf"
        assert _format_value(0.5) == "0.5"
        assert _format_value(7) == "7"

    def test_rendered_text_never_leaks_python_float_repr(self):
        live = LiveMetrics(window=1.0)
        _feed_scenario(live)
        text = render_prometheus(live)
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            value = line.rsplit(" ", 1)[1]
            assert value not in ("nan", "inf", "-inf"), line
