"""The sink protocol and fan-out bus: ordering, filtering, zero-cost."""

import pytest

from repro.obs import (
    NULL_BUS,
    NULL_SINK,
    BufferedSink,
    CallbackSink,
    EventBus,
    MetricSink,
    NullSink,
    VictimArrival,
)


def _arrival(t: float = 0.0) -> VictimArrival:
    return VictimArrival(time=t, size=1000, is_attack=False)


class TestNullSink:
    def test_falsy_so_producers_skip_event_construction(self):
        assert not NullSink()
        assert not NULL_SINK
        assert not NULL_BUS

    def test_satisfies_the_sink_protocol(self):
        assert isinstance(NULL_SINK, MetricSink)

    def test_emit_and_close_are_inert(self):
        sink = NullSink()
        sink.emit(_arrival())
        sink.close()


class TestEventBus:
    def test_falsy_until_first_subscriber(self):
        bus = EventBus()
        assert not bus
        sink = bus.subscribe(BufferedSink())
        assert bus
        bus.unsubscribe(sink)
        assert not bus

    def test_fan_out_preserves_attachment_order(self):
        """Sinks see each event strictly in the order they subscribed —
        the determinism contract serve's SSE broker relies on."""
        calls = []
        bus = EventBus()
        bus.subscribe(CallbackSink(lambda e: calls.append(("first", e.time))))
        bus.subscribe(CallbackSink(lambda e: calls.append(("second", e.time))))
        bus.emit(_arrival(1.0))
        bus.emit(_arrival(2.0))
        assert calls == [
            ("first", 1.0), ("second", 1.0),
            ("first", 2.0), ("second", 2.0),
        ]

    def test_kinds_filter_restricts_delivery(self):
        bus = EventBus()
        everything = bus.subscribe(BufferedSink())
        arrivals_only = bus.subscribe(
            BufferedSink(), kinds=("victim.arrival",)
        )
        bus.emit(_arrival())
        from repro.obs import Verdict

        bus.emit(Verdict(time=1.0, label=3, verdict="cut", truth="attack"))
        assert [e.kind for e in everything.events] == [
            "victim.arrival", "defense.verdict",
        ]
        assert [e.kind for e in arrivals_only.events] == ["victim.arrival"]

    def test_empty_kinds_rejected(self):
        with pytest.raises(ValueError):
            EventBus().subscribe(BufferedSink(), kinds=())

    def test_unsubscribe_missing_sink_is_noop(self):
        EventBus().unsubscribe(BufferedSink())

    def test_close_reaches_each_sink_once(self):
        closes = []

        class Closing(BufferedSink):
            def __init__(self, name):
                super().__init__()
                self.name = name

            def close(self):
                closes.append(self.name)

        bus = EventBus()
        a = bus.subscribe(Closing("a"))
        bus.subscribe(Closing("b"))
        bus.subscribe(a, kinds=("victim.arrival",))  # second subscription
        bus.close()
        assert closes == ["a", "b"]


class TestBufferedSink:
    def test_unbounded_by_default(self):
        sink = BufferedSink()
        for i in range(100):
            sink.emit(_arrival(float(i)))
        assert len(sink) == 100
        assert sink.dropped == 0

    def test_bound_discards_oldest_and_counts(self):
        sink = BufferedSink(max_events=3)
        for i in range(5):
            sink.emit(_arrival(float(i)))
        assert [e.time for e in sink.events] == [2.0, 3.0, 4.0]
        assert sink.dropped == 2

    def test_of_kind_preserves_emission_order(self):
        sink = BufferedSink()
        sink.emit(_arrival(1.0))
        sink.emit(_arrival(2.0))
        assert [e.time for e in sink.of_kind("victim.arrival")] == [1.0, 2.0]
        assert sink.of_kind("defense.verdict") == []

    def test_max_events_must_be_positive(self):
        with pytest.raises(ValueError):
            BufferedSink(max_events=0)


class TestEventPayloads:
    def test_to_dict_carries_kind_and_every_field(self):
        event = VictimArrival(time=0.5, size=1500, is_attack=True)
        assert event.to_dict() == {
            "kind": "victim.arrival",
            "time": 0.5,
            "size": 1500,
            "is_attack": True,
        }

    def test_callback_sink_rejects_non_callable(self):
        with pytest.raises(TypeError):
            CallbackSink("not a function")
