"""The serve layer: HTTP endpoints, SSE fan-out, clean shutdown."""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.obs import EventBus, LiveMetrics, Verdict, VictimArrival
from repro.obs.serve import (
    STREAMED_KINDS,
    SSEBroker,
    _Server,
)


@pytest.fixture()
def server():
    live = LiveMetrics(window=1.0)
    broker = SSEBroker()
    srv = _Server(("127.0.0.1", 0), live, broker)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    broker.close()
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _get(srv, path: str):
    port = srv.server_address[1]
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5
    ) as response:
        return response.status, response.headers, response.read()


class TestEndpoints:
    def test_healthz(self, server):
        status, _, body = _get(server, "/healthz")
        assert status == 200
        assert body == b"ok\n"

    def test_dashboard_is_self_contained_html(self, server):
        status, headers, body = _get(server, "/")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        text = body.decode()
        assert "repro serve" in text
        assert "EventSource" in text
        # No external assets: the page must work with no network.
        assert "http://" not in text and "https://" not in text

    def test_metrics_reflects_the_live_sink(self, server):
        server.live.emit(VictimArrival(time=0.2, size=1000, is_attack=True))
        status, headers, body = _get(server, "/metrics")
        assert status == 200
        assert "version=0.0.4" in headers["Content-Type"]
        text = body.decode()
        assert 'repro_victim_arrivals_total{truth="attack"} 1' in text

    def test_state_reports_phase_and_snapshot(self, server):
        server.status.update(mode="run", phase="running")
        status, _, body = _get(server, "/state")
        payload = json.loads(body)
        assert status == 200
        assert payload["mode"] == "run"
        assert payload["phase"] == "running"
        assert payload["live"]["arrivals_total"] == 0

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nope")
        assert err.value.code == 404


class TestSSEBroker:
    def test_serializes_once_and_fans_out(self):
        broker = SSEBroker()
        a, b = broker.register(), broker.register()
        broker.emit(Verdict(time=1.0, label=2, verdict="cut", truth="attack"))
        line_a, line_b = a.get(timeout=1), b.get(timeout=1)
        assert line_a == line_b
        assert json.loads(line_a)["kind"] == "defense.verdict"

    def test_slow_client_drops_instead_of_blocking(self):
        from repro.obs.serve import CLIENT_QUEUE_SIZE

        broker = SSEBroker()
        q = broker.register()
        for i in range(CLIENT_QUEUE_SIZE + 50):
            broker.publish({"i": i})
        assert q.qsize() == CLIENT_QUEUE_SIZE  # newest 50 dropped

    def test_close_poisons_current_and_future_clients(self):
        broker = SSEBroker()
        before = broker.register()
        broker.close()
        after = broker.register()
        assert before.get(timeout=1) is None
        assert after.get(timeout=1) is None

    def test_streamed_kinds_exclude_per_packet_noise(self):
        assert "victim.arrival" not in STREAMED_KINDS
        assert "defense.decision" not in STREAMED_KINDS
        assert "defense.verdict" in STREAMED_KINDS

    def test_sse_stream_over_http(self, server):
        """A real client on /events sees bus events as SSE frames."""
        bus = EventBus()
        bus.subscribe(server.broker, kinds=STREAMED_KINDS)
        port = server.server_address[1]
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
        try:
            conn.request("GET", "/events")
            response = conn.getresponse()
            assert response.headers["Content-Type"] == "text/event-stream"
            # Let the handler register its queue before emitting.
            deadline = time.monotonic() + 2
            while not server.broker._clients and time.monotonic() < deadline:
                time.sleep(0.01)
            bus.emit(Verdict(time=0.5, label=1, verdict="nice",
                             truth="legit"))
            line = response.fp.readline().decode()
            assert line.startswith("data: ")
            payload = json.loads(line[len("data: "):])
            assert payload["kind"] == "defense.verdict"
            assert payload["verdict"] == "nice"
        finally:
            conn.close()


@pytest.mark.slow
class TestServeEndToEnd:
    """The CLI process itself: run, serve, SIGINT, exit 0."""

    def test_serve_run_linger_and_clean_interrupt(self, tmp_path):
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--flows", "10", "--routers", "8", "--duration", "2",
             "--seed", "3", "--port", "0", "--linger"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=tmp_path,
        )
        try:
            banner = proc.stdout.readline()
            assert "serving on http://" in banner
            port = int(banner.split("http://", 1)[1].split("/")[0]
                       .rsplit(":", 1)[1])
            deadline = time.monotonic() + 30
            phase = None
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/state", timeout=5
                ) as response:
                    state = json.loads(response.read())
                phase = state["phase"]
                if phase == "lingering":
                    break
                time.sleep(0.1)
            assert phase == "lingering"
            assert state["live"]["runs_completed"] == 1
            assert state["live"]["verdicts_total"]  # saw real verdicts
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5
            ) as response:
                assert b"repro_runs_completed_total 1" in response.read()
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "Traceback" not in out
        assert "shutting down" in out
