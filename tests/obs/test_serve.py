"""The serve layer: HTTP endpoints, SSE fan-out, clean shutdown."""

import http.client
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.obs import EventBus, LiveMetrics, Verdict, VictimArrival
from repro.obs.serve import (
    STREAMED_KINDS,
    SSEBroker,
    _Server,
)


@pytest.fixture()
def server():
    live = LiveMetrics(window=1.0)
    broker = SSEBroker()
    srv = _Server(("127.0.0.1", 0), live, broker)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    broker.close()
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=5)


def _get(srv, path: str):
    port = srv.server_address[1]
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5
    ) as response:
        return response.status, response.headers, response.read()


class TestEndpoints:
    def test_healthz(self, server):
        status, _, body = _get(server, "/healthz")
        assert status == 200
        assert body == b"ok\n"

    def test_dashboard_is_self_contained_html(self, server):
        status, headers, body = _get(server, "/")
        assert status == 200
        assert headers["Content-Type"].startswith("text/html")
        text = body.decode()
        assert "repro serve" in text
        assert "EventSource" in text
        # No external assets: the page must work with no network.
        assert "http://" not in text and "https://" not in text

    def test_metrics_reflects_the_live_sink(self, server):
        server.live.emit(VictimArrival(time=0.2, size=1000, is_attack=True))
        status, headers, body = _get(server, "/metrics")
        assert status == 200
        assert "version=0.0.4" in headers["Content-Type"]
        text = body.decode()
        assert 'repro_victim_arrivals_total{truth="attack"} 1' in text

    def test_state_reports_phase_and_snapshot(self, server):
        server.status.update(mode="run", phase="running")
        status, _, body = _get(server, "/state")
        payload = json.loads(body)
        assert status == 200
        assert payload["mode"] == "run"
        assert payload["phase"] == "running"
        assert payload["live"]["arrivals_total"] == 0

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nope")
        assert err.value.code == 404

    def test_metrics_content_type_is_prometheus_0_0_4(self, server):
        _, headers, _ = _get(server, "/metrics")
        assert headers["Content-Type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )

    def test_flows_endpoint_serves_the_drilldown(self, server):
        from repro.obs.events import DefenseDecision

        server.flows.emit(DefenseDecision(
            time=0.1, action="drop", reason="probe", truth="attack",
            flow=11, atr="ingress2",
        ))
        status, headers, body = _get(server, "/flows")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert payload["tracked_flows"] == 1
        assert payload["top_dropped"][0]["flow"] == 11
        assert payload["top_dropped"][0]["atr"] == "ingress2"

    def test_atrs_endpoint_serves_the_drilldown(self, server):
        server.atrs.emit(Verdict(time=0.1, label=5, verdict="cut",
                                 truth="attack", atr="ingress2"))
        status, _, body = _get(server, "/atrs")
        payload = json.loads(body)
        assert status == 200
        assert payload["atrs"][0]["atr"] == "ingress2"
        assert payload["atrs"][0]["verdicts"] == {"cut": 1}

    def test_metrics_includes_drilldown_and_sse_series(self, server):
        from repro.obs.events import DefenseDecision

        server.flows.emit(DefenseDecision(
            time=0.1, action="drop", reason="probe", truth="attack",
            flow=11, atr="ingress2",
        ))
        server.atrs.emit(Verdict(time=0.2, label=11, verdict="cut",
                                 truth="attack", atr="ingress2"))
        _, _, body = _get(server, "/metrics")
        text = body.decode()
        assert 'repro_flow_drops_total{flow="11",truth="attack"} 1' in text
        assert (
            'repro_atr_verdicts_total{atr="ingress2",verdict="cut"} 1'
            in text
        )
        assert "repro_sse_dropped_events_total 0" in text
        assert "repro_sse_clients 0" in text

    def test_state_carries_sse_backpressure_stats(self, server):
        _, _, body = _get(server, "/state")
        payload = json.loads(body)
        assert payload["sse"] == {
            "clients": 0, "published_events": 0, "dropped_events": 0,
        }

    def test_dashboard_has_drilldown_panels_and_engine_slot(self, server):
        _, _, body = _get(server, "/")
        text = body.decode()
        assert 'id="flows"' in text
        assert 'id="atrs"' in text
        assert 'id="engine"' in text


class TestSSEBroker:
    def test_serializes_once_and_fans_out(self):
        broker = SSEBroker()
        a, b = broker.register(), broker.register()
        broker.emit(Verdict(time=1.0, label=2, verdict="cut", truth="attack"))
        line_a, line_b = a.get(timeout=1), b.get(timeout=1)
        assert line_a == line_b
        assert json.loads(line_a)["kind"] == "defense.verdict"

    def test_slow_client_drops_instead_of_blocking(self):
        from repro.obs.serve import CLIENT_QUEUE_SIZE

        broker = SSEBroker()
        q = broker.register()
        for i in range(CLIENT_QUEUE_SIZE + 50):
            broker.publish({"i": i})
        assert q.qsize() == CLIENT_QUEUE_SIZE  # newest 50 dropped
        assert broker.dropped_events == 50
        assert broker.published_events == CLIENT_QUEUE_SIZE + 50
        stats = broker.stats()
        assert stats["clients"] == 1
        assert stats["dropped_events"] == 50

    def test_drops_counted_per_client(self):
        """Two clients, one drained: only the stuck one loses events."""
        from repro.obs.serve import CLIENT_QUEUE_SIZE

        broker = SSEBroker()
        stuck = broker.register()
        drained = broker.register()
        for i in range(CLIENT_QUEUE_SIZE + 10):
            broker.publish({"i": i})
            while not drained.empty():
                drained.get_nowait()
        assert stuck.qsize() == CLIENT_QUEUE_SIZE
        assert broker.dropped_events == 10

    def test_close_poisons_current_and_future_clients(self):
        broker = SSEBroker()
        before = broker.register()
        broker.close()
        after = broker.register()
        assert before.get(timeout=1) is None
        assert after.get(timeout=1) is None

    def test_streamed_kinds_exclude_per_packet_noise(self):
        assert "victim.arrival" not in STREAMED_KINDS
        assert "defense.decision" not in STREAMED_KINDS
        assert "defense.verdict" in STREAMED_KINDS

    def test_sse_stream_over_http(self, server):
        """A real client on /events sees bus events as SSE frames."""
        bus = EventBus()
        bus.subscribe(server.broker, kinds=STREAMED_KINDS)
        port = server.server_address[1]
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
        try:
            conn.request("GET", "/events")
            response = conn.getresponse()
            assert response.headers["Content-Type"] == "text/event-stream"
            # Let the handler register its queue before emitting.
            deadline = time.monotonic() + 2
            while not server.broker._clients and time.monotonic() < deadline:
                time.sleep(0.01)
            bus.emit(Verdict(time=0.5, label=1, verdict="nice",
                             truth="legit"))
            line = response.fp.readline().decode()
            assert line.startswith("data: ")
            payload = json.loads(line[len("data: "):])
            assert payload["kind"] == "defense.verdict"
            assert payload["verdict"] == "nice"
        finally:
            conn.close()


@pytest.mark.slow
class TestServeEndToEnd:
    """The CLI process itself: run, serve, SIGINT, exit 0."""

    def test_serve_run_linger_and_clean_interrupt(self, tmp_path):
        env = dict(os.environ)
        src = Path(__file__).resolve().parents[2] / "src"
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--flows", "10", "--routers", "8", "--duration", "2",
             "--seed", "3", "--port", "0", "--linger"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=tmp_path,
        )
        try:
            banner = proc.stdout.readline()
            assert "serving on http://" in banner
            port = int(banner.split("http://", 1)[1].split("/")[0]
                       .rsplit(":", 1)[1])
            deadline = time.monotonic() + 30
            phase = None
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/state", timeout=5
                ) as response:
                    state = json.loads(response.read())
                phase = state["phase"]
                if phase == "lingering":
                    break
                time.sleep(0.1)
            assert phase == "lingering"
            assert state["live"]["runs_completed"] == 1
            assert state["live"]["verdicts_total"]  # saw real verdicts
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5
            ) as response:
                assert b"repro_runs_completed_total 1" in response.read()
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "Traceback" not in out
        assert "shutting down" in out


def _cli_env():
    env = dict(os.environ)
    src = Path(__file__).resolve().parents[2] / "src"
    env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
    return env


@pytest.mark.slow
class TestRecordReplayEndToEnd:
    def test_replay_serves_a_recorded_run(self, tmp_path):
        env = _cli_env()
        recording = tmp_path / "flight.jsonl.gz"
        run = subprocess.run(
            [sys.executable, "-m", "repro", "run",
             "--flows", "10", "--routers", "8", "--duration", "2",
             "--seed", "3", "--record", str(recording)],
            capture_output=True, text=True, env=env, cwd=tmp_path,
            timeout=120,
        )
        assert run.returncode == 0, run.stdout + run.stderr
        assert recording.exists()

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "replay", str(recording),
             "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=tmp_path,
        )
        try:
            banner = proc.stdout.readline()
            assert "serving on http://" in banner
            port = int(banner.split("http://", 1)[1].split("/")[0]
                       .rsplit(":", 1)[1])
            deadline = time.monotonic() + 30
            state = None
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/state", timeout=5
                ) as response:
                    state = json.loads(response.read())
                if state["phase"] == "lingering":
                    break
                time.sleep(0.1)
            assert state["phase"] == "lingering"
            assert state["mode"] == "replay"
            assert state["events_replayed"] > 0
            # The dead run serves like a live one: full aggregates,
            # drill-downs, Prometheus.
            assert state["live"]["runs_completed"] == 1
            assert state["live"]["verdicts_total"]
            assert state["live"]["engine_build"] in ("compiled", "pure")
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/flows", timeout=5
            ) as response:
                flows = json.loads(response.read())
            assert flows["tracked_flows"] > 0
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=5
            ) as response:
                assert b"repro_flow_drops_total" in response.read()
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "Traceback" not in out


@pytest.mark.slow
class TestWorkerMultiplexing:
    """The multi-worker serve protocol, one layer below HTTP."""

    def _spec_file(self, tmp_path):
        from tests.campaign.conftest import tiny_spec

        spec = tiny_spec(name="worker-mux", seeds=(1, 2))
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        return spec, path

    def _prepare_store(self, spec, root):
        from repro.campaign.orchestrator import open_store

        store = open_store(spec, root).ensure()
        store.pin_series_bin_width(0.05)
        store.write_manifest(spec.to_dict(), series_bin_width=0.05)
        return store

    def test_worker_artifacts_match_batch_except_timing(self, tmp_path):
        from repro.campaign.orchestrator import run_campaign
        from repro.obs.events import event_from_dict

        spec, spec_path = self._spec_file(tmp_path)
        run_campaign(spec, root=tmp_path / "batch", jobs=1)

        store = self._prepare_store(spec, tmp_path / "mux")
        run_ids = [run.run_id for run in spec.plan()]
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.worker"],
            input=json.dumps({
                "spec_path": str(spec_path),
                "root": str(tmp_path / "mux"),
                "series_bin_width": 0.05,
                "run_ids": run_ids,
            }),
            capture_output=True, text=True, env=_cli_env(),
            cwd=tmp_path, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr

        # stdout is a pure JSON-line event stream the parent can demux.
        events = [
            event_from_dict(json.loads(line))
            for line in proc.stdout.splitlines() if line.strip()
        ]
        assert all(event is not None for event in events)
        kinds = {event.kind for event in events}
        assert "campaign.run" in kinds
        assert "run.completed" in kinds
        done = [e for e in events if e.kind == "campaign.run"]
        assert {e.run_id for e in done} == set(run_ids)

        # Artifacts byte-identical to batch mode, timing key aside.
        batch_store = (tmp_path / "batch" / spec.name).rglob("*.json")
        for batch_file in batch_store:
            mux_file = (
                tmp_path / "mux" / batch_file.relative_to(tmp_path / "batch")
            )
            assert mux_file.exists(), mux_file
            a = json.loads(batch_file.read_text())
            b = json.loads(mux_file.read_text())
            a.pop("timing", None)
            b.pop("timing", None)
            assert a == b, batch_file

    def test_worker_rejects_run_ids_outside_the_plan(self, tmp_path):
        spec, spec_path = self._spec_file(tmp_path)
        self._prepare_store(spec, tmp_path / "mux")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.worker"],
            input=json.dumps({
                "spec_path": str(spec_path),
                "root": str(tmp_path / "mux"),
                "run_ids": ["not-a-real-run-id"],
            }),
            capture_output=True, text=True, env=_cli_env(),
            cwd=tmp_path, timeout=60,
        )
        assert proc.returncode == 2
        assert "not in the plan" in proc.stderr
