"""Flight recorder: header schema, round-trips, replay identity."""

import dataclasses
import gzip
import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.obs import EventBus, LiveMetrics
from repro.obs.events import (
    DefenseDecision,
    RunStarted,
    Verdict,
    VictimArrival,
    event_from_dict,
)
from repro.obs.recorder import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    JsonlSink,
    RecordingError,
    open_recording,
)

TINY = dict(total_flows=8, n_routers=6, duration=1.4, topology="star")


def _record(path, events, metadata=None):
    with JsonlSink(str(path), metadata=metadata) as sink:
        for event in events:
            sink.emit(event)
    return sink


SAMPLE_EVENTS = [
    RunStarted(time=0.0, run_id="abc", seed=3, scenario="s", duration=1.0,
               engine="compiled"),
    VictimArrival(time=0.1, size=1000, is_attack=False),
    DefenseDecision(time=0.2, action="drop", reason="probe", truth="attack",
                    flow=42, atr="ingress1"),
    Verdict(time=0.3, label=42, verdict="cut", truth="attack", atr="ingress1"),
]


class TestJsonlSink:
    def test_header_is_first_line_with_schema_and_metadata(self, tmp_path):
        path = tmp_path / "r.jsonl"
        _record(path, [], metadata={"scenario": "x"})
        header = json.loads(path.read_text().splitlines()[0])
        assert header["schema"] == SCHEMA_NAME
        assert header["version"] == SCHEMA_VERSION
        assert header["metadata"] == {"scenario": "x"}

    def test_events_round_trip_typed(self, tmp_path):
        path = tmp_path / "r.jsonl"
        _record(path, SAMPLE_EVENTS)
        back = list(open_recording(str(path)).events())
        assert back == SAMPLE_EVENTS

    def test_gz_suffix_compresses(self, tmp_path):
        path = tmp_path / "r.jsonl.gz"
        _record(path, SAMPLE_EVENTS)
        with gzip.open(path, "rt") as f:
            assert json.loads(f.readline())["schema"] == SCHEMA_NAME
        assert list(open_recording(str(path)).events()) == SAMPLE_EVENTS

    def test_reader_sniffs_gzip_regardless_of_suffix(self, tmp_path):
        """Detection is by magic bytes, not filename."""
        path = tmp_path / "r.jsonl.gz"
        sink = _record(path, SAMPLE_EVENTS)
        renamed = tmp_path / "renamed.dat"
        path.rename(renamed)
        assert list(open_recording(str(renamed)).events()) == SAMPLE_EVENTS
        assert sink.events_written == len(SAMPLE_EVENTS)

    def test_parent_directories_are_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "r.jsonl"
        _record(path, SAMPLE_EVENTS[:1])
        assert path.exists()

    def test_close_is_idempotent(self, tmp_path):
        sink = _record(tmp_path / "r.jsonl", [])
        sink.close()
        sink.close()


class TestOpenRecording:
    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(RecordingError, match="empty"):
            open_recording(str(path))

    def test_non_json_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(RecordingError, match="header"):
            open_recording(str(path))

    def test_foreign_schema_rejected(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text(json.dumps({"schema": "other.thing", "version": 1}) + "\n")
        with pytest.raises(RecordingError, match="not a"):
            open_recording(str(path))

    def test_newer_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps(
            {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION + 1}
        ) + "\n")
        with pytest.raises(RecordingError, match="newer"):
            open_recording(str(path))

    def test_unknown_event_kinds_skipped_and_counted(self, tmp_path):
        """Forward compatibility: a newer recorder's kinds don't kill
        an older reader."""
        path = tmp_path / "r.jsonl"
        lines = [
            json.dumps({"schema": SCHEMA_NAME, "version": SCHEMA_VERSION,
                        "metadata": {}}),
            json.dumps({"kind": "future.kind", "time": 0.0, "mystery": 1}),
            json.dumps(SAMPLE_EVENTS[1].to_dict()),
        ]
        path.write_text("\n".join(lines) + "\n")
        recording = open_recording(str(path))
        assert list(recording.events()) == [SAMPLE_EVENTS[1]]
        assert recording.unknown_kinds == 1

    def test_unknown_fields_dropped(self):
        """A known kind with extra fields (newer minor revision) loads."""
        payload = SAMPLE_EVENTS[2].to_dict()
        payload["brand_new_field"] = "ignored"
        assert event_from_dict(payload) == SAMPLE_EVENTS[2]

    def test_corrupt_event_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(json.dumps(
            {"schema": SCHEMA_NAME, "version": SCHEMA_VERSION, "metadata": {}}
        ) + "\n{oops\n")
        with pytest.raises(RecordingError, match=":2:"):
            list(open_recording(str(path)).events())

    def test_truncated_gzip_raises_recording_error(self, tmp_path):
        """A recorder that died mid-write leaves a cut-off gzip stream;
        readers must see a RecordingError, not a bare EOFError."""
        path = tmp_path / "r.jsonl.gz"
        _record(path, SAMPLE_EVENTS * 200)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 30])
        with pytest.raises(RecordingError, match="truncated"):
            list(open_recording(str(path)).events())

    def test_events_iterable_more_than_once(self, tmp_path):
        path = tmp_path / "r.jsonl"
        _record(path, SAMPLE_EVENTS)
        recording = open_recording(str(path))
        assert list(recording.events()) == list(recording.events())


def _fingerprint(result):
    summary = dataclasses.asdict(result.summary)
    return (
        {k: (v.hex() if isinstance(v, float) else v)
         for k, v in summary.items()},
        [v.hex() for v in result.series.total_kbps],
        result.events_executed,
    )


class TestRecordingARun:
    """The tentpole acceptance properties, at unit scale."""

    def test_recording_leaves_results_bit_exact(self, tmp_path):
        """A run with a JsonlSink attached is bit-identical to a bare
        run — the golden-master guarantee extends to recording."""
        config = ExperimentConfig(**TINY)
        baseline = _fingerprint(run_experiment(config))
        bus = EventBus()
        with JsonlSink(str(tmp_path / "r.jsonl.gz")) as sink:
            bus.subscribe(sink)
            recorded = _fingerprint(run_experiment(config, bus=bus))
        assert recorded == baseline

    def test_replayed_stream_reproduces_live_snapshot(self, tmp_path):
        """Record and fold one run on a shared bus; refolding the file
        into a fresh LiveMetrics lands on the identical snapshot."""
        path = tmp_path / "r.jsonl.gz"
        live = LiveMetrics(window=1.0)
        bus = EventBus()
        bus.subscribe(live)
        with JsonlSink(str(path)) as sink:
            bus.subscribe(sink)
            run_experiment(ExperimentConfig(**TINY), bus=bus)
        refolded = LiveMetrics(window=1.0)
        recording = open_recording(str(path))
        count = 0
        for event in recording.events():
            refolded.emit(event)
            count += 1
        assert count == sink.events_written > 0
        assert recording.unknown_kinds == 0
        assert refolded.snapshot() == live.snapshot()
