"""Tests for repro.metrics.rates."""

import pytest

from repro.metrics.collectors import (
    DefenseMetricsCollector,
    FlowTruth,
    VictimMetricsCollector,
)
from repro.metrics.rates import summarize
from repro.sim.packet import FlowKey, Packet

ATTACK_FLOW = FlowKey(1, 9, 1, 80)
NICE_FLOW = FlowKey(2, 9, 2, 80)


def _collector():
    return DefenseMetricsCollector(
        {
            ATTACK_FLOW.hashed(): FlowTruth.ATTACK,
            NICE_FLOW.hashed(): FlowTruth.TCP_LEGIT,
        }
    )


def attack_pkt():
    p = Packet(flow=ATTACK_FLOW)
    p.is_attack = True
    return p


def nice_pkt():
    return Packet(flow=NICE_FLOW)


class TestAccuracyAndFalseNegative:
    def test_accuracy_is_dropped_over_examined(self):
        dc = _collector()
        for _ in range(9):
            dc.on_defense_drop(attack_pkt(), "pdt", 1.0)
        dc.on_defense_pass(attack_pkt(), 1.0)
        s = summarize(dc)
        assert s.accuracy == pytest.approx(0.9)
        assert s.false_negative_rate == pytest.approx(0.1)

    def test_empty_collector_gives_zeros(self):
        s = summarize(_collector())
        assert s.accuracy == 0.0
        assert s.false_negative_rate == 0.0
        assert s.legit_drop_rate == 0.0


class TestFalsePositiveAndLr:
    def test_theta_p_counts_only_pdt_drops_of_nice_flows(self):
        dc = _collector()
        dc.on_defense_drop(nice_pkt(), "probe", 1.0)  # probing cost -> Lr only
        dc.on_defense_drop(nice_pkt(), "pdt", 1.1)  # misclassification -> theta_p
        for _ in range(8):
            dc.on_defense_pass(nice_pkt(), 1.2)
        s = summarize(dc)
        assert s.false_positive_rate == pytest.approx(1 / 10)
        assert s.legit_drop_rate == pytest.approx(2 / 10)

    def test_theta_p_denominator_is_total_examined(self):
        dc = _collector()
        dc.on_defense_drop(nice_pkt(), "pdt", 1.0)
        for _ in range(9):
            dc.on_defense_drop(attack_pkt(), "pdt", 1.0)
        s = summarize(dc)
        assert s.false_positive_rate == pytest.approx(1 / 10)

    def test_lr_denominator_is_wellbehaved_only(self):
        dc = _collector()
        dc.on_defense_drop(nice_pkt(), "probe", 1.0)
        dc.on_defense_pass(nice_pkt(), 1.0)
        for _ in range(100):
            dc.on_defense_drop(attack_pkt(), "pdt", 1.0)
        s = summarize(dc)
        assert s.legit_drop_rate == pytest.approx(0.5)


class TestTrafficReduction:
    def _victim_with_cut(self, before_rate=100, after_rate=10):
        vc = VictimMetricsCollector()
        # Arrivals at constant spacing before t=2 and sparse after.
        t = 1.0
        while t < 2.0:
            vc.on_packet(Packet(flow=ATTACK_FLOW), t)
            t += 1.0 / before_rate
        t = 2.0
        while t < 4.0:
            vc.on_packet(Packet(flow=ATTACK_FLOW), t)
            t += 1.0 / after_rate
        vc.mark_defense_activation(2.0)
        return vc

    def test_beta_measures_rate_collapse(self):
        vc = self._victim_with_cut()
        s = summarize(_collector(), vc, reduction_window=0.4, pre_window=0.4)
        assert s.traffic_reduction == pytest.approx(0.9, abs=0.05)
        assert s.victim_rate_before_bps > 0

    def test_beta_zero_without_activation(self):
        vc = VictimMetricsCollector()
        vc.on_packet(Packet(flow=ATTACK_FLOW), 1.0)
        s = summarize(_collector(), vc)
        assert s.traffic_reduction == 0.0

    def test_beta_clamped_non_negative(self):
        vc = VictimMetricsCollector()
        # Traffic grows after activation.
        for i in range(10):
            vc.on_packet(Packet(flow=ATTACK_FLOW), 1.0 + i * 0.01)
        for i in range(100):
            vc.on_packet(Packet(flow=ATTACK_FLOW), 2.1 + i * 0.001)
        vc.mark_defense_activation(2.0)
        s = summarize(_collector(), vc, reduction_window=0.2, pre_window=1.0)
        assert s.traffic_reduction == 0.0


class TestSummaryShape:
    def test_as_percent(self):
        dc = _collector()
        dc.on_defense_drop(attack_pkt(), "pdt", 1.0)
        pct = summarize(dc).as_percent()
        assert pct["alpha"] == 100.0
        assert set(pct) == {"alpha", "beta", "theta_p", "theta_n", "Lr"}

    def test_supporting_counts(self):
        dc = _collector()
        dc.on_defense_drop(attack_pkt(), "pdt", 1.0)
        dc.on_defense_pass(nice_pkt(), 1.0)
        s = summarize(dc)
        assert s.attack_examined == 1
        assert s.attack_dropped == 1
        assert s.wellbehaved_examined == 1
        assert s.total_examined == 2
