"""Tests for repro.metrics.flowreport."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.collectors import FlowTruth
from repro.metrics.flowreport import FlowFate, build_flow_report


@pytest.fixture(scope="module")
def run():
    return run_experiment(
        ExperimentConfig(total_flows=12, n_routers=10, duration=3.0, seed=83)
    )


@pytest.fixture(scope="module")
def report(run):
    return build_flow_report(run.scenario)


class TestFlowFate:
    def test_attack_cut_is_correct(self):
        fate = FlowFate(1, FlowTruth.ATTACK, verdict="cut")
        assert fate.correctly_judged is True

    def test_attack_nice_is_wrong(self):
        fate = FlowFate(1, FlowTruth.ATTACK, verdict="nice")
        assert fate.correctly_judged is False

    def test_tcp_nice_is_correct(self):
        fate = FlowFate(1, FlowTruth.TCP_LEGIT, verdict="nice")
        assert fate.correctly_judged is True

    def test_tcp_cut_is_wrong(self):
        fate = FlowFate(1, FlowTruth.TCP_LEGIT, verdict="cut")
        assert fate.correctly_judged is False

    def test_no_verdict_is_none(self):
        assert FlowFate(1, FlowTruth.ATTACK).correctly_judged is None

    def test_udp_legit_has_no_correctness(self):
        fate = FlowFate(1, FlowTruth.UDP_LEGIT, verdict="cut")
        assert fate.correctly_judged is None


class TestBuiltReport:
    def test_covers_every_configured_flow(self, run, report):
        assert len(report.fates) >= run.config.total_flows - run.config.n_zombies

    def test_sender_counts_populated(self, report):
        tcp_fates = report.of_truth(FlowTruth.TCP_LEGIT)
        assert tcp_fates
        assert all(f.packets_sent > 0 for f in tcp_fates)

    def test_attack_flows_have_verdicts(self, report):
        attacks = report.of_truth(FlowTruth.ATTACK)
        judged = [f for f in attacks if f.verdict is not None]
        assert len(judged) >= 0.6 * len(attacks)

    def test_no_misjudged_tcp(self, report):
        wrong = [
            f for f in report.misjudged() if f.truth is FlowTruth.TCP_LEGIT
        ]
        assert wrong == []

    def test_victim_arrivals_for_tcp(self, report):
        tcp_fates = report.of_truth(FlowTruth.TCP_LEGIT)
        assert any(f.victim_arrivals > 0 for f in tcp_fates)

    def test_verdict_counts_sum(self, report):
        counts = report.verdict_counts()
        assert sum(counts.values()) == len(report.fates)

    def test_rows_export(self, report):
        rows = report.to_rows()
        assert rows[0][0] == "flow_hash"
        assert len(rows) == len(report.fates) + 1
        assert all(len(row) == len(rows[0]) for row in rows)
