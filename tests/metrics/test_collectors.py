"""Tests for repro.metrics.collectors."""

import pytest

from repro.core.labels import FlowLabel
from repro.metrics.collectors import (
    DefenseMetricsCollector,
    FlowTruth,
    VictimMetricsCollector,
)
from repro.sim.packet import FlowKey, Packet


def pkt(flow=None, is_attack=False, size=1000):
    p = Packet(flow=flow if flow is not None else FlowKey(1, 2, 3, 4), size=size)
    p.is_attack = is_attack
    return p


class TestDefenseMetricsCollector:
    def test_classification_by_is_attack_flag(self):
        dc = DefenseMetricsCollector()
        dc.on_defense_drop(pkt(is_attack=True), "pdt", 1.0)
        assert dc.of(FlowTruth.ATTACK).dropped == 1

    def test_classification_by_flow_truth_map(self):
        flow = FlowKey(1, 2, 3, 4)
        dc = DefenseMetricsCollector({flow.hashed(): FlowTruth.TCP_LEGIT})
        dc.on_defense_pass(pkt(flow), 1.0)
        assert dc.of(FlowTruth.TCP_LEGIT).passed == 1

    def test_unknown_flows_bucketed(self):
        dc = DefenseMetricsCollector()
        dc.on_defense_pass(pkt(), 1.0)
        assert dc.of(FlowTruth.UNKNOWN).examined == 1

    def test_drop_reason_breakdown(self):
        flow = FlowKey(1, 2, 3, 4)
        dc = DefenseMetricsCollector({flow.hashed(): FlowTruth.TCP_LEGIT})
        dc.on_defense_drop(pkt(flow), "probe", 1.0)
        dc.on_defense_drop(pkt(flow), "pdt", 1.1)
        dc.on_defense_drop(pkt(flow), "illegal", 1.2)
        dc.on_defense_drop(pkt(flow), "policy", 1.3)
        counts = dc.of(FlowTruth.TCP_LEGIT)
        assert counts.dropped_probe == 1
        assert counts.dropped_pdt == 1
        assert counts.dropped_illegal == 1
        assert counts.dropped_policy == 1
        assert counts.dropped == 4
        assert counts.examined == 4

    def test_totals(self):
        dc = DefenseMetricsCollector()
        dc.on_defense_drop(pkt(is_attack=True), "pdt", 1.0)
        dc.on_defense_pass(pkt(), 1.0)
        assert dc.total_examined == 2
        assert dc.total_dropped == 1

    def test_first_drop_time(self):
        dc = DefenseMetricsCollector()
        assert dc.first_drop_time is None
        dc.on_defense_drop(pkt(), "probe", 2.5)
        dc.on_defense_drop(pkt(), "probe", 3.5)
        assert dc.first_drop_time == 2.5

    def test_verdict_confusion(self):
        label = FlowLabel(FlowKey(1, 2, 3, 4).hashed())
        dc = DefenseMetricsCollector({int(label): FlowTruth.ATTACK})
        dc.on_verdict(label, "cut", 1.0)
        dc.on_verdict(FlowLabel(99), "nice", 1.1)
        confusion = dc.verdict_confusion()
        assert confusion[(FlowTruth.ATTACK, "cut")] == 1
        assert confusion[(FlowTruth.UNKNOWN, "nice")] == 1


class TestVictimMetricsCollector:
    def test_arrival_accounting(self):
        vc = VictimMetricsCollector()
        vc.on_packet(pkt(is_attack=True), 1.0)
        vc.on_packet(pkt(), 2.0)
        assert vc.attack_packets == 1
        assert vc.legit_packets == 1
        assert len(vc.arrivals) == 2

    def test_arrivals_in_window(self):
        vc = VictimMetricsCollector()
        for t in (0.5, 1.5, 2.5):
            vc.on_packet(pkt(is_attack=(t > 1)), t)
        attack, legit = vc.arrivals_in(1.0, 3.0)
        assert (attack, legit) == (2, 0)

    def test_window_half_open(self):
        vc = VictimMetricsCollector()
        vc.on_packet(pkt(), 1.0)
        assert vc.arrivals_in(1.0, 2.0) == (0, 1)
        assert vc.arrivals_in(0.0, 1.0) == (0, 0)

    def test_rate_bps(self):
        vc = VictimMetricsCollector()
        vc.on_packet(pkt(size=1000), 0.5)
        vc.on_packet(pkt(size=1000), 0.9)
        assert vc.rate_bps_in(0.0, 1.0) == pytest.approx(16_000)

    def test_rate_rejects_empty_window(self):
        with pytest.raises(ValueError):
            VictimMetricsCollector().rate_bps_in(1.0, 1.0)

    def test_activation_marked_once(self):
        vc = VictimMetricsCollector()
        vc.mark_defense_activation(1.5)
        vc.mark_defense_activation(2.5)
        assert vc.defense_activated_at == 1.5
