"""Tests for repro.metrics.timeseries."""

import pytest

from repro.metrics.timeseries import BandwidthSeries


def arrivals(events):
    """events: list of (time, size, is_attack)."""
    return list(events)


class TestBandwidthSeries:
    def test_bucketing(self):
        series = BandwidthSeries.from_arrivals(
            [(0.1, 1000, False), (0.9, 1000, True)],
            start=0.0, end=1.0, bin_width=0.5,
        )
        assert len(series) == 2
        # 1000 B in 0.5 s = 16 kbps.
        assert series.total_kbps == [pytest.approx(16.0), pytest.approx(16.0)]
        assert series.legit_kbps[0] == pytest.approx(16.0)
        assert series.attack_kbps[1] == pytest.approx(16.0)

    def test_bin_centres(self):
        series = BandwidthSeries.from_arrivals([], 0.0, 1.0, bin_width=0.25)
        assert series.times == [0.125, 0.375, 0.625, 0.875]

    def test_events_outside_range_ignored(self):
        series = BandwidthSeries.from_arrivals(
            [(-0.5, 1000, False), (1.5, 1000, False)], 0.0, 1.0, 0.5
        )
        assert sum(series.total_kbps) == 0.0

    def test_event_on_end_boundary_excluded(self):
        series = BandwidthSeries.from_arrivals([(1.0, 1000, False)], 0.0, 1.0, 0.5)
        assert sum(series.total_kbps) == 0.0

    def test_peak(self):
        series = BandwidthSeries.from_arrivals(
            [(0.1, 1000, False), (0.6, 2000, False)], 0.0, 1.0, 0.5
        )
        assert series.peak_total_kbps() == pytest.approx(32.0)

    def test_mean_over_interval(self):
        series = BandwidthSeries.from_arrivals(
            [(0.1, 1000, False), (0.6, 3000, False)], 0.0, 1.0, 0.5
        )
        assert series.mean_total_kbps(0.0, 1.0) == pytest.approx((16 + 48) / 2)

    def test_mean_empty_interval(self):
        series = BandwidthSeries.from_arrivals([], 0.0, 1.0, 0.5)
        assert series.mean_total_kbps(5.0, 6.0) == 0.0

    def test_attack_plus_legit_equals_total(self):
        events = [(i * 0.01, 500, i % 3 == 0) for i in range(100)]
        series = BandwidthSeries.from_arrivals(events, 0.0, 1.0, 0.1)
        for total, attack, legit in zip(
            series.total_kbps, series.attack_kbps, series.legit_kbps
        ):
            assert total == pytest.approx(attack + legit)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BandwidthSeries.from_arrivals([], 1.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            BandwidthSeries.from_arrivals([], 0.0, 1.0, 0.0)
