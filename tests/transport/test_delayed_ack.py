"""Tests for the AckingSink delayed-ACK option (RFC 1122)."""

import pytest

from repro.sim.link import SimplexLink
from repro.sim.node import Host, Router
from repro.sim.packet import FlowKey, Packet
from repro.transport.sink import AckingSink


def _sink(sim, delayed_ack):
    host = Host(sim, "victim", 0x0A010001)
    router = Router(sim, "r")
    link = SimplexLink(sim, host, router)
    host.attach_link(link)
    host.gateway = router
    sink = AckingSink(sim, host, delayed_ack=delayed_ack)
    return sink, link


def data(flow, seq):
    return Packet(flow=flow, seq=seq)


class TestDelayedAck:
    def test_single_segment_acked_at_timer(self, sim):
        sink, link = _sink(sim, delayed_ack=0.04)
        flow = FlowKey(1, 0x0A010001, 9, 80)
        sim.schedule(0.0, sink.handle_packet, data(flow, 0), 0.0)
        sim.run(until=0.03)
        assert sink.acks_sent == 0  # held
        sim.run(until=0.05)
        assert sink.acks_sent == 1  # timer fired

    def test_second_segment_flushes_immediately(self, sim):
        sink, _ = _sink(sim, delayed_ack=0.2)
        flow = FlowKey(1, 0x0A010001, 9, 80)
        sim.schedule(0.0, sink.handle_packet, data(flow, 0), 0.0)
        sim.schedule(0.01, sink.handle_packet, data(flow, 1), 0.01)
        sim.run(until=0.02)
        assert sink.acks_sent == 1  # one cumulative ACK for both
        assert sink.delayed_acks_coalesced == 1

    def test_out_of_order_acks_immediately(self, sim):
        sink, _ = _sink(sim, delayed_ack=0.2)
        flow = FlowKey(1, 0x0A010001, 9, 80)
        sim.schedule(0.0, sink.handle_packet, data(flow, 0), 0.0)
        sim.schedule(0.01, sink.handle_packet, data(flow, 2), 0.01)  # gap!
        sim.run(until=0.02)
        # Held ACK flushed + dup-ACK for the gap: 2 ACKs, no waiting.
        assert sink.acks_sent == 2
        assert sink.dup_acks_sent == 1

    def test_disabled_by_default(self, sim):
        sink, _ = _sink(sim, delayed_ack=0.0)
        flow = FlowKey(1, 0x0A010001, 9, 80)
        sink.handle_packet(data(flow, 0), 0.0)
        assert sink.acks_sent == 1

    def test_flows_delayed_independently(self, sim):
        sink, _ = _sink(sim, delayed_ack=0.1)
        f1 = FlowKey(1, 0x0A010001, 9, 80)
        f2 = FlowKey(2, 0x0A010001, 9, 80)
        sim.schedule(0.0, sink.handle_packet, data(f1, 0), 0.0)
        sim.schedule(0.0, sink.handle_packet, data(f2, 0), 0.0)
        sim.run(until=0.15)
        assert sink.acks_sent == 2  # both timers fired separately

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            _sink(sim, delayed_ack=-0.1)

    def test_tcp_transfer_with_delayed_acks(self):
        """End-to-end: a TCP transfer completes with delayed ACKs on."""
        from repro.sim.topology import build_dumbbell
        from repro.transport.tcp import TcpSender

        topo = build_dumbbell(bottleneck_bps=10e6)
        src = topo.hosts["src0"]
        victim = topo.hosts["victim"]
        flow = FlowKey(src.address, victim.address, 5000, 80)
        sender = TcpSender(topo.sim, src, flow, initial_cwnd=2,
                           ssthresh=8, max_cwnd=8)
        src.bind_port(5000, sender)
        sink = AckingSink(topo.sim, victim, delayed_ack=0.04)
        victim.bind_port(80, sink)
        sender.start(at=0.0)
        topo.sim.run(until=2.0)
        assert sink.packets_received > 20
        assert sender.high_ack > 20
        assert sink.delayed_acks_coalesced > 0
