"""Tests for repro.transport.sink."""

import pytest

from repro.sim.link import SimplexLink
from repro.sim.node import Host, Router
from repro.sim.packet import FlowKey, Packet, PacketType
from repro.transport.sink import AckingSink, CountingSink


def data(flow, seq, ts_val=0.0):
    return Packet(flow=flow, seq=seq, ts_val=ts_val)


class TestCountingSink:
    def test_counts_data_only(self, sim):
        sink = CountingSink(sim)
        flow = FlowKey(1, 2, 3, 4)
        sink.handle_packet(data(flow, 0), 0.0)
        sink.handle_packet(Packet(flow=flow, ptype=PacketType.ACK), 0.0)
        assert sink.packets_received == 1

    def test_attack_vs_legit_split(self, sim):
        sink = CountingSink(sim)
        flow = FlowKey(1, 2, 3, 4)
        p = data(flow, 0)
        p.is_attack = True
        sink.handle_packet(p, 0.0)
        sink.handle_packet(data(flow, 1), 0.0)
        assert sink.attack_packets_received == 1
        assert sink.legit_packets_received == 1

    def test_rate_window(self, sim):
        sink = CountingSink(sim, rate_window=1.0)
        flow = FlowKey(1, 2, 3, 4)
        sink.handle_packet(data(flow, 0), 0.0)
        sink.handle_packet(data(flow, 1), 0.5)
        assert sink.arrival_rate_bps(0.5) == pytest.approx(2 * 1000 * 8)

    def test_rate_zero_without_window(self, sim):
        sink = CountingSink(sim)
        assert sink.arrival_rate_bps(1.0) == 0.0

    def test_on_packet_callback(self, sim):
        seen = []
        sink = CountingSink(sim, on_packet=lambda p, t: seen.append((p, t)))
        sink.handle_packet(data(FlowKey(1, 2, 3, 4), 0), 1.5)
        assert seen[0][1] == 1.5


def _host_with_uplink(sim):
    host = Host(sim, "victim", 0x0A010001)
    router = Router(sim, "r")
    link = SimplexLink(sim, host, router)
    host.attach_link(link)
    host.gateway = router
    return host, link


class TestAckingSink:
    def test_in_order_cumulative_acks(self, sim):
        host, link = _host_with_uplink(sim)
        sink = AckingSink(sim, host)
        flow = FlowKey(1, host.address, 9, 80)
        for seq in range(3):
            sink.handle_packet(data(flow, seq), 0.1 * seq)
        assert sink.acks_sent == 3
        assert sink.dup_acks_sent == 0
        assert link.packets_offered == 3

    def test_gap_produces_duplicate_acks(self, sim):
        host, _ = _host_with_uplink(sim)
        sink = AckingSink(sim, host)
        flow = FlowKey(1, host.address, 9, 80)
        sink.handle_packet(data(flow, 0), 0.0)
        sink.handle_packet(data(flow, 2), 0.1)  # hole at 1
        sink.handle_packet(data(flow, 3), 0.2)  # still duplicating
        assert sink.dup_acks_sent == 2

    def test_hole_fill_advances_frontier(self, sim):
        host, _ = _host_with_uplink(sim)
        sink = AckingSink(sim, host)
        flow = FlowKey(1, host.address, 9, 80)
        sink.handle_packet(data(flow, 0), 0.0)
        sink.handle_packet(data(flow, 2), 0.1)
        sink.handle_packet(data(flow, 1), 0.2)  # fills the hole
        assert sink._next_expected[flow.hashed()] == 3

    def test_flows_tracked_independently(self, sim):
        host, _ = _host_with_uplink(sim)
        sink = AckingSink(sim, host)
        f1 = FlowKey(1, host.address, 9, 80)
        f2 = FlowKey(2, host.address, 9, 80)
        sink.handle_packet(data(f1, 0), 0.0)
        sink.handle_packet(data(f2, 5), 0.0)  # gap only in f2
        assert sink.dup_acks_sent == 1
        assert sink._next_expected[f1.hashed()] == 1

    def test_ack_echoes_timestamp(self, sim):
        host, link = _host_with_uplink(sim)
        captured = []
        original_send = link.send
        link.send = lambda p: (captured.append(p), original_send(p))[1]
        sink = AckingSink(sim, host)
        flow = FlowKey(1, host.address, 9, 80)
        sink.handle_packet(data(flow, 0, ts_val=0.42), 0.5)
        assert captured[0].ts_ecr == 0.42
        assert captured[0].ts_val == 0.5

    def test_ack_size(self, sim):
        host, link = _host_with_uplink(sim)
        captured = []
        original_send = link.send
        link.send = lambda p: (captured.append(p), original_send(p))[1]
        sink = AckingSink(sim, host, ack_size=52)
        sink.handle_packet(data(FlowKey(1, host.address, 9, 80), 0), 0.0)
        assert captured[0].size == 52

    def test_non_data_ignored(self, sim):
        host, _ = _host_with_uplink(sim)
        sink = AckingSink(sim, host)
        sink.handle_packet(
            Packet(flow=FlowKey(1, host.address, 9, 80), ptype=PacketType.ACK),
            0.0,
        )
        assert sink.acks_sent == 0
        assert sink.packets_received == 0

    def test_stale_retransmission_reacked(self, sim):
        host, _ = _host_with_uplink(sim)
        sink = AckingSink(sim, host)
        flow = FlowKey(1, host.address, 9, 80)
        sink.handle_packet(data(flow, 0), 0.0)
        sink.handle_packet(data(flow, 0), 0.1)  # duplicate delivery
        assert sink.acks_sent == 2
        assert sink._next_expected[flow.hashed()] == 1
