"""Tests for repro.transport.flow (FlowStats and the agent base)."""

import pytest

from repro.sim.packet import FlowKey
from repro.sim.topology import build_dumbbell
from repro.transport.flow import FlowAgent, FlowStats
from repro.transport.udp import CbrSender


class TestFlowStats:
    def test_sending_rate_over_window(self):
        stats = FlowStats()
        stats.send_times = [0.1, 0.2, 0.3, 0.9]
        # Window (0.5, 1.0]: one packet of 1000 B -> 16 kbps.
        rate = stats.sending_rate_bps(window=0.5, now=1.0, packet_size=1000)
        assert rate == pytest.approx(16_000)

    def test_sending_rate_empty(self):
        stats = FlowStats()
        assert stats.sending_rate_bps(1.0, 5.0, 1000) == 0.0

    def test_sending_rate_rejects_bad_window(self):
        with pytest.raises(ValueError):
            FlowStats().sending_rate_bps(0.0, 1.0, 1000)


class TestFlowAgentBase:
    def test_emit_updates_counters_and_marks_ground_truth(self):
        topo = build_dumbbell()
        src = topo.hosts["src0"]
        flow = FlowKey(src.address, topo.victim_host.address, 5000, 9)
        agent = CbrSender(
            topo.sim, src, flow, rate_bps=80e3, is_attack=True,
            keep_send_times=True,
        )
        agent.start(at=0.0)
        topo.sim.run(until=0.3)
        assert agent.stats.packets_sent >= 2
        assert agent.stats.bytes_sent == agent.stats.packets_sent * 1000
        assert agent.stats.first_send_time == pytest.approx(0.0)
        assert agent.stats.last_send_time >= agent.stats.first_send_time
        assert len(agent.stats.send_times) == agent.stats.packets_sent

    def test_send_times_not_kept_by_default(self):
        topo = build_dumbbell()
        src = topo.hosts["src0"]
        flow = FlowKey(src.address, topo.victim_host.address, 5001, 9)
        agent = CbrSender(topo.sim, src, flow, rate_bps=80e3)
        agent.start(at=0.0)
        topo.sim.run(until=0.3)
        assert agent.stats.send_times == []

    def test_base_class_abstract_methods(self, sim):
        topo = build_dumbbell(sim=sim)
        agent = FlowAgent(
            sim, topo.hosts["src0"], FlowKey(1, 2, 3, 4)
        )
        with pytest.raises(NotImplementedError):
            agent.start()
        with pytest.raises(NotImplementedError):
            agent.handle_packet(None, 0.0)

    def test_packet_size_validated(self, sim):
        topo = build_dumbbell(sim=sim)
        with pytest.raises(ValueError):
            FlowAgent(sim, topo.hosts["src0"], FlowKey(1, 2, 3, 4),
                      packet_size=0)
