"""Tests for repro.transport.udp."""

import numpy as np
import pytest

from repro.sim.packet import FlowKey, Packet, PacketType
from repro.sim.topology import build_dumbbell
from repro.transport.sink import CountingSink
from repro.transport.udp import CbrSender, OnOffSender


def wire_cbr(topo, rate_bps=100e3, port=6000, cls=CbrSender, **kwargs):
    src = topo.hosts["src0"]
    victim = topo.hosts["victim"]
    flow = FlowKey(src.address, victim.address, port, 9)
    sender = cls(topo.sim, src, flow, rate_bps=rate_bps, **kwargs)
    sink = CountingSink(topo.sim)
    victim.bind_port(9, sink)
    return sender, sink


class TestCbrSender:
    def test_rate_matches_configuration(self):
        topo = build_dumbbell(bottleneck_bps=10e6)
        sender, sink = wire_cbr(topo, rate_bps=80e3)  # 10 pkt/s at 1000B
        sender.start(at=0.0)
        topo.sim.run(until=2.0)
        assert sender.stats.packets_sent == pytest.approx(20, abs=2)
        assert sink.packets_received == pytest.approx(20, abs=2)

    def test_interval_property(self):
        topo = build_dumbbell()
        sender, _ = wire_cbr(topo, rate_bps=8e3, packet_size=1000)
        assert sender.interval == pytest.approx(1.0)

    def test_ignores_feedback(self):
        topo = build_dumbbell()
        sender, _ = wire_cbr(topo, rate_bps=80e3)
        sender.start(at=0.0)
        topo.sim.run(until=0.5)
        sent_before = sender.stats.packets_sent
        ack = Packet(flow=sender.flow.reversed(), ptype=PacketType.DUP_ACK, ack=0)
        for _ in range(10):
            sender.handle_packet(ack, topo.sim.now)
        topo.sim.run(until=1.0)
        # Rate unchanged despite the dup-ACK barrage.
        assert sender.stats.packets_sent - sent_before == pytest.approx(5, abs=2)

    def test_jitter_requires_rng(self):
        topo = build_dumbbell()
        src = topo.hosts["src0"]
        flow = FlowKey(src.address, 1, 1, 9)
        with pytest.raises(ValueError):
            CbrSender(topo.sim, src, flow, jitter=0.1)

    def test_jitter_varies_gaps(self):
        topo = build_dumbbell()
        sender, _ = wire_cbr(
            topo, rate_bps=800e3, jitter=0.3,
            rng=np.random.default_rng(1), keep_send_times=True,
        )
        sender.start(at=0.0)
        topo.sim.run(until=0.5)
        times = sender.stats.send_times
        gaps = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert len(gaps) > 1

    def test_spoof_rewrites_source(self):
        topo = build_dumbbell()

        def spoof(packet):
            packet.flow = FlowKey(
                0xC0000001, packet.flow.dst_ip,
                packet.flow.src_port, packet.flow.dst_port,
            )
            return packet

        sender, sink = wire_cbr(topo, rate_bps=80e3, spoof=spoof)
        received = []
        sink._on_packet = lambda p, now: received.append(p)
        sender.start(at=0.0)
        topo.sim.run(until=0.5)
        assert received
        assert all(p.src_ip == 0xC0000001 for p in received)

    def test_is_attack_flag_propagates(self):
        topo = build_dumbbell()
        sender, sink = wire_cbr(topo, rate_bps=80e3, is_attack=True)
        sender.start(at=0.0)
        topo.sim.run(until=0.5)
        assert sink.attack_packets_received == sink.packets_received > 0

    def test_stop(self):
        topo = build_dumbbell()
        sender, _ = wire_cbr(topo, rate_bps=80e3)
        sender.start(at=0.0)
        topo.sim.run(until=0.5)
        sender.stop()
        sent = sender.stats.packets_sent
        topo.sim.run(until=1.5)
        assert sender.stats.packets_sent == sent

    def test_rejects_bad_rate(self):
        topo = build_dumbbell()
        src = topo.hosts["src0"]
        with pytest.raises(ValueError):
            CbrSender(topo.sim, src, FlowKey(1, 2, 3, 4), rate_bps=0)


class TestOnOffSender:
    def test_alternates_bursts_and_silence(self):
        topo = build_dumbbell()
        sender, _ = wire_cbr(
            topo, rate_bps=400e3, cls=OnOffSender,
            mean_on=0.2, mean_off=0.2,
            rng=np.random.default_rng(7), keep_send_times=True,
        )
        sender.start(at=0.0)
        topo.sim.run(until=4.0)
        times = sender.stats.send_times
        assert len(times) > 5
        gaps = [b - a for a, b in zip(times, times[1:])]
        burst_gap = sender.interval
        assert any(g > 3 * burst_gap for g in gaps)  # silence exists
        assert any(abs(g - burst_gap) < 1e-9 for g in gaps)  # bursts exist

    def test_requires_rng(self):
        topo = build_dumbbell()
        src = topo.hosts["src0"]
        with pytest.raises(ValueError):
            OnOffSender(topo.sim, src, FlowKey(1, 2, 3, 4))

    def test_rejects_bad_on_time(self):
        topo = build_dumbbell()
        src = topo.hosts["src0"]
        with pytest.raises(ValueError):
            OnOffSender(
                topo.sim, src, FlowKey(1, 2, 3, 4),
                mean_on=0.0, rng=np.random.default_rng(0),
            )

    def test_stop_mid_burst(self):
        topo = build_dumbbell()
        sender, _ = wire_cbr(
            topo, rate_bps=400e3, cls=OnOffSender,
            mean_on=10.0, mean_off=0.1, rng=np.random.default_rng(3),
        )
        sender.start(at=0.0)
        topo.sim.run(until=0.2)
        sender.stop()
        sent = sender.stats.packets_sent
        topo.sim.run(until=1.0)
        assert sender.stats.packets_sent == sent
