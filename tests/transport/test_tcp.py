"""Tests for repro.transport.tcp — the AIMD behaviour MAFIC relies on."""

import pytest

from repro.sim.packet import FlowKey, Packet, PacketType
from repro.sim.topology import build_dumbbell
from repro.transport.sink import AckingSink
from repro.transport.tcp import TcpSender


def wire_tcp(topo, port=5000, **kwargs):
    """A TcpSender on src0 talking to an AckingSink on the victim."""
    src = topo.hosts["src0"]
    victim = topo.hosts["victim"]
    flow = FlowKey(src.address, victim.address, port, 80)
    sender = TcpSender(topo.sim, src, flow, **kwargs)
    src.bind_port(port, sender)
    sink = AckingSink(topo.sim, victim)
    if 80 not in getattr(victim, "_port_handlers", {}):
        victim.bind_port(80, sink)
    return sender, sink


class TestBasicTransfer:
    def test_transfers_data_and_grows_window(self):
        topo = build_dumbbell()
        sender, sink = wire_tcp(topo, initial_cwnd=2, ssthresh=32, max_cwnd=32)
        sender.start(at=0.0)
        topo.sim.run(until=2.0)
        assert sink.packets_received > 20
        assert sender.cwnd > 2  # slow start grew the window
        assert sender.high_ack > 0

    def test_respects_max_cwnd(self):
        topo = build_dumbbell()
        sender, _ = wire_tcp(topo, initial_cwnd=2, ssthresh=64, max_cwnd=4)
        sender.start(at=0.0)
        topo.sim.run(until=2.0)
        assert sender.cwnd <= 4

    def test_rtt_estimated(self):
        topo = build_dumbbell(bottleneck_bps=10e6)
        # Small window: negligible self-induced queueing.
        sender, _ = wire_tcp(topo, initial_cwnd=2, ssthresh=2, max_cwnd=2)
        sender.start(at=0.0)
        topo.sim.run(until=1.0)
        # Dumbbell RTT ~ 2*(0.001 + 0.010) plus serialization.
        assert sender.srtt == pytest.approx(0.024, abs=0.02)

    def test_app_limit_paces_sending(self):
        topo = build_dumbbell()
        sender, sink = wire_tcp(topo, app_limit_bps=80e3)  # 10 pkts/s
        sender.start(at=0.0)
        topo.sim.run(until=2.0)
        assert sender.stats.packets_sent <= 22  # ~10/s * 2s + slack

    def test_stop_halts_sending(self):
        topo = build_dumbbell()
        sender, _ = wire_tcp(topo)
        sender.start(at=0.0)
        topo.sim.run(until=0.5)
        sent = sender.stats.packets_sent
        sender.stop()
        topo.sim.run(until=1.5)
        assert sender.stats.packets_sent == sent

    def test_double_start_rejected(self):
        topo = build_dumbbell()
        sender, _ = wire_tcp(topo)
        sender.start(at=0.0)
        with pytest.raises(RuntimeError):
            sender.start(at=0.5)

    def test_parameter_validation(self):
        topo = build_dumbbell()
        src = topo.hosts["src0"]
        flow = FlowKey(src.address, 1, 9999, 80)
        with pytest.raises(ValueError):
            TcpSender(topo.sim, src, flow, initial_cwnd=0.5)
        with pytest.raises(ValueError):
            TcpSender(topo.sim, src, flow, initial_cwnd=4, max_cwnd=2)


class _DropNth:
    """Link hook dropping exactly the packets whose seq is in ``seqs``."""

    def __init__(self, seqs):
        self.seqs = set(seqs)
        self.dropped = []

    def on_packet(self, packet, link, now):
        if packet.ptype is PacketType.DATA and packet.seq in self.seqs:
            self.seqs.discard(packet.seq)
            self.dropped.append((now, packet.seq))
            return False
        return True


class TestLossResponse:
    def test_fast_retransmit_on_drop(self):
        topo = build_dumbbell()
        sender, sink = wire_tcp(topo, initial_cwnd=8, ssthresh=8, max_cwnd=8)
        hook = _DropNth([10])
        topo.routers["left"].link_to("lasthop").add_head_hook(hook)
        sender.start(at=0.0)
        topo.sim.run(until=3.0)
        assert hook.dropped  # the drop happened
        assert sender.stats.retransmissions >= 1
        # Transfer continued past the hole.
        assert sender.high_ack > 11

    def test_window_halves_after_loss(self):
        topo = build_dumbbell()
        sender, _ = wire_tcp(topo, initial_cwnd=8, ssthresh=8, max_cwnd=8)
        hook = _DropNth([12])
        topo.routers["left"].link_to("lasthop").add_head_hook(hook)
        sender.start(at=0.0)
        topo.sim.run(until=3.0)
        halved = [w for _, w in sender.cwnd_history if w <= 4 + 3]
        assert halved  # ssthresh+3 inflation then back to ssthresh

    def test_timeout_on_total_blackout(self):
        topo = build_dumbbell()
        sender, _ = wire_tcp(topo, initial_cwnd=4, ssthresh=16)

        class _DropAll:
            def on_packet(self, packet, link, now):
                return packet.ptype is not PacketType.DATA

        topo.routers["left"].link_to("lasthop").add_head_hook(_DropAll())
        sender.start(at=0.0)
        topo.sim.run(until=3.0)
        assert sender.stats.timeouts >= 1
        assert sender.cwnd == 1.0

    def test_forged_dup_acks_trigger_retransmit(self):
        """The MAFIC probe path: 3+ dup ACKs make the sender back off."""
        topo = build_dumbbell()
        sender, _ = wire_tcp(topo, initial_cwnd=8, ssthresh=8, max_cwnd=8)
        sender.start(at=0.0)
        topo.sim.run(until=1.0)
        cwnd_before = sender.cwnd
        frontier = sender.high_ack
        for _ in range(3):
            forged = Packet(
                flow=sender.flow.reversed(),
                ptype=PacketType.DUP_ACK,
                ack=frontier,
                size=40,
            )
            sender.handle_packet(forged, topo.sim.now)
        assert sender.stats.dup_acks_received >= 3
        assert sender.ssthresh <= cwnd_before / 2 + 1e-9
        assert sender.stats.retransmissions >= 1

    def test_sending_rate_drops_after_probe(self):
        """End-to-end: a probing drop measurably slows the source."""
        topo = build_dumbbell()
        sender, _ = wire_tcp(topo, initial_cwnd=8, ssthresh=8, max_cwnd=8,
                             keep_send_times=True)
        sender.start(at=0.0)
        # Drop a window's worth mid-stream.
        hook = _DropNth(range(30, 38))
        topo.routers["left"].link_to("lasthop").add_head_hook(hook)
        topo.sim.run(until=4.0)
        before = sum(1 for t in sender.stats.send_times if 0.5 <= t < 1.0)
        # Find the drop time and look shortly after it.
        t_drop = hook.dropped[0][0]
        after = sum(
            1 for t in sender.stats.send_times if t_drop + 0.3 <= t < t_drop + 0.8
        )
        assert after < before
