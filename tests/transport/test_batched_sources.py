"""Batched tick generation must be bit-identical to the unbatched loop.

Each test runs the same sender twice — ``FLAGS.batched_sources`` on and
off — and compares every departure (time, seq, claimed source) exactly.
The batched paths differ per configuration (precomputed series for
exclusive/jitter-free streams, shared prefetch buffer for the zombies'
common stream), so each is pinned separately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf import engine_mode
from repro.sim.engine import Simulator
from repro.sim.packet import FlowKey
from repro.transport.udp import CbrSender, OnOffSender
from repro.util.rng import UniformBuffer


class FakeHost:
    """Captures (time, seq, src_ip) of every packet offered to it."""

    def __init__(self, sim):
        self.sim = sim
        self.sent: list[tuple[float, int, int]] = []

    def send(self, packet) -> bool:
        self.sent.append((self.sim.now, packet.seq, packet.flow.src_ip))
        return True


FLOW = FlowKey(0x0A000001, 0x0A010001, 1234, 9)


def _run_cbr(batched: bool, *, jitter: float, exclusive: bool,
             shared_buffer: bool = False, until: float = 2.0,
             stop_at: float | None = None, n_senders: int = 1):
    with engine_mode(batched_sources=batched):
        sim = Simulator()
        host = FakeHost(sim)
        senders = []
        rng = np.random.default_rng(99)
        # ONE buffer over the shared stream — every consumer must go
        # through it, exactly as the attack scenario wires its zombies.
        buffer = (
            UniformBuffer(rng)
            if (batched and shared_buffer and jitter > 0)
            else None
        )
        for i in range(n_senders):
            sender_rng = np.random.default_rng(99 + i) if exclusive else rng
            sender = CbrSender(
                sim, host, FlowKey(i + 1, 0x0A010001, 1000 + i, 9),
                rate_bps=2e6, packet_size=500, jitter=jitter,
                rng=sender_rng if jitter > 0 else None,
                exclusive_rng=exclusive,
                jitter_buffer=buffer,
            )
            sender.start(at=0.01 * i)
            senders.append(sender)
        if stop_at is not None:
            sim.schedule_at(stop_at, senders[0].stop)
        sim.run(until=until)
        return host.sent, sim.events_executed


class TestCbrBatching:
    def test_jitter_free_series_identical(self):
        assert _run_cbr(True, jitter=0.0, exclusive=False) == \
            _run_cbr(False, jitter=0.0, exclusive=False)

    def test_exclusive_stream_bulk_jitter_identical(self):
        assert _run_cbr(True, jitter=0.1, exclusive=True) == \
            _run_cbr(False, jitter=0.1, exclusive=True)

    def test_shared_stream_buffered_jitter_identical(self):
        # Three senders drawing interleaved jitter from one stream.
        batched = _run_cbr(True, jitter=0.1, exclusive=False,
                           shared_buffer=True, n_senders=3)
        plain = _run_cbr(False, jitter=0.1, exclusive=False, n_senders=3)
        assert batched == plain

    def test_stop_mid_run_identical(self):
        assert _run_cbr(True, jitter=0.0, exclusive=False, stop_at=0.9) == \
            _run_cbr(False, jitter=0.0, exclusive=False, stop_at=0.9)

    def test_series_spans_many_chunks(self):
        # > 256 departures forces at least one horizon-chunk extension.
        batched, _ = _run_cbr(True, jitter=0.05, exclusive=True, until=1.0)
        plain, _ = _run_cbr(False, jitter=0.05, exclusive=True, until=1.0)
        assert len(batched) > 256
        assert batched == plain


def _run_onoff(batched: bool, *, deterministic: bool, until: float = 3.0,
               mean_off: float = 0.25):
    with engine_mode(batched_sources=batched):
        sim = Simulator()
        host = FakeHost(sim)
        sender = OnOffSender(
            sim, host, FLOW, rate_bps=1e6, packet_size=500,
            mean_on=0.3, mean_off=mean_off,
            rng=np.random.default_rng(5),
            deterministic=deterministic,
        )
        sender.start(at=0.05)
        sim.run(until=until)
        return host.sent, sim.events_executed


class TestOnOffBatching:
    @pytest.mark.parametrize("deterministic", [False, True])
    def test_bursts_identical(self, deterministic):
        assert _run_onoff(True, deterministic=deterministic) == \
            _run_onoff(False, deterministic=deterministic)

    def test_zero_off_phase_identical(self):
        assert _run_onoff(True, deterministic=True, mean_off=0.0) == \
            _run_onoff(False, deterministic=True, mean_off=0.0)


class TestUniformBuffer:
    def test_matches_scalar_draws(self):
        a, b = np.random.default_rng(3), np.random.default_rng(3)
        buffer = UniformBuffer(a, chunk=7)  # uneven chunk vs draw count
        assert [buffer.next() for _ in range(100)] == \
            [float(b.random()) for _ in range(100)]

    def test_lazy_first_fill(self):
        a, b = np.random.default_rng(4), np.random.default_rng(4)
        buffer = UniformBuffer(a)
        pre = float(a.random())  # drawn before the buffer ever fills
        assert pre == float(b.random())
        assert buffer.next() == float(b.random())

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            UniformBuffer(np.random.default_rng(0), chunk=0)
