"""Deeper TCP internals: RTO management, Karn's rule, recovery exit."""

from repro.sim.packet import FlowKey, Packet, PacketType
from repro.sim.topology import build_dumbbell
from repro.transport.sink import AckingSink
from repro.transport.tcp import TcpSender, _MIN_RTO


def wire(topo, **kwargs):
    src = topo.hosts["src0"]
    victim = topo.hosts["victim"]
    flow = FlowKey(src.address, victim.address, 5000, 80)
    sender = TcpSender(topo.sim, src, flow, **kwargs)
    src.bind_port(5000, sender)
    victim.bind_port(80, AckingSink(topo.sim, victim))
    return sender


class _DropAllData:
    def on_packet(self, packet, link, now):
        return packet.ptype is not PacketType.DATA


class TestRtoManagement:
    def test_rto_floor(self):
        topo = build_dumbbell(bottleneck_bps=10e6)
        sender = wire(topo, initial_cwnd=2, ssthresh=2, max_cwnd=2)
        sender.start(at=0.0)
        topo.sim.run(until=1.0)
        # Dumbbell RTT ~24 ms: RTO must respect the floor, not collapse.
        assert sender.rto >= _MIN_RTO

    def test_exponential_backoff_on_repeated_timeouts(self):
        topo = build_dumbbell()
        sender = wire(topo, initial_cwnd=2, ssthresh=8)
        topo.routers["left"].link_to("lasthop").add_head_hook(_DropAllData())
        sender.start(at=0.0)
        topo.sim.run(until=3.0)
        assert sender.stats.timeouts >= 2
        # Each timeout doubles the RTO: after >=2, rto >= 4x floor.
        assert sender.rto >= 4 * _MIN_RTO or sender.rto >= 0.8

    def test_cwnd_resets_to_one_on_timeout(self):
        topo = build_dumbbell()
        sender = wire(topo, initial_cwnd=4, ssthresh=16)
        topo.routers["left"].link_to("lasthop").add_head_hook(_DropAllData())
        sender.start(at=0.0)
        topo.sim.run(until=1.5)
        assert sender.cwnd == 1.0

    def test_no_rto_when_nothing_in_flight(self):
        topo = build_dumbbell(bottleneck_bps=10e6)
        sender = wire(topo, total_segments=3)
        sender.start(at=0.0)
        topo.sim.run(until=2.0)
        assert sender.completed_at is not None
        assert sender._rto_event is None
        assert sender.stats.timeouts == 0


class TestKarnsRule:
    def test_retransmitted_segments_give_no_rtt_sample(self):
        topo = build_dumbbell()
        sender = wire(topo, initial_cwnd=2, ssthresh=4, max_cwnd=4)

        class _DropSeq0Once:
            def __init__(self):
                self.dropped = False

            def on_packet(self, packet, link, now):
                if (packet.ptype is PacketType.DATA and packet.seq == 0
                        and not self.dropped):
                    self.dropped = True
                    return False
                return True

        topo.routers["left"].link_to("lasthop").add_head_hook(_DropSeq0Once())
        sender.start(at=0.0)
        topo.sim.run(until=2.0)
        # The retransmitted seq 0 must not have polluted SRTT with a
        # (send-to-ack-of-retransmission) sample spanning the RTO: the
        # smoothed estimate stays near the true path RTT.
        assert sender.srtt is not None
        assert sender.srtt < 0.15

    def test_retransmissions_tracked(self):
        topo = build_dumbbell()
        sender = wire(topo, initial_cwnd=8, ssthresh=8, max_cwnd=8)
        hook_drops = []

        class _DropOne:
            def on_packet(self, packet, link, now):
                if (packet.ptype is PacketType.DATA and packet.seq == 15
                        and not hook_drops):
                    hook_drops.append(packet.seq)
                    return False
                return True

        topo.routers["left"].link_to("lasthop").add_head_hook(_DropOne())
        sender.start(at=0.0)
        topo.sim.run(until=3.0)
        assert hook_drops
        assert 15 in sender._retransmitted or sender.high_ack > 15


class TestFastRecoveryExit:
    def test_recovery_exits_at_recover_point(self):
        topo = build_dumbbell()
        sender = wire(topo, initial_cwnd=8, ssthresh=8, max_cwnd=8)

        class _DropOnce:
            def __init__(self):
                self.done = False

            def on_packet(self, packet, link, now):
                if (packet.ptype is PacketType.DATA and packet.seq == 10
                        and not self.done):
                    self.done = True
                    return False
                return True

        topo.routers["left"].link_to("lasthop").add_head_hook(_DropOnce())
        sender.start(at=0.0)
        topo.sim.run(until=4.0)
        # Recovery completed: transfer progressed well beyond the hole
        # and the window deflated back to ssthresh.
        assert sender.high_ack > 20
        assert not sender._in_fast_recovery
        assert sender.cwnd <= sender.max_cwnd

    def test_dup_ack_window_inflation_bounded(self):
        topo = build_dumbbell(bottleneck_bps=10e6)
        sender = wire(topo, initial_cwnd=4, ssthresh=4, max_cwnd=6)
        sender.start(at=0.0)
        topo.sim.run(until=0.5)
        frontier = sender.high_ack
        for _ in range(10):
            sender.handle_packet(
                Packet(flow=sender.flow.reversed(),
                       ptype=PacketType.DUP_ACK, ack=frontier, size=40),
                topo.sim.now,
            )
        assert sender.cwnd <= sender.max_cwnd
