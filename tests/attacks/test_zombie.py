"""Tests for repro.attacks.zombie."""

import numpy as np
import pytest

from repro.attacks.spoofing import SpoofMode, SpoofingModel
from repro.attacks.zombie import Zombie, ZombieConfig
from repro.sim.topology import build_dumbbell
from repro.transport.sink import CountingSink
from repro.transport.udp import CbrSender, OnOffSender


def make_zombie(topo, **config_kwargs):
    victim = topo.victim_host
    sink = CountingSink(topo.sim)
    victim.bind_port(80, sink)
    zombie = Zombie(
        sim=topo.sim,
        host=topo.hosts["src0"],
        victim_ip=victim.address,
        victim_port=80,
        config=ZombieConfig(**config_kwargs),
        address_space=topo.address_space,
        rng=np.random.default_rng(5),
    )
    return zombie, sink


class TestZombie:
    def test_floods_victim(self):
        topo = build_dumbbell(bottleneck_bps=10e6)
        zombie, sink = make_zombie(topo, rate_bps=400e3, jitter=0.0)
        zombie.start(at=0.0)
        topo.sim.run(until=1.0)
        assert sink.packets_received == pytest.approx(50, abs=5)
        assert sink.attack_packets_received == sink.packets_received

    def test_packets_marked_attack(self):
        topo = build_dumbbell()
        zombie, _ = make_zombie(topo, rate_bps=80e3, jitter=0.0)
        zombie.start(at=0.0)
        topo.sim.run(until=0.5)
        assert zombie.stats.packets_sent > 0

    def test_wire_flow_has_spoofed_source(self):
        topo = build_dumbbell()
        zombie, _ = make_zombie(
            topo, spoofing=SpoofingModel(mode=SpoofMode.LEGIT_SUBNET),
        )
        assert zombie.wire_flow.dst_ip == topo.victim_host.address
        # Spoofed source is legal but (almost surely) not the true host.
        assert topo.address_space.is_legal_source(zombie.wire_flow.src_ip)

    def test_wire_flow_matches_emitted_packets(self):
        topo = build_dumbbell(bottleneck_bps=10e6)
        zombie, sink = make_zombie(
            topo, rate_bps=400e3, jitter=0.0,
            spoofing=SpoofingModel(mode=SpoofMode.LEGIT_SUBNET),
        )
        seen = []
        sink._on_packet = lambda p, now: seen.append(p)
        zombie.start(at=0.0)
        topo.sim.run(until=0.5)
        assert seen
        assert all(p.flow_hash == zombie.wire_flow.hashed() for p in seen)

    def test_rotating_zombie_flagged(self):
        topo = build_dumbbell()
        zombie, _ = make_zombie(
            topo,
            spoofing=SpoofingModel(mode=SpoofMode.LEGIT_SUBNET,
                                   rotate_per_packet=True),
        )
        assert zombie.rotates_sources

    def test_pulsing_zombie_uses_onoff(self):
        topo = build_dumbbell()
        zombie, _ = make_zombie(topo, pulsing=True, mean_on=0.1, mean_off=0.1)
        assert isinstance(zombie.sender, OnOffSender)

    def test_constant_zombie_uses_cbr(self):
        topo = build_dumbbell()
        zombie, _ = make_zombie(topo)
        assert isinstance(zombie.sender, CbrSender)
        assert not isinstance(zombie.sender, OnOffSender)

    def test_stop(self):
        topo = build_dumbbell()
        zombie, _ = make_zombie(topo, rate_bps=400e3, jitter=0.0)
        zombie.start(at=0.0)
        topo.sim.run(until=0.3)
        zombie.stop()
        sent = zombie.stats.packets_sent
        topo.sim.run(until=1.0)
        assert zombie.stats.packets_sent == sent

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ZombieConfig(rate_bps=0)
        with pytest.raises(ValueError):
            ZombieConfig(packet_size=0)
        with pytest.raises(ValueError):
            ZombieConfig(pulsing=True, mean_on=0)
