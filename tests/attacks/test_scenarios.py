"""Tests for repro.attacks.scenarios."""

import numpy as np
import pytest

from repro.attacks.scenarios import AttackScenario, AttackScenarioConfig
from repro.attacks.spoofing import SpoofMode, SpoofingModel
from repro.attacks.zombie import ZombieConfig
from repro.sim.topology import build_star_domain
from repro.transport.sink import CountingSink


def make_scenario(topo=None, **config_kwargs):
    topo = topo if topo is not None else build_star_domain(n_ingress=4)
    sink = CountingSink(topo.sim)
    topo.victim_host.bind_port(80, sink)
    config = AttackScenarioConfig(**config_kwargs)
    scenario = AttackScenario(
        topo, config, victim_port=80, rng=np.random.default_rng(9)
    )
    return topo, scenario, sink


class TestPlacement:
    def test_round_robin_across_ingresses(self):
        _, scenario, _ = make_scenario(n_zombies=8)
        hosts = [z.host.name for z in scenario.zombies]
        assert hosts == [f"src{i % 4}" for i in range(8)]

    def test_subset_placement(self):
        _, scenario, _ = make_scenario(
            n_zombies=4, ingress_subset=["ingress1", "ingress2"]
        )
        assert {z.host.name for z in scenario.zombies} == {"src1", "src2"}

    def test_atr_ground_truth(self):
        _, scenario, _ = make_scenario(n_zombies=2)
        assert scenario.atr_ground_truth == {"ingress0", "ingress1"}

    def test_atr_ground_truth_with_subset(self):
        _, scenario, _ = make_scenario(
            n_zombies=3, ingress_subset=["ingress3"]
        )
        assert scenario.atr_ground_truth == {"ingress3"}

    def test_unknown_ingress_rejected(self):
        with pytest.raises(ValueError):
            make_scenario(n_zombies=1, ingress_subset=["ghost"])

    def test_zero_zombies_allowed(self):
        _, scenario, _ = make_scenario(n_zombies=0)
        assert scenario.zombies == []


class TestScheduling:
    def test_attack_starts_at_configured_time(self):
        topo, scenario, sink = make_scenario(
            n_zombies=2, start_time=0.5, start_jitter=0.0,
            zombie=ZombieConfig(rate_bps=400e3, jitter=0.0),
        )
        scenario.schedule()
        topo.sim.run(until=0.45)
        assert sink.packets_received == 0
        topo.sim.run(until=1.5)
        assert sink.packets_received > 0

    def test_stop_time_halts_attack(self):
        topo, scenario, sink = make_scenario(
            n_zombies=2, start_time=0.1, stop_time=0.5, start_jitter=0.0,
            zombie=ZombieConfig(rate_bps=400e3, jitter=0.0),
        )
        scenario.schedule()
        topo.sim.run(until=2.0)
        sent = scenario.total_attack_packets_sent()
        # ~0.4 s at 50 pkt/s each.
        assert sent == pytest.approx(2 * 20, abs=8)

    def test_double_schedule_rejected(self):
        topo, scenario, _ = make_scenario(n_zombies=1)
        scenario.schedule()
        with pytest.raises(RuntimeError):
            scenario.schedule()

    def test_stop_before_start_rejected(self):
        with pytest.raises(ValueError):
            AttackScenarioConfig(start_time=1.0, stop_time=0.5)


class TestGroundTruth:
    def test_attack_flow_hashes_stable_spoofers(self):
        _, scenario, _ = make_scenario(
            n_zombies=3,
            zombie=ZombieConfig(
                spoofing=SpoofingModel(mode=SpoofMode.LEGIT_SUBNET)
            ),
        )
        hashes = scenario.attack_flow_hashes()
        assert len(hashes) == 3

    def test_rotating_spoofers_excluded_from_hashes(self):
        _, scenario, _ = make_scenario(
            n_zombies=3,
            zombie=ZombieConfig(
                spoofing=SpoofingModel(
                    mode=SpoofMode.LEGIT_SUBNET, rotate_per_packet=True
                )
            ),
        )
        assert scenario.attack_flow_hashes() == set()

    def test_total_attack_packets_counts(self):
        topo, scenario, _ = make_scenario(
            n_zombies=2, start_time=0.0, start_jitter=0.0,
            zombie=ZombieConfig(rate_bps=400e3, jitter=0.0),
        )
        scenario.schedule()
        topo.sim.run(until=1.0)
        assert scenario.total_attack_packets_sent() > 50
