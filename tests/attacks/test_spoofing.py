"""Tests for repro.attacks.spoofing."""

import numpy as np
import pytest

from repro.attacks.spoofing import SpoofMode, SpoofingModel, make_spoofer
from repro.sim.address import AddressSpace
from repro.sim.packet import FlowKey, Packet


def _space():
    space = AddressSpace()
    for _ in range(4):
        space.allocate_subnet(24)
    return space


def pkt(src=0x0A000005):
    return Packet(flow=FlowKey(src, 0x0A630001, 5000, 80))


class TestStableSpoofing:
    def test_none_mode_keeps_true_address(self):
        spoof = make_spoofer(
            SpoofingModel(mode=SpoofMode.NONE), _space(),
            np.random.default_rng(0), true_address=0x0A000005,
        )
        assert spoof(pkt()).src_ip == 0x0A000005

    def test_legit_subnet_address_is_legal(self):
        space = _space()
        spoof = make_spoofer(
            SpoofingModel(mode=SpoofMode.LEGIT_SUBNET), space,
            np.random.default_rng(0), true_address=0x0A000005,
        )
        rewritten = spoof(pkt())
        assert space.is_legal_source(rewritten.src_ip)

    def test_illegal_address_fails_legality(self):
        space = _space()
        spoof = make_spoofer(
            SpoofingModel(mode=SpoofMode.ILLEGAL), space,
            np.random.default_rng(0), true_address=0x0A000005,
        )
        assert not space.is_legal_source(spoof(pkt()).src_ip)

    def test_stable_spoof_is_constant_across_packets(self):
        spoof = make_spoofer(
            SpoofingModel(mode=SpoofMode.LEGIT_SUBNET), _space(),
            np.random.default_rng(1), true_address=0x0A000005,
        )
        sources = {spoof(pkt()).src_ip for _ in range(20)}
        assert len(sources) == 1

    def test_other_fields_preserved(self):
        spoof = make_spoofer(
            SpoofingModel(mode=SpoofMode.LEGIT_SUBNET), _space(),
            np.random.default_rng(0), true_address=0x0A000005,
        )
        rewritten = spoof(pkt())
        assert rewritten.flow.dst_ip == 0x0A630001
        assert rewritten.flow.src_port == 5000
        assert rewritten.flow.dst_port == 80


class TestMixedMode:
    def test_mixed_respects_illegal_fraction_extremes(self):
        space = _space()
        always_illegal = make_spoofer(
            SpoofingModel(mode=SpoofMode.MIXED, illegal_fraction=1.0),
            space, np.random.default_rng(0), true_address=1,
        )
        assert not space.is_legal_source(always_illegal(pkt()).src_ip)
        never_illegal = make_spoofer(
            SpoofingModel(mode=SpoofMode.MIXED, illegal_fraction=0.0),
            space, np.random.default_rng(0), true_address=1,
        )
        assert space.is_legal_source(never_illegal(pkt()).src_ip)

    def test_mixed_fraction_statistics(self):
        space = _space()
        rng = np.random.default_rng(2)
        illegal = 0
        for _ in range(400):
            spoof = make_spoofer(
                SpoofingModel(mode=SpoofMode.MIXED, illegal_fraction=0.25),
                space, rng, true_address=1,
            )
            if not space.is_legal_source(spoof(pkt()).src_ip):
                illegal += 1
        assert illegal / 400 == pytest.approx(0.25, abs=0.08)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            SpoofingModel(illegal_fraction=1.5)


class TestRotation:
    def test_rotating_spoof_varies_sources(self):
        spoof = make_spoofer(
            SpoofingModel(mode=SpoofMode.LEGIT_SUBNET, rotate_per_packet=True),
            _space(), np.random.default_rng(3), true_address=1,
        )
        sources = {spoof(pkt()).src_ip for _ in range(50)}
        assert len(sources) > 10

    def test_rotation_changes_flow_identity(self):
        spoof = make_spoofer(
            SpoofingModel(mode=SpoofMode.LEGIT_SUBNET, rotate_per_packet=True),
            _space(), np.random.default_rng(4), true_address=1,
        )
        hashes = {spoof(pkt()).flow_hash for _ in range(50)}
        assert len(hashes) > 10
