"""Evasion-strategy integration tests (the paper's future-work corner).

Two classic evasions against probe-based defences:

* **source rotation** — the zombie changes its claimed source every
  packet, so MAFIC never accumulates per-flow state.  Suppression then
  rides entirely on the Bernoulli(Pd) gate for unknown flows (and the
  legality shortcut for the illegal fraction).
* **pulsing (shrew-style)** — the zombie blasts in bursts and goes
  silent; a burst that straddles the probe window's quiet half can earn
  an NFT verdict.  ``renotice_interval`` re-probes aged NFT verdicts and
  is the knob that counters this.
"""

import pytest

from repro.attacks.spoofing import SpoofMode, SpoofingModel
from repro.attacks.zombie import ZombieConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenario import build_scenario


def config(**overrides):
    defaults = dict(total_flows=16, n_routers=10, duration=3.5, seed=57)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestSourceRotation:
    @pytest.fixture(scope="class")
    def rotating_run(self):
        return run_experiment(
            config(
                spoofing=SpoofingModel(
                    mode=SpoofMode.LEGIT_SUBNET, rotate_per_packet=True
                )
            )
        )

    def test_rotation_still_suppressed_by_gate(self, rotating_run):
        """Each packet is a fresh flow facing the Pd gate: suppression
        approaches Pd rather than ~100%."""
        s = rotating_run.summary
        pd = rotating_run.config.mafic.drop_probability
        assert s.accuracy == pytest.approx(pd, abs=0.08)

    def test_rotation_bloats_tables(self, rotating_run):
        """One-packet flows pile up in the SFT — the storage-pressure
        argument for hashed labels."""
        admissions = sum(
            a.tables.counters.sft_admissions
            for a in rotating_run.scenario.agents.values()
        )
        assert admissions > 10 * rotating_run.config.n_zombies

    def test_rotation_does_not_hurt_tcp(self, rotating_run):
        assert rotating_run.summary.false_positive_rate < 0.01


class TestPulsingAttack:
    def _pulsing_config(self, renotice=0.0, seed=58):
        cfg = config(seed=seed)
        cfg.attack_fraction = 0.5
        zombie = ZombieConfig(
            rate_bps=cfg.rate_bps,
            pulsing=True,
            mean_on=0.25,
            mean_off=0.25,
            spoofing=SpoofingModel(mode=SpoofMode.LEGIT_SUBNET),
        )
        cfg.mafic.renotice_interval = renotice
        return cfg, zombie

    def _run_pulsing(self, renotice, seed=58):
        cfg, zombie = self._pulsing_config(renotice, seed)
        scenario = build_scenario(cfg)
        # Swap the zombies for pulsing ones before the clock starts: the
        # scenario builder schedules at t=attack_start, so rebuilding via
        # config is cleaner — here we simply verify with the standard
        # builder by overriding the zombie config up front.
        return run_experiment(cfg, scenario=scenario)

    def test_pulsing_zombies_constructible(self):
        cfg, zombie = self._pulsing_config()
        from repro.attacks.scenarios import AttackScenario, AttackScenarioConfig
        from repro.sim.topology import build_star_domain
        import numpy as np

        topo = build_star_domain(n_ingress=4)
        scenario = AttackScenario(
            topo,
            AttackScenarioConfig(n_zombies=4, zombie=zombie, start_time=0.1),
            victim_port=80,
            rng=np.random.default_rng(0),
        )
        scenario.schedule()
        topo.sim.run(until=2.0)
        assert scenario.total_attack_packets_sent() > 0

    def test_steady_attack_beats_probe_always(self):
        """Sanity anchor for the pulsing comparison: constant-rate
        zombies are fully cut."""
        run = run_experiment(config(seed=59))
        assert run.summary.accuracy > 0.97
