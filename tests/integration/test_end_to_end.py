"""End-to-end integration tests of the full MAFIC pipeline.

These exercise the whole stack — topology, transport, counting,
detection, probing, verdicts — and assert the behaviours the paper
claims, on small-but-real scenarios.
"""

import pytest

from repro.attacks.spoofing import SpoofMode, SpoofingModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.collectors import FlowTruth
from repro.metrics.timeseries import BandwidthSeries


def config(**overrides):
    defaults = dict(total_flows=16, n_routers=10, duration=3.5, seed=42)
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def run():
    return run_experiment(config())


class TestDefenseLifecycle:
    def test_activation_follows_attack_within_two_epochs(self, run):
        cfg = run.config
        assert run.activation_time is not None
        delay = run.activation_time - cfg.attack_start
        assert delay <= 2 * cfg.monitor_period + 1e-9

    def test_pushback_start_traced(self, run):
        assert run.scenario.trace.count("pushback.start") >= 1

    def test_probes_were_sent(self, run):
        assert run.scenario.trace.count("probe.sent") > 0

    def test_tables_populated_during_run(self, run):
        total_pdt = sum(
            agent.tables.counters.pdt_admissions
            for agent in run.scenario.agents.values()
        )
        assert total_pdt >= run.config.n_zombies * 0.6


class TestPaperClaims:
    """Section-V headline claims, at integration-test tolerances."""

    def test_accuracy_above_95_percent(self, run):
        assert run.summary.accuracy > 0.95

    def test_legit_loss_below_10_percent(self, run):
        assert run.summary.legit_drop_rate < 0.10

    def test_false_positive_below_1_percent(self, run):
        assert run.summary.false_positive_rate < 0.01

    def test_false_negative_below_5_percent(self, run):
        assert run.summary.false_negative_rate < 0.05

    def test_victim_arrival_collapses_after_activation(self, run):
        assert run.summary.traffic_reduction > 0.5

    def test_attack_suppressed_at_steady_state(self, run):
        """Well after the probing phase, almost no attack packets arrive."""
        vc = run.scenario.victim_collector
        t0 = run.activation_time
        attack_late, _ = vc.arrivals_in(t0 + 1.0, run.config.duration)
        attack_peak, _ = vc.arrivals_in(t0 - 0.25, t0)
        assert attack_late < 0.15 * attack_peak * (
            (run.config.duration - t0 - 1.0) / 0.25
        )

    def test_tcp_flows_recover_bandwidth(self, run):
        """Fig 4(b): nice flows regain their share after the probe."""
        vc = run.scenario.victim_collector
        t0 = run.activation_time
        _, legit_before = vc.arrivals_in(t0 - 0.5, t0)
        _, legit_after = vc.arrivals_in(
            run.config.duration - 0.5, run.config.duration
        )
        assert legit_after > 0.4 * legit_before


class TestVerdictCorrectness:
    def test_zombies_with_stable_sources_condemned(self, run):
        confusion = run.scenario.defense_collector.verdict_confusion()
        condemned = confusion.get((FlowTruth.ATTACK, "cut"), 0) + confusion.get(
            (FlowTruth.ATTACK, "illegal_source"), 0
        )
        assert condemned >= 0.6 * run.config.n_zombies

    def test_no_tcp_flow_condemned(self, run):
        confusion = run.scenario.defense_collector.verdict_confusion()
        assert confusion.get((FlowTruth.TCP_LEGIT, "cut"), 0) == 0

    def test_probed_tcp_flows_reach_nft(self, run):
        confusion = run.scenario.defense_collector.verdict_confusion()
        assert confusion.get((FlowTruth.TCP_LEGIT, "nice"), 0) >= 1


class TestSpoofingRegimes:
    def test_all_illegal_sources_cut_instantly(self):
        run = run_experiment(
            config(spoofing=SpoofingModel(mode=SpoofMode.ILLEGAL), seed=43)
        )
        dc = run.scenario.defense_collector
        attack = dc.of(FlowTruth.ATTACK)
        # Nearly every attack drop is the PDT legality shortcut.
        assert attack.dropped_illegal > 0.9 * attack.dropped
        assert run.summary.accuracy > 0.98

    def test_all_legal_spoofing_still_caught_by_probe(self):
        run = run_experiment(
            config(spoofing=SpoofingModel(mode=SpoofMode.LEGIT_SUBNET), seed=44)
        )
        dc = run.scenario.defense_collector
        attack = dc.of(FlowTruth.ATTACK)
        assert attack.dropped_illegal == 0  # shortcut never fires
        assert run.summary.accuracy > 0.95  # probing does the work

    def test_no_spoofing_also_caught(self):
        run = run_experiment(
            config(spoofing=SpoofingModel(mode=SpoofMode.NONE), seed=45)
        )
        assert run.summary.accuracy > 0.95


class TestUnresponsiveLegitCollateral:
    def test_legit_udp_flows_are_cut(self):
        """The paper's accepted collateral: unresponsive != malicious,
        but unresponsive flows get cut anyway."""
        run = run_experiment(config(tcp_fraction=0.5, seed=46))
        confusion = run.scenario.defense_collector.verdict_confusion()
        assert confusion.get((FlowTruth.UDP_LEGIT, "cut"), 0) >= 1

    def test_udp_collateral_not_counted_in_theta_p(self):
        run = run_experiment(config(tcp_fraction=0.5, seed=46))
        dc = run.scenario.defense_collector
        udp = dc.of(FlowTruth.UDP_LEGIT)
        assert udp.dropped > 0  # collateral happened
        # theta_p only reflects TCP_LEGIT pdt drops.
        tcp = dc.of(FlowTruth.TCP_LEGIT)
        expected = tcp.dropped_pdt / dc.total_examined
        assert run.summary.false_positive_rate == pytest.approx(expected)


class TestSeries:
    def test_fig4b_style_series_shows_the_cut(self, run):
        series: BandwidthSeries = run.series
        t0 = run.activation_time
        peak = series.mean_total_kbps(t0 - 0.3, t0)
        dip = series.mean_total_kbps(t0 + 0.1, t0 + 0.4)
        assert dip < 0.5 * peak
