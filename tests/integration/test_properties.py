"""Cross-module property-based tests on randomized small scenarios."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig, TopologyKind
from repro.experiments.runner import run_experiment
from repro.metrics.collectors import FlowTruth


@st.composite
def small_configs(draw):
    return ExperimentConfig(
        total_flows=draw(st.integers(min_value=4, max_value=14)),
        tcp_fraction=draw(st.sampled_from([0.5, 0.75, 1.0])),
        attack_fraction=draw(st.sampled_from([0.25, 0.5])),
        n_routers=draw(st.integers(min_value=6, max_value=12)),
        duration=2.8,
        topology=draw(
            st.sampled_from([TopologyKind.STAR, TopologyKind.TRANSIT_STUB])
        ),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
    )


@settings(max_examples=8, deadline=None)
@given(small_configs())
def test_conservation_and_bounds(cfg):
    """Invariants that must hold for ANY scenario:

    1. Every examined packet is either dropped or passed.
    2. All five rates are within [0, 1].
    3. Victim arrivals of a class never exceed what that class sent.
    4. Accuracy + false-negative = 1 exactly (complementary counts).
    """
    run = run_experiment(cfg)
    dc = run.scenario.defense_collector
    for truth in FlowTruth:
        counts = dc.of(truth)
        assert counts.examined == counts.dropped + counts.passed

    s = run.summary
    for value in (
        s.accuracy,
        s.traffic_reduction,
        s.false_positive_rate,
        s.false_negative_rate,
        s.legit_drop_rate,
    ):
        assert 0.0 <= value <= 1.0

    sent_attack = run.scenario.attack.total_attack_packets_sent()
    assert run.scenario.victim_collector.attack_packets <= sent_attack

    if s.attack_examined:
        assert s.accuracy + s.false_negative_rate == pytest.approx(1.0)


@settings(max_examples=4, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_determinism_under_fixed_seed(seed):
    """Two identical runs are bit-for-bit identical in their metrics."""
    cfg = ExperimentConfig(
        total_flows=8, n_routers=8, duration=2.6,
        topology=TopologyKind.STAR, seed=seed,
    )
    a = run_experiment(cfg)
    b = run_experiment(cfg)
    assert a.summary == b.summary
    assert a.events_executed == b.events_executed
    assert a.identified_atrs == b.identified_atrs
