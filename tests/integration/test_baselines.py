"""Baseline-comparison integration tests.

The paper motivates MAFIC against the proportionate dropper of [2]
("collateral damages" on legitimate flows); these tests pin down that
comparison quantitatively in our harness.
"""

import pytest

from repro.experiments.config import DefenseKind, ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.collectors import FlowTruth


def config(defense, seed=77, **overrides):
    defaults = dict(
        total_flows=16, n_routers=10, duration=3.5, seed=seed, defense=defense
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


@pytest.fixture(scope="module")
def mafic_run():
    return run_experiment(config(DefenseKind.MAFIC))


@pytest.fixture(scope="module")
def proportional_run():
    return run_experiment(config(DefenseKind.PROPORTIONAL))


@pytest.fixture(scope="module")
def ratelimit_run():
    return run_experiment(config(DefenseKind.RATE_LIMIT))


class TestProportionalBaseline:
    def test_collateral_far_exceeds_mafic(self, mafic_run, proportional_run):
        """The whole point of MAFIC: probing slashes legitimate losses."""
        assert (
            proportional_run.summary.legit_drop_rate
            > 5 * mafic_run.summary.legit_drop_rate
        )

    def test_proportional_drops_legit_at_pd(self, proportional_run):
        # Every packet faces Bernoulli(Pd): legit losses ~ Pd.
        assert proportional_run.summary.legit_drop_rate == pytest.approx(
            0.9, abs=0.08
        )

    def test_proportional_never_fully_cuts_attack(self, proportional_run):
        # Memoryless dropping leaks (1-Pd) of the flood forever.
        assert 0.05 <= proportional_run.summary.false_negative_rate <= 0.2

    def test_mafic_beats_proportional_on_accuracy(
        self, mafic_run, proportional_run
    ):
        assert mafic_run.summary.accuracy > proportional_run.summary.accuracy

    def test_proportional_builds_no_tables(self, proportional_run):
        for agent in proportional_run.scenario.agents.values():
            assert agent.tables.counters.sft_admissions == 0


class TestRateLimitBaseline:
    def test_rate_limit_caps_aggregate(self, ratelimit_run):
        """Aggregate limiting reduces the flood but hits legit flows too."""
        assert ratelimit_run.summary.traffic_reduction > 0.3
        assert ratelimit_run.summary.legit_drop_rate > 0.1

    def test_mafic_collateral_lower_than_rate_limit(
        self, mafic_run, ratelimit_run
    ):
        assert (
            mafic_run.summary.legit_drop_rate
            < ratelimit_run.summary.legit_drop_rate
        )

    def test_rate_limit_indiscriminate(self, ratelimit_run):
        """Attack and legit suffer comparable drop ratios under aggregate
        limiting (no per-flow discrimination)."""
        dc = ratelimit_run.scenario.defense_collector
        attack = dc.of(FlowTruth.ATTACK)
        nice = dc.of(FlowTruth.TCP_LEGIT)
        if attack.examined and nice.examined:
            attack_ratio = attack.dropped / attack.examined
            nice_ratio = nice.dropped / nice.examined
            assert attack_ratio < 0.995  # leaks attack
            assert nice_ratio > 0.05  # hurts legit


class TestDefenseOrdering:
    def test_mafic_best_on_combined_score(
        self, mafic_run, proportional_run, ratelimit_run
    ):
        """MAFIC should dominate: high accuracy AND low collateral."""

        def score(run):
            return run.summary.accuracy - run.summary.legit_drop_rate

        assert score(mafic_run) > score(proportional_run)
        assert score(mafic_run) > score(ratelimit_run)
