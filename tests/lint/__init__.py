"""Self-tests for the ``repro.lint`` invariant analyzer."""
