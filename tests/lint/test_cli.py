"""Tests for ``python -m repro lint`` — the CLI surface and the
repo's own clean-tree gate."""

import json

import pytest

from repro.experiments.cli import main


@pytest.fixture()
def dirty_tree(tmp_path):
    """A synthetic tree with one wallclock and one bus-guard violation."""
    pkg = tmp_path / "repro" / "sim"
    pkg.mkdir(parents=True)
    (pkg / "bad.py").write_text(
        "import time\n"
        "\n"
        "def stamp(bus, ev):\n"
        "    bus.emit(ev)\n"
        "    return time.time()\n",
        encoding="utf-8",
    )
    return tmp_path


class TestLintCommand:
    def test_report_mode_exits_zero(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree)]) == 0
        out = capsys.readouterr().out
        assert "[bus-guard]" in out and "[no-wallclock-in-sim]" in out

    def test_check_mode_fails_on_findings(self, dirty_tree, capsys):
        assert main(["lint", "--check", str(dirty_tree)]) == 1
        assert "non-baselined finding" in capsys.readouterr().err

    def test_json_output(self, dirty_tree, capsys):
        assert main(["lint", "--json", str(dirty_tree)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        rules = {f["rule"] for f in payload["findings"]}
        assert rules == {"bus-guard", "no-wallclock-in-sim"}
        assert all("fingerprint" in f for f in payload["findings"])

    def test_rule_filter(self, dirty_tree, capsys):
        assert main([
            "lint", "--json", "--rule", "bus-guard", str(dirty_tree)
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {f["rule"] for f in payload["findings"]} == {"bus-guard"}

    def test_write_baseline_then_check_passes(self, dirty_tree, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main([
            "lint", "--write-baseline", "--baseline", str(baseline),
            str(dirty_tree),
        ]) == 0
        assert main([
            "lint", "--check", "--baseline", str(baseline), str(dirty_tree),
        ]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "no-wallclock-in-sim", "bus-guard", "atomic-write",
            "event-kind-registry", "slots-on-hotpath", "twin-parity",
        ):
            assert rule_id in out


class TestCleanTreeGate:
    def test_repo_source_is_clean(self, capsys):
        """The committed tree passes its own gate with an empty baseline.

        This is the acceptance criterion of the lint PR and the
        guarantee every later PR inherits: a regression in src/repro
        fails here before it fails in CI.
        """
        assert main(["lint", "--check"]) == 0
        err = capsys.readouterr().err
        assert "0 baselined" in err
