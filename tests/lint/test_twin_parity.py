"""Twin-parity self-tests: the real surfaces agree, and seeded
mutations of either side are caught.

The mutation tests are the proof the rule has teeth: each one renames
or re-signatures something in a *copy* of the real sources and asserts
the drift is reported — so a future refactor cannot silently weaken
the parser into matching nothing.
"""

from pathlib import Path

import pytest

import repro.sim.engine
from repro.lint.analyzer import analyze
from repro.lint.rules.twin import (
    compare_surfaces,
    parse_c_surface,
    parse_pure_surface,
)

ENGINE_PY = Path(repro.sim.engine.__file__)
COREC = ENGINE_PY.parent / "_corec.c"


@pytest.fixture(scope="module")
def py_text():
    return ENGINE_PY.read_text(encoding="utf-8")


@pytest.fixture(scope="module")
def c_text():
    return COREC.read_text(encoding="utf-8")


class TestParsers:
    def test_c_surface_shape(self, c_text):
        surface = parse_c_surface(c_text)
        assert set(surface) == {"Event", "SeriesEvent", "Simulator"}
        sim = surface["Simulator"]
        assert "schedule" in sim.methods
        assert sim.methods["run"] == ("until", "max_events")
        assert {"stop", "pending", "peek_time", "queue_stats"} <= sim.noargs
        assert sim.init_params == ("queue",)
        assert sim.attrs == {"events_executed", "now", "queue_kind"}

    def test_c_base_chain_unions(self, c_text):
        series = parse_c_surface(c_text)["SeriesEvent"]
        # cancel comes from Event_Type via tp_base; extend/stop are own.
        assert {"cancel", "extend", "stop"} <= set(series.methods)
        assert "index" in series.attrs and "time" in series.attrs

    def test_pure_surface_shape(self, py_text):
        surface = parse_pure_surface(py_text)
        sim = surface["Simulator"]
        assert sim.methods["run"] == ("until", "max_events")
        assert sim.init_params == ("queue",)
        event = surface["Event"]
        assert "cancel" in event.methods
        assert {"cancelled", "times", "fn"} <= event.attrs
        assert "_sim" not in event.attrs  # private slots stay private


class TestParity:
    def test_head_surfaces_agree(self, c_text, py_text):
        drifts = compare_surfaces(
            parse_c_surface(c_text), parse_pure_surface(py_text)
        )
        assert drifts == []

    def test_renamed_c_method_is_drift(self, c_text, py_text):
        mutated = c_text.replace('"postpone"', '"postpone_v2"')
        drifts = compare_surfaces(
            parse_c_surface(mutated), parse_pure_surface(py_text)
        )
        assert any("postpone" in d for d in drifts)

    def test_mutated_kwlist_is_drift(self, c_text, py_text):
        mutated = c_text.replace(
            '{"until", "max_events", NULL}', '{"until", "limit", NULL}'
        )
        assert mutated != c_text
        drifts = compare_surfaces(
            parse_c_surface(mutated), parse_pure_surface(py_text)
        )
        assert any("kwlist" in d and "run" in d for d in drifts)

    def test_removed_pure_method_is_drift(self, c_text, py_text):
        mutated = py_text.replace("def peek_time", "def _peek_time")
        drifts = compare_surfaces(
            parse_c_surface(c_text), parse_pure_surface(mutated)
        )
        assert any(
            "peek_time" in d and "compiled" in d for d in drifts
        )

    def test_renamed_c_member_is_drift(self, c_text, py_text):
        mutated = c_text.replace('"events_executed"', '"events_done"')
        drifts = compare_surfaces(
            parse_c_surface(mutated), parse_pure_surface(py_text)
        )
        assert any("events_executed" in d for d in drifts)
        assert any("events_done" in d for d in drifts)


class TestRuleEndToEnd:
    def test_clean_on_real_tree(self):
        report = analyze([ENGINE_PY.parent])
        assert [
            f for f in report.all_findings if f.rule == "twin-parity"
        ] == []

    def test_mutated_tree_fails(self, tmp_path, c_text, py_text):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "engine.py").write_text(py_text, encoding="utf-8")
        (pkg / "_corec.c").write_text(
            c_text.replace('"postpone"', '"postpone_v2"'), encoding="utf-8"
        )
        report = analyze([tmp_path], rules=["twin-parity"])
        twin = [f for f in report.all_findings if f.rule == "twin-parity"]
        assert twin and any("postpone" in f.message for f in twin)
