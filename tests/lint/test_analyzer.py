"""Tests for the analyzer core: module naming, suppressions,
fingerprints, parse errors, and the baseline."""

from pathlib import Path

import pytest

from repro.lint.analyzer import (
    RULES,
    ModuleSource,
    analyze,
    load_rules,
    module_name_for,
)
from repro.lint.baseline import load_baseline, partition, write_baseline
from repro.lint.findings import Finding


class TestModuleNameFor:
    def test_src_layout(self):
        assert (
            module_name_for(Path("src/repro/sim/link.py"))
            == "repro.sim.link"
        )

    def test_anchors_on_last_repro_component(self):
        # Synthetic trees (CI's seeded-violation check) resolve too.
        assert (
            module_name_for(Path("/tmp/seed/repro/sim/bad.py"))
            == "repro.sim.bad"
        )

    def test_init_maps_to_package(self):
        assert module_name_for(Path("src/repro/__init__.py")) == "repro"

    def test_outside_repro_is_none(self):
        assert module_name_for(Path("tests/sim/test_link.py")) is None


class TestSuppressions:
    def test_allow_table_parsed(self):
        src = ModuleSource(
            "x = 1  # repro: allow[bus-guard] caller guards\n"
            "# repro: allow[atomic-write, twin-parity]\n"
            "y = 2\n"
        )
        assert src.allows[1] == frozenset({"bus-guard"})
        assert src.allows[2] == frozenset({"atomic-write", "twin-parity"})

    def test_same_line_and_line_above(self):
        src = ModuleSource(
            "# repro: allow[r1]\n"
            "a = 1\n"
            "b = 2  # repro: allow[r2]\n"
        )
        f1 = Finding(rule="r1", path="<fixture>", line=2, message="m")
        f2 = Finding(rule="r2", path="<fixture>", line=3, message="m")
        f3 = Finding(rule="r3", path="<fixture>", line=3, message="m")
        assert src.is_suppressed(f1)
        assert src.is_suppressed(f2)
        assert not src.is_suppressed(f3)

    def test_wildcard(self):
        src = ModuleSource("a = 1  # repro: allow[*] generated file\n")
        f = Finding(rule="anything", path="<fixture>", line=1, message="m")
        assert src.is_suppressed(f)


class TestFinding:
    def test_fingerprint_ignores_line_number(self):
        a = Finding(
            rule="r", path="p.py", line=10, message="m", snippet="x = 1"
        )
        b = Finding(
            rule="r", path="p.py", line=99, message="m", snippet="x = 1"
        )
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_tracks_content(self):
        a = Finding(
            rule="r", path="p.py", line=10, message="m", snippet="x = 1"
        )
        b = Finding(
            rule="r", path="p.py", line=10, message="m", snippet="x = 2"
        )
        assert a.fingerprint != b.fingerprint

    def test_render(self):
        f = Finding(rule="bus-guard", path="a/b.py", line=7, message="oops")
        assert f.render() == "a/b.py:7: [bus-guard] oops"


class TestAnalyze:
    def test_parse_error_is_a_finding(self, tmp_path):
        bad = tmp_path / "repro" / "sim"
        bad.mkdir(parents=True)
        (bad / "broken.py").write_text("def f(:\n", encoding="utf-8")
        report = analyze([tmp_path])
        assert report.files == 1
        assert [f.rule for f in report.all_findings] == ["parse-error"]

    def test_findings_are_deterministic(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        (pkg / "b.py").write_text(
            "def f(bus, ev):\n    bus.emit(ev)\n", encoding="utf-8"
        )
        first = analyze([tmp_path], root=tmp_path)
        second = analyze([tmp_path], root=tmp_path)
        assert [f.to_dict() for f in first.all_findings] == [
            f.to_dict() for f in second.all_findings
        ]
        assert [f.rule for f in first.all_findings] == [
            "no-wallclock-in-sim", "bus-guard"
        ]
        # root-relative display paths, POSIX-style
        assert first.all_findings[0].path == "repro/sim/a.py"

    def test_suppressed_are_counted_not_dropped(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text(
            "def f(bus, ev):\n"
            "    bus.emit(ev)  # repro: allow[bus-guard] caller guards\n",
            encoding="utf-8",
        )
        report = analyze([tmp_path], root=tmp_path)
        assert report.findings == []
        assert [f.rule for f in report.suppressed] == ["bus-guard"]

    def test_rule_selection(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text(
            "import time\nt = time.time()\n"
            "def f(bus, ev):\n    bus.emit(ev)\n",
            encoding="utf-8",
        )
        report = analyze([tmp_path], rules=["bus-guard"])
        assert [f.rule for f in report.all_findings] == ["bus-guard"]


class TestRegistry:
    def test_all_six_rules_registered(self):
        load_rules()
        assert {
            "no-wallclock-in-sim", "bus-guard", "atomic-write",
            "event-kind-registry", "slots-on-hotpath", "twin-parity",
        } <= set(RULES.names())


class TestBaseline:
    def _finding(self, snippet="x = 1"):
        return Finding(
            rule="r", path="p.py", line=3, message="m", snippet=snippet
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        write_baseline(path, [self._finding()])
        assert load_baseline(path) == {self._finding().fingerprint}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == set()

    def test_version_check(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        path.write_text('{"version": 99, "findings": []}', encoding="utf-8")
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_partition(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        (pkg / "a.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        report = analyze([tmp_path], root=tmp_path)
        baseline = {f.fingerprint for f in report.all_findings}
        new, tolerated = partition(report, baseline)
        assert new == [] and len(tolerated) == 1
        new, tolerated = partition(report, set())
        assert len(new) == 1 and tolerated == []

    def test_baseline_survives_line_shift(self, tmp_path):
        pkg = tmp_path / "repro" / "sim"
        pkg.mkdir(parents=True)
        target = pkg / "a.py"
        target.write_text("import time\nt = time.time()\n", encoding="utf-8")
        baseline = {
            f.fingerprint
            for f in analyze([tmp_path], root=tmp_path).all_findings
        }
        # Unrelated lines above shift the finding; fingerprint holds.
        target.write_text(
            "import time\n\n\nPAD = 1\nt = time.time()\n", encoding="utf-8"
        )
        new, tolerated = partition(
            analyze([tmp_path], root=tmp_path), baseline
        )
        assert new == [] and len(tolerated) == 1
