"""Fixture-snippet tests: each rule's positive, negative, and
suppressed cases.

Every rule gets at least one snippet it must flag, one idiomatic
snippet it must not, and one flagged snippet silenced by an inline
``# repro: allow[rule-id]`` — the three behaviors that make a linter
trustworthy enough to gate CI on.
"""

import textwrap

from repro.lint.analyzer import analyze_source


def run(rule, module, source):
    return analyze_source(textwrap.dedent(source), module, rules=[rule])


class TestNoWallclock:
    RULE = "no-wallclock-in-sim"

    def test_flags_time_time(self):
        findings = run(self.RULE, "repro.sim.foo", """
            import time

            def stamp():
                return time.time()
        """)
        assert len(findings) == 1
        assert "host clock" in findings[0].message

    def test_flags_aliased_import(self):
        findings = run(self.RULE, "repro.core.foo", """
            import time as _t

            def stamp():
                return _t.monotonic()
        """)
        assert len(findings) == 1

    def test_flags_from_time_import(self):
        findings = run(self.RULE, "repro.sim.foo", """
            from time import perf_counter
        """)
        assert len(findings) == 1

    def test_flags_global_random(self):
        findings = run(self.RULE, "repro.attacks.foo", """
            import random

            def jitter():
                return random.random()
        """)
        assert len(findings) == 1
        assert "seeded" in findings[0].message

    def test_flags_np_global_random(self):
        findings = run(self.RULE, "repro.transport.foo", """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
        """)
        assert len(findings) == 1

    def test_flags_datetime_now(self):
        findings = run(self.RULE, "repro.metrics.foo", """
            from datetime import datetime

            def when():
                return datetime.now()
        """)
        assert len(findings) == 1

    def test_allows_seeded_generators(self):
        findings = run(self.RULE, "repro.sim.foo", """
            import numpy as np
            from random import Random

            def make(seed):
                return np.random.default_rng(seed), Random(seed)
        """)
        assert findings == []

    def test_out_of_scope_module_ignored(self):
        findings = run(self.RULE, "repro.analysis.foo", """
            import time

            def stamp():
                return time.time()
        """)
        assert findings == []

    def test_inline_allow_suppresses(self):
        findings = run(self.RULE, "repro.sim.foo", """
            import time

            def stamp():
                # repro: allow[no-wallclock-in-sim] bench-only helper
                return time.time()
        """)
        assert findings == []


class TestBusGuard:
    RULE = "bus-guard"

    def test_flags_unguarded_emit(self):
        findings = run(self.RULE, "repro.sim.foo", """
            def publish(bus, ev):
                bus.emit(ev)
        """)
        assert len(findings) == 1
        assert "falsy" in findings[0].message

    def test_flags_emit_in_else_branch(self):
        findings = run(self.RULE, "repro.sim.foo", """
            def publish(self, ev):
                if self.bus:
                    pass
                else:
                    self.bus.emit(ev)
        """)
        assert len(findings) == 1

    def test_accepts_if_bus_guard(self):
        findings = run(self.RULE, "repro.sim.foo", """
            def publish(bus, ev):
                if bus:
                    bus.emit(ev)
        """)
        assert findings == []

    def test_accepts_attribute_bus_guard(self):
        findings = run(self.RULE, "repro.sim.foo", """
            def publish(self, ev):
                if self.bus and ev is not None:
                    self.bus.emit(ev)
        """)
        assert findings == []

    def test_accepts_guard_clause(self):
        findings = run(self.RULE, "repro.sim.foo", """
            def publish(bus, a, b):
                if not bus:
                    return
                bus.emit(a)
                bus.emit(b)
        """)
        assert findings == []

    def test_is_not_none_alone_is_not_a_guard(self):
        # A NullSink is not None but must still short-circuit the emit.
        findings = run(self.RULE, "repro.sim.foo", """
            def publish(bus, ev):
                if bus is not None:
                    bus.emit(ev)
        """)
        assert len(findings) == 1

    def test_non_bus_receiver_ignored(self):
        findings = run(self.RULE, "repro.sim.foo", """
            def fire(signal, ev):
                signal.emit(ev)
        """)
        assert findings == []

    def test_inline_allow_suppresses(self):
        findings = run(self.RULE, "repro.sim.foo", """
            def publish(bus, ev):
                # repro: allow[bus-guard] caller holds the guard
                bus.emit(ev)
        """)
        assert findings == []


class TestAtomicWrite:
    RULE = "atomic-write"

    def test_flags_text_mode_open(self):
        findings = run(self.RULE, "repro.campaign.foo", """
            def save(path, payload):
                with open(path, "w") as f:
                    f.write(payload)
        """)
        assert len(findings) == 1
        assert "mkstemp" in findings[0].message

    def test_flags_gzip_open_write(self):
        findings = run(self.RULE, "repro.campaign.foo", """
            import gzip

            def save(path, payload):
                with gzip.open(path, mode="wb") as f:
                    f.write(payload)
        """)
        assert len(findings) == 1

    def test_flags_write_text(self):
        findings = run(self.RULE, "repro.campaign.foo", """
            def save(path, payload):
                path.write_text(payload)
        """)
        assert len(findings) == 1

    def test_flags_non_literal_mode(self):
        findings = run(self.RULE, "repro.campaign.foo", """
            def save(path, payload, mode):
                with open(path, mode) as f:
                    f.write(payload)
        """)
        assert len(findings) == 1

    def test_read_mode_ok(self):
        findings = run(self.RULE, "repro.campaign.foo", """
            def load(path):
                with open(path) as f:
                    return f.read()

            def load_binary(path):
                with open(path, "rb") as f:
                    return f.read()
        """)
        assert findings == []

    def test_fdopen_is_blessed(self):
        # A file object over an fd is downstream of os.open/mkstemp,
        # i.e. already inside an atomic-write helper.
        findings = run(self.RULE, "repro.campaign.foo", """
            import os

            def save(fd, payload):
                with os.fdopen(fd, "wb") as f:
                    f.write(payload)
        """)
        assert findings == []

    def test_out_of_scope_module_ignored(self):
        findings = run(self.RULE, "repro.analysis.foo", """
            def save(path, payload):
                path.write_text(payload)
        """)
        assert findings == []

    def test_inline_allow_suppresses(self):
        findings = run(self.RULE, "repro.campaign.foo", """
            def save(path, payload):
                # repro: allow[atomic-write] scratch file outside the store
                path.write_text(payload)
        """)
        assert findings == []


class TestSlotsOnHotpath:
    RULE = "slots-on-hotpath"

    def test_flags_missing_slots(self):
        findings = run(self.RULE, "repro.obs.bus", """
            class _Subscription:
                def __init__(self, sink):
                    self.sink = sink
        """)
        assert len(findings) == 1
        assert "__slots__" in findings[0].message

    def test_accepts_slots(self):
        findings = run(self.RULE, "repro.obs.bus", """
            class _Subscription:
                __slots__ = ("sink",)

                def __init__(self, sink):
                    self.sink = sink
        """)
        assert findings == []

    def test_flags_renamed_roster_class(self):
        # The roster is part of the invariant: a rename must update it.
        findings = run(self.RULE, "repro.obs.bus", """
            class _Sub:
                __slots__ = ("sink",)
        """)
        assert len(findings) == 1
        assert "roster" in findings[0].message

    def test_event_dataclass_needs_slots_true(self):
        findings = run(self.RULE, "repro.obs.events", """
            from dataclasses import dataclass

            @dataclass
            class Sample:
                kind = "sample"
                time: float
        """)
        assert len(findings) == 1

    def test_event_dataclass_with_slots_true_ok(self):
        findings = run(self.RULE, "repro.obs.events", """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Sample:
                kind = "sample"
                time: float
        """)
        assert findings == []

    def test_inline_allow_suppresses(self):
        findings = run(self.RULE, "repro.obs.bus", """
            class _Subscription:  # repro: allow[slots-on-hotpath] cold path
                def __init__(self, sink):
                    self.sink = sink
        """)
        assert findings == []
