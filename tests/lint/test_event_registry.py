"""Tests for the cross-file ``event-kind-registry`` rule."""

import textwrap

from repro.lint.analyzer import ModuleSource, Project
from repro.lint.rules.events import EventKindRegistryRule, declared_events

EVENTS_OK = textwrap.dedent("""
    from dataclasses import dataclass

    @dataclass(slots=True)
    class MetricEvent:
        kind = "event"
        time: float

    @dataclass(slots=True)
    class Arrival(MetricEvent):
        kind = "arrival"

    @dataclass(slots=True)
    class Departure(MetricEvent):
        kind = "departure"

    EVENT_TYPES: dict = {cls.kind: cls for cls in (Arrival, Departure)}
""")


def project(events_text, *producers):
    sources = [ModuleSource(events_text, module="repro.obs.events")]
    for module, text in producers:
        sources.append(ModuleSource(textwrap.dedent(text), module=module))
    return Project(sources=sources)


def check(events_text, *producers):
    rule = EventKindRegistryRule()
    return sorted(
        rule.check_project(project(events_text, *producers)),
        key=lambda f: f.sort_key,
    )


class TestDeclaredEvents:
    def test_structural_discovery(self):
        src = ModuleSource(EVENTS_OK, module="repro.obs.events")
        declared, registered = declared_events(src)
        assert declared == {"Arrival": "arrival", "Departure": "departure"}
        assert registered == {"Arrival", "Departure"}


class TestRegistryChecks:
    def test_clean_registry(self):
        assert check(EVENTS_OK) == []

    def test_missing_from_event_types(self):
        text = EVENTS_OK.replace("(Arrival, Departure)", "(Arrival,)")
        findings = check(text)
        assert len(findings) == 1
        assert "Departure" in findings[0].message
        assert "EVENT_TYPES" in findings[0].message

    def test_duplicate_kind(self):
        text = EVENTS_OK.replace('kind = "departure"', 'kind = "arrival"')
        findings = check(text)
        assert any("reuses kind" in f.message for f in findings)

    def test_class_without_kind_literal(self):
        text = EVENTS_OK.replace('    kind = "departure"\n', "    pass\n")
        findings = check(text)
        assert any("no class-level `kind`" in f.message for f in findings)


class TestEmitChecks:
    def test_declared_emit_is_clean(self):
        findings = check(EVENTS_OK, ("repro.sim.prod", """
            from repro.obs.events import Arrival

            def publish(bus, now):
                if bus:
                    bus.emit(Arrival(now))
        """))
        assert findings == []

    def test_locally_defined_event_is_flagged(self):
        findings = check(EVENTS_OK, ("repro.sim.prod", """
            class RogueEvent:
                kind = "rogue"

            def publish(bus, ev):
                if bus:
                    bus.emit(RogueEvent())
        """))
        assert len(findings) == 1
        assert "RogueEvent" in findings[0].message

    def test_skips_when_events_module_absent(self):
        rule = EventKindRegistryRule()
        prod = ModuleSource(
            "def f(bus, ev):\n    bus.emit(ev)\n", module="repro.sim.prod"
        )
        assert list(rule.check_project(Project(sources=[prod]))) == []
