"""Tests for repro.analysis.aggregate."""

import pytest

from repro.analysis.aggregate import aggregate_runs, run_seeds
from repro.experiments.config import ExperimentConfig


def tiny_config():
    return ExperimentConfig(total_flows=8, n_routers=8, duration=2.8, seed=0)


@pytest.fixture(scope="module")
def three_runs():
    return run_seeds(tiny_config(), seeds=[1, 2, 3])


class TestRunSeeds:
    def test_one_run_per_seed(self, three_runs):
        assert len(three_runs) == 3
        assert [r.config.seed for r in three_runs] == [1, 2, 3]

    def test_empty_seed_list_rejected(self):
        with pytest.raises(ValueError):
            run_seeds(tiny_config(), seeds=[])


class TestAggregateRuns:
    def test_all_metrics_present(self, three_runs):
        agg = aggregate_runs(three_runs)
        assert set(agg.metrics) == {
            "accuracy",
            "traffic_reduction",
            "false_positive_rate",
            "false_negative_rate",
            "legit_drop_rate",
        }
        assert agg.n_runs == 3

    def test_mean_matches_manual(self, three_runs):
        agg = aggregate_runs(three_runs)
        manual = sum(r.summary.accuracy for r in three_runs) / 3
        assert agg["accuracy"].mean == pytest.approx(manual)

    def test_ci_brackets_mean(self, three_runs):
        agg = aggregate_runs(three_runs)
        stats = agg["accuracy"]
        assert stats.low <= stats.mean <= stats.high

    def test_wider_confidence_wider_interval(self, three_runs):
        ci95 = aggregate_runs(three_runs, confidence=0.95)["accuracy"]
        ci99 = aggregate_runs(three_runs, confidence=0.99)["accuracy"]
        assert ci99.ci_halfwidth >= ci95.ci_halfwidth

    def test_single_run_zero_halfwidth(self, three_runs):
        agg = aggregate_runs(three_runs[:1])
        assert agg["accuracy"].ci_halfwidth == 0.0
        assert agg["accuracy"].n == 1

    def test_table_rendering(self, three_runs):
        table = aggregate_runs(three_runs).as_percent_table()
        assert "accuracy" in table
        assert "n=3" in table

    def test_empty_runs_rejected(self):
        with pytest.raises(ValueError):
            aggregate_runs([])

    def test_bad_confidence_rejected(self, three_runs):
        with pytest.raises(ValueError):
            aggregate_runs(three_runs, confidence=1.5)
