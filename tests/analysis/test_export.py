"""Tests for repro.analysis.export."""

import csv
import json

from repro.analysis.export import (
    figure_to_csv,
    figure_to_dict,
    summary_to_dict,
    write_csv,
    write_json,
)
from repro.experiments.figures import FigureResult
from repro.metrics.rates import MetricsSummary


def figure():
    fig = FigureResult("fig3a", "accuracy", "Vt", "alpha")
    fig.add_point("Pd=90%", 10, 99.4)
    fig.add_point("Pd=90%", 50, 99.3)
    fig.add_point("Pd=70%", 10, 98.1)
    return fig


def summary():
    return MetricsSummary(
        accuracy=0.99, traffic_reduction=0.85,
        false_positive_rate=0.0, false_negative_rate=0.01,
        legit_drop_rate=0.03, attack_examined=100, attack_dropped=99,
        total_examined=150,
    )


class TestDictExports:
    def test_summary_round_trips_through_json(self):
        payload = summary_to_dict(summary())
        assert json.loads(json.dumps(payload)) == payload
        assert payload["accuracy"] == 0.99
        assert payload["attack_examined"] == 100

    def test_figure_dict_shape(self):
        payload = figure_to_dict(figure())
        assert payload["figure_id"] == "fig3a"
        assert payload["series"]["Pd=90%"] == [[10, 99.4], [50, 99.3]]


class TestCsvExport:
    def test_wide_rows(self):
        rows = figure_to_csv(figure())
        assert rows[0] == ["x", "Pd=90%", "Pd=70%"]
        assert rows[1] == [10, 99.4, 98.1]
        assert rows[2] == [50, 99.3, ""]  # missing cell blank

    def test_write_csv(self, tmp_path):
        target = write_csv(figure(), tmp_path / "fig.csv")
        with target.open() as f:
            rows = list(csv.reader(f))
        assert rows[0] == ["x", "Pd=90%", "Pd=70%"]
        assert len(rows) == 3

    def test_write_json(self, tmp_path):
        target = write_json(figure_to_dict(figure()), tmp_path / "fig.json")
        loaded = json.loads(target.read_text())
        assert loaded["figure_id"] == "fig3a"
