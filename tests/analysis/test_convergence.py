"""Tests for repro.analysis.convergence."""

import pytest

from repro.analysis.convergence import converged, settling_time


class TestConverged:
    def test_flat_series_converged(self):
        assert converged([5.0] * 6, window=5)

    def test_small_wiggle_converged(self):
        assert converged([10, 10.5, 9.8, 10.1, 9.9], window=5, tolerance=0.1)

    def test_large_swing_not_converged(self):
        assert not converged([10, 20, 10, 20, 10], window=5, tolerance=0.1)

    def test_too_short_not_converged(self):
        assert not converged([1.0, 1.0], window=5)

    def test_only_tail_matters(self):
        values = [100, 0, 100, 0] + [5.0] * 5
        assert converged(values, window=5)

    def test_zero_mean_requires_all_zero(self):
        assert converged([0.0] * 5, window=5)
        assert not converged([-1.0, 1.0, -1.0, 1.0, 0.0], window=5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            converged([1.0], window=1)
        with pytest.raises(ValueError):
            converged([1.0] * 5, window=5, tolerance=0.0)


class TestSettlingTime:
    def test_step_response(self):
        times = [float(i) for i in range(10)]
        values = [100.0, 90.0, 50.0, 20.0] + [10.0] * 6
        settle = settling_time(times, values, window=3, tolerance=0.1)
        assert settle is not None
        assert settle >= 3.0  # after the transient

    def test_never_settles(self):
        times = [float(i) for i in range(8)]
        values = [10.0, 100.0] * 4
        assert settling_time(times, values, window=3, tolerance=0.1) is None

    def test_immediately_settled(self):
        times = [float(i) for i in range(6)]
        assert settling_time(times, [7.0] * 6, window=3) == 0.0

    def test_short_series(self):
        assert settling_time([0.0], [1.0], window=3) is None

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            settling_time([0.0, 1.0], [1.0], window=2)

    def test_fig4b_style_usage(self):
        """Victim rate: calm, flood, cut, steady — settles post-cut."""
        times = [i * 0.1 for i in range(30)]
        values = (
            [100.0] * 10  # calm
            + [500.0, 900.0, 1000.0, 1000.0, 950.0]  # flood
            + [200.0, 120.0]  # the cut
            + [100.0] * 13  # steady again
        )
        settle = settling_time(times, values, window=5, tolerance=0.2)
        assert settle is not None
        assert settle >= 1.5
