"""Tests for repro.analysis.tracetools."""

import pytest

from repro.analysis.tracetools import (
    atr_activity,
    drop_reason_timeline,
    latency_stats,
    probe_to_verdict_latencies,
)
from repro.sim.trace import EventTrace


def synthetic_trace():
    trace = EventTrace()
    trace.record(1.0, "pushback.start", atr="ingress0")
    trace.record(1.1, "probe.sent", flow=7, atr="ingress0")
    trace.record(1.1, "drop.probe", flow=7, atr="ingress0")
    trace.record(1.2, "probe.sent", flow=9, atr="ingress0")
    trace.record(1.2, "drop.probe", flow=9, atr="ingress0")
    trace.record(1.5, "flow.nice", flow=7, atr="ingress0")
    trace.record(1.6, "flow.cut", flow=9, atr="ingress0")
    trace.record(2.0, "drop.pdt", flow=9, atr="ingress0")
    trace.record(2.3, "drop.pdt", flow=9, atr="ingress0")
    trace.record(3.0, "pushback.stop", atr="ingress0")
    return trace


class TestProbeLatencies:
    def test_pairs_probe_with_verdict(self):
        latencies = probe_to_verdict_latencies(synthetic_trace())
        by_flow = {item.flow: item for item in latencies}
        assert by_flow[7].latency == pytest.approx(0.4)
        assert by_flow[7].verdict == "nice"
        assert by_flow[9].latency == pytest.approx(0.4)
        assert by_flow[9].verdict == "cut"

    def test_verdict_without_probe_ignored(self):
        trace = EventTrace()
        trace.record(1.0, "flow.cut", flow=1, atr="a")
        assert probe_to_verdict_latencies(trace) == []

    def test_only_first_verdict_counts(self):
        trace = EventTrace()
        trace.record(1.0, "probe.sent", flow=1, atr="a")
        trace.record(1.5, "flow.nice", flow=1, atr="a")
        trace.record(2.5, "flow.cut", flow=1, atr="a")
        latencies = probe_to_verdict_latencies(trace)
        assert len(latencies) == 1
        assert latencies[0].verdict == "nice"

    def test_stats_fold(self):
        stats = latency_stats(probe_to_verdict_latencies(synthetic_trace()))
        assert stats.count == 2
        assert stats.mean == pytest.approx(0.4)

    def test_real_run_latencies_near_probe_window(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        run = run_experiment(
            ExperimentConfig(total_flows=10, n_routers=10, duration=3.0,
                             seed=93)
        )
        latencies = probe_to_verdict_latencies(run.scenario.trace)
        assert latencies
        window = run.config.mafic.probe_window(None)
        for item in latencies:
            assert 0 < item.latency <= 2.5 * window


class TestAtrActivity:
    def test_summary_fields(self):
        activity = atr_activity(synthetic_trace())
        item = activity["ingress0"]
        assert item.activated_at == 1.0
        assert item.deactivated_at == 3.0
        assert item.probes == 2
        assert item.verdicts_nice == 1
        assert item.verdicts_cut == 1
        assert item.drops_by_reason == {"probe": 2, "pdt": 2}

    def test_empty_trace(self):
        assert atr_activity(EventTrace()) == {}


class TestDropTimeline:
    def test_bins_counts_by_reason(self):
        timeline = drop_reason_timeline(synthetic_trace(), bin_width=1.0)
        assert timeline["probe"] == [(1.5, 2)]
        assert timeline["pdt"] == [(2.5, 2)]

    def test_bad_bin_width(self):
        with pytest.raises(ValueError):
            drop_reason_timeline(EventTrace(), bin_width=0)
