"""Figure 4: responsiveness of flow cutting.

(a) traffic reduction rate vs traffic volume under Pd in {70, 80, 90}%;
(b) victim-arrival bandwidth vs time for Vt in {10, 30, 50}.

Paper shape: the victim's arrival rate collapses within ~2 x RTT of the
trigger; reduction tracks Pd (the paper reports ~95/85/80% for
Pd = 90/80/70%); after the cut, legitimate flows regain bandwidth.
"""

from conftest import run_once, series_mean

from repro.experiments.figures import fig4a, fig4b
from repro.experiments.reporting import format_figure


class TestFig4a:
    def test_fig4a(self, benchmark, scale):
        figure = run_once(benchmark, fig4a, scale=scale)
        print()
        print(format_figure(figure))

        # Reduction tracks Pd.
        assert (
            series_mean(figure, "Pd=90%")
            > series_mean(figure, "Pd=80%")
            > series_mean(figure, "Pd=70%")
        )
        # All series show a substantial cut.  The paper's band is
        # 70-100%; ours sits lower because our workload's legitimate-TCP
        # share of the flood peak is larger (recovered TCP raises the
        # post-cut floor) — see EXPERIMENTS.md.
        for name in figure.series:
            assert all(50.0 <= y <= 100.0 for y in figure.ys(name)), name
        # Pd=90% stays in the paper's band.
        assert all(y >= 70.0 for y in figure.ys("Pd=90%"))


class TestFig4b:
    def test_fig4b(self, benchmark, scale):
        figure = run_once(benchmark, fig4b, scale=scale)
        print()
        # The full time series is long; print a decimated view.
        for name, points in figure.series.items():
            decimated = points[:: max(1, len(points) // 24)]
            print(f"# fig4b series {name}")
            for t, kbps in decimated:
                print(f"  {t:6.2f}s {kbps:10.1f} kbps")

        for name, runs in figure.runs.items():
            run = runs[0]
            t0 = run.activation_time
            assert t0 is not None, f"{name}: defence never engaged"
            series = run.series
            peak = series.mean_total_kbps(t0 - 0.3, t0)
            dip = series.mean_total_kbps(t0 + 0.1, t0 + 0.4)
            late = series.mean_total_kbps(
                run.config.duration - 0.6, run.config.duration
            )
            # The cut: arrival collapses right after the trigger...
            assert dip < 0.55 * peak, name
            # ...and stays below the flood peak while nice TCP returns.
            assert late < peak, name
            assert late > 0, name
