"""Figure 7: legitimate-packet dropping rate (Lr).

Lr vs traffic volume under Pd in {70, 80, 90}%.

Paper shape: even at high Pd the probing cost on well-behaved flows is
small — the published curves sit under ~3% and flatten toward ~1% as
volume grows.  Our substrate's Lr scales with RTT / active-time (see
EXPERIMENTS.md), landing in the same few-percent band.
"""

from conftest import run_once

from repro.experiments.figures import fig7
from repro.experiments.reporting import format_figure


class TestFig7:
    def test_fig7(self, benchmark, scale):
        figure = run_once(benchmark, fig7, scale=scale)
        print()
        print(format_figure(figure))

        for name in figure.series:
            ys = figure.ys(name)
            # The collateral band: a few percent, never runaway.
            assert all(0.0 <= y < 8.0 for y in ys), name
            # Stability claim: Lr does not blow up with traffic volume
            # (paper: converges as Vt grows).
            assert ys[-1] < ys[0] + 3.0, name

        # All three Pd series live in the same band: the probing cost is
        # dominated by the one-window probe, not by Pd itself.
        means = {
            name: sum(figure.ys(name)) / len(figure.ys(name))
            for name in figure.series
        }
        assert max(means.values()) - min(means.values()) < 3.0
