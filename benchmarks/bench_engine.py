#!/usr/bin/env python3
"""Engine hot-path benchmark: legacy vs overhauled vs compiled core.

Runs the standard Table-II scenario (``paper_default``) under three
engine formulations and proves they are **bit-identical** before
reporting any speedup:

* ``legacy``   — the pre-PR-4 formulation: heap queue, no packet pool,
  unbatched source ticks, no cross-layer caches (``repro.perf.legacy_mode``).
  A few structural changes (slotted Packet/FlowKey, precomputed subnet
  masks, bytearray sketch registers) cannot be toggled back, so the
  measured baseline still *understates* the true pre-PR cost — the
  reported speedup is conservative.
* ``overhauled`` — the defaults: heap queue + packet pool + batched
  sources + caches + lazy timers + pooled events.
* ``overhauled-calendar`` — the same with the calendar-queue backend.

The three modes are measured under whichever engine core is active
(the compiled C extension ``repro.sim._corec`` when built, else the
pure-Python engine).  When the compiled core is active, the script
re-runs the same measurement in a ``REPRO_NO_COMPILED=1`` subprocess to
record the pure-Python walls alongside, and asserts the two builds'
result fingerprints are bit-identical — the cross-build parity claim,
measured, not assumed.

A final row runs the ``huge-topology`` preset (8x the Table-II
population, streaming victim collector, tracing off) in a fresh
subprocess and records its wall time and peak RSS — the bounded-memory
proof-point.

Measurements are interleaved round-robin (min over rounds) so machine
drift cancels, and the result is written to ``BENCH_engine.json`` at the
repo root.

``--check`` is the CI mode (``engine-perf-smoke``): a tiny scenario,
asserting the cross-mode *invariants* — identical metric summaries,
identical event counts, pool accounting sane — and never wall time.
``--expect-impl compiled|pure`` makes the run fail loudly when the
active engine core is not the one the CI job built for, so a broken
extension build can't silently test the fallback twice.

Run:  PYTHONPATH=src python benchmarks/bench_engine.py [--rounds N] [--check]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.experiments.presets import paper_default
from repro.experiments.runner import run_experiment
from repro.perf import engine_mode
from repro.sim._core import core_info
from repro.sim.packet import packet_pool_stats

REPO_ROOT = Path(__file__).resolve().parent.parent

MODES = {
    "legacy": dict(
        queue="heap", packet_pool=False, batched_sources=False,
        hot_path_caches=False, lazy_timers=False, event_pool=False,
    ),
    "overhauled": dict(
        queue="heap", packet_pool=True, batched_sources=True,
        hot_path_caches=True, lazy_timers=True, event_pool=True,
    ),
    "overhauled-calendar": dict(
        queue="calendar", packet_pool=True, batched_sources=True,
        hot_path_caches=True, lazy_timers=True, event_pool=True,
    ),
}


def _fingerprint(result) -> dict:
    """Everything that must be bit-identical across engine modes."""
    summary = dataclasses.asdict(result.summary)
    return {
        "summary": {
            key: (value.hex() if isinstance(value, float) else value)
            for key, value in summary.items()
        },
        "events_executed": result.events_executed,
        "identified_atrs": sorted(result.identified_atrs),
        "activation_time": (
            None if result.activation_time is None else result.activation_time.hex()
        ),
    }


def _measure(config, rounds: int):
    """Interleaved min-wall measurement of every mode; parity-checked."""
    walls = {name: float("inf") for name in MODES}
    fingerprints: dict[str, dict] = {}
    details: dict[str, dict] = {}
    run_experiment(config)  # warm imports/caches outside the clock
    for _ in range(rounds):
        for name, flags in MODES.items():
            with engine_mode(**flags):
                started = time.perf_counter()
                result = run_experiment(config)
                wall = time.perf_counter() - started
                pool = packet_pool_stats()
            walls[name] = min(walls[name], wall)
            fingerprints[name] = _fingerprint(result)
            details[name] = {
                "queue_stats": result.scenario.sim.queue_stats(),
                "pool": {
                    "allocated": pool["allocated"],
                    "reused": pool["reused"],
                    "released": pool["released"],
                },
            }
    reference = fingerprints["legacy"]
    mismatched = [
        name for name, fp in fingerprints.items() if fp != reference
    ]
    return walls, fingerprints, details, mismatched


def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _measure_pure_build(seed: int, rounds: int) -> dict:
    """The same measurement in a REPRO_NO_COMPILED=1 subprocess."""
    env = _subprocess_env()
    env["REPRO_NO_COMPILED"] = "1"
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--subprocess-json",
         "--seed", str(seed), "--rounds", str(rounds)],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout)


def _measure_huge(streaming: bool) -> dict:
    """One huge-topology run in a fresh subprocess (clean peak-RSS)."""
    env = _subprocess_env()
    script = (
        "import json, resource, sys\n"
        "from dataclasses import replace\n"
        "from repro.experiments.presets import get_preset\n"
        "from repro.experiments.runner import run_experiment\n"
        "from repro.sim._core import core_info\n"
        f"cfg = replace(get_preset('huge-topology'), streaming_series={streaming})\n"
        "res = run_experiment(cfg)\n"
        "peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024\n"
        "json.dump({'events_executed': res.events_executed,\n"
        "           'wall_seconds': round(res.wall_seconds, 3),\n"
        "           'peak_rss_mib': round(peak, 1),\n"
        "           'collector': type(res.scenario.victim_collector).__name__,\n"
        "           'engine': core_info()['impl']}, sys.stdout)\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", script],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved measurement rounds (min wall wins)")
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: tiny scenario, assert invariants "
                        "(identical results, sane pool), never wall time")
    parser.add_argument("--expect-impl", choices=["compiled", "pure"],
                        help="fail unless this engine core is the active one")
    parser.add_argument("--subprocess-json", action="store_true",
                        help=argparse.SUPPRESS)  # internal: emit walls as JSON
    parser.add_argument("--skip-huge", action="store_true",
                        help="omit the huge-topology row (quick re-record)")
    parser.add_argument(
        "--out", type=str,
        default=str(REPO_ROOT / "BENCH_engine.json"),
    )
    args = parser.parse_args()

    info = core_info()
    if args.expect_impl and info["impl"] != args.expect_impl:
        print(f"FATAL: expected the {args.expect_impl!r} engine core but "
              f"{info['impl']!r} is active ({info['module']}); "
              "a broken build would silently test the wrong engine")
        return 1

    config = paper_default().with_overrides(seed=args.seed)
    if args.check:
        config = config.with_overrides(
            total_flows=10, n_routers=8, duration=2.0
        )
        rounds = 1
    else:
        rounds = args.rounds

    walls, fingerprints, details, mismatched = _measure(config, rounds)

    if mismatched:
        for name in mismatched:
            print(f"FATAL: mode {name!r} diverged from legacy results")
        return 1

    if args.subprocess_json:
        json.dump({
            "engine": info,
            "walls": walls,
            "fingerprints": fingerprints,
        }, sys.stdout)
        return 0

    print(f"engine core: {info['impl']} ({info['module']})")
    print("all engine modes bit-identical "
          f"(events={fingerprints['legacy']['events_executed']})")

    if args.check:
        # Invariants only — the whole point is that CI never gates on
        # wall time.  Explicit checks, not asserts: the job must still
        # gate under python -O / PYTHONOPTIMIZE.
        pool = details["overhauled"]["pool"]
        stats = details["overhauled"]["queue_stats"]
        failures = []
        if pool["released"] <= 0:
            failures.append("pool never released a packet")
        if pool["reused"] <= 0:
            failures.append("pool never recycled a packet")
        if details["overhauled-calendar"]["queue_stats"]["backend"] != "calendar":
            failures.append("calendar mode did not run on the calendar backend")
        if stats["live"] < 0:
            failures.append("negative live-event count")
        if stats["event_pool_reused"] <= 0:
            failures.append("event free-list never recycled a handle")
        if failures:
            for failure in failures:
                print(f"FATAL: {failure}")
            return 1
        print("engine-perf-smoke invariants hold "
              f"(pool reused {pool['reused']} packets, event free-list "
              f"reused {stats['event_pool_reused']} handles; event counts "
              "and summaries identical under heap and calendar)")
        return 0

    record = {
        "benchmark": "engine_hot_path_compiled_core",
        "scenario": "paper_default (Table II)",
        "seed": args.seed,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "engine": info,
        "events_executed": fingerprints["legacy"]["events_executed"],
        "bit_identical_across_modes": True,
        "wall_seconds": {name: round(wall, 4) for name, wall in walls.items()},
        "speedup_vs_legacy": round(walls["legacy"] / walls["overhauled"], 3),
        "queue": {
            name: detail["queue_stats"] for name, detail in details.items()
        },
        "packet_pool": details["overhauled"]["pool"],
    }

    if info["impl"] == "compiled":
        print("measuring the pure-Python build (REPRO_NO_COMPILED=1)...")
        pure = _measure_pure_build(args.seed, rounds)
        if pure["fingerprints"] != fingerprints:
            print("FATAL: pure-Python build results diverged from compiled")
            return 1
        record["bit_identical_across_builds"] = True
        record["wall_seconds_pure"] = {
            name: round(wall, 4) for name, wall in pure["walls"].items()
        }
        record["speedup_compiled_vs_pure"] = round(
            pure["walls"]["overhauled"] / walls["overhauled"], 3
        )
        record["speedup_vs_pure_legacy"] = round(
            pure["walls"]["legacy"] / walls["overhauled"], 3
        )
        print("  pure and compiled builds bit-identical")

    if not args.skip_huge:
        print("running huge-topology (streaming + buffered memory rows)...")
        huge = _measure_huge(streaming=True)
        huge["buffered_peak_rss_mib"] = _measure_huge(streaming=False)[
            "peak_rss_mib"
        ]
        record["huge_topology"] = huge

    record["note"] = (
        "legacy mode cannot un-toggle the structural changes (slotted "
        "packets, precomputed masks, bytearray sketch registers), so "
        "the baseline understates the true pre-PR cost and the "
        "speedup is conservative.  The heap stays the default queue "
        "by measurement: even with both backends compiled, the heap's "
        "overhauled wall beats the calendar wheel's at every pending-"
        "set size these scenarios reach (see wall_seconds), so the "
        "calendar backend remains the proven-bit-exact opt-in for "
        "wider-horizon schedules.  huge_topology is the bounded-memory "
        "row: 8x the Table-II population under the streaming collector; "
        "buffered_peak_rss_mib is the same run with the buffered "
        "collector for comparison."
    )

    Path(args.out).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    for name, wall in walls.items():
        print(f"  {name:22s} {wall:.3f}s")
    if "wall_seconds_pure" in record:
        for name, wall in record["wall_seconds_pure"].items():
            print(f"  {name + ' (pure)':22s} {wall:.3f}s")
        print(f"speedup (compiled vs pure, overhauled): "
              f"{record['speedup_compiled_vs_pure']:.2f}x")
        print(f"speedup (compiled overhauled vs pure legacy): "
              f"{record['speedup_vs_pure_legacy']:.2f}x")
    if "huge_topology" in record:
        huge = record["huge_topology"]
        print(f"  huge-topology          {huge['wall_seconds']:.3f}s  "
              f"({huge['events_executed']} events, "
              f"{huge['peak_rss_mib']:.0f} MiB peak RSS streaming, "
              f"{huge['buffered_peak_rss_mib']:.0f} MiB buffered)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
