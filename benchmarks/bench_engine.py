#!/usr/bin/env python3
"""Engine hot-path benchmark: pre-overhaul vs overhauled, same process.

Runs the standard Table-II scenario (``paper_default``) under three
engine formulations and proves they are **bit-identical** before
reporting any speedup:

* ``legacy``   — the pre-PR-4 formulation: heap queue, no packet pool,
  unbatched source ticks, no cross-layer caches (``repro.perf.legacy_mode``).
  A few structural changes (slotted Packet/FlowKey, precomputed subnet
  masks, bytearray sketch registers) cannot be toggled back, so the
  measured baseline still *understates* the true pre-PR cost — the
  reported speedup is conservative.
* ``overhauled`` — the defaults: heap queue + packet pool + batched
  sources + caches.
* ``overhauled-calendar`` — the same with the calendar-queue backend.

Measurements are interleaved round-robin (min over rounds) so machine
drift cancels, and the result is written to ``BENCH_engine.json`` at the
repo root: wall times, events executed, peak queue occupancy per
backend, packet-pool reuse counters, and the speedup.

``--check`` is the CI mode (``engine-perf-smoke``): a tiny scenario,
asserting the cross-mode *invariants* — identical metric summaries,
identical event counts, pool accounting sane — and never wall time.

Run:  PYTHONPATH=src python benchmarks/bench_engine.py [--rounds N] [--check]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import time
from pathlib import Path

from repro.experiments.presets import paper_default
from repro.experiments.runner import run_experiment
from repro.perf import engine_mode
from repro.sim.packet import packet_pool_stats

MODES = {
    "legacy": dict(
        queue="heap", packet_pool=False, batched_sources=False,
        hot_path_caches=False,
    ),
    "overhauled": dict(
        queue="heap", packet_pool=True, batched_sources=True,
        hot_path_caches=True,
    ),
    "overhauled-calendar": dict(
        queue="calendar", packet_pool=True, batched_sources=True,
        hot_path_caches=True,
    ),
}


def _fingerprint(result) -> dict:
    """Everything that must be bit-identical across engine modes."""
    summary = dataclasses.asdict(result.summary)
    return {
        "summary": {
            key: (value.hex() if isinstance(value, float) else value)
            for key, value in summary.items()
        },
        "events_executed": result.events_executed,
        "identified_atrs": sorted(result.identified_atrs),
        "activation_time": (
            None if result.activation_time is None else result.activation_time.hex()
        ),
    }


def _measure(config, rounds: int):
    """Interleaved min-wall measurement of every mode; parity-checked."""
    walls = {name: float("inf") for name in MODES}
    fingerprints: dict[str, dict] = {}
    details: dict[str, dict] = {}
    run_experiment(config)  # warm imports/caches outside the clock
    for _ in range(rounds):
        for name, flags in MODES.items():
            with engine_mode(**flags):
                started = time.perf_counter()
                result = run_experiment(config)
                wall = time.perf_counter() - started
                pool = packet_pool_stats()
            walls[name] = min(walls[name], wall)
            fingerprints[name] = _fingerprint(result)
            details[name] = {
                "queue_stats": result.scenario.sim.queue_stats(),
                "pool": {
                    "allocated": pool["allocated"],
                    "reused": pool["reused"],
                    "released": pool["released"],
                },
            }
    reference = fingerprints["legacy"]
    mismatched = [
        name for name, fp in fingerprints.items() if fp != reference
    ]
    return walls, fingerprints, details, mismatched


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved measurement rounds (min wall wins)")
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: tiny scenario, assert invariants "
                        "(identical results, sane pool), never wall time")
    parser.add_argument(
        "--out", type=str,
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
    )
    args = parser.parse_args()

    config = paper_default().with_overrides(seed=args.seed)
    if args.check:
        config = config.with_overrides(
            total_flows=10, n_routers=8, duration=2.0
        )
        rounds = 1
    else:
        rounds = args.rounds

    walls, fingerprints, details, mismatched = _measure(config, rounds)

    if mismatched:
        for name in mismatched:
            print(f"FATAL: mode {name!r} diverged from legacy results")
        return 1
    print("all engine modes bit-identical "
          f"(events={fingerprints['legacy']['events_executed']})")

    if args.check:
        # Invariants only — the whole point is that CI never gates on
        # wall time.  Explicit checks, not asserts: the job must still
        # gate under python -O / PYTHONOPTIMIZE.
        pool = details["overhauled"]["pool"]
        failures = []
        if pool["released"] <= 0:
            failures.append("pool never released a packet")
        if pool["reused"] <= 0:
            failures.append("pool never recycled a packet")
        if details["overhauled-calendar"]["queue_stats"]["backend"] != "calendar":
            failures.append("calendar mode did not run on the calendar backend")
        if details["overhauled"]["queue_stats"]["live"] < 0:
            failures.append("negative live-event count")
        if failures:
            for failure in failures:
                print(f"FATAL: {failure}")
            return 1
        print("engine-perf-smoke invariants hold "
              f"(pool reused {pool['reused']} packets; "
              "event counts and summaries identical under heap and calendar)")
        return 0

    speedup = walls["legacy"] / walls["overhauled"]
    record = {
        "benchmark": "engine_hot_path_overhaul",
        "scenario": "paper_default (Table II)",
        "seed": args.seed,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "events_executed": fingerprints["legacy"]["events_executed"],
        "bit_identical_across_modes": True,
        "wall_seconds": {name: round(wall, 4) for name, wall in walls.items()},
        "speedup_vs_legacy": round(speedup, 3),
        "speedup_vs_legacy_calendar": round(
            walls["legacy"] / walls["overhauled-calendar"], 3
        ),
        "queue": {
            name: detail["queue_stats"] for name, detail in details.items()
        },
        "packet_pool": details["overhauled"]["pool"],
        "note": (
            "legacy mode cannot un-toggle the structural changes (slotted "
            "packets, precomputed masks, bytearray sketch registers), so "
            "the baseline understates the true pre-PR cost and the "
            "speedup is conservative.  The calendar backend is proven "
            "bit-exact but stays opt-in: C-compiled heapq beats the "
            "pure-Python wheel at every pending-set size these scenarios "
            "reach."
        ),
    }
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    for name, wall in walls.items():
        print(f"  {name:22s} {wall:.3f}s")
    print(f"speedup (overhauled vs legacy, same run): {speedup:.2f}x")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
