"""Ablation: RFC 2827 ingress filtering vs MAFIC.

The paper assumes ingress filtering is not deployed (Section I) — that
assumption is why spoofed-source probing is needed at all.  This bench
ablates it: with filtering on, cross-subnet spoofing dies at the edge,
but a zombie spoofing *within* its own subnet (or not spoofing) still
floods, so MAFIC remains necessary; with filtering off, MAFIC alone
carries the defence.
"""

from conftest import run_once

from repro.attacks.spoofing import SpoofMode, SpoofingModel
from repro.experiments.config import DefenseKind, ExperimentConfig
from repro.experiments.runner import run_experiment


def _run_grid():
    results = {}
    for filtering in (False, True):
        for defense in (DefenseKind.NONE, DefenseKind.MAFIC):
            config = ExperimentConfig(
                total_flows=24,
                n_routers=12,
                seed=171,
                ingress_filtering=filtering,
                defense=defense,
                spoofing=SpoofingModel(mode=SpoofMode.LEGIT_SUBNET),
            )
            results[(filtering, defense)] = run_experiment(config)
    return results


class TestFilteringAblation:
    def test_filtering_grid(self, benchmark):
        results = run_once(benchmark, _run_grid)
        print()
        print(f"{'filtering':>10} {'defence':>8} {'atk@victim':>11} {'alpha%':>8}")
        for (filtering, defense), run in results.items():
            attack, _ = run.scenario.victim_collector.arrivals_in(
                run.config.attack_start, run.config.duration
            )
            print(
                f"{str(filtering):>10} {defense.value:>8} {attack:>11} "
                f"{100 * run.summary.accuracy:>8.2f}"
            )

        undefended = results[(False, DefenseKind.NONE)]
        filtered_only = results[(True, DefenseKind.NONE)]
        mafic_only = results[(False, DefenseKind.MAFIC)]

        def attack_at_victim(run):
            attack, _ = run.scenario.victim_collector.arrivals_in(
                run.config.attack_start, run.config.duration
            )
            return attack

        # Cross-subnet spoofing: filtering alone kills most of the flood
        # at the edge (the paper's "if only it were deployed" case).
        assert attack_at_victim(filtered_only) < 0.2 * attack_at_victim(
            undefended
        )
        # MAFIC achieves comparable suppression WITHOUT assuming
        # deployment — the paper's raison d'etre.
        assert attack_at_victim(mafic_only) < 0.2 * attack_at_victim(
            undefended
        )
