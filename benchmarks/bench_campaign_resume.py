#!/usr/bin/env python3
"""Measure warm-cache campaign resume cost and record it as BENCH_*.json.

Runs a small two-axis, multi-seed campaign cold (every run executes),
then "resumes" the complete campaign twice more: once through
``run_campaign`` (plan + skip every cached hash) and once through the
report path (load + aggregate every artifact).  The point of the
numbers: a finished campaign costs milliseconds to re-enter, so
repeating a 10,000-run grid after a crash — or after adding one axis
point — only ever pays for the missing cells.

Run:  PYTHONPATH=src python benchmarks/bench_campaign_resume.py [--runs N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.campaign import (
    CampaignSpec,
    campaign_report,
    run_campaign,
)


def build_spec(n_points: int, n_seeds: int) -> CampaignSpec:
    """A tiny grid: n_points attack intensities x n_seeds seeds."""
    values = tuple(
        round(0.2 + 0.6 * i / max(1, n_points - 1), 4) for i in range(n_points)
    )
    return CampaignSpec(
        name="bench-resume",
        seeds=tuple(range(1, n_seeds + 1)),
        base={
            "total_flows": 10,
            "n_routers": 6,
            "duration": 1.5,
            "attack_start": 1.05,
            "topology": "star",
        },
        axes=({"field": "attack_fraction", "values": values},),
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=4)
    parser.add_argument("--seeds", type=int, default=3)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument(
        "--out",
        type=str,
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_campaign_resume.json"
        ),
    )
    args = parser.parse_args()

    spec = build_spec(args.points, args.seeds)
    n_runs = len(spec.plan())
    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as root:
        print(f"cold: {n_runs} runs...")
        cold = run_campaign(spec, root=root, jobs=args.jobs)
        assert cold.executed == n_runs, "cold run must execute everything"
        print(f"  {cold.wall_seconds:.2f}s wall")

        print("warm resume (all artifacts present)...")
        warm = run_campaign(spec, root=root, jobs=args.jobs)
        assert warm.executed == 0, "warm resume must execute nothing"
        print(f"  {warm.wall_seconds * 1e3:.1f}ms wall")

        started = time.perf_counter()
        report = campaign_report(spec, root)
        report_seconds = time.perf_counter() - started
        assert report["complete"] == n_runs
        print(f"report over {n_runs} artifacts: {report_seconds * 1e3:.1f}ms")

    speedup = cold.wall_seconds / max(1e-9, warm.wall_seconds)
    record = {
        "benchmark": "campaign_warm_resume",
        "runs": n_runs,
        "axis_points": args.points,
        "seeds": args.seeds,
        "jobs": cold.jobs,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cold_wall_seconds": round(cold.wall_seconds, 3),
        "warm_resume_wall_seconds": round(warm.wall_seconds, 4),
        "report_wall_seconds": round(report_seconds, 4),
        "warm_speedup": round(speedup, 1),
        "warm_executed_runs": warm.executed,
    }
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(f"\nwarm resume {speedup:.0f}x cheaper than cold execution")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
