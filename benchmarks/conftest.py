"""Shared benchmark configuration.

Every benchmark regenerates one figure of the paper's evaluation and
prints the same series the published plot shows (captured in
``bench_output.txt`` when tee'd).

Environment knobs:

``REPRO_BENCH_SCALE``
    Sweep-resolution factor in (0, 1]; smaller thins the sweep axes and
    trades fidelity for wall time.  Default 0.5; 1.0 = the full
    published axes.
``REPRO_BENCH_JOBS``
    Worker-process count for benchmarks that fan multi-seed batches out
    via :mod:`repro.experiments.parallel`.  Default: one per CPU; set to
    1 to force the serial path (per-seed results are identical either
    way).
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> float:
    """Sweep-resolution factor for this benchmark session."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))


def bench_jobs() -> int:
    """Worker-process count for parallel-batch benchmarks."""
    value = os.environ.get("REPRO_BENCH_JOBS")
    if value is not None:
        return max(1, int(value))
    from repro.experiments.parallel import default_jobs

    return default_jobs()


@pytest.fixture
def scale() -> float:
    return bench_scale()


@pytest.fixture
def jobs() -> int:
    return bench_jobs()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Figure sweeps are minutes-scale; statistical repetition belongs to
    the simulator's own determinism, not to repeated sweeps.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def monotone_non_increasing(values, slack=0.0):
    """True when the sequence never rises by more than ``slack``."""
    return all(b <= a + slack for a, b in zip(values, values[1:]))


def series_mean(figure, name):
    """Mean y of one series."""
    ys = figure.ys(name)
    return sum(ys) / len(ys)
