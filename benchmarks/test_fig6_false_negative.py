"""Figure 6: false negative rate (theta_n).

(a) theta_n vs traffic volume under Pd in {70, 80, 90}%;
(b) theta_n vs TCP share for Vt in {30, 70, 100};
(c) theta_n vs domain size N for TCP share in {35, 55, 75, 95}%.

Paper shape: theta_n is small (sub-1% at Pd = 90% on the default axis,
a few percent at lower Pd), and decreases as Pd rises — the leakage is
the (1 - Pd) slip-through during the 2 x RTT probing phase.
"""

from conftest import run_once, series_mean

from repro.experiments.figures import fig6a, fig6b, fig6c
from repro.experiments.reporting import format_figure


class TestFig6a:
    def test_fig6a(self, benchmark, scale):
        figure = run_once(benchmark, fig6a, scale=scale)
        print()
        print(format_figure(figure))
        # Leakage shrinks as Pd grows.
        assert (
            series_mean(figure, "Pd=90%")
            < series_mean(figure, "Pd=80%")
            < series_mean(figure, "Pd=70%")
        )
        # Pd=90% stays around the paper's sub-1% band.
        assert all(y < 1.5 for y in figure.ys("Pd=90%"))
        # Everything bounded by a few percent.
        for name in figure.series:
            assert all(0.0 <= y < 6.0 for y in figure.ys(name)), name


class TestFig6b:
    def test_fig6b(self, benchmark, scale):
        figure = run_once(benchmark, fig6b, scale=scale)
        print()
        print(format_figure(figure))
        # Paper's Fig 6(b) tops out around 4%.
        for name in figure.series:
            assert all(0.0 <= y < 6.0 for y in figure.ys(name)), name


class TestFig6c:
    def test_fig6c(self, benchmark, scale):
        figure = run_once(benchmark, fig6c, scale=scale)
        print()
        print(format_figure(figure))
        # Domain size does not break detection: bounded everywhere.
        for name in figure.series:
            assert all(0.0 <= y < 6.0 for y in figure.ys(name)), name
