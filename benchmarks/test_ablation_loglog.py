"""Ablation: LogLog sketch precision vs ATR identification.

The set-union counting substrate (Section II) trades memory for
estimation error: ``m = 2**k`` byte registers per sketch with relative
error ~ 1.30 / sqrt(m).  This bench sweeps k and shows where ATR
identification degrades — the justification for the default precision.
"""

from conftest import run_once

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

K_VALUES = [5, 8, 11]


def _sweep():
    results = {}
    for k in K_VALUES:
        config = ExperimentConfig(
            total_flows=24, n_routers=12, seed=151, loglog_k=k
        )
        results[k] = run_experiment(config)
    return results


class TestLogLogAblation:
    def test_sketch_precision_sweep(self, benchmark):
        results = run_once(benchmark, _sweep)
        print()
        print(
            f"{'k':>3} {'registers':>10} {'rel.err%':>9} "
            f"{'recall%':>8} {'precision%':>11} {'alpha%':>8}"
        )
        for k, run in results.items():
            error = 130.0 / (2**k) ** 0.5
            print(
                f"{k:>3} {2**k:>10} {error:>9.1f} "
                f"{100 * run.atr_recall:>8.0f} "
                f"{100 * run.atr_precision:>11.0f} "
                f"{100 * run.summary.accuracy:>8.2f}"
            )

        # The default precision identifies (essentially) every true ATR.
        assert results[11].atr_recall >= 0.9
        # Identification quality is monotone-ish in precision: the
        # default never does worse than the coarsest sketch.
        assert results[11].atr_recall >= results[5].atr_recall
        # Even coarse sketches keep the defence functional once
        # activated — accuracy is driven by probing, not by the sketch.
        for k, run in results.items():
            if run.activation_time is not None:
                assert run.summary.accuracy > 0.95, k
