"""Microbenchmarks of the hot substrate paths.

Not figures from the paper — these track the simulator's own cost so
regressions in the event loop, the sketches, or the agent's per-packet
path show up in CI.
"""

import numpy as np

from repro.core.config import MaficConfig
from repro.core.mafic import MaficAgent
from repro.counting.loglog import LogLogCounter
from repro.sim.engine import Simulator
from repro.sim.node import Router
from repro.sim.packet import FlowKey, Packet


class TestEngineThroughput:
    def test_event_loop(self, benchmark):
        def spin():
            sim = Simulator()

            def tick(remaining):
                if remaining:
                    sim.schedule(0.001, tick, remaining - 1)

            tick(20_000)
            sim.run()
            return sim.events_executed

        executed = benchmark(spin)
        assert executed == 20_000


class TestLogLogThroughput:
    def test_insert_rate(self, benchmark):
        counter = LogLogCounter(k=11)

        def insert():
            for i in range(5_000):
                counter.add(i)
            return counter.estimate()

        estimate = benchmark(insert)
        assert estimate > 0

    def test_union_transform(self, benchmark):
        a, b = LogLogCounter(k=11), LogLogCounter(k=11)
        for i in range(5_000):
            a.add(i)
            b.add(i + 2_500)

        result = benchmark(lambda: a.intersection_estimate(b))
        assert result > 0


class TestAgentDataPath:
    def test_per_packet_decision(self, benchmark):
        sim = Simulator()
        agent = MaficAgent(
            sim,
            Router(sim, "atr"),
            victim_matcher=lambda ip: True,
            config=MaficConfig(drop_probability=0.5),
            rng=np.random.default_rng(0),
        )
        agent.activate(0.0)
        packets = [
            Packet(flow=FlowKey(i % 50, 1, i % 1000, 80), seq=i)
            for i in range(2_000)
        ]

        def drive():
            decisions = 0
            for i, packet in enumerate(packets):
                agent.on_packet(packet, None, i * 1e-4)
                decisions += 1
            return decisions

        assert benchmark(drive) == 2_000
