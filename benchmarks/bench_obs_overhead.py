#!/usr/bin/env python3
"""Observability overhead guard: the sink layer must be free when idle.

Runs the standard Table-II scenario (``paper_default``) five ways in one
process and proves they are **bit-identical** before measuring anything:

* ``baseline``   — ``run_experiment(config)``: no bus argument at all.
* ``nullsink``   — ``bus=NULL_BUS``: every producer holds a sink
  reference and pays its truthiness guard, nothing is ever emitted.
  This is the shape every batch/campaign run has after the refactor.
* ``streaming``  — the bounded-memory streaming victim collector
  (``streaming_series=True``), still no subscribers.
* ``live-sink``  — a bus with :class:`~repro.obs.aggregators.LiveMetrics`
  subscribed: every event is constructed and folded, the serve-mode
  worst case.
* ``recording``  — a bus with a
  :class:`~repro.obs.recorder.JsonlSink` recording every event to a
  gzip flight recording, the ``--record`` worst case.

The **gates**: ``nullsink`` (and ``streaming``) must be within 2% of
``baseline`` measured in the same process, as the minimum paired
per-round ratio (see ``_measure``) — observability that taxes the
batch hot path fails the build.  ``live-sink`` and
``recording`` are *observed* modes: they may cost real work per event,
but each carries its own budget (``MAX_LIVE_OVERHEAD`` /
``MAX_RECORDING_OVERHEAD``) so an accidental quadratic fold or
per-event fsync can't land silently.  The pinned ``BENCH_engine.json``
"overhauled" wall is reported alongside for cross-PR context but never
gated on (different machine states would make it flaky).

``--check`` is the CI mode: a tiny scenario, invariants only (bit
identity, live-sink saw events, a record→read-back→refold round-trip
reproduces the live snapshot), never wall time.

Run:  PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--rounds N] [--check]
"""

from __future__ import annotations

import argparse
import dataclasses
import gc
import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.experiments.presets import paper_default
from repro.experiments.runner import run_experiment
from repro.obs import NULL_BUS, EventBus, LiveMetrics
from repro.obs.recorder import JsonlSink, open_recording

#: Same-process overhead gate for the not-observed modes.
MAX_IDLE_OVERHEAD = 0.02

#: Budget for an attached LiveMetrics folding every event (serve mode).
MAX_LIVE_OVERHEAD = 0.60

#: Budget for a JsonlSink writing every event to a gzip recording.
MAX_RECORDING_OVERHEAD = 1.50

MODES = ("baseline", "nullsink", "streaming", "live-sink", "recording")


def _run_mode(name: str, config, record_path: str):
    """One run under the named observability shape; returns (result, live)."""
    if name == "baseline":
        return run_experiment(config), None
    if name == "nullsink":
        return run_experiment(config, bus=NULL_BUS), None
    if name == "streaming":
        return run_experiment(config, streaming_series=True), None
    if name == "recording":
        sink = JsonlSink(record_path, metadata={"benchmark": "obs_overhead"})
        bus = EventBus()
        bus.subscribe(sink)
        try:
            result = run_experiment(config, bus=bus)
        finally:
            sink.close()
        return result, None
    live = LiveMetrics(window=1.0)
    bus = EventBus()
    bus.subscribe(live)
    return run_experiment(config, bus=bus), live


def _fingerprint(result) -> dict:
    """Everything that must be bit-identical across observability modes."""
    summary = dataclasses.asdict(result.summary)
    return {
        "summary": {
            key: (value.hex() if isinstance(value, float) else value)
            for key, value in summary.items()
        },
        "series_total": [value.hex() for value in result.series.total_kbps],
        "events_executed": result.events_executed,
        "identified_atrs": sorted(result.identified_atrs),
        "activation_time": (
            None if result.activation_time is None
            else result.activation_time.hex()
        ),
    }


def _measure(config, rounds: int, record_path: str):
    """Interleaved measurement of every mode; parity-checked.

    Overheads are gated on the **minimum paired per-round ratio**, not
    the ratio of global minimum walls.  Shared hosts drift through
    slow phases lasting longer than one ~0.7s run; two modes measured
    in the same round share that phase, so their ratio cancels it,
    while global mins can land in different phases and report a
    phantom ±5% "overhead".  A real systematic tax shows up in *every*
    round's ratio; noise doesn't survive the min.
    """
    round_walls = {name: [] for name in MODES}
    fingerprints: dict[str, dict] = {}
    last_live = None
    run_experiment(config)  # warm imports/caches outside the clock
    for _ in range(rounds):
        for name in MODES:
            # The observed modes allocate ~100k event objects per run;
            # collect that debt outside the clock so a later mode's
            # garbage can't tax an earlier mode's next measurement.
            gc.collect()
            started = time.perf_counter()
            result, live = _run_mode(name, config, record_path)
            wall = time.perf_counter() - started
            round_walls[name].append(wall)
            fingerprints[name] = _fingerprint(result)
            if live is not None:
                last_live = live
    walls = {name: min(values) for name, values in round_walls.items()}
    overheads = {
        name: min(
            wall / base - 1.0
            for wall, base in zip(round_walls[name], round_walls["baseline"])
        )
        for name in MODES if name != "baseline"
    }
    reference = fingerprints["baseline"]
    mismatched = [
        name for name, fp in fingerprints.items() if fp != reference
    ]
    return walls, overheads, fingerprints, mismatched, last_live


def _recording_roundtrip_failures(config, record_path: str) -> list[str]:
    """Record and fold one run on a shared bus, then refold the file.

    The flight recorder's correctness property: replaying the recorded
    stream through a fresh LiveMetrics must land on the exact snapshot
    the live aggregator computed during the run.  Both sinks must ride
    the *same* bus — ``run.completed`` carries wall-clock fields, so
    two separate runs can never be snapshot-identical.
    """
    live = LiveMetrics(window=1.0)
    sink = JsonlSink(record_path, metadata={"benchmark": "obs_overhead"})
    bus = EventBus()
    bus.subscribe(live)
    bus.subscribe(sink)
    try:
        run_experiment(config, bus=bus)
    finally:
        sink.close()

    failures = []
    recording = open_recording(record_path)
    refolded = LiveMetrics(window=1.0)
    events = 0
    for event in recording.events():
        refolded.emit(event)
        events += 1
    if events <= 0:
        failures.append("recording is empty")
    if recording.unknown_kinds:
        failures.append(
            f"recording round-trip skipped {recording.unknown_kinds} "
            "unknown-kind lines"
        )
    if refolded.snapshot() != live.snapshot():
        failures.append(
            "refolded recording snapshot differs from the live snapshot"
        )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved measurement rounds (min wall wins)")
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: tiny scenario, assert invariants "
                        "(identical results, live sink fed), never wall time")
    parser.add_argument(
        "--out", type=str,
        default=str(Path(__file__).resolve().parent.parent / "BENCH_obs.json"),
    )
    args = parser.parse_args()

    config = paper_default().with_overrides(seed=args.seed)
    if args.check:
        config = config.with_overrides(
            total_flows=10, n_routers=8, duration=2.0
        )
        rounds = 1
    else:
        rounds = args.rounds

    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        record_path = os.path.join(tmp, "bench.jsonl.gz")
        walls, overheads, fingerprints, mismatched, live = _measure(
            config, rounds, record_path
        )
        roundtrip_failures = _recording_roundtrip_failures(
            config, os.path.join(tmp, "roundtrip.jsonl.gz")
        )

    if mismatched:
        for name in mismatched:
            print(f"FATAL: mode {name!r} diverged from baseline results")
        return 1
    print("all observability modes bit-identical "
          f"(events={fingerprints['baseline']['events_executed']})")

    snap = live.snapshot() if live is not None else {}
    if args.check:
        # Invariants only; explicit checks, not asserts, so the job
        # still gates under python -O / PYTHONOPTIMIZE.
        failures = []
        if snap.get("arrivals_total", 0) <= 0:
            failures.append("live sink saw no arrivals")
        if snap.get("events_executed", 0) <= 0:
            failures.append("live sink saw no engine stats")
        if not snap.get("verdicts_total"):
            failures.append("live sink saw no verdicts")
        failures.extend(roundtrip_failures)
        if failures:
            for failure in failures:
                print(f"FATAL: {failure}")
            return 1
        print("obs-overhead smoke invariants hold "
              f"(live sink folded {snap['arrivals_total']} arrivals; "
              "summaries identical with and without observers; "
              "record->refold round-trip reproduces the live snapshot)")
        return 0

    if roundtrip_failures:
        for failure in roundtrip_failures:
            print(f"FATAL: {failure}")
        return 1

    budgets = {
        "nullsink": MAX_IDLE_OVERHEAD,
        "streaming": MAX_IDLE_OVERHEAD,
        "live-sink": MAX_LIVE_OVERHEAD,
        "recording": MAX_RECORDING_OVERHEAD,
    }
    failed = [
        name for name, budget in budgets.items()
        if overheads[name] > budget
    ]
    engine_path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    pinned_wall = None
    if engine_path.exists():
        pinned_wall = json.loads(engine_path.read_text())["wall_seconds"].get(
            "overhauled"
        )

    record = {
        "benchmark": "observability_overhead",
        "scenario": "paper_default (Table II)",
        "seed": args.seed,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "events_executed": fingerprints["baseline"]["events_executed"],
        "bit_identical_across_modes": True,
        "wall_seconds": {name: round(wall, 4) for name, wall in walls.items()},
        "overhead_method": "min paired per-round ratio",
        "overhead_vs_baseline": {
            name: round(value, 4) for name, value in overheads.items()
        },
        "max_idle_overhead": MAX_IDLE_OVERHEAD,
        "max_live_overhead": MAX_LIVE_OVERHEAD,
        "max_recording_overhead": MAX_RECORDING_OVERHEAD,
        "pinned_engine_overhauled_wall": pinned_wall,
        "live_sink_arrivals_folded": snap.get("arrivals_total"),
        "recording_roundtrip_ok": not roundtrip_failures,
        "note": (
            "nullsink/streaming are the idle modes: producers pay only a "
            "falsy-bus pointer test, so the batch path must stay within "
            f"{MAX_IDLE_OVERHEAD:.0%} of a bus-free run measured in the "
            "same process (min paired per-round ratio, so shared-host "
            "phase noise cancels).  live-sink (an attached LiveMetrics folding "
            "every event — what `repro serve` pays while someone is "
            "watching) and recording (a JsonlSink gzip flight recording, "
            "the --record worst case) do real per-event work and carry "
            "their own looser budgets.  The pinned engine wall is "
            "context only; cross-process walls are never gated."
        ),
    }
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    for name, wall in walls.items():
        extra = ""
        if name != "baseline":
            extra = f"  ({overheads[name]:+.2%} vs baseline)"
        print(f"  {name:12s} {wall:.3f}s{extra}")
    print(f"wrote {args.out}")

    if failed:
        for name in failed:
            print(
                f"FATAL: observability mode {name!r} exceeds its "
                f"{budgets[name]:.0%} overhead budget "
                f"({overheads[name]:+.2%})"
            )
        return 1
    print(
        f"all modes within budget (idle <{MAX_IDLE_OVERHEAD:.0%}, "
        f"live <{MAX_LIVE_OVERHEAD:.0%}, "
        f"recording <{MAX_RECORDING_OVERHEAD:.0%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
