#!/usr/bin/env python3
"""Observability overhead guard: the sink layer must be free when idle.

Runs the standard Table-II scenario (``paper_default``) four ways in one
process and proves they are **bit-identical** before measuring anything:

* ``baseline``   — ``run_experiment(config)``: no bus argument at all.
* ``nullsink``   — ``bus=NULL_BUS``: every producer holds a sink
  reference and pays its truthiness guard, nothing is ever emitted.
  This is the shape every batch/campaign run has after the refactor.
* ``streaming``  — the bounded-memory streaming victim collector
  (``streaming_series=True``), still no subscribers.
* ``live-sink``  — a bus with :class:`~repro.obs.aggregators.LiveMetrics`
  subscribed: every event is constructed and folded, the serve-mode
  worst case.

The **gate**: ``nullsink`` (and ``streaming``) wall must be within
2% of ``baseline`` measured in the same process — observability that
taxes the batch hot path fails the build.  The pinned
``BENCH_engine.json`` "overhauled" wall is reported alongside for
cross-PR context but never gated on (different machine states would
make it flaky); ``live-sink`` is recorded as the informational cost of
actually watching.

``--check`` is the CI mode: a tiny scenario, invariants only (bit
identity, live-sink saw events), never wall time.

Run:  PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--rounds N] [--check]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform
import time
from pathlib import Path

from repro.experiments.presets import paper_default
from repro.experiments.runner import run_experiment
from repro.obs import NULL_BUS, EventBus, LiveMetrics

#: Same-process overhead gate for the not-observed modes.
MAX_IDLE_OVERHEAD = 0.02

MODES = ("baseline", "nullsink", "streaming", "live-sink")


def _run_mode(name: str, config):
    """One run under the named observability shape; returns (result, live)."""
    if name == "baseline":
        return run_experiment(config), None
    if name == "nullsink":
        return run_experiment(config, bus=NULL_BUS), None
    if name == "streaming":
        return run_experiment(config, streaming_series=True), None
    live = LiveMetrics(window=1.0)
    bus = EventBus()
    bus.subscribe(live)
    return run_experiment(config, bus=bus), live


def _fingerprint(result) -> dict:
    """Everything that must be bit-identical across observability modes."""
    summary = dataclasses.asdict(result.summary)
    return {
        "summary": {
            key: (value.hex() if isinstance(value, float) else value)
            for key, value in summary.items()
        },
        "series_total": [value.hex() for value in result.series.total_kbps],
        "events_executed": result.events_executed,
        "identified_atrs": sorted(result.identified_atrs),
        "activation_time": (
            None if result.activation_time is None
            else result.activation_time.hex()
        ),
    }


def _measure(config, rounds: int):
    """Interleaved min-wall measurement of every mode; parity-checked."""
    walls = {name: float("inf") for name in MODES}
    fingerprints: dict[str, dict] = {}
    last_live = None
    run_experiment(config)  # warm imports/caches outside the clock
    for _ in range(rounds):
        for name in MODES:
            started = time.perf_counter()
            result, live = _run_mode(name, config)
            wall = time.perf_counter() - started
            walls[name] = min(walls[name], wall)
            fingerprints[name] = _fingerprint(result)
            if live is not None:
                last_live = live
    reference = fingerprints["baseline"]
    mismatched = [
        name for name, fp in fingerprints.items() if fp != reference
    ]
    return walls, fingerprints, mismatched, last_live


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=5,
                        help="interleaved measurement rounds (min wall wins)")
    parser.add_argument("--check", action="store_true",
                        help="CI smoke: tiny scenario, assert invariants "
                        "(identical results, live sink fed), never wall time")
    parser.add_argument(
        "--out", type=str,
        default=str(Path(__file__).resolve().parent.parent / "BENCH_obs.json"),
    )
    args = parser.parse_args()

    config = paper_default().with_overrides(seed=args.seed)
    if args.check:
        config = config.with_overrides(
            total_flows=10, n_routers=8, duration=2.0
        )
        rounds = 1
    else:
        rounds = args.rounds

    walls, fingerprints, mismatched, live = _measure(config, rounds)

    if mismatched:
        for name in mismatched:
            print(f"FATAL: mode {name!r} diverged from baseline results")
        return 1
    print("all observability modes bit-identical "
          f"(events={fingerprints['baseline']['events_executed']})")

    snap = live.snapshot() if live is not None else {}
    if args.check:
        # Invariants only; explicit checks, not asserts, so the job
        # still gates under python -O / PYTHONOPTIMIZE.
        failures = []
        if snap.get("arrivals_total", 0) <= 0:
            failures.append("live sink saw no arrivals")
        if snap.get("events_executed", 0) <= 0:
            failures.append("live sink saw no engine stats")
        if not snap.get("verdicts_total"):
            failures.append("live sink saw no verdicts")
        if failures:
            for failure in failures:
                print(f"FATAL: {failure}")
            return 1
        print("obs-overhead smoke invariants hold "
              f"(live sink folded {snap['arrivals_total']} arrivals; "
              "summaries identical with and without observers)")
        return 0

    overheads = {
        name: walls[name] / walls["baseline"] - 1.0
        for name in MODES if name != "baseline"
    }
    failed = [
        name for name in ("nullsink", "streaming")
        if overheads[name] > MAX_IDLE_OVERHEAD
    ]
    engine_path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    pinned_wall = None
    if engine_path.exists():
        pinned_wall = json.loads(engine_path.read_text())["wall_seconds"].get(
            "overhauled"
        )

    record = {
        "benchmark": "observability_overhead",
        "scenario": "paper_default (Table II)",
        "seed": args.seed,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "events_executed": fingerprints["baseline"]["events_executed"],
        "bit_identical_across_modes": True,
        "wall_seconds": {name: round(wall, 4) for name, wall in walls.items()},
        "overhead_vs_baseline": {
            name: round(value, 4) for name, value in overheads.items()
        },
        "max_idle_overhead": MAX_IDLE_OVERHEAD,
        "pinned_engine_overhauled_wall": pinned_wall,
        "live_sink_arrivals_folded": snap.get("arrivals_total"),
        "note": (
            "nullsink/streaming are the gated modes: producers pay only a "
            "falsy-bus pointer test, so the batch path must stay within "
            f"{MAX_IDLE_OVERHEAD:.0%} of a bus-free run measured in the "
            "same process.  live-sink is informational — the cost of an "
            "attached LiveMetrics aggregator folding every event, i.e. "
            "what `repro serve` pays while someone is watching.  The "
            "pinned engine wall is context only; cross-process walls are "
            "never gated."
        ),
    }
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    for name, wall in walls.items():
        extra = ""
        if name != "baseline":
            extra = f"  ({overheads[name]:+.2%} vs baseline)"
        print(f"  {name:12s} {wall:.3f}s{extra}")
    print(f"wrote {args.out}")

    if failed:
        for name in failed:
            print(
                f"FATAL: idle observability mode {name!r} exceeds the "
                f"{MAX_IDLE_OVERHEAD:.0%} overhead budget "
                f"({overheads[name]:+.2%})"
            )
        return 1
    print(f"idle overhead within budget (<{MAX_IDLE_OVERHEAD:.0%})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
