"""Benchmark: multi-seed batch throughput, serial vs process-parallel.

Not a paper figure — this times the experiment *harness* itself: an
8-seed confidence batch of the Table-II scenario (shrunk by
``REPRO_BENCH_SCALE``) run through :func:`repro.experiments.parallel.run_batch`
with ``REPRO_BENCH_JOBS`` workers.  The per-seed summaries are asserted
identical to the serial path, so the speedup is free of result drift.
"""

from __future__ import annotations

from conftest import bench_jobs, bench_scale, run_once

from repro.experiments.config import ExperimentConfig, TopologyKind
from repro.experiments.parallel import run_batch, seed_configs

_SEEDS = [11, 22, 33, 44, 55, 66, 77, 88]


def _batch_configs() -> list[ExperimentConfig]:
    scale = bench_scale()
    config = ExperimentConfig(
        total_flows=max(6, int(24 * scale)),
        n_routers=max(6, int(16 * scale)),
        topology=TopologyKind.TRANSIT_STUB,
    )
    return seed_configs(config, _SEEDS)


def test_parallel_seed_batch(benchmark):
    configs = _batch_configs()
    jobs = bench_jobs()
    batch = run_once(benchmark, run_batch, configs, jobs=jobs)
    assert len(batch.results) == len(_SEEDS)
    # Every metric partial saw every seed.
    assert all(stats.count == len(_SEEDS) for stats in batch.stats.values())
    print(
        f"\n{len(_SEEDS)} seeds, jobs={batch.jobs}: "
        f"{batch.wall_seconds:.2f}s wall"
    )
    for name, stats in batch.stats.items():
        print(f"  {name:<22} mean={100 * stats.mean:6.2f}%")


def test_serial_parallel_summaries_identical():
    configs = _batch_configs()[:4]
    serial = run_batch(configs, jobs=1)
    parallel = run_batch(configs, jobs=min(4, max(2, bench_jobs())))
    assert [r.summary for r in serial.results] == [
        r.summary for r in parallel.results
    ]
