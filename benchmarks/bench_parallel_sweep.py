#!/usr/bin/env python3
"""Measure the parallel multi-seed speedup and record it as BENCH_*.json.

Runs the same 8-seed batch twice — serially (``jobs=1``) and with one
worker per CPU — asserts the per-seed summaries are bit-identical, and
writes ``BENCH_parallel_sweep.json`` at the repo root with both wall
times, the speedup, and the host's core count.

``degraded`` in the artifact means the measurement could not demonstrate
a parallel speedup: either the host has one core (expected there, and
the artifact says so), or — the bug case — a multi-core host ran the
batch with no meaningful speedup, which means the worker pool never
actually engaged.

``--check`` is the CI mode: a small batch, and a loud failure (exit 1)
when ``degraded`` would be recorded **on a multi-core host** — the
silent-degradation case that previously only left a flag in a JSON file
nobody gates on.  On a single-core host ``--check`` still verifies
serial/parallel bit-equality and passes with a note.

Run:  PYTHONPATH=src python benchmarks/bench_parallel_sweep.py [--seeds N] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path

from repro.experiments.config import ExperimentConfig, TopologyKind
from repro.experiments.parallel import default_jobs, run_batch, seed_configs

#: Below this speedup a multi-core parallel run is indistinguishable
#: from serial — the pool is not pulling its weight.  Deliberately lax
#: (2 workers should approach 2x): this gates "the pool never engaged",
#: not scheduler efficiency.
MIN_MULTI_CORE_SPEEDUP = 1.2


def _measure(seeds: int, jobs: int):
    config = ExperimentConfig(
        total_flows=24, n_routers=12, topology=TopologyKind.TRANSIT_STUB
    )
    configs = seed_configs(config, range(101, 101 + seeds))

    print(f"serial: {seeds} seeds on 1 worker...")
    serial = run_batch(configs, jobs=1)
    print(f"  {serial.wall_seconds:.2f}s wall")
    print(f"parallel: {seeds} seeds on {jobs} worker(s)...")
    parallel = run_batch(configs, jobs=jobs)
    print(f"  {parallel.wall_seconds:.2f}s wall")

    identical = [r.summary for r in serial.results] == [
        r.summary for r in parallel.results
    ]
    if not identical:
        raise SystemExit("FATAL: parallel summaries diverged from serial")
    speedup = serial.wall_seconds / max(1e-9, parallel.wall_seconds)
    return serial, parallel, speedup


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--check", action="store_true",
                        help="CI mode: small batch, fail loudly if the "
                        "measurement is degraded on a multi-core host; "
                        "no artifact written")
    parser.add_argument(
        "--out",
        type=str,
        default=str(Path(__file__).resolve().parent.parent / "BENCH_parallel_sweep.json"),
    )
    args = parser.parse_args()

    jobs = args.jobs if args.jobs is not None else default_jobs()
    seeds = 4 if args.check else args.seeds
    serial, parallel, speedup = _measure(seeds, jobs)

    multi_core = (os.cpu_count() or 1) > 1
    # Degraded = the artifact's speedup number is not meaningful.  On a
    # one-core host that is the expected physics; on a multi-core host a
    # ~1x speedup means the pool silently failed to engage.
    degraded = (not multi_core) or (jobs > 1 and speedup < MIN_MULTI_CORE_SPEEDUP)

    if args.check:
        if degraded and multi_core:
            print(
                f"FATAL: degraded parallel measurement on a multi-core "
                f"host ({os.cpu_count()} CPUs, {jobs} jobs, "
                f"{speedup:.2f}x speedup < {MIN_MULTI_CORE_SPEEDUP}x) — "
                "the worker pool is not engaging"
            )
            return 1
        if degraded:
            print(
                f"check OK (single-core host: bit-equality verified, "
                f"speedup {speedup:.2f}x not meaningful here)"
            )
        else:
            print(f"check OK ({speedup:.2f}x on {jobs} workers, "
                  "summaries bit-identical)")
        return 0

    record = {
        "benchmark": "parallel_multi_seed_sweep",
        "seeds": seeds,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "degraded": degraded,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "serial_wall_seconds": round(serial.wall_seconds, 3),
        "parallel_wall_seconds": round(parallel.wall_seconds, 3),
        "speedup": round(speedup, 3),
        "per_seed_summaries_identical": True,
        "metric_means_percent": {
            name: round(100 * stats.mean, 3)
            for name, stats in parallel.stats.items()
        },
    }
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    if degraded and not multi_core:
        print(
            "\n" + "!" * 70 + "\n"
            "!! WARNING: cpu_count == 1 — this host cannot show a parallel\n"
            "!! speedup.  The artifact is tagged \"degraded\": true; re-run on\n"
            "!! a multi-core machine before reading the speedup as meaningful.\n"
            + "!" * 70
        )
    elif degraded:
        print(
            "\n" + "!" * 70 + "\n"
            f"!! WARNING: only {speedup:.2f}x on {os.cpu_count()} CPUs — the\n"
            "!! worker pool did not engage; the artifact is tagged degraded.\n"
            "!! Run --check to gate on this in CI.\n"
            + "!" * 70
        )
    print(f"\nspeedup: {speedup:.2f}x  (summaries identical: True)")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
