#!/usr/bin/env python3
"""Measure the parallel multi-seed speedup and record it as BENCH_*.json.

Runs the same 8-seed batch twice — serially (``jobs=1``) and with one
worker per CPU — asserts the per-seed summaries are bit-identical, and
writes ``BENCH_parallel_sweep.json`` at the repo root with both wall
times, the speedup, and the host's core count.

Run:  PYTHONPATH=src python benchmarks/bench_parallel_sweep.py [--seeds N] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path

from repro.experiments.config import ExperimentConfig, TopologyKind
from repro.experiments.parallel import default_jobs, run_batch, seed_configs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument(
        "--out",
        type=str,
        default=str(Path(__file__).resolve().parent.parent / "BENCH_parallel_sweep.json"),
    )
    args = parser.parse_args()

    jobs = args.jobs if args.jobs is not None else default_jobs()
    config = ExperimentConfig(
        total_flows=24, n_routers=12, topology=TopologyKind.TRANSIT_STUB
    )
    configs = seed_configs(config, range(101, 101 + args.seeds))

    print(f"serial: {args.seeds} seeds on 1 worker...")
    serial = run_batch(configs, jobs=1)
    print(f"  {serial.wall_seconds:.2f}s wall")
    print(f"parallel: {args.seeds} seeds on {jobs} worker(s)...")
    parallel = run_batch(configs, jobs=jobs)
    print(f"  {parallel.wall_seconds:.2f}s wall")

    identical = [r.summary for r in serial.results] == [
        r.summary for r in parallel.results
    ]
    if not identical:
        raise SystemExit("FATAL: parallel summaries diverged from serial")

    speedup = serial.wall_seconds / max(1e-9, parallel.wall_seconds)
    # A single-core host cannot demonstrate parallel speedup; a ~1x
    # figure recorded there would read as a regression when it is only a
    # degraded measurement environment.  Say so, loudly, in both places.
    degraded = (os.cpu_count() or 1) == 1
    record = {
        "benchmark": "parallel_multi_seed_sweep",
        "seeds": args.seeds,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "degraded": degraded,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "serial_wall_seconds": round(serial.wall_seconds, 3),
        "parallel_wall_seconds": round(parallel.wall_seconds, 3),
        "speedup": round(speedup, 3),
        "per_seed_summaries_identical": identical,
        "metric_means_percent": {
            name: round(100 * stats.mean, 3)
            for name, stats in parallel.stats.items()
        },
    }
    Path(args.out).write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    if degraded:
        print(
            "\n" + "!" * 70 + "\n"
            "!! WARNING: cpu_count == 1 — this host cannot show a parallel\n"
            "!! speedup.  The artifact is tagged \"degraded\": true; re-run on\n"
            "!! a multi-core machine before reading the speedup as meaningful.\n"
            + "!" * 70
        )
    print(f"\nspeedup: {speedup:.2f}x  (summaries identical: {identical})")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
