#!/usr/bin/env python3
"""Prove summary-only report cost scales with artifact COUNT, not
series LENGTH, and record it as BENCH_store_scale.json.

Builds fabricated (simulation-free) campaign stores with identical
summaries but wildly different bandwidth-series lengths, then times
``campaign_report`` — the summary-only path — against each:

* schema-2 store, short series (a handful of samples per run);
* schema-2 store, long series (hundreds of times more samples);
* schema-1 store (flat layout, series INLINE in each artifact) with the
  same long series — what every report paid before the sidecar layout.

Schema 2 files the series in ``.series.json`` sidecars, so the two
schema-2 reports parse byte-identical summary documents: their times
differ only by noise no matter the series length, while the schema-1
inline store pays to parse every sample it will never read.  The
invariants (checked always, and the only thing ``--check`` gates on —
never wall time):

* zero sidecar opens during summary-only reports;
* the short- and long-series schema-2 reports are byte-identical;
* migrating the schema-1 store leaves its report byte-identical.

Run:   PYTHONPATH=src python benchmarks/bench_store_scale.py
CI:    PYTHONPATH=src python benchmarks/bench_store_scale.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from pathlib import Path

from repro.campaign import CampaignSpec, CampaignStore, campaign_report, open_store
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.metrics.rates import MetricsSummary
from repro.metrics.timeseries import BandwidthSeries


def build_spec(n_points: int, n_seeds: int) -> CampaignSpec:
    values = tuple(
        round(0.1 + 0.8 * i / max(1, n_points - 1), 6) for i in range(n_points)
    )
    return CampaignSpec(
        name="bench-store-scale",
        seeds=tuple(range(1, n_seeds + 1)),
        base={
            "total_flows": 10,
            "n_routers": 6,
            "duration": 1.5,
            "topology": "star",
        },
        axes=({"field": "attack_fraction", "values": values},),
    )


def fabricate(config: ExperimentConfig, series_len: int) -> ExperimentResult:
    """A deterministic fake result whose summary depends only on the
    config (so reports are comparable across stores) and whose series
    length is the experiment variable."""
    seed = config.seed
    summary = MetricsSummary(
        accuracy=0.90 + 0.001 * seed,
        traffic_reduction=0.80,
        false_positive_rate=0.001 * seed,
        false_negative_rate=0.10 - 0.001 * seed,
        legit_drop_rate=0.002 * seed,
        attack_examined=100 * seed,
        attack_dropped=90 * seed,
        wellbehaved_examined=50,
        wellbehaved_dropped=1,
        wellbehaved_pdt_drops=1,
        total_examined=100 * seed + 50,
        victim_rate_before_bps=1e6,
        victim_rate_after_bps=2e5,
    )
    times = [round(0.05 * (i + 1), 6) for i in range(series_len)]
    series = BandwidthSeries(
        times=times,
        total_kbps=[100.0 + (i % 17) for i in range(series_len)],
        attack_kbps=[60.0 + (i % 11) for i in range(series_len)],
        legit_kbps=[40.0 + (i % 7) for i in range(series_len)],
    )
    return ExperimentResult(
        config=config,
        summary=summary,
        series=series,
        scenario=None,
        activation_time=1.25,
        identified_atrs={"ingress0"},
        true_atrs={"ingress0", "ingress1"},
        events_executed=1000 + seed,
        wall_seconds=0.1,
    )


def populate(spec: CampaignSpec, root: Path, series_len: int) -> CampaignStore:
    store = open_store(spec, root).ensure()
    store.write_manifest(spec.to_dict(), series_bin_width=0.05)
    for planned in spec.plan():
        store.write_result(
            fabricate(planned.config, series_len),
            point=planned.point,
            series_bin_width=0.05,
        )
    return store


def timed_report(spec: CampaignSpec, root: Path, reps: int = 3) -> tuple:
    """(best wall seconds, report payload) with sidecar opens counted."""
    opens = 0
    original = CampaignStore._read_series_payload

    def counting(self, run_path, run_id):
        nonlocal opens
        opens += 1
        return original(self, run_path, run_id)

    CampaignStore._read_series_payload = counting
    try:
        best, report = None, None
        for _ in range(reps):
            started = time.perf_counter()
            report = campaign_report(spec, root)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
    finally:
        CampaignStore._read_series_payload = original
    return best, report, opens


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=50,
                        help="axis points (runs = points x seeds)")
    parser.add_argument("--seeds", type=int, default=4)
    parser.add_argument("--short-series", type=int, default=4,
                        help="samples per series in the short store")
    parser.add_argument("--long-series", type=int, default=2048,
                        help="samples per series in the long store")
    parser.add_argument("--check", action="store_true",
                        help="tiny scale, assert invariants only "
                        "(CI smoke; never gates on wall time)")
    parser.add_argument(
        "--out", type=str,
        default=str(Path(__file__).resolve().parent.parent
                    / "BENCH_store_scale.json"),
    )
    args = parser.parse_args()
    if args.check:
        args.points, args.seeds = 5, 2
        args.long_series = 256

    spec = build_spec(args.points, args.seeds)
    n_runs = len(spec.plan())
    print(f"{n_runs} runs; series {args.short_series} vs "
          f"{args.long_series} samples")

    with tempfile.TemporaryDirectory(prefix="bench-store-") as tmp:
        tmp = Path(tmp)
        print("populating schema-2 stores (short, long) and the "
              "schema-1 inline store...")
        populate(spec, tmp / "short", args.short_series)
        long_store = populate(spec, tmp / "long", args.long_series)

        # The pre-sidecar layout: downgrade a copy of the long store.
        import shutil
        import sys

        shutil.copytree(long_store.directory,
                        tmp / "inline" / spec.name)
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
        from tests.campaign.schema1 import downgrade_store

        downgrade_store(tmp / "inline" / spec.name)

        short_s, short_report, short_opens = timed_report(spec, tmp / "short")
        long_s, long_report, long_opens = timed_report(spec, tmp / "long")
        inline_s, inline_report, _ = timed_report(spec, tmp / "inline")

        # Invariants -------------------------------------------------
        assert short_report["complete"] == n_runs
        assert short_opens == 0 and long_opens == 0, (
            "summary-only report opened a series sidecar"
        )
        short_bytes = json.dumps(short_report, sort_keys=True)
        assert short_bytes == json.dumps(long_report, sort_keys=True), (
            "series length leaked into the summary-only report"
        )
        assert short_bytes == json.dumps(inline_report, sort_keys=True), (
            "schema-1 store reports differently through the v2 reader"
        )
        migrated = CampaignStore(tmp / "inline" / spec.name).migrate()
        assert migrated.migrated == n_runs
        post_s, post_report, post_opens = timed_report(spec, tmp / "inline")
        assert post_opens == 0
        assert short_bytes == json.dumps(post_report, sort_keys=True), (
            "migration changed the report"
        )
        print("invariants hold: 0 sidecar opens; short/long/inline/"
              "migrated reports byte-identical")

    ratio = long_s / max(1e-9, short_s)
    inline_ratio = inline_s / max(1e-9, long_s)
    print(f"summary-only report over {n_runs} artifacts:")
    print(f"  schema-2 short series : {short_s * 1e3:8.1f} ms")
    print(f"  schema-2 long series  : {long_s * 1e3:8.1f} ms "
          f"({ratio:.2f}x short — independent of series length)")
    print(f"  schema-1 inline series: {inline_s * 1e3:8.1f} ms "
          f"({inline_ratio:.1f}x the sidecar layout)")
    print(f"  schema-2 post-migrate : {post_s * 1e3:8.1f} ms")

    if args.check:
        print("--check passed")
        return 0

    record = {
        "benchmark": "store_scale",
        "runs": n_runs,
        "axis_points": args.points,
        "seeds": args.seeds,
        "short_series_samples": args.short_series,
        "long_series_samples": args.long_series,
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "report_short_seconds": round(short_s, 4),
        "report_long_seconds": round(long_s, 4),
        "report_inline_schema1_seconds": round(inline_s, 4),
        "report_post_migrate_seconds": round(post_s, 4),
        "long_over_short_ratio": round(ratio, 3),
        "inline_over_sidecar_ratio": round(inline_ratio, 1),
        "sidecar_opens_during_reports": 0,
    }
    Path(args.out).write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
