"""Ablation: MAFIC vs the baseline drop policies.

The paper's Section II motivates MAFIC by the "collateral damages" of
the proportionate dropper used in the authors' earlier work [2].  This
bench quantifies that comparison (plus aggregate rate limiting and the
undefended control) on one attack scenario.
"""

from conftest import run_once

from repro.experiments.config import DefenseKind, ExperimentConfig
from repro.experiments.runner import run_experiment

DEFENSES = [
    DefenseKind.MAFIC,
    DefenseKind.PROPORTIONAL,
    DefenseKind.RATE_LIMIT,
    DefenseKind.NONE,
]


def _run_all():
    results = {}
    for defense in DEFENSES:
        config = ExperimentConfig(
            total_flows=30, n_routers=16, seed=101, defense=defense
        )
        results[defense] = run_experiment(config)
    return results


class TestPolicyAblation:
    def test_policy_comparison(self, benchmark):
        results = run_once(benchmark, _run_all)
        print()
        print(f"{'defence':<14} {'alpha%':>8} {'Lr%':>8} {'theta_n%':>9}")
        for defense, run in results.items():
            s = run.summary
            print(
                f"{defense.value:<14} {100 * s.accuracy:>8.2f} "
                f"{100 * s.legit_drop_rate:>8.2f} "
                f"{100 * s.false_negative_rate:>9.2f}"
            )

        mafic = results[DefenseKind.MAFIC].summary
        proportional = results[DefenseKind.PROPORTIONAL].summary
        ratelimit = results[DefenseKind.RATE_LIMIT].summary

        # MAFIC's defining advantage: an order of magnitude less
        # collateral at equal-or-better suppression.
        assert mafic.legit_drop_rate < 0.2 * proportional.legit_drop_rate
        assert mafic.legit_drop_rate < 0.5 * ratelimit.legit_drop_rate
        assert mafic.accuracy > proportional.accuracy
        assert mafic.accuracy > ratelimit.accuracy

        # The undefended control drops nothing.
        assert results[DefenseKind.NONE].summary.total_examined == 0
