"""Figure 3: attack-packet dropping accuracy.

(a) accuracy vs total traffic volume under Pd in {70, 80, 90}%;
(b) accuracy vs total traffic volume under R in {100k, 500k, 1M} bps.

Paper shape: accuracy consistently high (99.2-99.8% in the paper's
setup) across traffic volumes, ordered by Pd, and insensitive to the
source rate.
"""

from conftest import run_once, series_mean

from repro.experiments.figures import fig3a, fig3b
from repro.experiments.reporting import format_figure


class TestFig3a:
    def test_fig3a(self, benchmark, scale):
        figure = run_once(benchmark, fig3a, scale=scale)
        print()
        print(format_figure(figure))

        # Every point stays in a high-accuracy band.
        for name in figure.series:
            assert all(y > 94.0 for y in figure.ys(name)), name
        # Higher Pd -> higher accuracy (averaged over the axis).
        assert (
            series_mean(figure, "Pd=90%")
            > series_mean(figure, "Pd=80%")
            > series_mean(figure, "Pd=70%")
        )
        # The headline claim: Pd=90% accuracy ~ 99%.
        assert series_mean(figure, "Pd=90%") > 98.5


class TestFig3b:
    def test_fig3b(self, benchmark, scale):
        figure = run_once(benchmark, fig3b, scale=scale)
        print()
        print(format_figure(figure))

        # Accuracy stays high at every source rate...
        for name in figure.series:
            assert all(y > 96.0 for y in figure.ys(name)), name
        # ...and is roughly rate-insensitive: all three series within a
        # small band of each other.
        means = [series_mean(figure, name) for name in figure.series]
        assert max(means) - min(means) < 2.0
