"""Ablation: the probe timer multiplier.

The paper fixes the verdict timer at 2 x RTT "to allow for a moderate
amount of time for the legitimate sources to respond".  This bench
sweeps the multiplier to show why: shorter windows misjudge conforming
TCP (its in-flight pipeline is still arriving), longer windows only add
leakage during probing.
"""

from conftest import run_once

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.metrics.collectors import FlowTruth

MULTIPLIERS = [1.0, 2.0, 4.0]


def _sweep():
    results = {}
    for multiplier in MULTIPLIERS:
        config = ExperimentConfig(total_flows=24, n_routers=12, seed=131)
        config.mafic.probe_timer_rtt_multiplier = multiplier
        results[multiplier] = run_experiment(config)
    return results


class TestTimerAblation:
    def test_timer_sweep(self, benchmark):
        results = run_once(benchmark, _sweep)
        print()
        print(
            f"{'timer':>6} {'alpha%':>8} {'theta_n%':>9} {'Lr%':>7} "
            f"{'tcp-cut':>8} {'tcp-nice':>9}"
        )
        rows = {}
        for multiplier, run in results.items():
            confusion = run.scenario.defense_collector.verdict_confusion()
            tcp_cut = confusion.get((FlowTruth.TCP_LEGIT, "cut"), 0)
            tcp_nice = confusion.get((FlowTruth.TCP_LEGIT, "nice"), 0)
            s = run.summary
            rows[multiplier] = (s, tcp_cut, tcp_nice)
            print(
                f"{multiplier:>5.1f}x {100 * s.accuracy:>8.2f} "
                f"{100 * s.false_negative_rate:>9.2f} "
                f"{100 * s.legit_drop_rate:>7.2f} {tcp_cut:>8} {tcp_nice:>9}"
            )

        # The paper's choice works: at 2 x RTT no TCP flow is condemned
        # and accuracy stays high.
        s2, tcp_cut_2, tcp_nice_2 = rows[2.0]
        assert tcp_cut_2 == 0
        assert tcp_nice_2 >= 1
        assert s2.accuracy > 0.97

        # Longer timers leak more during probing (theta_n grows with the
        # window), so 4x is never better than 2x on suppression.
        assert rows[4.0][0].false_negative_rate >= s2.false_negative_rate

        # Accuracy stays high across the sweep: the verdict design
        # (trailing-half-window rate) is robust to the timer choice.
        for multiplier, (s, _, _) in rows.items():
            assert s.accuracy > 0.95, multiplier
