"""Figure 5: false positive rate (theta_p).

(a) theta_p vs traffic volume under Pd in {70, 80, 90}%;
(b) theta_p vs TCP share for Vt in {30, 70, 100};
(c) theta_p vs domain size N for TCP share in {35, 55, 75, 95}%.

Paper shape: theta_p is tiny everywhere — bounded above by ~0.06% in
the paper's setup.  We assert a conservative ceiling (well under 1%)
and that the defaults land near zero; the fine structure of the
published curves is sketch/seed noise at these magnitudes.
"""

from conftest import run_once

from repro.experiments.figures import fig5a, fig5b, fig5c
from repro.experiments.reporting import format_figure

THETA_P_CEILING = 0.25  # percent — paper reports <= 0.06% on its testbed


class TestFig5a:
    def test_fig5a(self, benchmark, scale):
        figure = run_once(benchmark, fig5a, scale=scale)
        print()
        print(format_figure(figure, precision=4))
        for name in figure.series:
            assert all(0.0 <= y <= THETA_P_CEILING for y in figure.ys(name)), name


class TestFig5b:
    def test_fig5b(self, benchmark, scale):
        figure = run_once(benchmark, fig5b, scale=scale)
        print()
        print(format_figure(figure, precision=4))
        for name in figure.series:
            assert all(0.0 <= y <= THETA_P_CEILING for y in figure.ys(name)), name


class TestFig5c:
    def test_fig5c(self, benchmark, scale):
        figure = run_once(benchmark, fig5c, scale=scale)
        print()
        print(format_figure(figure, precision=4))
        for name in figure.series:
            assert all(0.0 <= y <= THETA_P_CEILING for y in figure.ys(name)), name
