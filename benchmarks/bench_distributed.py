#!/usr/bin/env python3
"""Measure distributed campaign execution and record BENCH_distributed.json.

Three measurements on the same small campaign grid:

1. **serial** — ``run_campaign(jobs=1)``, the baseline orchestrator;
2. **pool** — ``run_pool`` worker subprocesses pulling cells by lease;
   the stores must diff *identical* (``campaign diff`` is the checker);
3. **recovery** — one worker is killed by the chaos harness right
   after executing (not writing) its first cell, then a clean pool
   resumes: the wall-clock delta over (2) is what one worker death
   costs — re-execution of the in-flight cell plus lease expiry.

``degraded`` in the artifact means the pool speedup number is not
meaningful: a single-core host (expected there — workers serialize on
the one CPU and subprocess startup is pure overhead), or a multi-core
host where the pool failed to beat serial (the bug case).  The
equivalence and recovery results are meaningful either way — those are
what ``--check`` gates on in CI (never the speedup: worker subprocess
startup dominates a check-sized grid on any host).

Run:  PYTHONPATH=src python benchmarks/bench_distributed.py [--seeds N] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.campaign.diff import diff_stores
from repro.campaign.orchestrator import open_store, run_campaign
from repro.campaign.pool import run_pool
from repro.campaign.spec import CampaignSpec

#: Below this speedup a multi-core pool run is indistinguishable from
#: serial — the workers never overlapped.
MIN_MULTI_CORE_SPEEDUP = 1.2

#: Lease TTL for the benchmark stores: short, so the recovery
#: measurement prices lease expiry realistically but not punitively.
LEASE_TTL = 1.0


def _spec(seeds: int) -> CampaignSpec:
    return CampaignSpec(
        name="bench-distributed",
        seeds=tuple(range(101, 101 + seeds)),
        base={
            "total_flows": 24,
            "n_routers": 12,
            "duration": 1.4,
            "attack_start": 1.05,
            "topology": "star",
        },
        axes=({"field": "attack_fraction", "values": (0.25, 0.5)},),
    )


def _prepared(spec: CampaignSpec, root: Path):
    store = open_store(spec, root).ensure()
    store.pin_series_bin_width(0.05)
    store.write_manifest(spec.to_dict(), series_bin_width=0.05)
    return store


def _measure(seeds: int, jobs: int, scratch: Path):
    spec = _spec(seeds)
    cells = len(spec.plan())

    print(f"serial: {cells} cells on the in-process orchestrator...")
    serial = run_campaign(spec, scratch / "serial", jobs=1)
    assert serial.complete
    print(f"  {serial.wall_seconds:.2f}s wall")

    print(f"pool: {cells} cells on {jobs} lease-pulling worker(s)...")
    pool_store = _prepared(spec, scratch / "pool")
    pool = run_pool(pool_store.directory, jobs=jobs, lease_ttl=LEASE_TTL)
    if not pool.complete:
        raise SystemExit(f"FATAL: pool left the campaign incomplete: {pool}")
    print(f"  {pool.wall_seconds:.2f}s wall ({pool.deaths} deaths)")

    result = diff_stores(
        open_store(spec, scratch / "serial").directory, pool_store.directory
    )
    if not result.identical:
        raise SystemExit(
            "FATAL: pool store diverged from serial: "
            f"{result.missing_in_a} {result.missing_in_b} {result.differing}"
        )

    print("recovery: one worker dies after executing its first cell...")
    crash_store = _prepared(spec, scratch / "crash")
    started = time.perf_counter()
    victim = subprocess.run(
        [
            sys.executable, "-m", "repro.campaign.worker",
            str(crash_store.directory),
            "--worker", "victim", "--lease-ttl", str(LEASE_TTL),
        ],
        env={**os.environ, "REPRO_CHAOS": "result:1.0"},
        capture_output=True, text=True, timeout=600,
    )
    if victim.returncode != -signal.SIGKILL:
        raise SystemExit(
            f"FATAL: chaos worker exited {victim.returncode}, expected "
            f"SIGKILL: {victim.stderr}"
        )
    resume = run_pool(crash_store.directory, jobs=jobs, lease_ttl=LEASE_TTL)
    recovery_wall = time.perf_counter() - started
    if not resume.complete:
        raise SystemExit(f"FATAL: resume left the campaign incomplete: {resume}")
    result = diff_stores(
        open_store(spec, scratch / "serial").directory, crash_store.directory
    )
    if not result.identical:
        raise SystemExit("FATAL: post-recovery store diverged from serial")
    print(f"  {recovery_wall:.2f}s wall (death + resume, store identical)")

    return {
        "cells": cells,
        "serial_wall": serial.wall_seconds,
        "pool_wall": pool.wall_seconds,
        "recovery_wall": recovery_wall,
        "speedup": serial.wall_seconds / max(1e-9, pool.wall_seconds),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=None)
    parser.add_argument("--check", action="store_true",
                        help="CI mode: small grid, fail loudly on "
                        "divergence or on a non-engaging pool on a "
                        "multi-core host; no artifact written")
    parser.add_argument(
        "--out",
        type=str,
        default=str(
            Path(__file__).resolve().parent.parent / "BENCH_distributed.json"
        ),
    )
    args = parser.parse_args()

    from repro.experiments.parallel import default_jobs

    jobs = args.jobs if args.jobs is not None else max(2, default_jobs())
    seeds = 2 if args.check else args.seeds
    with tempfile.TemporaryDirectory(prefix="bench-distributed-") as scratch:
        numbers = _measure(seeds, jobs, Path(scratch))

    multi_core = (os.cpu_count() or 1) > 1
    degraded = (not multi_core) or (
        jobs > 1 and numbers["speedup"] < MIN_MULTI_CORE_SPEEDUP
    )

    if args.check:
        # The check gates only the correctness invariants (_measure
        # already exited fatally on divergence or an incomplete pool).
        # Unlike bench_parallel_sweep's in-process pool, worker
        # *subprocess* startup dominates a check-sized grid, so a
        # speedup gate would flake even on healthy multi-core hosts.
        print(
            f"check OK (stores identical, recovery converged; "
            f"{numbers['speedup']:.2f}x on {jobs} workers"
            + (", not meaningful at check scale)" if degraded else ")")
        )
        return 0

    record = {
        "benchmark": "distributed_campaign",
        "cells": numbers["cells"],
        "jobs": jobs,
        "lease_ttl_seconds": LEASE_TTL,
        "cpu_count": os.cpu_count(),
        "degraded": degraded,
        "platform": platform.platform(),
        "python": platform.python_version(),
        "serial_wall_seconds": round(numbers["serial_wall"], 3),
        "pool_wall_seconds": round(numbers["pool_wall"], 3),
        "speedup": round(numbers["speedup"], 3),
        "stores_identical": True,
        "recovery": {
            "death_point": "result",
            "wall_seconds": round(numbers["recovery_wall"], 3),
            "overhead_seconds": round(
                numbers["recovery_wall"] - numbers["pool_wall"], 3
            ),
        },
    }
    Path(args.out).write_text(
        json.dumps(record, indent=2) + "\n", encoding="utf-8"
    )
    if degraded and not multi_core:
        print(
            "\n" + "!" * 70 + "\n"
            "!! WARNING: cpu_count == 1 — workers serialize on one CPU, so\n"
            "!! the pool speedup is not meaningful (subprocess startup is\n"
            "!! pure overhead here).  The artifact is tagged \"degraded\":\n"
            "!! true; the equivalence and recovery numbers still hold.\n"
            + "!" * 70
        )
    elif degraded:
        print(
            "\n" + "!" * 70 + "\n"
            f"!! WARNING: only {numbers['speedup']:.2f}x on "
            f"{os.cpu_count()} CPUs — the pool did not engage; the\n"
            "!! artifact is tagged degraded.  Run --check to gate in CI.\n"
            + "!" * 70
        )
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
