"""Ablation: per-packet source rotation vs per-flow state defences.

A zombie that rotates its claimed source every packet turns one flood
into a stream of one-packet flows.  MAFIC's tables never converge on
such traffic (each packet faces the Bernoulli(Pd) gate), and per-flow
fair queueing at the victim cannot isolate it either (every "flow" is
new).  This bench quantifies both effects — the open problem the paper
leaves for table-less defences.
"""

from conftest import run_once

from repro.attacks.spoofing import SpoofMode, SpoofingModel
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment


def _run_pair():
    stable = run_experiment(
        ExperimentConfig(
            total_flows=24, n_routers=12, seed=191,
            spoofing=SpoofingModel(mode=SpoofMode.LEGIT_SUBNET),
        )
    )
    rotating = run_experiment(
        ExperimentConfig(
            total_flows=24, n_routers=12, seed=191,
            spoofing=SpoofingModel(
                mode=SpoofMode.LEGIT_SUBNET, rotate_per_packet=True
            ),
        )
    )
    return stable, rotating


class TestRotationAblation:
    def test_rotation_degrades_to_gate_probability(self, benchmark):
        stable, rotating = run_once(benchmark, _run_pair)
        print()
        for label, run in (("stable", stable), ("rotating", rotating)):
            admissions = sum(
                a.tables.counters.sft_admissions
                for a in run.scenario.agents.values()
            )
            print(
                f"{label:>9}: alpha={100 * run.summary.accuracy:6.2f}%  "
                f"theta_n={100 * run.summary.false_negative_rate:5.2f}%  "
                f"sft-admissions={admissions}"
            )

        pd = stable.config.mafic.drop_probability
        # Stable sources: near-total suppression.
        assert stable.summary.accuracy > 0.97
        # Rotation: suppression collapses to ~Pd — the gate is all
        # that's left once tables can't converge.
        assert abs(rotating.summary.accuracy - pd) < 0.08
        # And the tables bloat with one-packet flows (the storage
        # pressure that motivates hashed labels).
        stable_admissions = sum(
            a.tables.counters.sft_admissions
            for a in stable.scenario.agents.values()
        )
        rotating_admissions = sum(
            a.tables.counters.sft_admissions
            for a in rotating.scenario.agents.values()
        )
        assert rotating_admissions > 10 * max(1, stable_admissions)
