"""Windowed streaming aggregation over the event bus.

:class:`LiveMetrics` is the sink behind ``repro serve``: it folds the
event stream into monotonic totals plus sliding-window rates (per-flow
arrival rates, MAFIC verdict churn, drop ratios) with **bounded
memory** — the window deques hold at most one entry per event inside
the window, pruned as time advances, and everything else is O(1)
counters.  It is thread-safe: the simulation thread ``emit``\\ s while
HTTP handler threads read snapshots.

The *series* streaming aggregator (bit-exact replacement for
``BandwidthSeries.from_arrivals``) lives with the series type itself in
:mod:`repro.metrics.timeseries`; this module is only about live views.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.obs.events import MetricEvent


class LiveMetrics:
    """Sliding-window live view of a running scenario.

    Parameters
    ----------
    window:
        Sliding-window length in *simulation* seconds for the rate
        figures (arrival kbps, drops/s, verdicts/s).
    """

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._lock = threading.Lock()
        # ----------------------------------------------- monotonic totals
        self.sim_time = 0.0
        self.arrivals_total = 0
        self.arrival_bytes_total = 0
        self.attack_arrivals_total = 0
        self.legit_arrivals_total = 0
        self.decisions_total: dict[str, int] = {}  # action -> count
        self.drops_by_reason: dict[str, int] = {}
        self.decisions_by_truth: dict[tuple[str, str], int] = {}
        self.verdicts_total: dict[str, int] = {}  # verdict -> count
        self.verdict_confusion: dict[tuple[str, str], int] = {}
        self.link_drops: dict[tuple[str, str], int] = {}  # (link, reason)
        self.activation_time: float | None = None
        self.epochs = 0
        self.events_executed = 0
        self.pending_events = 0
        self.queue_backend = ""
        self.engine_build = ""
        self.runs_started = 0
        self.runs_completed = 0
        self.last_run: dict | None = None
        self.campaign: dict | None = None
        # -------------------------------------------------- sliding window
        # (time, bytes, is_attack) / (time,) tuples, pruned by sim time.
        self._arrival_window: deque[tuple[float, int, bool]] = deque()
        self._drop_window: deque[float] = deque()
        self._verdict_window: deque[float] = deque()

    # ------------------------------------------------------------ sink API

    def emit(self, event: MetricEvent) -> None:
        kind = event.kind
        with self._lock:
            if event.time > self.sim_time:
                self.sim_time = event.time
            if kind == "victim.arrival":
                self.arrivals_total += 1
                self.arrival_bytes_total += event.size
                if event.is_attack:
                    self.attack_arrivals_total += 1
                else:
                    self.legit_arrivals_total += 1
                self._arrival_window.append(
                    (event.time, event.size, event.is_attack)
                )
            elif kind == "defense.decision":
                self.decisions_total[event.action] = (
                    self.decisions_total.get(event.action, 0) + 1
                )
                key = (event.truth, event.action)
                self.decisions_by_truth[key] = (
                    self.decisions_by_truth.get(key, 0) + 1
                )
                if event.action == "drop":
                    self.drops_by_reason[event.reason] = (
                        self.drops_by_reason.get(event.reason, 0) + 1
                    )
                    self._drop_window.append(event.time)
            elif kind == "defense.verdict":
                self.verdicts_total[event.verdict] = (
                    self.verdicts_total.get(event.verdict, 0) + 1
                )
                key = (event.truth, event.verdict)
                self.verdict_confusion[key] = (
                    self.verdict_confusion.get(key, 0) + 1
                )
                self._verdict_window.append(event.time)
            elif kind == "defense.activation":
                if self.activation_time is None:
                    self.activation_time = event.time
            elif kind == "monitor.snapshot":
                self.epochs = event.epoch
            elif kind == "engine.stats":
                self.events_executed = event.events_executed
                self.pending_events = event.pending
                self.queue_backend = event.backend
            elif kind == "link.drop":
                key = (event.link, event.reason)
                self.link_drops[key] = self.link_drops.get(key, 0) + 1
            elif kind == "run.started":
                self.runs_started += 1
                engine = getattr(event, "engine", "")
                if engine:
                    self.engine_build = engine
            elif kind == "run.completed":
                self.runs_completed += 1
                self.last_run = event.to_dict()
            elif kind == "campaign.progress":
                self.campaign = event.to_dict()
            self._prune(self.sim_time)

    def close(self) -> None:
        """Nothing to flush; the last snapshot stays readable."""

    # ----------------------------------------------------------- windowing

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        window = self._arrival_window
        while window and window[0][0] < cutoff:
            window.popleft()
        drops = self._drop_window
        while drops and drops[0] < cutoff:
            drops.popleft()
        verdicts = self._verdict_window
        while verdicts and verdicts[0] < cutoff:
            verdicts.popleft()

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict:
        """One consistent dict of totals + windowed rates (thread-safe).

        Windowed figures divide by the configured window, so early-run
        values ramp up from zero rather than spiking (same convention as
        Prometheus ``rate()`` over a fixed range).
        """
        with self._lock:
            window_bytes = sum(entry[1] for entry in self._arrival_window)
            window_attack = sum(
                entry[1] for entry in self._arrival_window if entry[2]
            )
            dropped = self.decisions_total.get("drop", 0)
            examined = dropped + self.decisions_total.get("pass", 0)
            return {
                "sim_time": self.sim_time,
                "window_seconds": self.window,
                "arrivals_total": self.arrivals_total,
                "attack_arrivals_total": self.attack_arrivals_total,
                "legit_arrivals_total": self.legit_arrivals_total,
                "arrival_bytes_total": self.arrival_bytes_total,
                "arrival_kbps": window_bytes * 8.0 / 1e3 / self.window,
                "attack_kbps": window_attack * 8.0 / 1e3 / self.window,
                "legit_kbps": (
                    (window_bytes - window_attack) * 8.0 / 1e3 / self.window
                ),
                "examined_total": examined,
                "dropped_total": dropped,
                "drop_ratio": dropped / examined if examined else 0.0,
                "drops_per_second": len(self._drop_window) / self.window,
                "drops_by_reason": dict(self.drops_by_reason),
                "verdicts_total": dict(self.verdicts_total),
                "verdicts_per_second": len(self._verdict_window) / self.window,
                "verdict_confusion": {
                    f"{truth}:{verdict}": count
                    for (truth, verdict), count in sorted(
                        self.verdict_confusion.items()
                    )
                },
                "activation_time": self.activation_time,
                "epochs": self.epochs,
                "events_executed": self.events_executed,
                "pending_events": self.pending_events,
                "queue_backend": self.queue_backend,
                "engine_build": self.engine_build,
                "link_drops": {
                    f"{link}:{reason}": count
                    for (link, reason), count in sorted(self.link_drops.items())
                },
                "runs_started": self.runs_started,
                "runs_completed": self.runs_completed,
                "last_run": self.last_run,
                "campaign": self.campaign,
            }


class _FlowEntry:
    """One tracked flow's drill-down counters (exact since admission)."""

    __slots__ = (
        "flow", "truth", "atr", "drops", "passes", "drops_by_reason",
        "verdicts", "last_verdict", "last_verdict_time", "last_seen",
        "weight",
    )

    def __init__(self, flow: int, weight_floor: int) -> None:
        self.flow = flow
        self.truth = ""
        self.atr = ""
        self.drops = 0
        self.passes = 0
        self.drops_by_reason: dict[str, int] = {}
        self.verdicts = 0
        self.last_verdict = ""
        self.last_verdict_time: float | None = None
        self.last_seen = 0.0
        #: Space-saving activity weight; seeded with the evicted
        #: minimum so a re-admitted heavy hitter is not instantly
        #: evicted again.  Per-field counters above stay exact for the
        #: tracked period — only the eviction ORDER uses the floor.
        self.weight = weight_floor

    def to_dict(self) -> dict:
        return {
            "flow": self.flow,
            "truth": self.truth,
            "atr": self.atr,
            "drops": self.drops,
            "passes": self.passes,
            "drops_by_reason": dict(self.drops_by_reason),
            "verdicts": self.verdicts,
            "last_verdict": self.last_verdict,
            "last_verdict_time": self.last_verdict_time,
            "last_seen": self.last_seen,
        }


class FlowDrilldown:
    """Bounded top-K table of the most-dropped / most-throttled flows.

    A sink over ``defense.decision`` and ``defense.verdict`` events
    (which carry the flow hash and the deciding ATR).  Memory is bounded
    by ``capacity`` tracked flows via the space-saving heuristic: when a
    new flow arrives at a full table, the entry with the least activity
    is evicted and the newcomer inherits its activity weight as a floor,
    so persistent heavy hitters always survive one-packet noise.  The
    per-flow counters themselves are exact for the tracked period;
    ``evicted_flows`` in the snapshot tells truncation from quiet runs.

    Thread-safe: the simulation (or demux) thread emits while HTTP
    handlers snapshot.
    """

    def __init__(self, capacity: int = 512, top_k: int = 20) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.capacity = int(capacity)
        self.top_k = int(top_k)
        self._lock = threading.Lock()
        self._flows: dict[int, _FlowEntry] = {}
        self.evicted_flows = 0
        self.decisions_seen = 0
        self.verdicts_seen = 0

    # ------------------------------------------------------------ sink API

    def emit(self, event: MetricEvent) -> None:
        kind = event.kind
        if kind == "defense.decision":
            with self._lock:
                self.decisions_seen += 1
                entry = self._entry(event.flow)
                entry.weight += 1
                entry.last_seen = event.time
                entry.truth = event.truth
                if event.atr:
                    entry.atr = event.atr
                if event.action == "drop":
                    entry.drops += 1
                    entry.drops_by_reason[event.reason] = (
                        entry.drops_by_reason.get(event.reason, 0) + 1
                    )
                else:
                    entry.passes += 1
        elif kind == "defense.verdict":
            with self._lock:
                self.verdicts_seen += 1
                entry = self._entry(event.label)
                entry.weight += 1
                entry.last_seen = event.time
                entry.truth = event.truth
                if event.atr:
                    entry.atr = event.atr
                entry.verdicts += 1
                entry.last_verdict = event.verdict
                entry.last_verdict_time = event.time

    def close(self) -> None:
        """Nothing to flush; the table stays readable."""

    # ----------------------------------------------------------- internals

    def _entry(self, flow: int) -> _FlowEntry:
        entry = self._flows.get(flow)
        if entry is not None:
            return entry
        floor = 0
        if len(self._flows) >= self.capacity:
            victim = min(self._flows.values(), key=lambda e: e.weight)
            del self._flows[victim.flow]
            self.evicted_flows += 1
            floor = victim.weight
        entry = _FlowEntry(flow, floor)
        self._flows[flow] = entry
        return entry

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict:
        """Top-K tables plus tracking health, one consistent view."""
        with self._lock:
            entries = list(self._flows.values())
            top_dropped = sorted(
                (e for e in entries if e.drops),
                key=lambda e: (-e.drops, e.flow),
            )[: self.top_k]
            top_throttled = sorted(
                (
                    e for e in entries
                    if e.drops_by_reason.get("probe", 0)
                ),
                key=lambda e: (-e.drops_by_reason.get("probe", 0), e.flow),
            )[: self.top_k]
            return {
                "capacity": self.capacity,
                "top_k": self.top_k,
                "tracked_flows": len(entries),
                "evicted_flows": self.evicted_flows,
                "decisions_seen": self.decisions_seen,
                "verdicts_seen": self.verdicts_seen,
                "top_dropped": [e.to_dict() for e in top_dropped],
                "top_throttled": [e.to_dict() for e in top_throttled],
            }


class _AtrEntry:
    """One ATR's verdict-churn and drop counters."""

    __slots__ = (
        "atr", "verdicts", "flips", "drops", "drops_by_reason", "passes",
        "last_verdict_time", "verdict_window", "last_flow_verdict",
    )

    def __init__(self, atr: str) -> None:
        self.atr = atr
        self.verdicts: dict[str, int] = {}
        self.flips = 0
        self.drops = 0
        self.passes = 0
        self.drops_by_reason: dict[str, int] = {}
        self.last_verdict_time: float | None = None
        self.verdict_window: deque[float] = deque()
        #: flow -> last verdict at THIS atr, for flip detection.
        self.last_flow_verdict: dict[int, str] = {}


class AtrDrilldown:
    """Per-ATR verdict-churn tracker.

    Folds ``defense.verdict`` and ``defense.decision`` events into one
    entry per ATR: verdict counts by outcome, windowed verdict rate,
    drop/pass counts by reason, and **flips** — a flow re-judged to a
    different outcome than its previous verdict at the same ATR (the
    signature of verdict churn under ``renotice_interval`` re-probing,
    and of an adversary laundering flows through the nice table).

    ATR cardinality is topology-bounded (one per ingress), so entries
    are only bounded per-ATR: the flip-detection map remembers at most
    ``flow_memory`` flows per ATR, evicting oldest-inserted first.
    """

    def __init__(self, window: float = 1.0, flow_memory: int = 4096) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if flow_memory < 1:
            raise ValueError("flow_memory must be >= 1")
        self.window = float(window)
        self.flow_memory = int(flow_memory)
        self._lock = threading.Lock()
        self._atrs: dict[str, _AtrEntry] = {}
        self.sim_time = 0.0

    # ------------------------------------------------------------ sink API

    def emit(self, event: MetricEvent) -> None:
        kind = event.kind
        if kind == "defense.verdict":
            with self._lock:
                self._advance(event.time)
                entry = self._entry(event.atr)
                entry.verdicts[event.verdict] = (
                    entry.verdicts.get(event.verdict, 0) + 1
                )
                entry.last_verdict_time = event.time
                entry.verdict_window.append(event.time)
                previous = entry.last_flow_verdict.get(event.label)
                if previous is not None and previous != event.verdict:
                    entry.flips += 1
                if (
                    previous is None
                    and len(entry.last_flow_verdict) >= self.flow_memory
                ):
                    # Oldest-inserted eviction (dict preserves insertion
                    # order); forgets stale flows, keeps recent churn.
                    entry.last_flow_verdict.pop(
                        next(iter(entry.last_flow_verdict))
                    )
                entry.last_flow_verdict[event.label] = event.verdict
        elif kind == "defense.decision":
            with self._lock:
                self._advance(event.time)
                entry = self._entry(event.atr)
                if event.action == "drop":
                    entry.drops += 1
                    entry.drops_by_reason[event.reason] = (
                        entry.drops_by_reason.get(event.reason, 0) + 1
                    )
                else:
                    entry.passes += 1

    def close(self) -> None:
        """Nothing to flush; the table stays readable."""

    # ----------------------------------------------------------- internals

    def _entry(self, atr: str) -> _AtrEntry:
        entry = self._atrs.get(atr)
        if entry is None:
            entry = _AtrEntry(atr)
            self._atrs[atr] = entry
        return entry

    def _advance(self, now: float) -> None:
        if now > self.sim_time:
            self.sim_time = now
        cutoff = self.sim_time - self.window
        for entry in self._atrs.values():
            window = entry.verdict_window
            while window and window[0] < cutoff:
                window.popleft()

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict:
        """Every ATR's churn view, busiest (most verdicts) first."""
        with self._lock:
            rows = []
            for entry in self._atrs.values():
                total = sum(entry.verdicts.values())
                rows.append({
                    "atr": entry.atr,
                    "verdicts_total": total,
                    "verdicts": dict(sorted(entry.verdicts.items())),
                    "flips": entry.flips,
                    "drops": entry.drops,
                    "passes": entry.passes,
                    "drops_by_reason": dict(
                        sorted(entry.drops_by_reason.items())
                    ),
                    "verdicts_per_second": (
                        len(entry.verdict_window) / self.window
                    ),
                    "last_verdict_time": entry.last_verdict_time,
                })
            rows.sort(key=lambda row: (-row["verdicts_total"], row["atr"]))
            return {
                "window_seconds": self.window,
                "sim_time": self.sim_time,
                "atrs": rows,
            }
