"""Windowed streaming aggregation over the event bus.

:class:`LiveMetrics` is the sink behind ``repro serve``: it folds the
event stream into monotonic totals plus sliding-window rates (per-flow
arrival rates, MAFIC verdict churn, drop ratios) with **bounded
memory** — the window deques hold at most one entry per event inside
the window, pruned as time advances, and everything else is O(1)
counters.  It is thread-safe: the simulation thread ``emit``\\ s while
HTTP handler threads read snapshots.

The *series* streaming aggregator (bit-exact replacement for
``BandwidthSeries.from_arrivals``) lives with the series type itself in
:mod:`repro.metrics.timeseries`; this module is only about live views.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.obs.events import MetricEvent


class LiveMetrics:
    """Sliding-window live view of a running scenario.

    Parameters
    ----------
    window:
        Sliding-window length in *simulation* seconds for the rate
        figures (arrival kbps, drops/s, verdicts/s).
    """

    def __init__(self, window: float = 1.0) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self._lock = threading.Lock()
        # ----------------------------------------------- monotonic totals
        self.sim_time = 0.0
        self.arrivals_total = 0
        self.arrival_bytes_total = 0
        self.attack_arrivals_total = 0
        self.legit_arrivals_total = 0
        self.decisions_total: dict[str, int] = {}  # action -> count
        self.drops_by_reason: dict[str, int] = {}
        self.decisions_by_truth: dict[tuple[str, str], int] = {}
        self.verdicts_total: dict[str, int] = {}  # verdict -> count
        self.verdict_confusion: dict[tuple[str, str], int] = {}
        self.link_drops: dict[tuple[str, str], int] = {}  # (link, reason)
        self.activation_time: float | None = None
        self.epochs = 0
        self.events_executed = 0
        self.pending_events = 0
        self.queue_backend = ""
        self.runs_started = 0
        self.runs_completed = 0
        self.last_run: dict | None = None
        self.campaign: dict | None = None
        # -------------------------------------------------- sliding window
        # (time, bytes, is_attack) / (time,) tuples, pruned by sim time.
        self._arrival_window: deque[tuple[float, int, bool]] = deque()
        self._drop_window: deque[float] = deque()
        self._verdict_window: deque[float] = deque()

    # ------------------------------------------------------------ sink API

    def emit(self, event: MetricEvent) -> None:
        kind = event.kind
        with self._lock:
            if event.time > self.sim_time:
                self.sim_time = event.time
            if kind == "victim.arrival":
                self.arrivals_total += 1
                self.arrival_bytes_total += event.size
                if event.is_attack:
                    self.attack_arrivals_total += 1
                else:
                    self.legit_arrivals_total += 1
                self._arrival_window.append(
                    (event.time, event.size, event.is_attack)
                )
            elif kind == "defense.decision":
                self.decisions_total[event.action] = (
                    self.decisions_total.get(event.action, 0) + 1
                )
                key = (event.truth, event.action)
                self.decisions_by_truth[key] = (
                    self.decisions_by_truth.get(key, 0) + 1
                )
                if event.action == "drop":
                    self.drops_by_reason[event.reason] = (
                        self.drops_by_reason.get(event.reason, 0) + 1
                    )
                    self._drop_window.append(event.time)
            elif kind == "defense.verdict":
                self.verdicts_total[event.verdict] = (
                    self.verdicts_total.get(event.verdict, 0) + 1
                )
                key = (event.truth, event.verdict)
                self.verdict_confusion[key] = (
                    self.verdict_confusion.get(key, 0) + 1
                )
                self._verdict_window.append(event.time)
            elif kind == "defense.activation":
                if self.activation_time is None:
                    self.activation_time = event.time
            elif kind == "monitor.snapshot":
                self.epochs = event.epoch
            elif kind == "engine.stats":
                self.events_executed = event.events_executed
                self.pending_events = event.pending
                self.queue_backend = event.backend
            elif kind == "link.drop":
                key = (event.link, event.reason)
                self.link_drops[key] = self.link_drops.get(key, 0) + 1
            elif kind == "run.started":
                self.runs_started += 1
            elif kind == "run.completed":
                self.runs_completed += 1
                self.last_run = event.to_dict()
            elif kind == "campaign.progress":
                self.campaign = event.to_dict()
            self._prune(self.sim_time)

    def close(self) -> None:
        """Nothing to flush; the last snapshot stays readable."""

    # ----------------------------------------------------------- windowing

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        window = self._arrival_window
        while window and window[0][0] < cutoff:
            window.popleft()
        drops = self._drop_window
        while drops and drops[0] < cutoff:
            drops.popleft()
        verdicts = self._verdict_window
        while verdicts and verdicts[0] < cutoff:
            verdicts.popleft()

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict:
        """One consistent dict of totals + windowed rates (thread-safe).

        Windowed figures divide by the configured window, so early-run
        values ramp up from zero rather than spiking (same convention as
        Prometheus ``rate()`` over a fixed range).
        """
        with self._lock:
            window_bytes = sum(entry[1] for entry in self._arrival_window)
            window_attack = sum(
                entry[1] for entry in self._arrival_window if entry[2]
            )
            dropped = self.decisions_total.get("drop", 0)
            examined = dropped + self.decisions_total.get("pass", 0)
            return {
                "sim_time": self.sim_time,
                "window_seconds": self.window,
                "arrivals_total": self.arrivals_total,
                "attack_arrivals_total": self.attack_arrivals_total,
                "legit_arrivals_total": self.legit_arrivals_total,
                "arrival_bytes_total": self.arrival_bytes_total,
                "arrival_kbps": window_bytes * 8.0 / 1e3 / self.window,
                "attack_kbps": window_attack * 8.0 / 1e3 / self.window,
                "legit_kbps": (
                    (window_bytes - window_attack) * 8.0 / 1e3 / self.window
                ),
                "examined_total": examined,
                "dropped_total": dropped,
                "drop_ratio": dropped / examined if examined else 0.0,
                "drops_per_second": len(self._drop_window) / self.window,
                "drops_by_reason": dict(self.drops_by_reason),
                "verdicts_total": dict(self.verdicts_total),
                "verdicts_per_second": len(self._verdict_window) / self.window,
                "verdict_confusion": {
                    f"{truth}:{verdict}": count
                    for (truth, verdict), count in sorted(
                        self.verdict_confusion.items()
                    )
                },
                "activation_time": self.activation_time,
                "epochs": self.epochs,
                "events_executed": self.events_executed,
                "pending_events": self.pending_events,
                "queue_backend": self.queue_backend,
                "link_drops": {
                    f"{link}:{reason}": count
                    for (link, reason), count in sorted(self.link_drops.items())
                },
                "runs_started": self.runs_started,
                "runs_completed": self.runs_completed,
                "last_run": self.last_run,
                "campaign": self.campaign,
            }
