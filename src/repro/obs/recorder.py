"""Flight recorder: JSONL record/replay for the event bus.

:class:`JsonlSink` subscribes to an :class:`~repro.obs.bus.EventBus`
like any other sink and writes every event as one JSON line — the exact
``to_dict()`` payload the serve layer already streams over SSE.  The
first line of every recording is a *header* carrying the schema version
and run metadata, so a reader can refuse files it does not understand
before parsing a single event.

Paths ending in ``.gz`` are gzip-compressed transparently on write;
readers do not trust the suffix and sniff the two gzip magic bytes
instead, so renamed files still open.

:func:`open_recording` gives the header plus a typed-event iterator
(via :func:`repro.obs.events.event_from_dict`), which is everything
``repro replay`` needs to feed a dead run back through the same broker
that serves live ones.  Events of unknown kind — a recording written by
a newer schema revision — are counted and skipped, not fatal.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import threading
from typing import IO, Iterator

from repro.obs.events import MetricEvent, event_from_dict

#: Bumped when the header shape or event envelope changes incompatibly.
SCHEMA_VERSION = 1

#: The ``schema`` string stamped into (and demanded of) every header.
SCHEMA_NAME = "repro.obs.recording"

_GZIP_MAGIC = b"\x1f\x8b"


class RecordingError(ValueError):
    """The file is not a readable repro recording."""


class JsonlSink:
    """Record the full typed event stream to a (gzip) JSONL file.

    Parameters
    ----------
    path:
        Output file; a ``.gz`` suffix selects gzip compression.
        Parent directories are created.
    metadata:
        JSON-serializable run metadata for the header line (scenario
        name, argv, host — whatever the caller wants future readers to
        see without scanning events).

    The sink is thread-safe (campaign demux threads may emit
    concurrently) and buffers through the underlying file object; call
    :meth:`close` (or use it as a context manager) to flush the tail.
    """

    def __init__(self, path: str, metadata: dict | None = None) -> None:
        self.path = str(path)
        self.events_written = 0
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        if self.path.endswith(".gz"):
            self._file: IO[str] = gzip.open(
                self.path, "wt", encoding="utf-8", newline="\n"
            )
        else:
            self._file = open(
                self.path, "w", encoding="utf-8", newline="\n"
            )
        self._lock = threading.Lock()
        header = {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "metadata": metadata or {},
        }
        self._file.write(json.dumps(header, separators=(",", ":")) + "\n")

    def emit(self, event: MetricEvent) -> None:
        """Append one event as a JSON line."""
        line = json.dumps(event.to_dict(), separators=(",", ":"))
        with self._lock:
            self._file.write(line + "\n")
            self.events_written += 1

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Recording:
    """A validated recording: its header plus a typed-event iterator."""

    def __init__(self, path: str, header: dict) -> None:
        self.path = str(path)
        self.header = header
        #: Lines whose ``kind`` this build does not know (newer schema
        #: revision); updated as :meth:`events` is consumed.
        self.unknown_kinds = 0

    @property
    def metadata(self) -> dict:
        """The run metadata stamped at record time."""
        return self.header.get("metadata", {})

    def events(self) -> Iterator[MetricEvent]:
        """Yield every event in recorded order, skipping unknown kinds.

        Re-opens the file, so it can be iterated more than once.
        """
        with _open_text(self.path) as handle:
            try:
                handle.readline()  # header, already validated
                for lineno, line in enumerate(handle, start=2):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise RecordingError(
                            f"{self.path}:{lineno}: corrupt event line: "
                            f"{exc}"
                        ) from exc
                    event = event_from_dict(payload)
                    if event is None:
                        self.unknown_kinds += 1
                        continue
                    yield event
            except EOFError as exc:
                # A gzip stream cut off mid-member: the recorder died
                # (or is still running) before closing the file.
                raise RecordingError(
                    f"{self.path}: truncated recording: {exc}"
                ) from exc


def open_recording(path: str) -> Recording:
    """Validate ``path``'s header and return the :class:`Recording`.

    Raises :class:`RecordingError` when the file is missing a header,
    carries a different schema name, or a newer major version.
    """
    try:
        with _open_text(path) as handle:
            first = handle.readline()
    except EOFError as exc:
        raise RecordingError(
            f"{path}: truncated recording: {exc}"
        ) from exc
    if not first.strip():
        raise RecordingError(f"{path}: empty file, no recording header")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise RecordingError(
            f"{path}: first line is not a JSON recording header: {exc}"
        ) from exc
    if not isinstance(header, dict) or header.get("schema") != SCHEMA_NAME:
        raise RecordingError(
            f"{path}: not a {SCHEMA_NAME} recording "
            f"(schema={header.get('schema')!r})"
            if isinstance(header, dict)
            else f"{path}: recording header must be a JSON object"
        )
    version = header.get("version")
    if not isinstance(version, int) or version > SCHEMA_VERSION:
        raise RecordingError(
            f"{path}: recording schema version {version!r} is newer than "
            f"this build understands (max {SCHEMA_VERSION})"
        )
    return Recording(path, header)


def _open_text(path: str) -> IO[str]:
    """Open plain or gzip JSONL for reading, sniffing the magic bytes."""
    raw = open(path, "rb")
    try:
        magic = raw.read(2)
        raw.seek(0)
        if magic == _GZIP_MAGIC:
            return io.TextIOWrapper(
                gzip.GzipFile(fileobj=raw, mode="rb"), encoding="utf-8"
            )
        return io.TextIOWrapper(raw, encoding="utf-8")
    except Exception:
        raw.close()
        raise
