"""Campaign shard worker: ``python -m repro.obs.worker``.

The multiplexed half of multi-worker serve mode.  The parent
(:func:`repro.obs.serve._serve_campaign_parallel`) writes one JSON
assignment on stdin::

    {"spec_path": "...", "root": "...", "series_bin_width": 0.05,
     "run_ids": ["...", ...]}

and this process executes exactly those planned cells with the same
``run_experiment`` + ``store.write_result`` the batch orchestrator
uses (the store is multi-writer safe), while streaming its **entire**
event bus to stdout as JSON lines — the parent decodes them back into
typed events and feeds its own bus, so one dashboard shows every
worker.  Anything human-readable goes to stderr; stdout is protocol.

High-frequency per-packet kinds ride the pipe's block buffering; the
stream is flushed on every low-frequency event (verdicts, epochs, run
boundaries) so the parent's live view lags by at most a buffer of
packet-level lines.
"""

from __future__ import annotations

import json
import sys

from repro.obs.events import MetricEvent

#: Kinds that ride the block buffer; everything else forces a flush.
_BUFFERED_KINDS = frozenset({"victim.arrival", "defense.decision"})


class StdoutJsonSink:
    """Stream every bus event as one JSON line on stdout."""

    def __init__(self, stream=None) -> None:
        self._stream = stream if stream is not None else sys.stdout
        self.events_written = 0

    def emit(self, event: MetricEvent) -> None:
        payload = event.to_dict()
        self._stream.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self.events_written += 1
        if payload["kind"] not in _BUFFERED_KINDS:
            self._stream.flush()

    def close(self) -> None:
        try:
            self._stream.flush()
        except ValueError:
            pass  # interpreter teardown already closed stdout


def work(assignment: dict) -> int:
    """Execute the assigned run_ids; returns the process exit code."""
    from repro.campaign.orchestrator import open_store
    from repro.campaign.spec import CampaignSpec
    from repro.experiments.runner import run_experiment
    from repro.obs.bus import EventBus
    from repro.obs.events import CampaignRun

    spec = CampaignSpec.load(assignment["spec_path"])
    series_bin_width = float(assignment.get("series_bin_width", 0.05))
    store = open_store(spec, assignment["root"])
    wanted = set(assignment["run_ids"])
    plan = {run.run_id: run for run in spec.plan()}
    unknown = wanted - plan.keys()
    if unknown:
        print(
            f"worker: {len(unknown)} assigned run_ids are not in the "
            f"plan of {spec.name!r} (stale parent?)",
            file=sys.stderr,
        )
        return 2

    bus = EventBus()
    sink = StdoutJsonSink()
    bus.subscribe(sink)
    # Preserve the parent's planning order within this shard, so the
    # event stream (and any recording of it) is deterministic per shard.
    assigned = [run for run in plan.values() if run.run_id in wanted]
    for planned in assigned:
        result = run_experiment(planned.config, bus=bus)
        store.write_result(
            result, point=planned.point, series_bin_width=series_bin_width
        )
        pct = result.summary.as_percent()
        bus.emit(CampaignRun(
            time=0.0, run_id=planned.run_id, seed=planned.seed,
            point=dict(planned.point), alpha=pct["alpha"],
            beta=pct["beta"], wall_seconds=result.wall_seconds,
        ))
    bus.close()
    return 0


def main() -> int:
    try:
        assignment = json.loads(sys.stdin.read())
    except json.JSONDecodeError as exc:
        print(f"worker: bad assignment on stdin: {exc}", file=sys.stderr)
        return 2
    try:
        return work(assignment)
    except KeyboardInterrupt:
        return 130
    except BrokenPipeError:
        return 1  # parent went away; nothing left to stream to


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
