"""Metric event types carried by the observability bus.

Every event is a slotted dataclass with a class-level ``kind`` string
(dotted, Prometheus-label friendly) and a :meth:`to_dict` that yields a
flat JSON-serializable payload — the exact shape ``repro serve`` streams
as JSON lines / SSE.  Producers construct events **only when a sink is
attached** (the bus is falsy when nobody listens), so the batch hot path
never pays for event allocation.

The taxonomy mirrors the layers that publish:

==================  ====================================================
kind                producer
==================  ====================================================
victim.arrival      victim metrics collector (one per arriving packet)
defense.decision    defence line (one per examined packet: drop/pass)
defense.verdict     MAFIC table verdicts, with ground truth attached
defense.activation  first pushback-start instant
monitor.snapshot    TrafficMonitor epoch (traffic-matrix recompute)
engine.stats        scheduler/queue occupancy, piggybacked on epochs
link.drop           a link-head hook, queue, or failed link ate a packet
link.stats          periodic per-link counter snapshot (serve layer)
run.started         run_experiment, after scenario build
run.completed       run_experiment, with the headline summary
campaign.run        orchestrator, one per freshly executed cell
campaign.progress   orchestrator, after every filed wave
worker.started      pool worker, once per process after store open
worker.heartbeat    pool worker, alongside each lease re-stamp
worker.died         pool parent, when a worker exits abnormally
==================  ====================================================
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(slots=True)
class MetricEvent:
    """Base event: a timestamped occurrence on the bus.

    ``time`` is *simulation* time for sim/metrics events and 0.0 for
    orchestration events that happen outside any one run's clock.
    """

    kind = "event"

    time: float

    def to_dict(self) -> dict:
        """Flat JSON payload (``kind`` + every field)."""
        payload = {"kind": self.kind}
        for field in dataclasses.fields(self):
            payload[field.name] = getattr(self, field.name)
        return payload


@dataclass(slots=True)
class VictimArrival(MetricEvent):
    """One packet reached the victim host."""

    kind = "victim.arrival"

    size: int
    is_attack: bool


@dataclass(slots=True)
class DefenseDecision(MetricEvent):
    """The defence line examined one packet.

    ``action`` is ``"drop"`` or ``"pass"``; ``reason`` is the drop
    reason (``probe``/``pdt``/``illegal``/``policy``) or ``""`` for a
    pass.  ``truth`` is the packet's ground-truth class value.
    ``flow`` is the packet's flow hash and ``atr`` the deciding agent's
    router — the two dimensions the drill-down views aggregate over.
    """

    kind = "defense.decision"

    action: str
    reason: str
    truth: str
    flow: int = 0
    atr: str = ""


@dataclass(slots=True)
class Verdict(MetricEvent):
    """A MAFIC table verdict, classified against ground truth.

    ``atr`` names the agent (ingress router) that issued the verdict.
    """

    kind = "defense.verdict"

    label: int
    verdict: str
    truth: str
    atr: str = ""


@dataclass(slots=True)
class DefenseActivation(MetricEvent):
    """First pushback-start instant of the run."""

    kind = "defense.activation"


@dataclass(slots=True)
class MonitorSnapshot(MetricEvent):
    """One TrafficMonitor epoch finished its matrix recompute."""

    kind = "monitor.snapshot"

    epoch: int
    n_sources: int
    n_destinations: int
    ingress_total: float
    egress_total: float


@dataclass(slots=True)
class EngineStats(MetricEvent):
    """Scheduler/queue occupancy (piggybacked on monitor epochs)."""

    kind = "engine.stats"

    backend: str
    events_executed: int
    pending: int
    peak_occupancy: int


@dataclass(slots=True)
class LinkDrop(MetricEvent):
    """A link consumed an offered packet instead of forwarding it.

    ``reason`` is ``"hook"`` (a head hook ate it), ``"queue"`` (tail
    drop), or ``"down"`` (link failed).
    """

    kind = "link.drop"

    link: str
    reason: str


@dataclass(slots=True)
class LinkStats(MetricEvent):
    """Periodic per-link counter snapshot."""

    kind = "link.stats"

    link: str
    packets_offered: int
    packets_sent: int
    bytes_sent: int
    hook_drops: int
    failure_drops: int
    queue_len: int


@dataclass(slots=True)
class RunStarted(MetricEvent):
    """A run began executing (time is always 0.0).

    ``engine`` records the active engine build (``"compiled"`` or
    ``"pure"``, from :func:`repro.sim._core.core_info`) so recordings
    and dashboards say which core produced the event stream.
    """

    kind = "run.started"

    run_id: str
    seed: int
    scenario: str
    duration: float
    engine: str = ""


@dataclass(slots=True)
class RunCompleted(MetricEvent):
    """A run finished; carries the paper's headline rates (percent)."""

    kind = "run.completed"

    run_id: str
    seed: int
    alpha: float
    beta: float
    theta_p: float
    theta_n: float
    lr: float
    events_executed: int
    wall_seconds: float


@dataclass(slots=True)
class CampaignRun(MetricEvent):
    """The orchestrator executed (not cache-hit) one grid cell."""

    kind = "campaign.run"

    run_id: str
    seed: int
    point: dict
    alpha: float
    beta: float
    wall_seconds: float


@dataclass(slots=True)
class CampaignProgress(MetricEvent):
    """Wave-granular campaign progress: ``done`` of ``total`` new runs."""

    kind = "campaign.progress"

    name: str
    done: int
    total: int
    cached: int


@dataclass(slots=True)
class WorkerStarted(MetricEvent):
    """A pool worker came up and opened the store (time is 0.0)."""

    kind = "worker.started"

    worker: str
    pid: int
    host: str
    store: str
    cells: int


@dataclass(slots=True)
class WorkerHeartbeat(MetricEvent):
    """A worker re-stamped its lease mid-cell: still alive, still on it."""

    kind = "worker.heartbeat"

    worker: str
    run_id: str
    elapsed: float
    executed: int


@dataclass(slots=True)
class WorkerDied(MetricEvent):
    """The pool parent noticed a worker exit abnormally.

    ``reason`` is ``"signal"`` (killed — SIGKILL, OOM, chaos),
    ``"timeout"`` (the worker's own cell-timeout watchdog fired) or
    ``"error"`` (nonzero exit); ``exitcode`` is the raw wait status'
    returncode (negative = signal number).
    """

    kind = "worker.died"

    worker: str
    reason: str
    exitcode: int


#: kind -> event class, for deserializing recorded/multiplexed streams.
EVENT_TYPES: dict[str, type[MetricEvent]] = {
    cls.kind: cls
    for cls in (
        VictimArrival,
        DefenseDecision,
        Verdict,
        DefenseActivation,
        MonitorSnapshot,
        EngineStats,
        LinkDrop,
        LinkStats,
        RunStarted,
        RunCompleted,
        CampaignRun,
        CampaignProgress,
        WorkerStarted,
        WorkerHeartbeat,
        WorkerDied,
    )
}


def event_from_dict(payload: dict) -> MetricEvent | None:
    """Rebuild the typed event a :meth:`MetricEvent.to_dict` produced.

    The exact inverse of ``to_dict`` for every kind in
    :data:`EVENT_TYPES`; unknown kinds (a newer recording schema's
    additions) and unknown fields are tolerated — the former return
    ``None``, the latter are dropped — so old readers degrade instead
    of crashing on new streams.
    """
    cls = EVENT_TYPES.get(payload.get("kind", ""))
    if cls is None:
        return None
    names = _FIELD_NAMES[cls.kind]
    return cls(**{
        key: value for key, value in payload.items() if key in names
    })


#: kind -> frozenset of constructor field names (hot in replay/demux).
_FIELD_NAMES: dict[str, frozenset[str]] = {
    kind: frozenset(field.name for field in dataclasses.fields(cls))
    for kind, cls in EVENT_TYPES.items()
}
