"""The metric sink protocol and the fan-out event bus.

Design constraints, in order:

1. **Zero cost when idle.**  Producers hold a bus reference and guard
   every emit site with a truthiness check (``if bus: bus.emit(...)``).
   :class:`EventBus` is falsy while it has no subscribers and
   :data:`NULL_BUS` is always falsy, so the batch hot path pays one
   pointer test and never allocates an event.
2. **Deterministic fan-out.**  Subscribers receive events strictly in
   attachment order; a sink never observes an event out of order with
   respect to another sink.  (The ordering test in ``tests/obs``
   pins this.)
3. **No threading opinions.**  The bus itself is plain synchronous
   call fan-out on the simulation thread; thread-safe consumers (the
   serve layer's windowed aggregators and SSE broker) do their own
   locking inside ``emit``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol, runtime_checkable

from repro.obs.events import MetricEvent


@runtime_checkable
class MetricSink(Protocol):
    """Anything that can consume :class:`MetricEvent` objects.

    ``emit`` is called once per event, on the thread that produced it
    (the simulation thread during a run).  ``close`` is called once when
    the producing context ends; sinks that buffer or hold sockets flush
    there.  Sinks must never raise from ``emit`` — a failing sink would
    abort the simulation it observes.
    """

    def emit(self, event: MetricEvent) -> None: ...

    def close(self) -> None: ...


class NullSink:
    """The do-nothing sink; falsy, so producers skip event construction.

    The default everywhere a sink parameter exists: attaching it is
    indistinguishable (bit-exactly) from attaching nothing.
    """

    def __bool__(self) -> bool:
        return False

    def emit(self, event: MetricEvent) -> None:
        """Drop the event."""

    def close(self) -> None:
        """Nothing to flush."""


#: Shared do-nothing instance (stateless, safe to share).
NULL_SINK = NullSink()


class BufferedSink:
    """Accumulate events in memory, optionally bounded.

    The in-process default for tests and for post-run inspection.  With
    ``max_events`` set, the **oldest** events are discarded once the
    bound is hit (live observation cares about the recent past), and
    ``dropped`` counts the discards so consumers can tell truncation
    from a quiet run.
    """

    def __init__(self, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.max_events = max_events
        self.events: list[MetricEvent] = []
        self.dropped = 0

    def emit(self, event: MetricEvent) -> None:
        self.events.append(event)
        if self.max_events is not None and len(self.events) > self.max_events:
            overflow = len(self.events) - self.max_events
            del self.events[:overflow]
            self.dropped += overflow

    def close(self) -> None:
        """Nothing to flush; events stay readable."""

    def of_kind(self, kind: str) -> list[MetricEvent]:
        """The buffered events of one kind, in emission order."""
        return [event for event in self.events if event.kind == kind]

    def __len__(self) -> int:
        return len(self.events)


class CallbackSink:
    """Adapt a plain callable into a sink (e.g. ``print`` wrappers)."""

    def __init__(self, fn: Callable[[MetricEvent], None]) -> None:
        if not callable(fn):
            raise TypeError("fn must be callable")
        self._fn = fn

    def emit(self, event: MetricEvent) -> None:
        self._fn(event)

    def close(self) -> None:
        """Callbacks own no resources."""


class _Subscription:
    """One sink plus its kind filter (None = everything)."""

    __slots__ = ("sink", "kinds")

    def __init__(self, sink: MetricSink, kinds: frozenset[str] | None) -> None:
        self.sink = sink
        self.kinds = kinds


class EventBus:
    """Synchronous fan-out of metric events to subscribed sinks.

    Falsy while no sink is subscribed — producers use that to skip
    event construction entirely.  ``emit`` forwards to subscribers in
    attachment order; a ``kinds`` filter restricts a subscriber to a
    subset of event kinds without burdening the others.
    """

    def __init__(self) -> None:
        self._subs: list[_Subscription] = []

    def __bool__(self) -> bool:
        return bool(self._subs)

    def subscribe(
        self, sink: MetricSink, kinds: Iterable[str] | None = None
    ) -> MetricSink:
        """Attach ``sink`` (optionally only for the given event kinds).

        Returns the sink, so ``bus.subscribe(BufferedSink())`` reads
        naturally.  Subscribing the same sink twice delivers twice.
        """
        kindset = None if kinds is None else frozenset(kinds)
        if kindset is not None and not kindset:
            raise ValueError("kinds must be None or non-empty")
        self._subs.append(_Subscription(sink, kindset))
        return sink

    def unsubscribe(self, sink: MetricSink) -> None:
        """Detach every subscription of ``sink`` (missing is a no-op)."""
        self._subs = [sub for sub in self._subs if sub.sink is not sink]

    def emit(self, event: MetricEvent) -> None:
        """Deliver one event to every matching subscriber, in order."""
        kind = event.kind
        for sub in self._subs:
            if sub.kinds is None or kind in sub.kinds:
                sub.sink.emit(event)

    def close(self) -> None:
        """Close every subscriber (each at most once, attachment order)."""
        seen: list[int] = []
        for sub in self._subs:
            if id(sub.sink) not in seen:
                seen.append(id(sub.sink))
                sub.sink.close()


#: Shared falsy bus stand-in for "no observability attached".
NULL_BUS = NULL_SINK
