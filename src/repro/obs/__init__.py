"""Streaming observability: metric events, pluggable sinks, live views.

The package every layer publishes into:

* :mod:`repro.obs.events` — the event taxonomy (slotted dataclasses).
* :mod:`repro.obs.bus` — :class:`MetricSink` protocol, :class:`EventBus`
  fan-out, :class:`NullSink`/:class:`BufferedSink`/:class:`CallbackSink`.
* :mod:`repro.obs.aggregators` — :class:`LiveMetrics`, the windowed
  bounded-memory aggregator behind ``repro serve``.
* :mod:`repro.obs.exposition` — Prometheus text rendering.
* :mod:`repro.obs.serve` — the ``python -m repro serve`` HTTP layer
  (imported lazily by the CLI; importing it pulls in ``http.server``).

The cardinal rule: **no sink attached, no cost, no behaviour change.**
Producers guard every emit with a bus truthiness test, and the
golden-master suite pins that a bus-free run, a buffered run, and a
streaming-series run are bit-identical.
"""

from repro.obs.aggregators import LiveMetrics
from repro.obs.bus import (
    NULL_BUS,
    NULL_SINK,
    BufferedSink,
    CallbackSink,
    EventBus,
    MetricSink,
    NullSink,
)
from repro.obs.events import (
    CampaignProgress,
    CampaignRun,
    DefenseActivation,
    DefenseDecision,
    EngineStats,
    LinkDrop,
    LinkStats,
    MetricEvent,
    MonitorSnapshot,
    RunCompleted,
    RunStarted,
    Verdict,
    VictimArrival,
)

__all__ = [
    "NULL_BUS",
    "NULL_SINK",
    "BufferedSink",
    "CallbackSink",
    "CampaignProgress",
    "CampaignRun",
    "DefenseActivation",
    "DefenseDecision",
    "EngineStats",
    "EventBus",
    "LinkDrop",
    "LinkStats",
    "LiveMetrics",
    "MetricEvent",
    "MetricSink",
    "MonitorSnapshot",
    "NullSink",
    "RunCompleted",
    "RunStarted",
    "Verdict",
    "VictimArrival",
]
