"""Prometheus text exposition of :class:`~repro.obs.aggregators.LiveMetrics`.

Version 0.0.4 of the text format, stdlib only: ``# HELP``/``# TYPE``
headers, ``metric{label="value"} number`` samples.  Counters end in
``_total``; windowed figures are gauges.  The format is pinned by a unit
test so dashboards scraping ``/metrics`` don't silently break.
"""

from __future__ import annotations

from repro.obs.aggregators import LiveMetrics


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _sample(name: str, value, labels: dict[str, str] | None = None) -> str:
    if labels:
        inner = ",".join(
            f'{key}="{_escape(str(val))}"' for key, val in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {value}"
    return f"{name} {value}"


def render_prometheus(live: LiveMetrics) -> str:
    """The ``/metrics`` page body for one live-metrics snapshot."""
    snap = live.snapshot()
    lines: list[str] = []

    def metric(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    metric("repro_sim_time_seconds", "gauge", "Current simulation time.")
    lines.append(_sample("repro_sim_time_seconds", snap["sim_time"]))

    metric(
        "repro_victim_arrivals_total", "counter",
        "Packets that reached the victim host, by ground truth.",
    )
    lines.append(_sample(
        "repro_victim_arrivals_total", snap["attack_arrivals_total"],
        {"truth": "attack"},
    ))
    lines.append(_sample(
        "repro_victim_arrivals_total", snap["legit_arrivals_total"],
        {"truth": "legit"},
    ))

    metric(
        "repro_victim_arrival_bytes_total", "counter",
        "Bytes that reached the victim host.",
    )
    lines.append(_sample(
        "repro_victim_arrival_bytes_total", snap["arrival_bytes_total"]
    ))

    metric(
        "repro_victim_arrival_kbps", "gauge",
        "Windowed victim arrival rate (kbit/s), by ground truth.",
    )
    lines.append(_sample(
        "repro_victim_arrival_kbps", snap["attack_kbps"], {"truth": "attack"}
    ))
    lines.append(_sample(
        "repro_victim_arrival_kbps", snap["legit_kbps"], {"truth": "legit"}
    ))

    metric(
        "repro_defense_examined_total", "counter",
        "Packets examined by the defence line.",
    )
    lines.append(_sample("repro_defense_examined_total", snap["examined_total"]))

    metric(
        "repro_defense_drops_total", "counter",
        "Defence-line drops by reason.",
    )
    for reason, count in sorted(snap["drops_by_reason"].items()):
        lines.append(_sample(
            "repro_defense_drops_total", count, {"reason": reason}
        ))

    metric(
        "repro_defense_drop_ratio", "gauge",
        "Dropped / examined over the whole run so far.",
    )
    lines.append(_sample("repro_defense_drop_ratio", snap["drop_ratio"]))

    metric(
        "repro_defense_drops_per_second", "gauge",
        "Windowed defence drop rate.",
    )
    lines.append(_sample(
        "repro_defense_drops_per_second", snap["drops_per_second"]
    ))

    metric(
        "repro_verdicts_total", "counter",
        "MAFIC table verdicts by (ground truth, verdict).",
    )
    for key, count in sorted(snap["verdict_confusion"].items()):
        truth, _, verdict = key.partition(":")
        lines.append(_sample(
            "repro_verdicts_total", count, {"truth": truth, "verdict": verdict}
        ))

    metric(
        "repro_verdicts_per_second", "gauge", "Windowed verdict churn."
    )
    lines.append(_sample(
        "repro_verdicts_per_second", snap["verdicts_per_second"]
    ))

    metric(
        "repro_link_drops_total", "counter",
        "Link-level drops by (link, reason).",
    )
    for key, count in sorted(snap["link_drops"].items()):
        link, _, reason = key.rpartition(":")
        lines.append(_sample(
            "repro_link_drops_total", count, {"link": link, "reason": reason}
        ))

    metric(
        "repro_engine_events_executed_total", "counter",
        "Simulator events executed.",
    )
    lines.append(_sample(
        "repro_engine_events_executed_total", snap["events_executed"]
    ))

    metric(
        "repro_engine_pending_events", "gauge",
        "Live (non-cancelled) events queued in the scheduler.",
    )
    lines.append(_sample("repro_engine_pending_events", snap["pending_events"]))

    metric("repro_monitor_epochs_total", "counter", "TrafficMonitor epochs.")
    lines.append(_sample("repro_monitor_epochs_total", snap["epochs"]))

    metric(
        "repro_defense_activated", "gauge",
        "1 once pushback has activated, else 0.",
    )
    lines.append(_sample(
        "repro_defense_activated",
        0 if snap["activation_time"] is None else 1,
    ))

    metric("repro_runs_completed_total", "counter", "Runs finished serving.")
    lines.append(_sample("repro_runs_completed_total", snap["runs_completed"]))

    return "\n".join(lines) + "\n"
