"""Prometheus text exposition of :class:`~repro.obs.aggregators.LiveMetrics`.

Version 0.0.4 of the text format, stdlib only: ``# HELP``/``# TYPE``
headers, ``metric{label="value"} number`` samples.  Counters end in
``_total``; windowed figures are gauges.  The format is pinned by a unit
test so dashboards scraping ``/metrics`` don't silently break.
"""

from __future__ import annotations

import math

from repro.obs.aggregators import LiveMetrics


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value) -> str:
    """One sample value as the text format spells it.

    Floats that aren't finite must be rendered as ``NaN``/``+Inf``/
    ``-Inf`` — Python's ``str()`` says ``nan``/``inf``, which scrapers
    reject.  Everything else keeps its ``str()`` form (ints stay
    unsuffixed, floats keep repr precision).
    """
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return "NaN"
        return "+Inf" if value > 0 else "-Inf"
    return str(value)


def _sample(name: str, value, labels: dict[str, str] | None = None) -> str:
    if labels:
        inner = ",".join(
            f'{key}="{_escape(str(val))}"' for key, val in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def render_prometheus(
    live: LiveMetrics,
    flows=None,
    atrs=None,
    sse: dict | None = None,
) -> str:
    """The ``/metrics`` page body for one live-metrics snapshot.

    ``flows``/``atrs`` are the optional drill-down aggregators
    (:class:`~repro.obs.aggregators.FlowDrilldown` /
    :class:`~repro.obs.aggregators.AtrDrilldown`); when given, their
    top-K tables are exposed as labeled series.  ``sse`` is the
    broker's :meth:`~repro.obs.serve.SSEBroker.stats` dict for the
    back-pressure counters.
    """
    snap = live.snapshot()
    lines: list[str] = []

    def metric(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    metric("repro_sim_time_seconds", "gauge", "Current simulation time.")
    lines.append(_sample("repro_sim_time_seconds", snap["sim_time"]))

    metric(
        "repro_victim_arrivals_total", "counter",
        "Packets that reached the victim host, by ground truth.",
    )
    lines.append(_sample(
        "repro_victim_arrivals_total", snap["attack_arrivals_total"],
        {"truth": "attack"},
    ))
    lines.append(_sample(
        "repro_victim_arrivals_total", snap["legit_arrivals_total"],
        {"truth": "legit"},
    ))

    metric(
        "repro_victim_arrival_bytes_total", "counter",
        "Bytes that reached the victim host.",
    )
    lines.append(_sample(
        "repro_victim_arrival_bytes_total", snap["arrival_bytes_total"]
    ))

    metric(
        "repro_victim_arrival_kbps", "gauge",
        "Windowed victim arrival rate (kbit/s), by ground truth.",
    )
    lines.append(_sample(
        "repro_victim_arrival_kbps", snap["attack_kbps"], {"truth": "attack"}
    ))
    lines.append(_sample(
        "repro_victim_arrival_kbps", snap["legit_kbps"], {"truth": "legit"}
    ))

    metric(
        "repro_defense_examined_total", "counter",
        "Packets examined by the defence line.",
    )
    lines.append(_sample("repro_defense_examined_total", snap["examined_total"]))

    metric(
        "repro_defense_drops_total", "counter",
        "Defence-line drops by reason.",
    )
    for reason, count in sorted(snap["drops_by_reason"].items()):
        lines.append(_sample(
            "repro_defense_drops_total", count, {"reason": reason}
        ))

    metric(
        "repro_defense_drop_ratio", "gauge",
        "Dropped / examined over the whole run so far.",
    )
    lines.append(_sample("repro_defense_drop_ratio", snap["drop_ratio"]))

    metric(
        "repro_defense_drops_per_second", "gauge",
        "Windowed defence drop rate.",
    )
    lines.append(_sample(
        "repro_defense_drops_per_second", snap["drops_per_second"]
    ))

    metric(
        "repro_verdicts_total", "counter",
        "MAFIC table verdicts by (ground truth, verdict).",
    )
    for key, count in sorted(snap["verdict_confusion"].items()):
        truth, _, verdict = key.partition(":")
        lines.append(_sample(
            "repro_verdicts_total", count, {"truth": truth, "verdict": verdict}
        ))

    metric(
        "repro_verdicts_per_second", "gauge", "Windowed verdict churn."
    )
    lines.append(_sample(
        "repro_verdicts_per_second", snap["verdicts_per_second"]
    ))

    metric(
        "repro_link_drops_total", "counter",
        "Link-level drops by (link, reason).",
    )
    for key, count in sorted(snap["link_drops"].items()):
        link, _, reason = key.rpartition(":")
        lines.append(_sample(
            "repro_link_drops_total", count, {"link": link, "reason": reason}
        ))

    metric(
        "repro_engine_events_executed_total", "counter",
        "Simulator events executed.",
    )
    lines.append(_sample(
        "repro_engine_events_executed_total", snap["events_executed"]
    ))

    metric(
        "repro_engine_pending_events", "gauge",
        "Live (non-cancelled) events queued in the scheduler.",
    )
    lines.append(_sample("repro_engine_pending_events", snap["pending_events"]))

    metric("repro_monitor_epochs_total", "counter", "TrafficMonitor epochs.")
    lines.append(_sample("repro_monitor_epochs_total", snap["epochs"]))

    metric(
        "repro_defense_activated", "gauge",
        "1 once pushback has activated, else 0.",
    )
    lines.append(_sample(
        "repro_defense_activated",
        0 if snap["activation_time"] is None else 1,
    ))

    metric("repro_runs_completed_total", "counter", "Runs finished serving.")
    lines.append(_sample("repro_runs_completed_total", snap["runs_completed"]))

    if flows is not None:
        fsnap = flows.snapshot()
        metric(
            "repro_flow_drops_total", "counter",
            "Drops for the top-K most-dropped flows, by flow hash.",
        )
        for entry in fsnap["top_dropped"]:
            lines.append(_sample(
                "repro_flow_drops_total", entry["drops"],
                {"flow": str(entry["flow"]), "truth": entry["truth"]},
            ))
        metric(
            "repro_flow_tracked", "gauge",
            "Flows currently tracked by the drill-down table.",
        )
        lines.append(_sample("repro_flow_tracked", fsnap["tracked_flows"]))
        metric(
            "repro_flow_evicted_total", "counter",
            "Flow entries evicted by the bounded table.",
        )
        lines.append(_sample(
            "repro_flow_evicted_total", fsnap["evicted_flows"]
        ))

    if atrs is not None:
        asnap = atrs.snapshot()
        metric(
            "repro_atr_verdicts_total", "counter",
            "MAFIC verdicts per ATR, by verdict.",
        )
        for row in asnap["atrs"]:
            for verdict, count in row["verdicts"].items():
                lines.append(_sample(
                    "repro_atr_verdicts_total", count,
                    {"atr": row["atr"], "verdict": verdict},
                ))
        metric(
            "repro_atr_verdict_flips_total", "counter",
            "Flows re-judged to a different verdict at the same ATR.",
        )
        for row in asnap["atrs"]:
            lines.append(_sample(
                "repro_atr_verdict_flips_total", row["flips"],
                {"atr": row["atr"]},
            ))
        metric(
            "repro_atr_drops_total", "counter",
            "Defence drops per ATR.",
        )
        for row in asnap["atrs"]:
            lines.append(_sample(
                "repro_atr_drops_total", row["drops"], {"atr": row["atr"]}
            ))

    if sse is not None:
        metric(
            "repro_sse_clients", "gauge",
            "Event-stream clients currently connected.",
        )
        lines.append(_sample("repro_sse_clients", sse["clients"]))
        metric(
            "repro_sse_dropped_events_total", "counter",
            "Events lost to full per-client queues (slow consumers).",
        )
        lines.append(_sample(
            "repro_sse_dropped_events_total", sse["dropped_events"]
        ))

    return "\n".join(lines) + "\n"
