"""``python -m repro serve`` — live metrics over HTTP, stdlib only.

One process, two halves.  The **work half** (main thread) runs a single
scenario or a campaign's missing cells exactly as the batch CLIs would —
same collectors, same artifacts — but with an
:class:`~repro.obs.bus.EventBus` attached.  The **serve half** (a
:class:`~http.server.ThreadingHTTPServer` on a background thread) turns
that bus into four views:

``/``
    Self-contained HTML dashboard (no external assets): stat cards
    polled from ``/state`` plus a live event log fed by ``/events``.
``/metrics``
    Prometheus text-format exposition of the windowed aggregates.
``/state``
    The full :meth:`~repro.obs.aggregators.LiveMetrics.snapshot` as
    JSON, plus server phase.
``/events`` and ``/stream``
    The curated event feed as Server-Sent Events or plain JSON lines.
    High-frequency kinds (``victim.arrival``, ``defense.decision``)
    are folded into the windowed aggregates instead of being streamed
    per-event; everything else streams live, plus periodic
    ``live.snapshot`` frames.

Determinism note: pacing and Ctrl-C responsiveness come from running the
simulation in clock slices (``run_experiment(slice_seconds=...)``),
which executes the *identical* event sequence as an unsliced run — the
results (and campaign artifacts) are bit-identical to batch mode.

Ctrl-C is a clean stop everywhere: mid-run it abandons the in-flight
result (campaign mode prints the ``campaign resume`` hint; completed
artifacts are already on disk), during ``--linger`` it is the normal
way to exit, and no traceback is ever printed.
"""

from __future__ import annotations

import json
import queue
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.aggregators import AtrDrilldown, FlowDrilldown, LiveMetrics
from repro.obs.bus import EventBus
from repro.obs.events import MetricEvent
from repro.obs.exposition import render_prometheus

#: Event kinds the drill-down aggregators fold (the per-packet kinds the
#: SSE stream deliberately excludes, plus verdicts).
DRILLDOWN_KINDS: tuple[str, ...] = (
    "defense.decision",
    "defense.verdict",
)

#: Event kinds forwarded to ``/events``/``/stream`` subscribers.  The
#: two per-packet kinds are deliberately absent: at simulation rates
#: they would swamp any client, and the windowed aggregates already
#: carry their information.
STREAMED_KINDS: tuple[str, ...] = (
    "defense.verdict",
    "defense.activation",
    "monitor.snapshot",
    "engine.stats",
    "link.drop",
    "run.started",
    "run.completed",
    "campaign.run",
    "campaign.progress",
    "worker.started",
    "worker.heartbeat",
    "worker.died",
)

#: Per-client queue bound; a slow client loses the *newest* events past
#: this (the log view cares about continuity of the recent past) and
#: the drop count is reported on its next delivered frame.
CLIENT_QUEUE_SIZE = 512


class SSEBroker:
    """Fan one event stream out to many HTTP clients, without blocking.

    A sink (subscribe it to the bus for :data:`STREAMED_KINDS`): each
    event is serialized to its JSON line **once**, then offered to every
    client's bounded queue.  A client that can't keep up drops frames —
    the simulation thread never waits on a socket.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._clients: list[queue.Queue] = []
        self._closed = False
        #: Events lost to full client queues, across all clients ever.
        self.dropped_events = 0
        #: Events offered to at least one client (serialized payloads).
        self.published_events = 0

    # ------------------------------------------------------------ sink API

    def emit(self, event: MetricEvent) -> None:
        self.publish(event.to_dict())

    def close(self) -> None:
        """Wake every client with the end-of-stream sentinel."""
        with self._lock:
            self._closed = True
            clients = list(self._clients)
        for q in clients:
            try:
                q.put_nowait(None)
            except queue.Full:
                pass

    # --------------------------------------------------------- broker API

    def publish(self, payload: dict) -> None:
        """Serialize once, offer to every client, drop (counted) on full."""
        line = json.dumps(payload, separators=(",", ":"))
        dropped = 0
        with self._lock:
            clients = list(self._clients)
            self.published_events += 1
        for q in clients:
            try:
                q.put_nowait(line)
            except queue.Full:
                dropped += 1
        if dropped:
            with self._lock:
                self.dropped_events += dropped

    def stats(self) -> dict:
        """Back-pressure health: connected clients and lost events."""
        with self._lock:
            return {
                "clients": len(self._clients),
                "published_events": self.published_events,
                "dropped_events": self.dropped_events,
            }

    def register(self) -> queue.Queue:
        """A new client's queue (pre-poisoned if the stream ended)."""
        q: queue.Queue = queue.Queue(maxsize=CLIENT_QUEUE_SIZE)
        with self._lock:
            self._clients.append(q)
            if self._closed:
                q.put_nowait(None)
        return q

    def unregister(self, q: queue.Queue) -> None:
        with self._lock:
            if q in self._clients:
                self._clients.remove(q)


#: The dashboard page: one file, no external assets, works offline.
DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro serve</title>
<style>
  body { font-family: ui-monospace, Menlo, Consolas, monospace;
         margin: 0; background: #10141a; color: #d5dce5; }
  header { padding: 10px 16px; background: #171d26;
           border-bottom: 1px solid #2a3442; display: flex;
           justify-content: space-between; align-items: baseline; }
  header h1 { font-size: 15px; margin: 0; color: #8ecaff; }
  #phase { font-size: 12px; color: #9aa7b5; }
  #cards { display: grid; gap: 10px; padding: 14px 16px;
           grid-template-columns: repeat(auto-fill, minmax(170px, 1fr)); }
  .card { background: #171d26; border: 1px solid #2a3442;
          border-radius: 6px; padding: 9px 12px; }
  .card .label { font-size: 10px; text-transform: uppercase;
                 letter-spacing: .08em; color: #7e8b99; color: #7e8b99; }
  .card .value { font-size: 19px; margin-top: 3px; color: #e8eef5; }
  .card .value.warn { color: #ffb566; }
  h2 { font-size: 11px; text-transform: uppercase; letter-spacing: .08em;
       color: #7e8b99; margin: 4px 16px; }
  #log { margin: 0 16px 16px; background: #0b0e13;
         border: 1px solid #2a3442; border-radius: 6px; padding: 8px;
         height: 280px; overflow-y: auto; font-size: 12px;
         line-height: 1.5; white-space: pre-wrap; }
  .k { color: #8ecaff; }
  .t { color: #6d7885; }
  #drill { display: grid; gap: 10px; margin: 0 16px 16px;
           grid-template-columns: repeat(auto-fit, minmax(340px, 1fr)); }
  table { width: 100%; border-collapse: collapse; font-size: 12px;
          background: #0b0e13; border: 1px solid #2a3442;
          border-radius: 6px; }
  th, td { padding: 4px 8px; text-align: right;
           border-bottom: 1px solid #1d2530; }
  th { color: #7e8b99; font-size: 10px; text-transform: uppercase;
       letter-spacing: .08em; }
  th:first-child, td:first-child { text-align: left; }
  td.flip { color: #ffb566; }
</style>
</head>
<body>
<header><h1>repro serve &mdash; MAFIC live metrics</h1>
<span><span id="engine"></span> <span id="phase">connecting&hellip;</span>
</span></header>
<div id="cards"></div>
<h2>drill-down &mdash; top dropped flows / ATR verdict churn</h2>
<div id="drill">
  <table id="flows"><thead><tr><th>flow</th><th>truth</th><th>atr</th>
  <th>drops</th><th>probe</th><th>passes</th><th>verdict</th></tr></thead>
  <tbody></tbody></table>
  <table id="atrs"><thead><tr><th>atr</th><th>verdicts</th><th>flips</th>
  <th>drops</th><th>v/s</th></tr></thead><tbody></tbody></table>
</div>
<h2>event stream</h2>
<div id="log"></div>
<script>
"use strict";
const CARDS = [
  ["sim time",       s => s.sim_time.toFixed(2) + " s"],
  ["arrivals",       s => s.arrivals_total],
  ["attack kbps",    s => s.attack_kbps.toFixed(1)],
  ["legit kbps",     s => s.legit_kbps.toFixed(1)],
  ["examined",       s => s.examined_total],
  ["drop ratio",     s => (100 * s.drop_ratio).toFixed(1) + " %"],
  ["drops / s",      s => s.drops_per_second.toFixed(1)],
  ["verdicts / s",   s => s.verdicts_per_second.toFixed(1)],
  ["pushback",       s => s.activation_time === null
                          ? "armed" : "t=" + s.activation_time.toFixed(2)],
  ["monitor epochs", s => s.epochs],
  ["events executed",s => s.events_executed],
  ["runs done",      s => s.runs_completed],
];
const cards = document.getElementById("cards");
for (const [label] of CARDS) {
  const div = document.createElement("div");
  div.className = "card";
  div.innerHTML = '<div class="label">' + label +
                  '</div><div class="value">&ndash;</div>';
  cards.appendChild(div);
}
async function poll() {
  try {
    const res = await fetch("/state");
    const body = await res.json();
    const s = body.live;
    document.getElementById("phase").textContent =
      body.mode + " / " + body.phase;
    document.getElementById("engine").textContent =
      s.engine_build ? "engine: " + s.engine_build + " /" : "";
    const values = cards.querySelectorAll(".value");
    CARDS.forEach(([_, fmt], i) => { values[i].textContent = fmt(s); });
  } catch (err) {
    document.getElementById("phase").textContent = "disconnected";
  }
  setTimeout(poll, 1000);
}
poll();
function fill(id, rows, cells) {
  const body = document.getElementById(id).querySelector("tbody");
  body.innerHTML = "";
  for (const row of rows) {
    const tr = document.createElement("tr");
    for (const [value, cls] of cells(row)) {
      const td = document.createElement("td");
      td.textContent = value;
      if (cls) td.className = cls;
      tr.appendChild(td);
    }
    body.appendChild(tr);
  }
}
async function drill() {
  try {
    const flows = await (await fetch("/flows")).json();
    fill("flows", flows.top_dropped.slice(0, 10), f => [
      [String(f.flow)], [f.truth], [f.atr], [f.drops],
      [f.drops_by_reason.probe || 0], [f.passes], [f.last_verdict || "-"],
    ]);
    const atrs = await (await fetch("/atrs")).json();
    fill("atrs", atrs.atrs.slice(0, 10), a => [
      [a.atr], [a.verdicts_total], [a.flips, a.flips ? "flip" : ""],
      [a.drops], [a.verdicts_per_second.toFixed(1)],
    ]);
  } catch (err) { /* server going away; poll() shows the phase */ }
  setTimeout(drill, 2000);
}
drill();
const log = document.getElementById("log");
function append(line) {
  const atEnd = log.scrollTop + log.clientHeight >= log.scrollHeight - 4;
  log.appendChild(line);
  while (log.childNodes.length > 400) log.removeChild(log.firstChild);
  if (atEnd) log.scrollTop = log.scrollHeight;
}
const source = new EventSource("/events");
source.onmessage = (msg) => {
  const e = JSON.parse(msg.data);
  if (e.kind === "live.snapshot") return;
  const div = document.createElement("div");
  const t = (e.time !== undefined) ? e.time.toFixed(3) : "-";
  const rest = Object.entries(e)
    .filter(([k]) => k !== "kind" && k !== "time")
    .map(([k, v]) => k + "=" + JSON.stringify(v)).join(" ");
  div.innerHTML = '<span class="t">' + t + '</span> <span class="k">' +
                  e.kind + "</span> " + rest;
  append(div);
};
</script>
</body>
</html>
"""


class _Handler(BaseHTTPRequestHandler):
    """Routes; the server object carries the shared live/broker/status."""

    protocol_version = "HTTP/1.1"
    server: "_Server"  # type: ignore[assignment]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Quiet: per-request lines would bury the run's own output."""

    def _send(self, body: bytes, content_type: str, code: int = 200) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        try:
            if path in ("/", "/index.html"):
                self._send(
                    DASHBOARD_HTML.encode(), "text/html; charset=utf-8"
                )
            elif path == "/metrics":
                body = render_prometheus(
                    self.server.live,
                    flows=self.server.flows,
                    atrs=self.server.atrs,
                    sse=self.server.broker.stats(),
                ).encode()
                self._send(body, "text/plain; version=0.0.4; charset=utf-8")
            elif path == "/state":
                payload = dict(self.server.status)
                payload["live"] = self.server.live.snapshot()
                payload["sse"] = self.server.broker.stats()
                self._send(
                    json.dumps(payload).encode(),
                    "application/json; charset=utf-8",
                )
            elif path == "/flows":
                self._send(
                    json.dumps(self.server.flows.snapshot()).encode(),
                    "application/json; charset=utf-8",
                )
            elif path == "/atrs":
                self._send(
                    json.dumps(self.server.atrs.snapshot()).encode(),
                    "application/json; charset=utf-8",
                )
            elif path == "/healthz":
                self._send(b"ok\n", "text/plain; charset=utf-8")
            elif path == "/events":
                self._stream(sse=True)
            elif path == "/stream":
                self._stream(sse=False)
            else:
                self._send(b"not found\n", "text/plain; charset=utf-8", 404)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-write; nothing to clean up

    def _stream(self, sse: bool) -> None:
        """Long-poll one client queue out over SSE or raw JSON lines."""
        self.send_response(200)
        self.send_header(
            "Content-Type",
            "text/event-stream" if sse else "application/x-ndjson",
        )
        self.send_header("Cache-Control", "no-store")
        # No Content-Length on an unbounded stream: Connection: close
        # (which also sets close_connection) delimits the body instead.
        self.send_header("Connection", "close")
        self.end_headers()
        q = self.server.broker.register()
        try:
            while True:
                try:
                    line = q.get(timeout=15.0)
                except queue.Empty:
                    # Keep-alive so proxies/clients don't drop the idle
                    # stream; a JSONL comment would corrupt the framing,
                    # so plain mode sends an empty keep-alive line.
                    self.wfile.write(b": keep-alive\n\n" if sse else b"\n")
                    self.wfile.flush()
                    continue
                if line is None:
                    break
                if sse:
                    self.wfile.write(b"data: " + line.encode() + b"\n\n")
                else:
                    self.wfile.write(line.encode() + b"\n")
                self.wfile.flush()
        finally:
            self.server.broker.unregister(q)


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer plus the shared observability objects."""

    daemon_threads = True  # don't let a hung client outlive the run

    def __init__(
        self,
        address,
        live: LiveMetrics,
        broker: SSEBroker,
        flows: FlowDrilldown | None = None,
        atrs: AtrDrilldown | None = None,
    ):
        super().__init__(address, _Handler)
        self.live = live
        self.broker = broker
        self.flows = flows if flows is not None else FlowDrilldown()
        self.atrs = atrs if atrs is not None else AtrDrilldown()
        #: Mutated by the work thread; read by ``/state``.
        self.status: dict = {"mode": "", "phase": "starting"}


def _snapshot_pump(live: LiveMetrics, broker: SSEBroker, interval: float):
    """An ``on_slice`` callback pushing throttled live.snapshot frames."""
    last = [0.0]

    def pump(_sim_now: float) -> None:
        now = time.monotonic()
        if now - last[0] >= interval:
            last[0] = now
            broker.publish({"kind": "live.snapshot", **live.snapshot()})

    return pump


def _paced_slicer(pace: float, on_slice):
    """(slice_seconds, callback) pair implementing wall-clock pacing.

    ``pace`` is simulated seconds per wall second; 0 means full speed.
    The callback sleeps until the wall clock catches up with the sim
    clock, so a run with ``--pace 1`` plays back in real time.  Slicing
    itself never changes results — see the module docstring.
    """
    if pace < 0:
        raise ValueError("--pace must be >= 0")
    if pace == 0:
        return 0.25, on_slice
    # ~20 pause points per wall second keeps pacing smooth and Ctrl-C
    # responsive without measurable event-loop overhead.
    slice_seconds = max(pace / 20.0, 1e-6)
    start = time.monotonic()

    def paced(sim_now: float) -> None:
        target = start + sim_now / pace
        delay = target - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        on_slice(sim_now)

    return slice_seconds, paced


def _serve_single(args, bus, live, broker, status) -> int:
    """Run one scenario under the server; returns the exit code."""
    from repro.experiments.cli import _run_config
    from repro.experiments.runner import run_experiment

    config = _run_config(args)
    status.update(mode="run", phase="running",
                  seed=config.seed, duration=config.duration)
    slice_seconds, on_slice = _paced_slicer(
        args.pace, _snapshot_pump(live, broker, interval=0.25)
    )
    try:
        result = run_experiment(
            config,
            bus=bus,
            streaming_series=True,
            slice_seconds=slice_seconds,
            on_slice=on_slice,
        )
    except KeyboardInterrupt:
        status.update(phase="interrupted")
        print("\ninterrupted mid-run; no results recorded", flush=True)
        return 130
    status.update(phase="done")
    pct = result.summary.as_percent()
    print(
        f"run complete: alpha={pct['alpha']:.2f}%  beta={pct['beta']:.2f}%  "
        f"({result.events_executed} events, {result.wall_seconds:.2f}s)",
        flush=True,
    )
    return 0


def _serve_campaign(args, bus, live, broker, status) -> int:
    """Execute a campaign's missing cells in-process, streaming as we go.

    Artifacts are bit-identical to ``campaign run``: same
    ``run_experiment``, same ``write_result`` — the only difference is
    cells run one at a time on this thread so their sim events reach
    the bus.  Ctrl-C abandons only the in-flight cell;
    ``campaign resume`` (or serve again) picks up the rest.
    """
    from repro.campaign.orchestrator import DEFAULT_ROOT, open_store
    from repro.campaign.spec import CampaignSpec
    from repro.experiments.runner import run_experiment
    from repro.obs.events import CampaignProgress, CampaignRun

    series_bin_width = 0.05
    spec = CampaignSpec.load(args.campaign)
    root = args.root if args.root is not None else DEFAULT_ROOT
    store = open_store(spec, root).ensure()
    store.pin_series_bin_width(series_bin_width)
    store.write_manifest(spec.to_dict(), series_bin_width=series_bin_width)

    plan = spec.plan()
    on_disk = store.run_ids()
    missing = [run for run in plan if run.run_id not in on_disk]
    status.update(
        mode="campaign", phase="running", campaign=spec.name,
        planned=len(plan), cached=len(plan) - len(missing),
    )
    print(
        f"campaign {spec.name}: {len(plan)} planned, "
        f"{len(plan) - len(missing)} cached, {len(missing)} to run",
        flush=True,
    )

    pump = _snapshot_pump(live, broker, interval=0.25)
    executed = 0
    try:
        for planned in missing:
            result = run_experiment(
                planned.config,
                bus=bus,
                slice_seconds=0.25,
                on_slice=pump,
            )
            store.write_result(
                result, point=planned.point,
                series_bin_width=series_bin_width,
            )
            executed += 1
            if bus:
                pct = result.summary.as_percent()
                bus.emit(CampaignRun(
                    time=0.0, run_id=planned.run_id, seed=planned.seed,
                    point=dict(planned.point), alpha=pct["alpha"],
                    beta=pct["beta"], wall_seconds=result.wall_seconds,
                ))
                bus.emit(CampaignProgress(
                    time=0.0, name=spec.name, done=executed,
                    total=len(missing), cached=len(plan) - len(missing),
                ))
    except KeyboardInterrupt:
        status.update(phase="interrupted", executed=executed)
        print(
            f"\ninterrupted: {executed} new artifacts are on disk; finish "
            f"with 'python -m repro campaign resume {args.campaign}'",
            flush=True,
        )
        return 130
    status.update(phase="done", executed=executed)
    print(
        f"campaign {spec.name}: executed {executed} of {len(missing)} "
        "missing runs",
        flush=True,
    )
    return 0


def _serve_campaign_parallel(args, bus, live, broker, status) -> int:
    """Fan a campaign's missing cells across worker processes.

    The parent plans, splits the missing run_ids round-robin into
    ``--jobs`` shards, and spawns one ``python -m repro.obs.worker``
    per shard.  Each worker executes its assignment with the exact
    batch-mode ``run_experiment`` + ``store.write_result`` (the store
    is multi-writer safe, so artifacts are byte-identical to a serial
    serve, timing key aside) while streaming its full bus as JSON
    lines on stdout.  One reader thread per worker decodes those lines
    back into typed events and emits them into the parent's single
    bus, so ``/``, ``/state``, ``/flows``, ``/metrics`` show the merged
    view of all workers.

    The parent owns campaign-level progress: it counts ``campaign.run``
    events from all workers and emits the unified
    ``campaign.progress`` stream itself.
    """
    import subprocess
    import sys

    from repro.campaign.orchestrator import DEFAULT_ROOT, open_store
    from repro.campaign.spec import CampaignSpec
    from repro.obs.events import CampaignProgress, event_from_dict

    series_bin_width = 0.05
    spec = CampaignSpec.load(args.campaign)
    root = args.root if args.root is not None else DEFAULT_ROOT
    store = open_store(spec, root).ensure()
    store.pin_series_bin_width(series_bin_width)
    store.write_manifest(spec.to_dict(), series_bin_width=series_bin_width)

    plan = spec.plan()
    on_disk = store.run_ids()
    missing = [run for run in plan if run.run_id not in on_disk]
    jobs = max(1, min(args.jobs, len(missing) or 1))
    status.update(
        mode="campaign", phase="running", campaign=spec.name,
        planned=len(plan), cached=len(plan) - len(missing), jobs=jobs,
    )
    print(
        f"campaign {spec.name}: {len(plan)} planned, "
        f"{len(plan) - len(missing)} cached, {len(missing)} to run "
        f"across {jobs} workers",
        flush=True,
    )
    if not missing:
        status.update(phase="done", executed=0)
        return 0

    shards = [missing[i::jobs] for i in range(jobs)]
    done_lock = threading.Lock()
    done = [0]
    pump = _snapshot_pump(live, broker, interval=0.25)

    def on_line(payload: dict) -> None:
        event = event_from_dict(payload)
        if event is None:
            return
        if bus:
            bus.emit(event)
        if event.kind == "campaign.run":
            with done_lock:
                done[0] += 1
                progress = done[0]
            if bus:
                bus.emit(CampaignProgress(
                    time=0.0, name=spec.name, done=progress,
                    total=len(missing), cached=len(plan) - len(missing),
                ))
            pump(0.0)

    procs: list[subprocess.Popen] = []
    readers: list[threading.Thread] = []
    try:
        for shard in shards:
            assignment = json.dumps({
                "spec_path": args.campaign,
                "root": root,
                "series_bin_width": series_bin_width,
                "run_ids": [run.run_id for run in shard],
            })
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.obs.worker"],
                stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True,
            )
            proc.stdin.write(assignment)
            proc.stdin.close()
            procs.append(proc)
            reader = threading.Thread(
                target=_drain_worker, args=(proc.stdout, on_line),
                name=f"repro-worker-reader-{len(readers)}", daemon=True,
            )
            reader.start()
            readers.append(reader)
        failed = 0
        for proc in procs:
            if proc.wait() != 0:
                failed += 1
        for reader in readers:
            reader.join(timeout=5.0)
    except KeyboardInterrupt:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            proc.wait()
        status.update(phase="interrupted", executed=done[0])
        print(
            f"\ninterrupted: {done[0]} new artifacts are on disk; finish "
            f"with 'python -m repro campaign resume {args.campaign}'",
            flush=True,
        )
        return 130
    if failed:
        status.update(phase="failed", executed=done[0])
        print(f"error: {failed} of {jobs} workers failed", flush=True)
        return 1
    status.update(phase="done", executed=done[0])
    print(
        f"campaign {spec.name}: executed {done[0]} of {len(missing)} "
        f"missing runs across {jobs} workers",
        flush=True,
    )
    return 0


def _drain_worker(stdout, on_line) -> None:
    """Decode one worker's JSON-line event stream into callbacks."""
    for line in stdout:
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue  # partial line from a dying worker
        on_line(payload)
    stdout.close()


def _replay_feed(args, bus, live, broker, status) -> int:
    """Feed a recording's events back through the bus, optionally paced."""
    from repro.obs.recorder import RecordingError, open_recording

    try:
        recording = open_recording(args.recording)
    except (OSError, RecordingError) as exc:
        print(f"error: {exc}")
        return 2
    meta = recording.metadata
    status.update(
        mode="replay", phase="replaying", recording=args.recording,
        metadata=meta,
    )
    print(
        f"replaying {args.recording}"
        + (f" ({meta.get('scenario')})" if meta.get("scenario") else ""),
        flush=True,
    )
    pump = _snapshot_pump(live, broker, interval=0.25)
    pace = args.pace
    start = time.monotonic()
    events = 0
    try:
        for event in recording.events():
            if pace > 0 and event.time > 0:
                delay = (start + event.time / pace) - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            if bus:
                bus.emit(event)
            events += 1
            if events % 1024 == 0:
                pump(event.time)
    except KeyboardInterrupt:
        status.update(phase="interrupted", events_replayed=events)
        print("\nreplay interrupted", flush=True)
        return 130
    except RecordingError as exc:
        status.update(phase="failed", events_replayed=events)
        print(f"error: {exc}")
        return 2
    pump_final = _snapshot_pump(live, broker, interval=0.0)
    pump_final(0.0)
    status.update(phase="done", events_replayed=events,
                  unknown_kinds=recording.unknown_kinds)
    skipped = (
        f" ({recording.unknown_kinds} unknown-kind lines skipped)"
        if recording.unknown_kinds else ""
    )
    print(f"replayed {events} events{skipped}", flush=True)
    return 0


def _open_recorder(args, bus):
    """Attach a JsonlSink for ``--record`` (all kinds); None when off."""
    record = getattr(args, "record", None)
    if not record:
        return None
    from repro.obs.recorder import JsonlSink

    sink = JsonlSink(record, metadata={
        "command": "serve" if getattr(args, "campaign", None) is None
        else "serve --campaign",
        "campaign": getattr(args, "campaign", None),
    })
    bus.subscribe(sink)
    print(f"recording event stream to {record}", flush=True)
    return sink


def _serve_common(args, work) -> int:
    """Bind, start the HTTP half, run ``work`` on this thread, linger.

    Shared chassis of ``serve`` and ``replay``: both want the same
    bus wiring (LiveMetrics + drill-downs + SSE broker), the same
    endpoints, and the same linger/shutdown story — they differ only
    in what the work half feeds the bus.
    """
    # A process backgrounded by a non-interactive shell (`serve ... &`,
    # the normal CI/daemonized shape) inherits SIGINT as SIG_IGN, and
    # Python then never installs KeyboardInterrupt — `kill -INT` would
    # be silently ignored.  Serve's whole shutdown story is Ctrl-C, so
    # restore the default handler unconditionally.
    signal.signal(signal.SIGINT, signal.default_int_handler)
    live = LiveMetrics(window=args.window)
    flows = FlowDrilldown()
    atrs = AtrDrilldown(window=args.window)
    broker = SSEBroker()
    bus = EventBus()
    bus.subscribe(live)
    bus.subscribe(flows, kinds=DRILLDOWN_KINDS)
    bus.subscribe(atrs, kinds=DRILLDOWN_KINDS)
    bus.subscribe(broker, kinds=STREAMED_KINDS)
    recorder = _open_recorder(args, bus)

    try:
        server = _Server((args.host, args.port), live, broker, flows, atrs)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}")
        if recorder is not None:
            recorder.close()
        return 2
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port}/  "
          "(dashboard /, Prometheus /metrics, SSE /events, "
          "drill-down /flows /atrs)", flush=True)
    http_thread = threading.Thread(
        target=server.serve_forever, name="repro-serve-http", daemon=True
    )
    http_thread.start()

    try:
        code = work(bus, live, broker, server.status)
        if recorder is not None:
            # Finalize the file the moment the work half stops feeding
            # the bus: nothing new is recorded while lingering, and a
            # reader (or a replay of this very file) must not see a
            # truncated gzip tail.
            recorder.close()
            print(
                f"recorded {recorder.events_written} events to "
                f"{recorder.path}",
                flush=True,
            )
        if code == 0 and args.linger:
            server.status["phase"] = "lingering"
            print("work finished; serving until Ctrl-C (--linger)",
                  flush=True)
            try:
                while True:
                    time.sleep(0.5)
            except KeyboardInterrupt:
                print("\nshutting down", flush=True)
    finally:
        bus.close()           # wakes SSE clients with the sentinel
        if recorder is not None:
            recorder.close()  # bus.close() closed it too; idempotent
        server.shutdown()     # stops serve_forever
        server.server_close()
        http_thread.join(timeout=5.0)
    return code


def cmd_serve(args) -> int:
    """The ``python -m repro serve`` entry point."""
    def work(bus, live, broker, status):
        if args.campaign and getattr(args, "jobs", 1) and args.jobs > 1:
            return _serve_campaign_parallel(args, bus, live, broker, status)
        if args.campaign:
            return _serve_campaign(args, bus, live, broker, status)
        return _serve_single(args, bus, live, broker, status)

    return _serve_common(args, work)


def cmd_replay(args) -> int:
    """The ``python -m repro replay`` entry point.

    Serves a *recording* through the identical broker stack: every
    endpoint behaves exactly as it would over the live run the file
    captured.  Lingers by default — serving a dead run is the point.
    """
    def work(bus, live, broker, status):
        return _replay_feed(args, bus, live, broker, status)

    return _serve_common(args, work)
