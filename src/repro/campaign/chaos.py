"""Crash injection for the fault-tolerance harness (``REPRO_CHAOS``).

The distributed campaign machinery claims cells with lease files and
writes artifacts atomically precisely so that a worker can die at *any*
instant without corrupting the store or losing the campaign.  This
module makes "any instant" testable: code on the worker's critical path
calls :func:`chaos_point` with a named point, and when the
``REPRO_CHAOS`` environment variable arms that point, the process
SIGKILLs itself there — the same uncatchable, no-cleanup death a
machine crash or OOM kill delivers (``atexit`` handlers, ``finally``
blocks, and buffered writes all get no say).

``REPRO_CHAOS`` is a comma-separated list of ``point:probability``
pairs::

    REPRO_CHAOS="claim:0.2,run:0.1,write:1.0" python -m repro.campaign.worker ...

Named points on the worker path (a probability of ``1.0`` makes the
first visit fatal, which is how the targeted tests pin exact torn
states):

==========  ==========================================================
point       the process dies ...
==========  ==========================================================
claim       right after creating its lease file, before executing
run         mid-simulation (on a monitor epoch), cell half-executed
result      after the run completed, before any artifact write
write       between the series-sidecar write and the summary write
index       after the summary landed, before its index row appended
==========  ==========================================================

Every point is checked through the same function, so new checkpoints
cost one line at the call site.  When ``REPRO_CHAOS`` is unset (the
only state production code ever runs in) the check is one cached
global read.

``REPRO_CHAOS_SEED`` makes the coin flips deterministic per process:
the RNG is seeded from it plus ``REPRO_WORKER_ID`` (set by the pool
parent for every worker it spawns), so a fleet of workers dies at
reproducible — but per-worker distinct — points.
"""

from __future__ import annotations

import os
import random
import signal
import sys

#: Environment variable arming the harness: ``point:prob,point:prob``.
ENV_VAR = "REPRO_CHAOS"

#: Optional determinism: seeds the per-process coin-flip stream.
SEED_ENV_VAR = "REPRO_CHAOS_SEED"

#: Worker identity mixed into the seed (set by the pool parent).
WORKER_ENV_VAR = "REPRO_WORKER_ID"


class ChaosSpecError(ValueError):
    """A ``REPRO_CHAOS`` value that cannot be parsed."""


def parse_chaos_spec(text: str) -> dict[str, float]:
    """Parse ``"claim:0.2,write:1.0"`` into ``{point: probability}``."""
    spec: dict[str, float] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        point, sep, prob_text = part.partition(":")
        point = point.strip()
        if not sep or not point:
            raise ChaosSpecError(
                f"bad {ENV_VAR} entry {part!r}: want 'point:probability'"
            )
        try:
            prob = float(prob_text)
        except ValueError:
            raise ChaosSpecError(
                f"bad {ENV_VAR} probability {prob_text!r} for point "
                f"{point!r}"
            ) from None
        if not 0.0 <= prob <= 1.0:
            raise ChaosSpecError(
                f"{ENV_VAR} probability for {point!r} must be in [0, 1], "
                f"got {prob}"
            )
        spec[point] = prob
    return spec


#: ``None`` = environment not read yet; ``False`` = chaos disabled;
#: else ``(spec, rng)``.  Parsed once per process — workers are spawned
#: with the environment already set.  Tests that flip the environment
#: in-process call :func:`reload_chaos`.
_state: tuple[dict[str, float], random.Random] | bool | None = None


def _load() -> tuple[dict[str, float], random.Random] | bool:
    global _state
    text = os.environ.get(ENV_VAR, "").strip()
    if not text:
        _state = False
        return _state
    spec = parse_chaos_spec(text)
    if not spec:
        _state = False
        return _state
    seed_text = os.environ.get(SEED_ENV_VAR)
    if seed_text is None:
        rng = random.Random()
    else:
        # Deterministic per worker, distinct across workers.
        rng = random.Random(
            f"{seed_text}:{os.environ.get(WORKER_ENV_VAR, '')}"
        )
    _state = (spec, rng)
    return _state


def reload_chaos() -> None:
    """Forget the cached spec so the next check re-reads the environment."""
    global _state
    _state = None


def chaos_active(point: str | None = None) -> bool:
    """True when chaos is armed (for ``point``, if given)."""
    state = _state if _state is not None else _load()
    if not state:
        return False
    spec, _ = state
    return bool(spec) if point is None else spec.get(point, 0.0) > 0.0


def chaos_point(point: str) -> None:
    """Die here with probability ``REPRO_CHAOS[point]`` (else no-op).

    Death is ``SIGKILL`` to our own pid: no exception propagates, no
    ``finally`` runs, no buffer flushes — exactly the failure the
    recovery machinery must survive.  A one-line notice goes to stderr
    first (unbuffered write, best effort) so test logs show where the
    harness struck.
    """
    state = _state if _state is not None else _load()
    if not state:
        return
    spec, rng = state
    prob = spec.get(point, 0.0)
    if prob <= 0.0 or (prob < 1.0 and rng.random() >= prob):
        return
    try:
        sys.stderr.write(f"chaos: SIGKILL at point {point!r}\n")
        sys.stderr.flush()
    except Exception:  # pragma: no cover - stderr already gone
        pass
    os.kill(os.getpid(), signal.SIGKILL)
