"""Declarative experiment campaigns over a persistent run store.

The paper's results are campaigns — multi-seed sweeps over attack
intensity, topology shape, and defence parameters — not single runs.
This package turns a TOML/JSON :class:`CampaignSpec` into a
content-addressed plan of configs, executes it through the parallel
batch runner with one JSON artifact per run, and makes the whole thing
resumable, extensible, and queryable:

    from repro.campaign import CampaignSpec, run_campaign, campaign_report

    spec = CampaignSpec.load("pd-sweep.toml")
    run_campaign(spec, jobs=8)          # crash-safe; re-run to resume
    print(campaign_report(spec))        # per-point means with CIs
"""

from repro.campaign.orchestrator import (
    DEFAULT_ROOT,
    CampaignRunReport,
    CampaignStatus,
    campaign_gc,
    campaign_status,
    open_store,
    run_campaign,
)
from repro.campaign.query import (
    REPORT_METRICS,
    aggregate_by_point,
    campaign_figures,
    campaign_report,
    group_by_point,
    load_runs,
    report_rows,
    runs_where,
    to_sweep_result,
)
from repro.campaign.spec import (
    AxisSpec,
    CampaignSpec,
    CampaignSpecError,
    PlannedRun,
)
from repro.campaign.store import (
    READ_SCHEMAS,
    STORE_SCHEMA,
    CampaignStore,
    GCReport,
    MigrationReport,
    StoreCache,
    StoredRun,
    StoreError,
    migrate_store,
)

__all__ = [
    "AxisSpec",
    "CampaignRunReport",
    "CampaignSpec",
    "CampaignSpecError",
    "CampaignStatus",
    "CampaignStore",
    "DEFAULT_ROOT",
    "GCReport",
    "MigrationReport",
    "PlannedRun",
    "READ_SCHEMAS",
    "REPORT_METRICS",
    "STORE_SCHEMA",
    "StoreCache",
    "StoreError",
    "StoredRun",
    "aggregate_by_point",
    "campaign_figures",
    "campaign_gc",
    "campaign_report",
    "campaign_status",
    "group_by_point",
    "load_runs",
    "migrate_store",
    "open_store",
    "report_rows",
    "run_campaign",
    "runs_where",
    "to_sweep_result",
]
