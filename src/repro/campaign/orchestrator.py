"""Campaign execution: plan -> skip cached -> run waves -> file artifacts.

:func:`run_campaign` is deliberately dumb about parallelism — it feeds
waves of missing configs to :func:`repro.experiments.parallel.run_batch`
(the existing ProcessPoolExecutor fan-out) and files each wave's
artifacts before starting the next.  Waves bound the work lost to a
crash: a campaign killed mid-grid keeps every artifact from completed
waves, and ``resume`` (the same call again) re-plans, skips every hash
already on disk, and executes only the remainder.  Because each run is
fully determined by its config, the union of artifacts from any
interleaving of partial executions is bit-identical to one uninterrupted
pass.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.campaign.spec import CampaignSpec, PlannedRun
from repro.campaign.store import CampaignStore, GCReport, StoreError
from repro.experiments.parallel import default_jobs, run_batch

#: Default artifact root, relative to the working directory.
DEFAULT_ROOT = "campaigns"


@dataclass
class CampaignRunReport:
    """What one ``run``/``resume`` invocation did."""

    name: str
    store_dir: Path
    planned: int
    cached: int
    executed: int
    jobs: int
    wall_seconds: float
    #: True when Ctrl-C cut the invocation short.  Artifacts filed
    #: before the interrupt are on disk; ``resume`` picks up the rest.
    interrupted: bool = False
    #: Distributed mode only: cells quarantined by the failure ledger
    #: (attempts exhausted) and abnormal worker deaths observed.  Serial
    #: execution raises on the first failure instead, so both stay 0.
    quarantined: int = 0
    deaths: int = 0

    @property
    def complete(self) -> bool:
        """True when every planned run now has an artifact."""
        return self.cached + self.executed == self.planned


@dataclass
class CampaignStatus:
    """How far along a campaign is, without running anything."""

    name: str
    store_dir: Path
    planned: int
    complete: int
    missing: list[PlannedRun] = field(default_factory=list)
    #: Artifacts on disk that the current spec no longer plans (stale
    #: axis points, or runs from a previous spec revision).
    unplanned: int = 0
    #: Missing cells the failure ledger has quarantined (distributed
    #: workers exhausted their attempts; see ``--retry-failed``).
    quarantined: int = 0

    @property
    def is_complete(self) -> bool:
        return not self.missing


def open_store(spec: CampaignSpec, root: str | Path = DEFAULT_ROOT) -> CampaignStore:
    """The campaign's store directory under ``root``."""
    return CampaignStore(Path(root) / spec.name)


def campaign_status(
    spec: CampaignSpec, root: str | Path = DEFAULT_ROOT
) -> CampaignStatus:
    """Compare the spec's plan against the artifacts on disk."""
    store = open_store(spec, root)
    plan = spec.plan()
    on_disk = store.run_ids()
    planned_ids = {run.run_id for run in plan}
    missing = [run for run in plan if run.run_id not in on_disk]
    missing_ids = {run.run_id for run in missing}
    return CampaignStatus(
        name=spec.name,
        store_dir=store.directory,
        planned=len(plan),
        complete=len(plan) - len(missing),
        missing=missing,
        unplanned=len(on_disk - planned_ids),
        quarantined=len(missing_ids & store.quarantined_ids()),
    )


def campaign_gc(
    spec: CampaignSpec,
    root: str | Path = DEFAULT_ROOT,
    apply: bool = False,
    min_debris_age_seconds: float = 3600.0,
) -> GCReport:
    """Prune store debris the current spec's plan no longer references.

    Doomed: artifacts for cells the plan dropped (old axis points, old
    seeds), sidecars orphaned by a crash between the two artifact
    writes, and leftover atomic-write temp files — the latter two only
    when older than ``min_debris_age_seconds``, so gc run next to live
    workers never unlinks an in-flight write.  Planned artifacts and
    the manifest are never touched; a spec that still plans a pruned
    cell just re-executes it on the next resume — nothing else re-runs.
    Dry-run by default; pass ``apply=True`` to delete.
    """
    store = open_store(spec, root)
    if not store.exists():
        raise StoreError(f"no campaign store at {store.directory}")
    planned_ids = {run.run_id for run in spec.plan()}
    return store.gc(
        planned_ids, apply=apply,
        min_debris_age_seconds=min_debris_age_seconds,
    )


def run_campaign(
    spec: CampaignSpec,
    root: str | Path = DEFAULT_ROOT,
    jobs: int | None = None,
    series_bin_width: float = 0.05,
    max_runs: int | None = None,
    wave_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    bus=None,
    profile_path: str | None = None,
    compress_series: bool | None = None,
) -> CampaignRunReport:
    """Execute (or resume) a campaign; returns what happened.

    ``max_runs`` caps how many *new* runs execute this invocation (the
    rest stay missing for a later resume — also the hook the tests use
    to kill a campaign mid-grid deterministically).  ``wave_size``
    bounds crash loss: artifacts are filed after every wave (default
    4 x the worker count).  ``progress`` is called with (done, total)
    missing-run counts after each wave.  ``series_bin_width`` is pinned
    by the store's manifest on first execution; resuming with a
    different value raises rather than mixing series resolutions.

    ``bus`` (an :class:`~repro.obs.bus.EventBus`) receives one
    ``campaign.run`` event per freshly executed cell and a
    ``campaign.progress`` event per filed wave, so callers can stream
    status without re-reading the store.  (Runs execute in worker
    processes; per-run events are forwarded from the parent as each
    wave's artifacts are filed.)

    A ``KeyboardInterrupt`` (Ctrl-C) stops cleanly between artifacts:
    every fully executed wave is already filed, the report comes back
    with ``interrupted=True``, and ``resume`` re-plans only the
    remainder.  ``profile_path`` profiles exactly one missing cell
    (forcing ``jobs=1, max_runs=1``) under cProfile — see
    :mod:`repro.experiments.profiling`.
    """
    started = time.perf_counter()
    if profile_path is not None:
        jobs, max_runs = 1, 1
    store = open_store(spec, root).ensure()
    store.pin_series_bin_width(series_bin_width)
    store.write_manifest(
        spec.to_dict(),
        series_bin_width=series_bin_width,
        compress_series=compress_series,
    )

    plan = spec.plan()
    on_disk = store.run_ids()  # one readdir, not one stat() per run
    missing = [run for run in plan if run.run_id not in on_disk]
    cached = len(plan) - len(missing)
    if max_runs is not None:
        if max_runs < 0:
            raise ValueError("max_runs must be >= 0")
        missing = missing[:max_runs]

    jobs = default_jobs() if jobs is None else int(jobs)
    wave = wave_size if wave_size is not None else max(1, jobs * 4)
    if wave < 1:
        raise ValueError("wave_size must be >= 1")

    executed = 0
    interrupted = False
    try:
        for start in range(0, len(missing), wave):
            wave_runs = missing[start : start + wave]
            if profile_path is not None:
                from repro.experiments.profiling import profiled_call
                from repro.experiments.runner import run_experiment

                batch_results = [profiled_call(
                    lambda: run_experiment(
                        wave_runs[0].config,
                        series_bin_width=series_bin_width,
                    ).detached(),
                    profile_path,
                )]
            else:
                batch_results = run_batch(
                    [run.config for run in wave_runs],
                    jobs=jobs,
                    series_bin_width=series_bin_width,
                ).results
            for planned, result in zip(wave_runs, batch_results):
                store.write_result(
                    result, point=planned.point,
                    series_bin_width=series_bin_width,
                )
                executed += 1
                if bus:
                    _emit_campaign_run(bus, planned, result)
            if progress is not None:
                progress(executed, len(missing))
            if bus:
                _emit_campaign_progress(
                    bus, spec.name, executed, len(missing), cached
                )
    except KeyboardInterrupt:
        # Waves already filed stay on disk; the in-flight wave's results
        # are abandoned whole (never half-written — write_result is
        # atomic and runs after the wave completes).
        interrupted = True

    return CampaignRunReport(
        name=spec.name,
        store_dir=store.directory,
        planned=len(plan),
        cached=cached,
        executed=executed,
        jobs=jobs,
        wall_seconds=time.perf_counter() - started,
        interrupted=interrupted,
    )


def _emit_campaign_run(bus, planned: PlannedRun, result) -> None:
    from repro.obs.events import CampaignRun

    pct = result.summary.as_percent()
    bus.emit(CampaignRun(
        time=0.0,
        run_id=planned.run_id,
        seed=planned.seed,
        point=dict(planned.point),
        alpha=pct["alpha"],
        beta=pct["beta"],
        wall_seconds=result.wall_seconds,
    ))


def _emit_campaign_progress(
    bus, name: str, done: int, total: int, cached: int
) -> None:
    from repro.obs.events import CampaignProgress

    bus.emit(CampaignProgress(
        time=0.0, name=name, done=done, total=total, cached=cached
    ))
