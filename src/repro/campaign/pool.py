"""The worker pool: N ``repro.campaign.worker`` processes, one store.

:func:`run_pool` spawns ``jobs`` worker subprocesses against a prepared
campaign store and babysits them: each worker pulls cells by lease
(:mod:`repro.campaign.worker`), streams its events as JSON lines on
stdout (decoded back onto the parent's bus, so ``serve --campaign``
shows the whole fleet), and exits 0 when nothing claimable remains.  A
worker that dies any other way — SIGKILLed, OOMed, cell-timeout
``os._exit``, crashed — is *respawned* (up to a bounded budget) after
a ``worker.died`` event; its lease expires and the replacement reclaims
the cell.  The pool never re-executes finished work: claims and resume
both key on the content-addressed artifacts.

With ``jobs=1`` this degrades gracefully to serial execution with one
worker — same artifacts, same report, just no overlap.  The same
degradation covers N *hosts* on a shared filesystem: every host runs
``python -m repro.campaign.worker <store>`` and the leases coordinate
them with no parent at all; :func:`run_pool` is just the single-host
convenience wrapper.

:func:`run_distributed` is the ``campaign run --distributed`` entry:
prepare the store (manifest, series-bin pin, optional ``--retry-failed``
ledger clear), run the pool, and fold the outcome into the same
:class:`~repro.campaign.orchestrator.CampaignRunReport` the serial
orchestrator returns.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.chaos import WORKER_ENV_VAR
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    CampaignStore,
    StoreError,
)
from repro.campaign.worker import EXIT_CELL_TIMEOUT

#: Poll cadence of the babysitting loop (worker exits, respawn checks).
_POLL = 0.05


@dataclass
class WorkerExit:
    """One worker process's final state."""

    worker: str
    exitcode: int
    reason: str  # "drained" | "signal" | "timeout" | "error"


@dataclass
class PoolReport:
    """What one :func:`run_pool` invocation did."""

    store_dir: Path
    jobs: int
    planned: int
    cached: int        # artifacts that already existed when the pool started
    executed: int = 0  # new artifacts on disk when the pool finished
    quarantined: int = 0
    deaths: int = 0    # abnormal worker exits observed
    respawns: int = 0
    wall_seconds: float = 0.0
    interrupted: bool = False
    exits: list[WorkerExit] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.cached + self.executed == self.planned


def run_pool(
    store_dir,
    jobs: int | None = None,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    cell_timeout: float | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    respawn_limit: int | None = None,
    bus=None,
    env: dict | None = None,
) -> PoolReport:
    """Run worker subprocesses until the campaign drains; returns what
    happened.

    ``respawn_limit`` bounds replacements for abnormally dead workers
    (default ``max(4, 2 * jobs)``) — with the chaos harness armed at
    probability 1.0 every replacement dies too, and the bound turns
    that into "pool returns incomplete" instead of a fork bomb.
    ``env`` overlays the workers' environment (tests inject
    ``REPRO_CHAOS`` here); every worker also gets ``REPRO_WORKER_ID``
    set to its name so chaos streams are per-worker deterministic.
    """
    started = time.perf_counter()
    store = CampaignStore(store_dir)
    if not store.exists():
        raise StoreError(f"no campaign store at {store.directory}")
    spec = CampaignSpec.from_dict(store.read_manifest())
    planned_ids = {run.run_id for run in spec.plan()}
    cached = len(store.run_ids() & planned_ids)

    from repro.experiments.parallel import default_jobs

    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    if respawn_limit is None:
        respawn_limit = max(4, 2 * jobs)

    report = PoolReport(
        store_dir=store.directory,
        jobs=jobs,
        planned=len(planned_ids),
        cached=cached,
    )
    if cached == len(planned_ids):  # nothing to do; don't spawn anything
        report.wall_seconds = time.perf_counter() - started
        return report

    def remaining_claimable() -> int:
        missing = planned_ids - store.run_ids()
        return len(missing - store.quarantined_ids())

    def spawn(name: str) -> tuple[str, subprocess.Popen, threading.Thread]:
        cmd = [
            sys.executable, "-m", "repro.campaign.worker",
            str(store.directory),
            "--worker", name,
            "--events",
            "--lease-ttl", str(lease_ttl),
            "--max-attempts", str(max_attempts),
        ]
        if cell_timeout is not None:
            cmd += ["--cell-timeout", str(cell_timeout)]
        worker_env = dict(os.environ)
        if env:
            worker_env.update(env)
        worker_env[WORKER_ENV_VAR] = name
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, text=True, env=worker_env
        )
        reader = threading.Thread(
            target=_drain_events, args=(proc.stdout, bus),
            name=f"pool-reader-{name}", daemon=True,
        )
        reader.start()
        return name, proc, reader

    alive = [spawn(f"w{i}") for i in range(jobs)]
    try:
        while alive:
            time.sleep(_POLL)
            still = []
            for name, proc, reader in alive:
                rc = proc.poll()
                if rc is None:
                    still.append((name, proc, reader))
                    continue
                reader.join(timeout=5.0)
                exit_info = _classify_exit(name, rc)
                report.exits.append(exit_info)
                if exit_info.reason == "drained":
                    continue
                report.deaths += 1
                if bus:
                    _emit_worker_died(bus, exit_info)
                if report.respawns < respawn_limit \
                        and remaining_claimable() > 0:
                    report.respawns += 1
                    still.append(
                        spawn(f"{name.split('-')[0]}-{report.respawns}")
                    )
            alive = still
    except KeyboardInterrupt:
        report.interrupted = True
        for _, proc, _ in alive:
            proc.terminate()
        for _, proc, reader in alive:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
            reader.join(timeout=5.0)

    report.executed = len(store.run_ids() & planned_ids) - cached
    report.quarantined = len(
        (planned_ids - store.run_ids()) & store.quarantined_ids()
    )
    report.wall_seconds = time.perf_counter() - started
    return report


def run_distributed(
    spec: CampaignSpec,
    root=None,
    jobs: int | None = None,
    series_bin_width: float = 0.05,
    *,
    compress_series: bool | None = None,
    retry_failed: bool = False,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    cell_timeout: float | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    respawn_limit: int | None = None,
    bus=None,
):
    """``campaign run --distributed``: prepare the store, run the pool.

    Returns the same :class:`CampaignRunReport` shape as the serial
    :func:`~repro.campaign.orchestrator.run_campaign`, so the CLI (and
    anything scripting it) treats the two modes interchangeably.
    """
    from repro.campaign.orchestrator import (
        DEFAULT_ROOT,
        CampaignRunReport,
        open_store,
    )

    store = open_store(spec, DEFAULT_ROOT if root is None else root).ensure()
    store.pin_series_bin_width(series_bin_width)
    store.write_manifest(
        spec.to_dict(),
        series_bin_width=series_bin_width,
        compress_series=compress_series,
    )
    if retry_failed:
        store.clear_failures()
    pool = run_pool(
        store.directory,
        jobs=jobs,
        lease_ttl=lease_ttl,
        cell_timeout=cell_timeout,
        max_attempts=max_attempts,
        respawn_limit=respawn_limit,
        bus=bus,
    )
    return CampaignRunReport(
        name=spec.name,
        store_dir=store.directory,
        planned=pool.planned,
        cached=pool.cached,
        executed=pool.executed,
        jobs=pool.jobs,
        wall_seconds=pool.wall_seconds,
        interrupted=pool.interrupted,
        quarantined=pool.quarantined,
        deaths=pool.deaths,
    )


def _drain_events(stream, bus) -> None:
    """Decode one worker's stdout protocol back onto the parent bus.

    Always runs to EOF even with no bus attached: the workers block on
    a full pipe otherwise.  Undecodable lines are dropped — a worker
    SIGKILLed mid-line (the chaos harness guarantees some) leaves a
    torn fragment, and losing one advisory event is the correct cost.
    """
    from repro.obs.events import event_from_dict

    try:
        for line in stream:
            if not bus:
                continue
            try:
                event = event_from_dict(json.loads(line))
            except (json.JSONDecodeError, TypeError):
                continue
            if event is not None:
                bus.emit(event)
    finally:
        try:
            stream.close()
        except OSError:
            pass


def _classify_exit(name: str, rc: int) -> WorkerExit:
    from repro.campaign.worker import EXIT_DRAINED_QUARANTINE

    if rc in (0, EXIT_DRAINED_QUARANTINE):
        reason = "drained"
    elif rc == EXIT_CELL_TIMEOUT:
        reason = "timeout"
    elif rc < 0:
        reason = "signal"
    else:
        reason = "error"
    return WorkerExit(worker=name, exitcode=rc, reason=reason)


def _emit_worker_died(bus, exit_info: WorkerExit) -> None:
    from repro.obs.events import WorkerDied

    bus.emit(WorkerDied(
        time=0.0, worker=exit_info.worker, reason=exit_info.reason,
        exitcode=exit_info.exitcode,
    ))
