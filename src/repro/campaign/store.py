"""The persistent, content-addressed campaign run store.

Layout on disk (everything human-readable JSON)::

    <root>/<campaign-name>/
        manifest.json          # spec snapshot + schema version
        runs/<run_id>.json     # one artifact per completed run

``run_id`` is :meth:`ExperimentConfig.config_hash` — a truncated
SHA-256 over the config's canonical JSON — so the same configuration
always files under the same name, no matter which process, host, or
campaign produced it.  That single property buys everything else:

* **resume** — a run whose artifact exists is never re-executed;
* **extension** — adding seeds or axis values to the spec leaves
  existing artifacts valid and only the new hashes missing;
* **dedup** — every spec revision of a campaign, and any ad-hoc batch
  pointed at its store via :meth:`CampaignStore.as_cache`, reuses the
  artifacts instead of recomputing (one store = one artifact per
  distinct config, ever).

Artifacts are written atomically (temp file + ``os.replace``), so a
campaign killed mid-write never leaves a torn artifact behind — at
worst the run is missing and re-executes on resume.  Every field that
feeds reports is deterministic for a given config; wall-clock timing is
quarantined under the ``"timing"`` key, which readers ignore, keeping
resumed results bit-identical to uninterrupted ones.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.analysis.export import summary_from_dict, summary_to_dict
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.metrics.rates import MetricsSummary
from repro.metrics.timeseries import BandwidthSeries

#: Bump when the artifact layout changes incompatibly; readers reject
#: artifacts from a different major schema.
STORE_SCHEMA = 1


class StoreError(RuntimeError):
    """A store artifact that cannot be read back."""


@dataclass
class StoredRun:
    """One run artifact loaded back from disk."""

    run_id: str
    config: ExperimentConfig
    point: dict
    summary: MetricsSummary
    series: BandwidthSeries
    series_bin_width: float | None
    activation_time: float | None
    identified_atrs: set[str]
    true_atrs: set[str]
    events_executed: int
    wall_seconds: float

    @property
    def seed(self) -> int:
        """The run's seed (a plain config field, surfaced for grouping)."""
        return self.config.seed

    def to_result(self) -> ExperimentResult:
        """Rehydrate a detached :class:`ExperimentResult` (scenario=None)."""
        return ExperimentResult(
            config=self.config,
            summary=self.summary,
            series=self.series,
            scenario=None,
            activation_time=self.activation_time,
            identified_atrs=set(self.identified_atrs),
            true_atrs=set(self.true_atrs),
            events_executed=self.events_executed,
            wall_seconds=self.wall_seconds,
        )


class CampaignStore:
    """Artifact store for one campaign directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.runs_dir = self.directory / "runs"

    @property
    def name(self) -> str:
        """The campaign name (the directory's basename)."""
        return self.directory.name

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    def ensure(self) -> "CampaignStore":
        """Create the directory skeleton; idempotent."""
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        return self

    def exists(self) -> bool:
        """True once :meth:`ensure` (or a previous run) created the store."""
        return self.runs_dir.is_dir()

    # ----------------------------------------------------------- manifest

    def write_manifest(
        self, spec_dict: dict, series_bin_width: float | None = None
    ) -> Path:
        """Snapshot the spec next to its artifacts (atomic)."""
        payload = {"schema": STORE_SCHEMA, "spec": spec_dict}
        if series_bin_width is not None:
            payload["series_bin_width"] = series_bin_width
        return self._write_json(self.manifest_path, payload)

    def read_manifest(self) -> dict:
        """The spec snapshot last written (raises if never written)."""
        return self._read_manifest_payload()["spec"]

    def series_bin_width(self) -> float | None:
        """The bin width this store's artifacts were recorded at, or
        ``None`` when no manifest (or an older one) exists."""
        if not self.manifest_path.is_file():
            return None
        return self._read_manifest_payload().get("series_bin_width")

    def pin_series_bin_width(self, width: float) -> None:
        """Claim (or verify) the store-wide series resolution.

        Every writer — campaign orchestrator or ad-hoc cache — goes
        through this before filing artifacts, so one store can never
        hold series at mixed resolutions: the first writer records the
        width in the manifest and every later writer must match it.
        """
        recorded = self.series_bin_width()
        if recorded is not None:
            if recorded != width:
                raise StoreError(
                    f"store {self.directory} records series at bin width "
                    f"{recorded}; writing at {width} would mix time "
                    "resolutions — use the recorded width or a fresh store"
                )
            return
        spec = (
            self.read_manifest() if self.manifest_path.is_file() else {}
        )
        self.write_manifest(spec, series_bin_width=width)

    def _read_manifest_payload(self) -> dict:
        payload = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        self._check_schema(payload, self.manifest_path)
        return payload

    # --------------------------------------------------------------- runs

    def run_path(self, run_id: str) -> Path:
        return self.runs_dir / f"{run_id}.json"

    def has(self, run_id: str) -> bool:
        """True when the run's artifact exists (the resume predicate)."""
        return self.run_path(run_id).is_file()

    def run_ids(self) -> set[str]:
        """Hashes of every artifact on disk."""
        if not self.runs_dir.is_dir():
            return set()
        return {path.stem for path in self.runs_dir.glob("*.json")}

    def write_result(
        self,
        result: ExperimentResult,
        point: dict | None = None,
        series_bin_width: float | None = None,
    ) -> Path:
        """File one run's artifact under its config hash (atomic).

        ``point`` is advisory provenance (which grid cell produced the
        artifact); query paths recompute cell membership from the
        current spec's plan, so an artifact written without a point —
        e.g. through :class:`StoreCache` — aggregates correctly anyway.
        ``series_bin_width`` records the resolution the bandwidth series
        was binned at, letting cache reads refuse mismatched hits.
        """
        run_id = result.config.config_hash()
        series = result.series
        payload = {
            "schema": STORE_SCHEMA,
            "run_id": run_id,
            "config": result.config.to_dict(),
            "point": dict(point or {}),
            "summary": summary_to_dict(result.summary),
            "activation_time": result.activation_time,
            "identified_atrs": sorted(result.identified_atrs),
            "true_atrs": sorted(result.true_atrs),
            "events_executed": result.events_executed,
            "series_bin_width": series_bin_width,
            "series": {
                "times": series.times,
                "total_kbps": series.total_kbps,
                "attack_kbps": series.attack_kbps,
                "legit_kbps": series.legit_kbps,
            },
            # Non-deterministic measurements live here and ONLY here;
            # reports never read this key.
            "timing": {"wall_seconds": result.wall_seconds},
        }
        return self._write_json(self.run_path(run_id), payload)

    def read_run(self, run_id: str, load_series: bool = True) -> StoredRun:
        """Load one artifact back into a :class:`StoredRun`.

        ``load_series=False`` skips materializing the bandwidth-series
        lists for summary-only consumers like
        :func:`repro.campaign.query.campaign_report`.  (The JSON is
        still parsed whole; moving the series to sidecar files so
        summary readers never touch it is a ROADMAP candidate for
        very large grids.)
        """
        path = self.run_path(run_id)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(
                f"no artifact for run {run_id!r} in {self.runs_dir}"
            ) from None
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt artifact {path}: {exc}") from exc
        self._check_schema(payload, path)
        config = ExperimentConfig.from_dict(payload["config"])
        if config.config_hash() != payload["run_id"]:
            raise StoreError(
                f"artifact {path} config no longer hashes to its run_id "
                "(edited by hand, or written by an incompatible version?)"
            )
        if load_series:
            series_payload = payload["series"]
            series = BandwidthSeries(
                times=list(series_payload["times"]),
                total_kbps=list(series_payload["total_kbps"]),
                attack_kbps=list(series_payload["attack_kbps"]),
                legit_kbps=list(series_payload["legit_kbps"]),
            )
        else:
            series = BandwidthSeries(
                times=[], total_kbps=[], attack_kbps=[], legit_kbps=[]
            )
        return StoredRun(
            run_id=payload["run_id"],
            config=config,
            point=dict(payload["point"]),
            summary=summary_from_dict(payload["summary"]),
            series=series,
            series_bin_width=payload.get("series_bin_width"),
            activation_time=payload["activation_time"],
            identified_atrs=set(payload["identified_atrs"]),
            true_atrs=set(payload["true_atrs"]),
            events_executed=payload["events_executed"],
            wall_seconds=payload["timing"]["wall_seconds"],
        )

    def iter_runs(self) -> Iterator[StoredRun]:
        """Every artifact, in run-id order (deterministic)."""
        for run_id in sorted(self.run_ids()):
            yield self.read_run(run_id)

    def as_cache(self, series_bin_width: float = 0.05) -> "StoreCache":
        """Adapter for :func:`repro.experiments.parallel.run_batch`'s
        ``cache`` protocol — store-backed sweeps/batches for free.

        ``series_bin_width`` must match the batch's: artifacts recorded
        at a different bin width (or with no record of one) are treated
        as misses and re-run, so a cache-hit batch never mixes series
        resolutions.
        """
        return StoreCache(self, series_bin_width=series_bin_width)

    # ------------------------------------------------------------ helpers

    def _write_json(self, path: Path, payload: dict) -> Path:
        """Atomic JSON write: temp file in the same directory + replace."""
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with tmp.open("w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True, allow_nan=False)
            f.write("\n")
        os.replace(tmp, path)
        return path

    @staticmethod
    def _check_schema(payload: dict, path: Path) -> None:
        schema = payload.get("schema")
        if schema != STORE_SCHEMA:
            raise StoreError(
                f"{path}: store schema {schema!r} != supported {STORE_SCHEMA}"
            )


class StoreCache:
    """``run_batch(cache=...)`` protocol over a :class:`CampaignStore`.

    ``get`` returns the rehydrated result for a config whose artifact
    exists *and* was recorded at this cache's series bin width (else
    None — a mismatched-resolution artifact re-runs rather than mixing
    time resolutions into one batch); ``put`` files a freshly computed
    result.
    """

    def __init__(
        self, store: CampaignStore, series_bin_width: float = 0.05
    ) -> None:
        self.store = store.ensure()
        # Refuses a width the store's manifest already pins differently,
        # so an ad-hoc batch can't silently rewrite a campaign's
        # artifacts at another resolution.
        self.store.pin_series_bin_width(series_bin_width)
        self.series_bin_width = series_bin_width

    def get(self, config: ExperimentConfig) -> ExperimentResult | None:
        run_id = config.config_hash()
        if not self.store.has(run_id):
            return None
        run = self.store.read_run(run_id)
        if run.series_bin_width != self.series_bin_width:
            return None
        return run.to_result()

    def put(self, result: ExperimentResult) -> None:
        self.store.write_result(result, series_bin_width=self.series_bin_width)
