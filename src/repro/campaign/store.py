"""The persistent, content-addressed campaign run store.

Layout on disk (schema 2 — everything human-readable JSON)::

    <root>/<campaign-name>/
        manifest.json                        # spec snapshot + schema version
        runs/<hh>/<run_id>.json              # summary artifact (no series)
        runs/<hh>/<run_id>.series.json       # bandwidth-series sidecar

``<hh>`` is the first two hex digits of ``run_id``, so no directory ever
holds more than ~1/256 of the grid — a 100k-run campaign stays at a few
hundred entries per directory.  The bandwidth series lives in a sidecar
file, so summary-only readers (``campaign status``, ``campaign report``,
``read_run(load_series=False)``) parse only the small summary documents:
report cost scales with artifact *count*, never with series *length*.

``run_id`` is :meth:`ExperimentConfig.config_hash` — a truncated
SHA-256 over the config's canonical JSON — so the same configuration
always files under the same name, no matter which process, host, or
campaign produced it.  That single property buys everything else:

* **resume** — a run whose artifact exists is never re-executed;
* **extension** — adding seeds or axis values to the spec leaves
  existing artifacts valid and only the new hashes missing;
* **dedup** — every spec revision of a campaign, and any ad-hoc batch
  pointed at its store via :meth:`CampaignStore.as_cache`, reuses the
  artifacts instead of recomputing (one store = one artifact per
  distinct config, ever).

**Schema-1 stores** (flat ``runs/<run_id>.json`` with the series inline)
remain readable transparently: the reader falls back to the flat path
and the inline ``"series"`` key, and :meth:`CampaignStore.migrate`
(CLI: ``python -m repro campaign migrate <dir>``) rewrites them in place
atomically, with byte-identical reports before and after.  Readers
accept any schema in :data:`READ_SCHEMAS` and reject everything else;
the major bumps only when existing readers could misinterpret the bytes
(a new sidecar or shard location is a *minor*, read-compatible change —
moving or renaming summary fields is not).

Artifacts are written atomically (unique temp file + fsync +
``os.replace``), so a campaign killed mid-write never leaves a torn
artifact behind — at worst the run is missing (or an orphan sidecar is
left for ``campaign gc``) and re-executes on resume.  Every field that
feeds reports is deterministic for a given config; wall-clock timing is
quarantined under the ``"timing"`` key, which readers ignore, keeping
resumed results bit-identical to uninterrupted ones.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.analysis.export import summary_from_dict, summary_to_dict
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.metrics.rates import MetricsSummary
from repro.metrics.timeseries import BandwidthSeries

#: The layout this code writes: hash-prefix shards + series sidecars.
STORE_SCHEMA = 2

#: Schemas this code reads.  1 is the flat, inline-series layout every
#: pre-sidecar store used; readers reject anything outside this set.
READ_SCHEMAS = frozenset({1, STORE_SCHEMA})

#: Suffix of the series sidecar next to each summary artifact.
SERIES_SUFFIX = ".series.json"


class StoreError(RuntimeError):
    """A store artifact that cannot be read back."""


@dataclass
class StoredRun:
    """One run artifact loaded back from disk."""

    run_id: str
    config: ExperimentConfig
    point: dict
    summary: MetricsSummary
    series: BandwidthSeries
    series_bin_width: float | None
    activation_time: float | None
    identified_atrs: set[str]
    true_atrs: set[str]
    events_executed: int
    wall_seconds: float

    @property
    def seed(self) -> int:
        """The run's seed (a plain config field, surfaced for grouping)."""
        return self.config.seed

    def to_result(self) -> ExperimentResult:
        """Rehydrate a detached :class:`ExperimentResult` (scenario=None)."""
        return ExperimentResult(
            config=self.config,
            summary=self.summary,
            series=self.series,
            scenario=None,
            activation_time=self.activation_time,
            identified_atrs=set(self.identified_atrs),
            true_atrs=set(self.true_atrs),
            events_executed=self.events_executed,
            wall_seconds=self.wall_seconds,
        )


@dataclass
class MigrationReport:
    """What :meth:`CampaignStore.migrate` did."""

    store_dir: Path
    migrated: int = 0      # artifacts rewritten into the schema-2 layout
    already_current: int = 0

    @property
    def total(self) -> int:
        return self.migrated + self.already_current


@dataclass
class GCReport:
    """What :meth:`CampaignStore.gc` deleted (or would delete)."""

    store_dir: Path
    applied: bool = False
    #: Summary artifacts the current plan no longer references, plus
    #: their sidecars.
    unplanned: list[Path] = field(default_factory=list)
    #: Sidecars whose summary artifact is gone (lost to a crash between
    #: the sidecar write and the summary write, or to manual deletion).
    orphan_sidecars: list[Path] = field(default_factory=list)
    #: Leftover atomic-write temp files (a writer died mid-write).
    tmp_files: list[Path] = field(default_factory=list)

    @property
    def paths(self) -> list[Path]:
        """Every doomed path, deterministically ordered."""
        return sorted(self.unplanned + self.orphan_sidecars + self.tmp_files)


class CampaignStore:
    """Artifact store for one campaign directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.runs_dir = self.directory / "runs"

    @property
    def name(self) -> str:
        """The campaign name (the directory's basename)."""
        return self.directory.name

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    def ensure(self) -> "CampaignStore":
        """Create the directory skeleton; idempotent."""
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        return self

    def exists(self) -> bool:
        """True once :meth:`ensure` (or a previous run) created the store."""
        return self.runs_dir.is_dir()

    # ----------------------------------------------------------- manifest

    def write_manifest(
        self, spec_dict: dict, series_bin_width: float | None = None
    ) -> Path:
        """Snapshot the spec next to its artifacts (atomic).

        Passing ``series_bin_width=None`` means "no new claim", not
        "clear the pin": a width already recorded by
        :meth:`pin_series_bin_width` survives every re-snapshot, so a
        spec revision can never silently un-pin the store and let a
        later writer file mixed-resolution series.
        """
        if series_bin_width is None:
            series_bin_width = self.series_bin_width()
        payload = {"schema": STORE_SCHEMA, "spec": spec_dict}
        if series_bin_width is not None:
            payload["series_bin_width"] = series_bin_width
        return self._write_json(self.manifest_path, payload)

    def read_manifest(self) -> dict:
        """The spec snapshot last written (raises if never written)."""
        return self._read_manifest_payload()["spec"]

    def series_bin_width(self) -> float | None:
        """The bin width this store's artifacts were recorded at, or
        ``None`` when no manifest (or an older one) exists."""
        if not self.manifest_path.is_file():
            return None
        return self._read_manifest_payload().get("series_bin_width")

    def pin_series_bin_width(self, width: float) -> None:
        """Claim (or verify) the store-wide series resolution.

        Every writer — campaign orchestrator or ad-hoc cache — goes
        through this before filing artifacts, so one store can never
        hold series at mixed resolutions: the first writer records the
        width in the manifest and every later writer must match it.
        """
        recorded = self.series_bin_width()
        if recorded is not None:
            if recorded != width:
                raise StoreError(
                    f"store {self.directory} records series at bin width "
                    f"{recorded}; writing at {width} would mix time "
                    "resolutions — use the recorded width or a fresh store"
                )
            return
        spec = (
            self.read_manifest() if self.manifest_path.is_file() else {}
        )
        self.write_manifest(spec, series_bin_width=width)

    def _read_manifest_payload(self) -> dict:
        payload = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        self._check_schema(payload, self.manifest_path)
        return payload

    # --------------------------------------------------------------- runs

    def run_path(self, run_id: str) -> Path:
        """Where the run's summary artifact lives.

        Prefers an existing file — the sharded schema-2 location first,
        then the flat schema-1 one — and falls back to the canonical
        sharded path for new writes, so readers see schema-1 stores
        transparently and writers never fork a second copy of a run.
        """
        sharded = self.runs_dir / run_id[:2] / f"{run_id}.json"
        if sharded.is_file():
            return sharded
        flat = self.runs_dir / f"{run_id}.json"
        if flat.is_file():
            return flat
        return sharded

    @staticmethod
    def series_path(run_path: Path) -> Path:
        """The sidecar next to a summary artifact (schema 2)."""
        return run_path.with_name(run_path.stem + SERIES_SUFFIX)

    def has(self, run_id: str) -> bool:
        """True when the run's artifact exists (the resume predicate)."""
        return self.run_path(run_id).is_file()

    def _artifact_paths(self) -> Iterator[Path]:
        """Every summary artifact on disk — flat and sharded, no sidecars."""
        if not self.runs_dir.is_dir():
            return
        for pattern in ("*.json", "*/*.json"):
            for path in self.runs_dir.glob(pattern):
                if not path.name.endswith(SERIES_SUFFIX):
                    yield path

    def run_ids(self) -> set[str]:
        """Hashes of every artifact on disk (both layouts)."""
        return {path.stem for path in self._artifact_paths()}

    def write_result(
        self,
        result: ExperimentResult,
        point: dict | None = None,
        series_bin_width: float | None = None,
    ) -> Path:
        """File one run's artifact under its config hash (atomic).

        The bandwidth series goes to the ``.series.json`` sidecar and
        the summary document to ``runs/<hh>/<run_id>.json`` — sidecar
        first, so a visible summary implies its series committed (a
        crash in between leaves only an orphan sidecar, which
        :meth:`gc` prunes and resume overwrites harmlessly).

        ``point`` is advisory provenance (which grid cell produced the
        artifact); query paths recompute cell membership from the
        current spec's plan, so an artifact written without a point —
        e.g. through :class:`StoreCache` — aggregates correctly anyway.
        ``series_bin_width`` records the resolution the bandwidth series
        was binned at, letting cache reads refuse mismatched hits.
        """
        run_id = result.config.config_hash()
        series = result.series
        path = self.run_path(run_id)  # existing location, else sharded
        payload = {
            "schema": STORE_SCHEMA,
            "run_id": run_id,
            "config": result.config.to_dict(),
            "point": dict(point or {}),
            "summary": summary_to_dict(result.summary),
            "activation_time": result.activation_time,
            "identified_atrs": sorted(result.identified_atrs),
            "true_atrs": sorted(result.true_atrs),
            "events_executed": result.events_executed,
            "series_bin_width": series_bin_width,
            # Non-deterministic measurements live here and ONLY here;
            # reports never read this key.
            "timing": {"wall_seconds": result.wall_seconds},
        }
        self._write_json(
            self.series_path(path),
            {
                "schema": STORE_SCHEMA,
                "run_id": run_id,
                "series": {
                    "times": series.times,
                    "total_kbps": series.total_kbps,
                    "attack_kbps": series.attack_kbps,
                    "legit_kbps": series.legit_kbps,
                },
            },
        )
        return self._write_json(path, payload)

    def read_run(self, run_id: str, load_series: bool = True) -> StoredRun:
        """Load one artifact back into a :class:`StoredRun`.

        ``load_series=False`` skips the series.  On schema 2 that means
        the sidecar is never opened, so summary-only consumers like
        :func:`repro.campaign.query.campaign_report` pay per artifact,
        not per series sample.  On schema 1 the inline series is still
        *parsed* (the JSON document is read whole) — only the Python
        lists are skipped; migrate the store to get length-independent
        summary reads.
        """
        path = self.run_path(run_id)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(
                f"no artifact for run {run_id!r} in {self.runs_dir}"
            ) from None
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt artifact {path}: {exc}") from exc
        self._check_schema(payload, path)
        config = ExperimentConfig.from_dict(payload["config"])
        if config.config_hash() != payload["run_id"]:
            raise StoreError(
                f"artifact {path} config no longer hashes to its run_id "
                "(edited by hand, or written by an incompatible version?)"
            )
        if load_series:
            # Schema 1 carries the series inline; schema 2 sidecars it.
            series_payload = payload.get("series")
            if series_payload is None:
                series_payload = self._read_series_payload(path, run_id)
            series = BandwidthSeries(
                times=list(series_payload["times"]),
                total_kbps=list(series_payload["total_kbps"]),
                attack_kbps=list(series_payload["attack_kbps"]),
                legit_kbps=list(series_payload["legit_kbps"]),
            )
        else:
            series = BandwidthSeries(
                times=[], total_kbps=[], attack_kbps=[], legit_kbps=[]
            )
        return StoredRun(
            run_id=payload["run_id"],
            config=config,
            point=dict(payload["point"]),
            summary=summary_from_dict(payload["summary"]),
            series=series,
            series_bin_width=payload.get("series_bin_width"),
            activation_time=payload["activation_time"],
            identified_atrs=set(payload["identified_atrs"]),
            true_atrs=set(payload["true_atrs"]),
            events_executed=payload["events_executed"],
            wall_seconds=payload["timing"]["wall_seconds"],
        )

    def _read_series_payload(self, run_path: Path, run_id: str) -> dict:
        """The sidecar's ``"series"`` table for one summary artifact."""
        sidecar = self.series_path(run_path)
        try:
            payload = json.loads(sidecar.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(
                f"artifact {run_path} has no series sidecar {sidecar.name} "
                "(crash between writes? resume re-runs it, or gc prunes it)"
            ) from None
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt sidecar {sidecar}: {exc}") from exc
        self._check_schema(payload, sidecar)
        if payload.get("run_id") != run_id:
            raise StoreError(
                f"sidecar {sidecar} belongs to run {payload.get('run_id')!r}"
                f", not {run_id!r}"
            )
        return payload["series"]

    def iter_runs(self, load_series: bool = True) -> Iterator[StoredRun]:
        """Every artifact, in run-id order (deterministic).

        ``load_series=False`` skips the series exactly like
        :meth:`read_run`: summary-only scans over a schema-2 store
        never open a sidecar (schema-1 artifacts still parse their
        inline series as part of the document — migrate for the full
        win).
        """
        for run_id in sorted(self.run_ids()):
            yield self.read_run(run_id, load_series=load_series)

    def as_cache(self, series_bin_width: float = 0.05) -> "StoreCache":
        """Adapter for :func:`repro.experiments.parallel.run_batch`'s
        ``cache`` protocol — store-backed sweeps/batches for free.

        ``series_bin_width`` must match the batch's: artifacts recorded
        at a different bin width (or with no record of one) are treated
        as misses and re-run, so a cache-hit batch never mixes series
        resolutions.
        """
        return StoreCache(self, series_bin_width=series_bin_width)

    # -------------------------------------------------------- maintenance

    def migrate(self) -> MigrationReport:
        """Rewrite a schema-1 store into the sharded sidecar layout.

        In place and atomic per artifact: the sidecar and the sharded
        summary are fully written (tmp + fsync + rename) before the old
        flat file is unlinked, so a crash mid-migration leaves every
        run readable — at worst both copies exist and the reader
        prefers the sharded one.  Idempotent: a second invocation finds
        nothing left to do.  Reports are byte-identical before and
        after (the summary fields are untouched).
        """
        report = MigrationReport(store_dir=self.directory)
        for old_path in sorted(self._artifact_paths()):
            try:
                payload = json.loads(old_path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                raise StoreError(
                    f"corrupt artifact {old_path}: {exc} — delete it (or "
                    "let resume rewrite it), then re-run migrate"
                ) from exc
            self._check_schema(payload, old_path)
            run_id = payload.get("run_id")
            if not isinstance(run_id, str) or not run_id:
                raise StoreError(
                    f"{old_path} carries no run_id — not a campaign "
                    "artifact? move it out of runs/ and re-run migrate"
                )
            target = self.runs_dir / run_id[:2] / f"{run_id}.json"
            inline = "series" in payload
            if not inline and old_path == target:
                report.already_current += 1
                continue
            if inline:
                series = payload.pop("series")
            else:  # sharded-but-misplaced: carry the sidecar along
                series = self._read_series_payload(old_path, run_id)
            payload["schema"] = STORE_SCHEMA
            self._write_json(
                self.series_path(target),
                {"schema": STORE_SCHEMA, "run_id": run_id, "series": series},
            )
            self._write_json(target, payload)
            if old_path != target:
                old_path.unlink()
                old_sidecar = self.series_path(old_path)
                if old_sidecar.is_file():
                    old_sidecar.unlink()
            report.migrated += 1
        if self.manifest_path.is_file():
            # Re-stamp schema 2, preserving the spec and any pin.
            self.write_manifest(self.read_manifest())
        return report

    def gc(
        self,
        planned_ids: set[str],
        apply: bool = False,
        min_debris_age_seconds: float = 3600.0,
    ) -> GCReport:
        """Prune what the current plan no longer references.

        Three categories: summary artifacts (plus their sidecars) whose
        run_id is not in ``planned_ids``; orphaned sidecars with no
        summary artifact; and leftover ``*.tmp`` files from writers
        that died mid-write.  The manifest is never touched.  With
        ``apply=False`` (the default) nothing is deleted — the report
        lists what *would* go.

        Orphan sidecars and temp files younger than
        ``min_debris_age_seconds`` are spared: a *live* writer holds an
        in-flight mkstemp file (and briefly a summary-less sidecar)
        that looks exactly like crash debris, and unlinking it would
        fail that writer's rename mid-campaign.  An hour cleanly
        separates dead writers from running ones; unplanned artifacts
        carry no such race (plan membership is deterministic) and are
        pruned regardless of age.
        """
        report = GCReport(store_dir=self.directory, applied=apply)
        cutoff = time.time() - min_debris_age_seconds

        def settled(path: Path) -> bool:
            try:
                return path.stat().st_mtime < cutoff
            except OSError:  # vanished mid-scan: a writer renamed it
                return False

        for path in self._artifact_paths():
            if path.stem not in planned_ids:
                report.unplanned.append(path)
                sidecar = self.series_path(path)
                if sidecar.is_file():
                    report.unplanned.append(sidecar)
        if self.runs_dir.is_dir():
            for pattern in (f"*{SERIES_SUFFIX}", f"*/*{SERIES_SUFFIX}"):
                for sidecar in self.runs_dir.glob(pattern):
                    stem = sidecar.name[: -len(SERIES_SUFFIX)]
                    if not sidecar.with_name(f"{stem}.json").is_file() \
                            and settled(sidecar):
                        report.orphan_sidecars.append(sidecar)
            for pattern in ("*.tmp", "*/*.tmp"):
                report.tmp_files.extend(
                    p for p in self.runs_dir.glob(pattern) if settled(p)
                )
        report.tmp_files.extend(
            p for p in self.directory.glob("*.tmp") if settled(p)
        )
        if apply:
            for path in report.paths:
                path.unlink(missing_ok=True)
            for shard in self.runs_dir.glob("*/"):
                try:  # drop shard dirs emptied by the pruning
                    shard.rmdir()
                except OSError:
                    pass
        return report

    # ------------------------------------------------------------ helpers

    def _write_json(self, path: Path, payload: dict) -> Path:
        """Atomic JSON write: unique temp file in the same directory,
        fsync, then rename.

        The temp name comes from :func:`tempfile.mkstemp`, so two
        processes filing the same ``run_id`` concurrently (two resumed
        campaigns, ``jobs=N`` workers sharing a :class:`StoreCache`)
        each write their own file and the last rename wins whole — a
        fixed ``<path>.tmp`` name would interleave their writes into
        one file and rename a torn artifact into place.
        """
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as f:
                json.dump(
                    payload, f, indent=2, sort_keys=True, allow_nan=False
                )
                f.write("\n")
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    @staticmethod
    def _check_schema(payload: dict, path: Path) -> None:
        schema = payload.get("schema")
        if schema not in READ_SCHEMAS:
            raise StoreError(
                f"{path}: store schema {schema!r} not in supported "
                f"{sorted(READ_SCHEMAS)}"
            )


def migrate_store(directory: str | Path) -> MigrationReport:
    """Module-level convenience for ``campaign migrate <dir>``."""
    store = CampaignStore(directory)
    if not store.exists():
        raise StoreError(f"no campaign store at {store.directory}")
    return store.migrate()


class StoreCache:
    """``run_batch(cache=...)`` protocol over a :class:`CampaignStore`.

    ``get`` returns the rehydrated result for a config whose artifact
    exists *and* was recorded at this cache's series bin width (else
    None — a mismatched-resolution artifact re-runs rather than mixing
    time resolutions into one batch); ``put`` files a freshly computed
    result.
    """

    def __init__(
        self, store: CampaignStore, series_bin_width: float = 0.05
    ) -> None:
        self.store = store.ensure()
        # Refuses a width the store's manifest already pins differently,
        # so an ad-hoc batch can't silently rewrite a campaign's
        # artifacts at another resolution.
        self.store.pin_series_bin_width(series_bin_width)
        self.series_bin_width = series_bin_width

    def get(self, config: ExperimentConfig) -> ExperimentResult | None:
        run_id = config.config_hash()
        if not self.store.has(run_id):
            return None
        run = self.store.read_run(run_id)
        if run.series_bin_width != self.series_bin_width:
            return None
        return run.to_result()

    def put(self, result: ExperimentResult) -> None:
        self.store.write_result(result, series_bin_width=self.series_bin_width)
