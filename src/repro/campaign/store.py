"""The persistent, content-addressed campaign run store.

Layout on disk (schema 2 — everything human-readable JSON)::

    <root>/<campaign-name>/
        manifest.json                        # spec snapshot + schema version
        index.jsonl                          # run_id -> summary row (appended)
        runs/<hh>/<run_id>.json              # summary artifact (no series)
        runs/<hh>/<run_id>.series.json       # bandwidth-series sidecar
        runs/<hh>/<run_id>.series.json.gz    # ... gzip, behind a manifest flag
        leases/<run_id>.json                 # worker-pull claim (distributed)
        failed/<run_id>.json                 # retry/quarantine ledger

``<hh>`` is the first two hex digits of ``run_id``, so no directory ever
holds more than ~1/256 of the grid — a 100k-run campaign stays at a few
hundred entries per directory.  The bandwidth series lives in a sidecar
file, so summary-only readers (``campaign status``, ``campaign report``,
``read_run(load_series=False)``) parse only the small summary documents:
report cost scales with artifact *count*, never with series *length*.

``run_id`` is :meth:`ExperimentConfig.config_hash` — a truncated
SHA-256 over the config's canonical JSON — so the same configuration
always files under the same name, no matter which process, host, or
campaign produced it.  That single property buys everything else:

* **resume** — a run whose artifact exists is never re-executed;
* **extension** — adding seeds or axis values to the spec leaves
  existing artifacts valid and only the new hashes missing;
* **dedup** — every spec revision of a campaign, and any ad-hoc batch
  pointed at its store via :meth:`CampaignStore.as_cache`, reuses the
  artifacts instead of recomputing (one store = one artifact per
  distinct config, ever).

**Schema-1 stores** (flat ``runs/<run_id>.json`` with the series inline)
remain readable transparently: the reader falls back to the flat path
and the inline ``"series"`` key, and :meth:`CampaignStore.migrate`
(CLI: ``python -m repro campaign migrate <dir>``) rewrites them in place
atomically, with byte-identical reports before and after.  Readers
accept any schema in :data:`READ_SCHEMAS` and reject everything else;
the major bumps only when existing readers could misinterpret the bytes
(a new sidecar or shard location is a *minor*, read-compatible change —
moving or renaming summary fields is not).

Artifacts are written atomically (unique temp file + fsync +
``os.replace``), so a campaign killed mid-write never leaves a torn
artifact behind — at worst the run is missing (or an orphan sidecar is
left for ``campaign gc``) and re-executes on resume.  Every field that
feeds reports is deterministic for a given config; wall-clock timing is
quarantined under the ``"timing"`` key, which readers ignore, keeping
resumed results bit-identical to uninterrupted ones.

Three optional structures ride next to the artifacts, all degrading
gracefully when absent or stale:

* ``index.jsonl`` — one summary row per artifact, appended (atomically,
  newline-framed) after each summary write, so ``status``/``report`` on
  a >10k-run grid parse one sequential file instead of one JSON
  document per artifact.  The index is a *cache*: a missing or torn row
  falls back to reading that run's artifact, and ``campaign migrate``
  (or :meth:`CampaignStore.rebuild_index`) regenerates the whole file.
* ``leases/<run_id>.json`` — worker-pull claims for distributed
  execution (see :mod:`repro.campaign.pool`).  A lease is advisory:
  it keeps two *live* workers off the same cell, but correctness never
  depends on it — duplicate executions write bit-identical artifacts
  (timing aside) and the atomic rename means exactly one wins whole.
* ``failed/<run_id>.json`` — the retry/quarantine ledger: per-cell
  attempt counts, exponential-backoff deadlines, and the last
  traceback.  A cell that exhausts its attempts is *quarantined* —
  skipped by workers, surfaced by ``status``/``workers``, and never
  silently dropped; ``--retry-failed`` clears the ledger.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import socket
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Iterator

from repro.campaign.chaos import chaos_point

from repro.analysis.export import summary_from_dict, summary_to_dict
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ExperimentResult
from repro.metrics.rates import MetricsSummary
from repro.metrics.timeseries import BandwidthSeries

#: The layout this code writes: hash-prefix shards + series sidecars.
STORE_SCHEMA = 2

#: Schemas this code reads.  1 is the flat, inline-series layout every
#: pre-sidecar store used; readers reject anything outside this set.
READ_SCHEMAS = frozenset({1, STORE_SCHEMA})

#: Suffix of the series sidecar next to each summary artifact.
SERIES_SUFFIX = ".series.json"

#: Gzip-compressed sidecar variant (written behind the manifest's
#: ``compress_series`` flag; readers sniff magic bytes, not suffixes).
SERIES_GZ_SUFFIX = SERIES_SUFFIX + ".gz"

#: The append-only summary index next to the manifest.
INDEX_NAME = "index.jsonl"

#: Default worker-pull lease time-to-live: a lease whose heartbeat is
#: older than this is presumed dead and reclaimable.
DEFAULT_LEASE_TTL = 15.0

#: A heartbeat further than this in the *future* marks the lease stale
#: too: a clock that far ahead is broken, and reclaiming its cell risks
#: only duplicate work (artifacts are atomic and content-addressed),
#: never lost work — whereas honoring it could park the cell for hours.
MAX_FUTURE_SKEW = 300.0

#: Retry policy defaults for the failure ledger.
DEFAULT_MAX_ATTEMPTS = 3
DEFAULT_BACKOFF_BASE = 0.5
DEFAULT_BACKOFF_CAP = 60.0

_GZIP_MAGIC = b"\x1f\x8b"


def atomic_write_bytes(path: Path, data: bytes) -> Path:
    """Atomic byte write: unique temp file in the same directory,
    fsync, then rename.

    The temp name comes from :func:`tempfile.mkstemp`, so two
    processes filing the same ``run_id`` concurrently (two resumed
    campaigns, ``jobs=N`` workers sharing a :class:`StoreCache`)
    each write their own file and the last rename wins whole — a
    fixed ``<path>.tmp`` name would interleave their writes into
    one file and rename a torn artifact into place.

    Every durable file under a campaign directory goes through this
    (or the store's JSON wrapper); ``repro lint``'s ``atomic-write``
    rule enforces that statically.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: Path, text: str) -> Path:
    """Atomic UTF-8 text write (see :func:`atomic_write_bytes`)."""
    return atomic_write_bytes(path, text.encode("utf-8"))


class StoreError(RuntimeError):
    """A store artifact that cannot be read back."""


@dataclass
class Lease:
    """One worker's claim on one plan cell (the ``leases/`` file).

    ``token`` is random per claim: it distinguishes two claims by the
    same worker name and is what :meth:`CampaignStore.refresh_lease` /
    :meth:`CampaignStore.release_lease` verify ownership against.
    """

    run_id: str
    worker: str
    token: str
    pid: int
    host: str
    acquired_at: float
    heartbeat_at: float
    ttl: float

    def expired(self, now: float | None = None) -> bool:
        """Dead-worker predicate: heartbeat too old — or absurdly ahead
        of our clock (see :data:`MAX_FUTURE_SKEW`)."""
        now = time.time() if now is None else now
        age = now - self.heartbeat_at
        return age > self.ttl or -age > max(self.ttl, MAX_FUTURE_SKEW)

    def to_payload(self) -> dict:
        return {
            "run_id": self.run_id,
            "worker": self.worker,
            "token": self.token,
            "pid": self.pid,
            "host": self.host,
            "acquired_at": self.acquired_at,
            "heartbeat_at": self.heartbeat_at,
            "ttl": self.ttl,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Lease":
        return cls(
            run_id=payload["run_id"],
            worker=payload["worker"],
            token=payload["token"],
            pid=int(payload["pid"]),
            host=payload["host"],
            acquired_at=float(payload["acquired_at"]),
            heartbeat_at=float(payload["heartbeat_at"]),
            ttl=float(payload["ttl"]),
        )


@dataclass
class FailureRecord:
    """One cell's retry/quarantine state (the ``failed/`` ledger).

    Never deleted implicitly: a successful execution clears its cell's
    record, ``--retry-failed`` clears them all, and everything else —
    including quarantine — stays on disk with the traceback attached,
    so a failed cell is always *visible*, never silently dropped.
    """

    run_id: str
    attempts: int
    max_attempts: int
    quarantined: bool
    next_retry_at: float
    worker: str
    error: str
    traceback: str
    updated_at: float

    def retryable(self, now: float | None = None) -> bool:
        """True when a worker may attempt this cell right now."""
        if self.quarantined:
            return False
        now = time.time() if now is None else now
        return now >= self.next_retry_at

    def to_payload(self) -> dict:
        return {
            "run_id": self.run_id,
            "attempts": self.attempts,
            "max_attempts": self.max_attempts,
            "quarantined": self.quarantined,
            "next_retry_at": self.next_retry_at,
            "worker": self.worker,
            "error": self.error,
            "traceback": self.traceback,
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FailureRecord":
        return cls(
            run_id=payload["run_id"],
            attempts=int(payload["attempts"]),
            max_attempts=int(payload["max_attempts"]),
            quarantined=bool(payload["quarantined"]),
            next_retry_at=float(payload["next_retry_at"]),
            worker=payload.get("worker", ""),
            error=payload.get("error", ""),
            traceback=payload.get("traceback", ""),
            updated_at=float(payload.get("updated_at", 0.0)),
        )


@dataclass
class StoredRun:
    """One run artifact loaded back from disk."""

    run_id: str
    config: ExperimentConfig
    point: dict
    summary: MetricsSummary
    series: BandwidthSeries
    series_bin_width: float | None
    activation_time: float | None
    identified_atrs: set[str]
    true_atrs: set[str]
    events_executed: int
    wall_seconds: float

    @property
    def seed(self) -> int:
        """The run's seed (a plain config field, surfaced for grouping)."""
        return self.config.seed

    def to_result(self) -> ExperimentResult:
        """Rehydrate a detached :class:`ExperimentResult` (scenario=None)."""
        return ExperimentResult(
            config=self.config,
            summary=self.summary,
            series=self.series,
            scenario=None,
            activation_time=self.activation_time,
            identified_atrs=set(self.identified_atrs),
            true_atrs=set(self.true_atrs),
            events_executed=self.events_executed,
            wall_seconds=self.wall_seconds,
        )


@dataclass
class MigrationReport:
    """What :meth:`CampaignStore.migrate` did."""

    store_dir: Path
    migrated: int = 0      # artifacts rewritten into the schema-2 layout
    already_current: int = 0
    index_rows: int = 0    # rows in the rebuilt index.jsonl

    @property
    def total(self) -> int:
        return self.migrated + self.already_current


@dataclass
class GCReport:
    """What :meth:`CampaignStore.gc` deleted (or would delete)."""

    store_dir: Path
    applied: bool = False
    #: Summary artifacts the current plan no longer references, plus
    #: their sidecars.
    unplanned: list[Path] = field(default_factory=list)
    #: Sidecars whose summary artifact is gone (lost to a crash between
    #: the sidecar write and the summary write, or to manual deletion).
    orphan_sidecars: list[Path] = field(default_factory=list)
    #: Leftover atomic-write temp files (a writer died mid-write).
    tmp_files: list[Path] = field(default_factory=list)
    #: Lease files whose worker died (expired heartbeat) or whose cell
    #: already has its artifact (crash between write and release).
    stale_leases: list[Path] = field(default_factory=list)
    #: Failure-ledger entries for cells that later succeeded (a timeout
    #: racing a completion) — the cell is done, the record is debris.
    resolved_failures: list[Path] = field(default_factory=list)

    @property
    def paths(self) -> list[Path]:
        """Every doomed path, deterministically ordered."""
        return sorted(
            self.unplanned + self.orphan_sidecars + self.tmp_files
            + self.stale_leases + self.resolved_failures
        )


class CampaignStore:
    """Artifact store for one campaign directory."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.runs_dir = self.directory / "runs"
        self.leases_dir = self.directory / "leases"
        self.failed_dir = self.directory / "failed"
        # Manifest-flag memo: None = not read yet.  Invalidated on
        # write_manifest; one store never flips the flag mid-campaign.
        self._compress_series: bool | None = None

    @property
    def name(self) -> str:
        """The campaign name (the directory's basename)."""
        return self.directory.name

    @property
    def manifest_path(self) -> Path:
        return self.directory / "manifest.json"

    @property
    def index_path(self) -> Path:
        return self.directory / INDEX_NAME

    def ensure(self) -> "CampaignStore":
        """Create the directory skeleton; idempotent."""
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        return self

    def exists(self) -> bool:
        """True once :meth:`ensure` (or a previous run) created the store."""
        return self.runs_dir.is_dir()

    # ----------------------------------------------------------- manifest

    def write_manifest(
        self,
        spec_dict: dict,
        series_bin_width: float | None = None,
        compress_series: bool | None = None,
    ) -> Path:
        """Snapshot the spec next to its artifacts (atomic).

        Passing ``series_bin_width=None`` means "no new claim", not
        "clear the pin": a width already recorded by
        :meth:`pin_series_bin_width` survives every re-snapshot, so a
        spec revision can never silently un-pin the store and let a
        later writer file mixed-resolution series.  ``compress_series``
        follows the same convention: ``None`` preserves whatever the
        manifest already records, ``True`` turns gzip sidecars on for
        every *future* series write (existing plain sidecars stay valid
        — readers sniff magic bytes, so one store can hold both).
        """
        if series_bin_width is None:
            series_bin_width = self.series_bin_width()
        if compress_series is None:
            compress_series = self.compress_series()
        payload = {"schema": STORE_SCHEMA, "spec": spec_dict}
        if series_bin_width is not None:
            payload["series_bin_width"] = series_bin_width
        if compress_series:
            payload["compress_series"] = True
        self._compress_series = bool(compress_series)
        return self._write_json(self.manifest_path, payload)

    def read_manifest(self) -> dict:
        """The spec snapshot last written (raises if never written)."""
        return self._read_manifest_payload()["spec"]

    def series_bin_width(self) -> float | None:
        """The bin width this store's artifacts were recorded at, or
        ``None`` when no manifest (or an older one) exists."""
        if not self.manifest_path.is_file():
            return None
        return self._read_manifest_payload().get("series_bin_width")

    def compress_series(self) -> bool:
        """True when the manifest directs series writes to ``.gz``
        sidecars.  Memoized per store instance (the flag never flips
        mid-campaign; :meth:`write_manifest` refreshes the memo)."""
        if self._compress_series is None:
            if not self.manifest_path.is_file():
                return False  # don't memoize: the manifest may appear
            self._compress_series = bool(
                self._read_manifest_payload().get("compress_series", False)
            )
        return self._compress_series

    def pin_series_bin_width(self, width: float) -> None:
        """Claim (or verify) the store-wide series resolution.

        Every writer — campaign orchestrator or ad-hoc cache — goes
        through this before filing artifacts, so one store can never
        hold series at mixed resolutions: the first writer records the
        width in the manifest and every later writer must match it.
        """
        recorded = self.series_bin_width()
        if recorded is not None:
            if recorded != width:
                raise StoreError(
                    f"store {self.directory} records series at bin width "
                    f"{recorded}; writing at {width} would mix time "
                    "resolutions — use the recorded width or a fresh store"
                )
            return
        spec = (
            self.read_manifest() if self.manifest_path.is_file() else {}
        )
        self.write_manifest(spec, series_bin_width=width)

    def _read_manifest_payload(self) -> dict:
        payload = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        self._check_schema(payload, self.manifest_path)
        return payload

    # --------------------------------------------------------------- runs

    def run_path(self, run_id: str) -> Path:
        """Where the run's summary artifact lives.

        Prefers an existing file — the sharded schema-2 location first,
        then the flat schema-1 one — and falls back to the canonical
        sharded path for new writes, so readers see schema-1 stores
        transparently and writers never fork a second copy of a run.
        """
        sharded = self.runs_dir / run_id[:2] / f"{run_id}.json"
        if sharded.is_file():
            return sharded
        flat = self.runs_dir / f"{run_id}.json"
        if flat.is_file():
            return flat
        return sharded

    def series_path(self, run_path: Path) -> Path:
        """The sidecar next to a summary artifact (schema 2).

        Prefers whichever variant exists — plain first, then ``.gz`` —
        and falls back to the manifest's ``compress_series`` preference
        for new writes, so readers see both transparently and a store
        migrated to compression keeps its old plain sidecars readable.
        """
        plain = run_path.with_name(run_path.stem + SERIES_SUFFIX)
        if plain.is_file():
            return plain
        gz = run_path.with_name(run_path.stem + SERIES_GZ_SUFFIX)
        if gz.is_file():
            return gz
        return gz if self.compress_series() else plain

    @staticmethod
    def _existing_sidecars(run_path: Path) -> list[Path]:
        """Every sidecar variant actually on disk for one artifact —
        both can exist after a store flips ``compress_series``."""
        variants = (
            run_path.with_name(run_path.stem + SERIES_SUFFIX),
            run_path.with_name(run_path.stem + SERIES_GZ_SUFFIX),
        )
        return [p for p in variants if p.is_file()]

    def has(self, run_id: str) -> bool:
        """True when the run's artifact exists (the resume predicate)."""
        return self.run_path(run_id).is_file()

    def _artifact_paths(self) -> Iterator[Path]:
        """Every summary artifact on disk — flat and sharded, no sidecars."""
        if not self.runs_dir.is_dir():
            return
        for pattern in ("*.json", "*/*.json"):
            for path in self.runs_dir.glob(pattern):
                if not path.name.endswith(SERIES_SUFFIX):
                    yield path

    def run_ids(self) -> set[str]:
        """Hashes of every artifact on disk (both layouts)."""
        return {path.stem for path in self._artifact_paths()}

    def write_result(
        self,
        result: ExperimentResult,
        point: dict | None = None,
        series_bin_width: float | None = None,
    ) -> Path:
        """File one run's artifact under its config hash (atomic).

        The bandwidth series goes to the ``.series.json`` sidecar and
        the summary document to ``runs/<hh>/<run_id>.json`` — sidecar
        first, so a visible summary implies its series committed (a
        crash in between leaves only an orphan sidecar, which
        :meth:`gc` prunes and resume overwrites harmlessly).

        ``point`` is advisory provenance (which grid cell produced the
        artifact); query paths recompute cell membership from the
        current spec's plan, so an artifact written without a point —
        e.g. through :class:`StoreCache` — aggregates correctly anyway.
        ``series_bin_width`` records the resolution the bandwidth series
        was binned at, letting cache reads refuse mismatched hits.
        """
        run_id = result.config.config_hash()
        series = result.series
        path = self.run_path(run_id)  # existing location, else sharded
        payload = {
            "schema": STORE_SCHEMA,
            "run_id": run_id,
            "config": result.config.to_dict(),
            "point": dict(point or {}),
            "summary": summary_to_dict(result.summary),
            "activation_time": result.activation_time,
            "identified_atrs": sorted(result.identified_atrs),
            "true_atrs": sorted(result.true_atrs),
            "events_executed": result.events_executed,
            "series_bin_width": series_bin_width,
            # Non-deterministic measurements live here and ONLY here;
            # reports never read this key.
            "timing": {"wall_seconds": result.wall_seconds},
        }
        self._write_json(
            self.series_path(path),
            {
                "schema": STORE_SCHEMA,
                "run_id": run_id,
                "series": {
                    "times": series.times,
                    "total_kbps": series.total_kbps,
                    "attack_kbps": series.attack_kbps,
                    "legit_kbps": series.legit_kbps,
                },
            },
        )
        chaos_point("write")  # crash harness: sidecar landed, summary not
        self._write_json(path, payload)
        chaos_point("index")  # crash harness: summary landed, index row not
        self.append_index_row(payload)
        # A successful write settles any past failed attempts: the cell
        # is done, its ledger record is debris.
        self.clear_failure(run_id)
        return path

    def read_run(self, run_id: str, load_series: bool = True) -> StoredRun:
        """Load one artifact back into a :class:`StoredRun`.

        ``load_series=False`` skips the series.  On schema 2 that means
        the sidecar is never opened, so summary-only consumers like
        :func:`repro.campaign.query.campaign_report` pay per artifact,
        not per series sample.  On schema 1 the inline series is still
        *parsed* (the JSON document is read whole) — only the Python
        lists are skipped; migrate the store to get length-independent
        summary reads.
        """
        path = self.run_path(run_id)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise StoreError(
                f"no artifact for run {run_id!r} in {self.runs_dir}"
            ) from None
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt artifact {path}: {exc}") from exc
        self._check_schema(payload, path)
        config = ExperimentConfig.from_dict(payload["config"])
        if config.config_hash() != payload["run_id"]:
            raise StoreError(
                f"artifact {path} config no longer hashes to its run_id "
                "(edited by hand, or written by an incompatible version?)"
            )
        if load_series:
            # Schema 1 carries the series inline; schema 2 sidecars it.
            series_payload = payload.get("series")
            if series_payload is None:
                series_payload = self._read_series_payload(path, run_id)
            series = BandwidthSeries(
                times=list(series_payload["times"]),
                total_kbps=list(series_payload["total_kbps"]),
                attack_kbps=list(series_payload["attack_kbps"]),
                legit_kbps=list(series_payload["legit_kbps"]),
            )
        else:
            series = BandwidthSeries(
                times=[], total_kbps=[], attack_kbps=[], legit_kbps=[]
            )
        return StoredRun(
            run_id=payload["run_id"],
            config=config,
            point=dict(payload["point"]),
            summary=summary_from_dict(payload["summary"]),
            series=series,
            series_bin_width=payload.get("series_bin_width"),
            activation_time=payload["activation_time"],
            identified_atrs=set(payload["identified_atrs"]),
            true_atrs=set(payload["true_atrs"]),
            events_executed=payload["events_executed"],
            wall_seconds=payload["timing"]["wall_seconds"],
        )

    def _read_series_payload(self, run_path: Path, run_id: str) -> dict:
        """The sidecar's ``"series"`` table for one summary artifact.

        Compression is sniffed from the gzip magic bytes, never the
        suffix, so a renamed ``.gz`` sidecar (or a plain one with a
        ``.gz`` name) still reads.
        """
        sidecar = self.series_path(run_path)
        try:
            with _open_text_sniffed(sidecar) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise StoreError(
                f"artifact {run_path} has no series sidecar {sidecar.name} "
                "(crash between writes? resume re-runs it, or gc prunes it)"
            ) from None
        except (json.JSONDecodeError, EOFError, gzip.BadGzipFile) as exc:
            raise StoreError(f"corrupt sidecar {sidecar}: {exc}") from exc
        self._check_schema(payload, sidecar)
        if payload.get("run_id") != run_id:
            raise StoreError(
                f"sidecar {sidecar} belongs to run {payload.get('run_id')!r}"
                f", not {run_id!r}"
            )
        return payload["series"]

    def iter_runs(self, load_series: bool = True) -> Iterator[StoredRun]:
        """Every artifact, in run-id order (deterministic).

        ``load_series=False`` skips the series exactly like
        :meth:`read_run`: summary-only scans over a schema-2 store
        never open a sidecar (schema-1 artifacts still parse their
        inline series as part of the document — migrate for the full
        win).
        """
        for run_id in sorted(self.run_ids()):
            yield self.read_run(run_id, load_series=load_series)

    def as_cache(self, series_bin_width: float = 0.05) -> "StoreCache":
        """Adapter for :func:`repro.experiments.parallel.run_batch`'s
        ``cache`` protocol — store-backed sweeps/batches for free.

        ``series_bin_width`` must match the batch's: artifacts recorded
        at a different bin width (or with no record of one) are treated
        as misses and re-run, so a cache-hit batch never mixes series
        resolutions.
        """
        return StoreCache(self, series_bin_width=series_bin_width)

    # --------------------------------------------------------------- index

    @staticmethod
    def _index_row(payload: dict, artifact_bytes: int | None = None) -> dict:
        """The summary-only subset of an artifact that reports consume.

        ``artifact_bytes`` records the summary file's on-disk size so
        readers can cheaply (one stat, no parse) refuse rows whose
        artifact has since been replaced, truncated, or hand-edited —
        see :meth:`index_row_fresh`.
        """
        return {
            "run_id": payload["run_id"],
            "artifact_bytes": artifact_bytes,
            "summary": payload["summary"],
            "activation_time": payload["activation_time"],
            "identified_atrs": payload["identified_atrs"],
            "true_atrs": payload["true_atrs"],
            "events_executed": payload["events_executed"],
            "series_bin_width": payload.get("series_bin_width"),
            "wall_seconds": payload.get("timing", {}).get(
                "wall_seconds", 0.0
            ),
        }

    def append_index_row(
        self, payload: dict, artifact_bytes: int | None = None
    ) -> None:
        """File one artifact's summary row in ``index.jsonl``.

        One ``O_APPEND`` write, *led* by a newline: if the previous
        appender died mid-write, the leading newline terminates its
        torn fragment so only that one row is lost to the parse-and-
        skip reader — our row starts clean.  The index is advisory:
        a crash between the summary write and this append just means
        the row is missing and readers fall back to the artifact.
        """
        if artifact_bytes is None:
            try:
                artifact_bytes = self.run_path(payload["run_id"]).stat().st_size
            except (OSError, KeyError):
                artifact_bytes = None
        row = self._index_row(payload, artifact_bytes=artifact_bytes)
        line = "\n" + json.dumps(row, sort_keys=True,
                                 separators=(",", ":")) + "\n"
        self.directory.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            self.index_path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            os.write(fd, line.encode("utf-8"))
        finally:
            os.close(fd)

    def read_index(self) -> dict[str, dict]:
        """``run_id -> summary row`` from ``index.jsonl``, or ``{}``.

        Tolerant by design: blank lines and unparseable (torn) lines
        are skipped — the artifact is the truth, the index only a way
        to avoid opening 10k files — and duplicate rows resolve to the
        last appended.  Callers must still intersect with
        :meth:`run_ids`: a row may outlive its artifact (gc, manual
        deletion) until :meth:`rebuild_index` runs.
        """
        try:
            text = self.index_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return {}
        rows: dict[str, dict] = {}
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn append from a crashed writer
            run_id = row.get("run_id") if isinstance(row, dict) else None
            if isinstance(run_id, str) and run_id:
                rows[run_id] = row
        return rows

    def rebuild_index(self) -> int:
        """Regenerate ``index.jsonl`` from the artifacts (atomic).

        Drops stale and duplicate rows; returns the row count.  Run by
        ``campaign migrate`` and after ``gc --apply``.
        """
        rows: dict[str, dict] = {}
        for path in sorted(self._artifact_paths()):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError:
                continue  # read_run's problem, not the index's
            run_id = payload.get("run_id")
            if isinstance(run_id, str) and run_id:
                rows[run_id] = self._index_row(
                    payload, artifact_bytes=path.stat().st_size
                )
        text = "".join(
            json.dumps(rows[run_id], sort_keys=True, separators=(",", ":"))
            + "\n"
            for run_id in sorted(rows)
        )
        self._write_atomic(self.index_path, text.encode("utf-8"))
        return len(rows)

    def index_row_fresh(self, row: dict) -> bool:
        """True when the row's recorded artifact size matches the disk.

        The cheap (one stat, no parse) staleness check summary readers
        apply before trusting a row: a replaced, truncated, or
        hand-edited artifact changes size, so the reader falls back to
        :meth:`read_run`, which surfaces corruption instead of letting
        the index mask it.  Rows without a recorded size (older index
        versions) are never trusted — ``campaign migrate`` rebuilds
        the index and records sizes.
        """
        expected = row.get("artifact_bytes")
        if not isinstance(expected, int):
            return False
        try:
            return self.run_path(row["run_id"]).stat().st_size == expected
        except (OSError, KeyError, TypeError):
            return False

    def run_from_index_row(
        self, row: dict, config: ExperimentConfig, point: dict | None = None
    ) -> StoredRun:
        """Rehydrate a summary-only :class:`StoredRun` from one index row.

        The caller supplies the config (``run_id`` is its hash, so the
        campaign plan always has it); the series stays empty exactly
        like ``read_run(load_series=False)``.
        """
        return StoredRun(
            run_id=row["run_id"],
            config=config,
            point=dict(point or {}),
            summary=summary_from_dict(row["summary"]),
            series=BandwidthSeries(
                times=[], total_kbps=[], attack_kbps=[], legit_kbps=[]
            ),
            series_bin_width=row.get("series_bin_width"),
            activation_time=row["activation_time"],
            identified_atrs=set(row["identified_atrs"]),
            true_atrs=set(row["true_atrs"]),
            events_executed=row["events_executed"],
            wall_seconds=row.get("wall_seconds", 0.0),
        )

    # -------------------------------------------------------------- leases

    def lease_path(self, run_id: str) -> Path:
        return self.leases_dir / f"{run_id}.json"

    def read_lease(self, run_id: str) -> Lease | None:
        """The cell's lease, or ``None`` when absent or unreadable.

        Lease writes are atomic, so an unreadable lease can only come
        from hand edits or version skew — either way it is treated as
        stale (claimable), which risks duplicate work, never lost work.
        """
        try:
            payload = json.loads(
                self.lease_path(run_id).read_text(encoding="utf-8")
            )
            return Lease.from_payload(payload)
        except (FileNotFoundError, json.JSONDecodeError, KeyError,
                TypeError, ValueError):
            return None

    def try_claim(
        self,
        run_id: str,
        worker: str,
        ttl: float = DEFAULT_LEASE_TTL,
        now: float | None = None,
    ) -> Lease | None:
        """Claim one cell for ``worker``; ``None`` when someone live
        holds it (or we lost the race).

        Fresh claims hard-link a fully written temp file into place —
        ``link(2)`` fails atomically when the name exists, so two fresh
        claimants can never both win.  Taking over an *expired* lease
        uses replace-then-read-back: in a tight race both takers can
        believe they won and the cell runs twice, which is explicitly
        safe — runs are deterministic and artifact writes atomic, so
        exactly one identical artifact lands.  Leases only keep live
        workers efficient; they are never a correctness mechanism.
        """
        now = time.time() if now is None else now
        existing = self.read_lease(run_id)
        if existing is not None and not existing.expired(now):
            return None
        lease = Lease(
            run_id=run_id,
            worker=worker,
            token=os.urandom(8).hex(),
            pid=os.getpid(),
            host=socket.gethostname(),
            acquired_at=now,
            heartbeat_at=now,
            ttl=float(ttl),
        )
        path = self.lease_path(run_id)
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        if existing is None and not path.exists():
            fd, tmp_name = tempfile.mkstemp(
                dir=self.leases_dir, prefix=path.name + ".", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as f:
                    json.dump(lease.to_payload(), f, sort_keys=True)
                    f.flush()
                    os.fsync(f.fileno())
                try:
                    os.link(tmp_name, path)
                except FileExistsError:
                    return None  # raced: another fresh claimant won
            finally:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return lease
        # Expired/corrupt lease: replace, then read back to learn who won.
        self._write_json(path, lease.to_payload())
        winner = self.read_lease(run_id)
        if winner is not None and winner.token == lease.token:
            return lease
        return None

    def refresh_lease(self, lease: Lease, now: float | None = None) -> bool:
        """Re-stamp the heartbeat; ``False`` when the lease was lost.

        Losing a lease (reclaimed after our heartbeat stalled past the
        TTL) is not fatal: the holder may finish and file its artifact
        anyway — but it should know the cell may now run twice.
        """
        current = self.read_lease(lease.run_id)
        if current is None or current.token != lease.token:
            return False
        lease.heartbeat_at = time.time() if now is None else now
        self._write_json(self.lease_path(lease.run_id), lease.to_payload())
        return True

    def release_lease(self, lease: Lease) -> None:
        """Drop the claim — only if still ours; idempotent."""
        current = self.read_lease(lease.run_id)
        if current is not None and current.token == lease.token:
            self.lease_path(lease.run_id).unlink(missing_ok=True)

    def iter_leases(self) -> list[Lease]:
        """Every lease on disk, run-id order (``campaign workers``)."""
        leases = []
        if self.leases_dir.is_dir():
            for path in sorted(self.leases_dir.glob("*.json")):
                lease = self.read_lease(path.stem)
                if lease is not None:
                    leases.append(lease)
        return leases

    # ------------------------------------------------------------ failures

    def failure_path(self, run_id: str) -> Path:
        return self.failed_dir / f"{run_id}.json"

    def read_failure(self, run_id: str) -> FailureRecord | None:
        try:
            payload = json.loads(
                self.failure_path(run_id).read_text(encoding="utf-8")
            )
            return FailureRecord.from_payload(payload)
        except (FileNotFoundError, json.JSONDecodeError, KeyError,
                TypeError, ValueError):
            return None

    def record_failure(
        self,
        run_id: str,
        worker: str,
        error: str,
        traceback: str = "",
        *,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_cap: float = DEFAULT_BACKOFF_CAP,
        now: float | None = None,
    ) -> FailureRecord:
        """Charge one failed attempt against a cell (atomic write).

        The retry deadline backs off exponentially
        (``backoff_base * 2**(attempts-1)``, capped) and the cell is
        quarantined — retryable by nobody until the ledger is cleared —
        once ``attempts`` reaches ``max_attempts``.  The traceback
        travels with the record so ``campaign workers``/``status`` can
        show *why*, not just *that*, a cell failed.
        """
        now = time.time() if now is None else now
        previous = self.read_failure(run_id)
        attempts = (previous.attempts if previous is not None else 0) + 1
        delay = min(backoff_cap, backoff_base * (2.0 ** (attempts - 1)))
        record = FailureRecord(
            run_id=run_id,
            attempts=attempts,
            max_attempts=int(max_attempts),
            quarantined=attempts >= int(max_attempts),
            next_retry_at=now + delay,
            worker=worker,
            error=str(error),
            traceback=traceback,
            updated_at=now,
        )
        self._write_json(self.failure_path(run_id), record.to_payload())
        return record

    def clear_failure(self, run_id: str) -> None:
        """Forget a cell's attempts (run on every successful write)."""
        self.failure_path(run_id).unlink(missing_ok=True)

    def iter_failures(self) -> list[FailureRecord]:
        """Every ledger record, run-id order."""
        records = []
        if self.failed_dir.is_dir():
            for path in sorted(self.failed_dir.glob("*.json")):
                record = self.read_failure(path.stem)
                if record is not None:
                    records.append(record)
        return records

    def quarantined_ids(self) -> set[str]:
        """Cells no worker will touch until ``--retry-failed``."""
        return {
            record.run_id
            for record in self.iter_failures()
            if record.quarantined
        }

    def clear_failures(self) -> int:
        """Reset the whole ledger (``--retry-failed``); returns count."""
        records = self.iter_failures()
        for record in records:
            self.clear_failure(record.run_id)
        return len(records)

    # -------------------------------------------------------- maintenance

    def migrate(self) -> MigrationReport:
        """Rewrite a schema-1 store into the sharded sidecar layout.

        In place and atomic per artifact: the sidecar and the sharded
        summary are fully written (tmp + fsync + rename) before the old
        flat file is unlinked, so a crash mid-migration leaves every
        run readable — at worst both copies exist and the reader
        prefers the sharded one.  Idempotent: a second invocation finds
        nothing left to do.  Reports are byte-identical before and
        after (the summary fields are untouched).
        """
        report = MigrationReport(store_dir=self.directory)
        for old_path in sorted(self._artifact_paths()):
            try:
                payload = json.loads(old_path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                raise StoreError(
                    f"corrupt artifact {old_path}: {exc} — delete it (or "
                    "let resume rewrite it), then re-run migrate"
                ) from exc
            self._check_schema(payload, old_path)
            run_id = payload.get("run_id")
            if not isinstance(run_id, str) or not run_id:
                raise StoreError(
                    f"{old_path} carries no run_id — not a campaign "
                    "artifact? move it out of runs/ and re-run migrate"
                )
            target = self.runs_dir / run_id[:2] / f"{run_id}.json"
            inline = "series" in payload
            if not inline and old_path == target:
                report.already_current += 1
                continue
            if inline:
                series = payload.pop("series")
            else:  # sharded-but-misplaced: carry the sidecar along
                series = self._read_series_payload(old_path, run_id)
            payload["schema"] = STORE_SCHEMA
            self._write_json(
                self.series_path(target),
                {"schema": STORE_SCHEMA, "run_id": run_id, "series": series},
            )
            self._write_json(target, payload)
            if old_path != target:
                old_path.unlink()
                for old_sidecar in self._existing_sidecars(old_path):
                    old_sidecar.unlink()
            report.migrated += 1
        if self.manifest_path.is_file():
            # Re-stamp schema 2, preserving the spec and any pin.
            self.write_manifest(self.read_manifest())
        report.index_rows = self.rebuild_index()
        return report

    def gc(
        self,
        planned_ids: set[str],
        apply: bool = False,
        min_debris_age_seconds: float = 3600.0,
    ) -> GCReport:
        """Prune what the current plan no longer references.

        Five categories: summary artifacts (plus their sidecars) whose
        run_id is not in ``planned_ids``; orphaned sidecars with no
        summary artifact; leftover ``*.tmp`` files from writers that
        died mid-write; stale leases (expired heartbeat, or the cell's
        artifact already exists — a worker that died between its
        artifact write and its release); and failure-ledger records for
        cells that later succeeded.  The manifest is never touched, and
        quarantined records for cells *without* artifacts always
        survive — gc never silently drops a failure.  With
        ``apply=False`` (the default) nothing is deleted — the report
        lists what *would* go.

        Orphan sidecars and temp files younger than
        ``min_debris_age_seconds`` are spared: a *live* writer holds an
        in-flight mkstemp file (and briefly a summary-less sidecar)
        that looks exactly like crash debris, and unlinking it would
        fail that writer's rename mid-campaign.  An hour cleanly
        separates dead writers from running ones; unplanned artifacts
        carry no such race (plan membership is deterministic) and are
        pruned regardless of age.
        """
        report = GCReport(store_dir=self.directory, applied=apply)
        cutoff = time.time() - min_debris_age_seconds

        def settled(path: Path) -> bool:
            try:
                return path.stat().st_mtime < cutoff
            except OSError:  # vanished mid-scan: a writer renamed it
                return False

        for path in self._artifact_paths():
            if path.stem not in planned_ids:
                report.unplanned.append(path)
                report.unplanned.extend(self._existing_sidecars(path))
        if self.runs_dir.is_dir():
            for suffix in (SERIES_GZ_SUFFIX, SERIES_SUFFIX):
                for pattern in (f"*{suffix}", f"*/*{suffix}"):
                    for sidecar in self.runs_dir.glob(pattern):
                        stem = sidecar.name[: -len(suffix)]
                        if not sidecar.with_name(f"{stem}.json").is_file() \
                                and settled(sidecar):
                            report.orphan_sidecars.append(sidecar)
            for pattern in ("*.tmp", "*/*.tmp"):
                report.tmp_files.extend(
                    p for p in self.runs_dir.glob(pattern) if settled(p)
                )
        for extra_dir in (self.directory, self.leases_dir, self.failed_dir):
            if extra_dir.is_dir():
                report.tmp_files.extend(
                    p for p in extra_dir.glob("*.tmp") if settled(p)
                )
        for lease in self.iter_leases():
            if lease.expired() or self.has(lease.run_id):
                report.stale_leases.append(self.lease_path(lease.run_id))
        for record in self.iter_failures():
            if self.has(record.run_id):
                report.resolved_failures.append(
                    self.failure_path(record.run_id)
                )
        if apply:
            for path in report.paths:
                path.unlink(missing_ok=True)
            for shard in self.runs_dir.glob("*/"):
                try:  # drop shard dirs emptied by the pruning
                    shard.rmdir()
                except OSError:
                    pass
            if report.unplanned and self.index_path.is_file():
                self.rebuild_index()  # drop the pruned runs' rows
        return report

    # ------------------------------------------------------------ helpers

    def _write_json(self, path: Path, payload: dict) -> Path:
        """Atomic JSON write; gzip-compressed when ``path`` ends ``.gz``.

        ``mtime=0`` keeps the gzip header deterministic: the same
        payload produces the same bytes no matter when — or on which
        worker — it was written, which is what lets chaos tests byte-
        diff compressed stores against serial runs.
        """
        data = (
            json.dumps(payload, indent=2, sort_keys=True, allow_nan=False)
            + "\n"
        ).encode("utf-8")
        if path.name.endswith(".gz"):
            buf = io.BytesIO()
            with gzip.GzipFile(fileobj=buf, mode="wb", mtime=0) as gz:
                gz.write(data)
            data = buf.getvalue()
        return self._write_atomic(path, data)

    def _write_atomic(self, path: Path, data: bytes) -> Path:
        """Atomic byte write (see :func:`atomic_write_bytes`)."""
        return atomic_write_bytes(path, data)

    @staticmethod
    def _check_schema(payload: dict, path: Path) -> None:
        schema = payload.get("schema")
        if schema not in READ_SCHEMAS:
            raise StoreError(
                f"{path}: store schema {schema!r} not in supported "
                f"{sorted(READ_SCHEMAS)}"
            )


def _open_text_sniffed(path: Path) -> IO[str]:
    """A text handle over ``path``, gunzipping when the first two bytes
    are the gzip magic — the suffix is never consulted, mirroring the
    flight recorder's reader, so renamed sidecars still load.
    """
    handle = open(path, "rb")
    try:
        magic = handle.read(len(_GZIP_MAGIC))
        handle.seek(0)
        if magic == _GZIP_MAGIC:
            return io.TextIOWrapper(
                gzip.GzipFile(fileobj=handle, mode="rb"), encoding="utf-8"
            )
        return io.TextIOWrapper(handle, encoding="utf-8")
    except BaseException:
        handle.close()
        raise


def migrate_store(directory: str | Path) -> MigrationReport:
    """Module-level convenience for ``campaign migrate <dir>``."""
    store = CampaignStore(directory)
    if not store.exists():
        raise StoreError(f"no campaign store at {store.directory}")
    return store.migrate()


class StoreCache:
    """``run_batch(cache=...)`` protocol over a :class:`CampaignStore`.

    ``get`` returns the rehydrated result for a config whose artifact
    exists *and* was recorded at this cache's series bin width (else
    None — a mismatched-resolution artifact re-runs rather than mixing
    time resolutions into one batch); ``put`` files a freshly computed
    result.
    """

    def __init__(
        self, store: CampaignStore, series_bin_width: float = 0.05
    ) -> None:
        self.store = store.ensure()
        # Refuses a width the store's manifest already pins differently,
        # so an ad-hoc batch can't silently rewrite a campaign's
        # artifacts at another resolution.
        self.store.pin_series_bin_width(series_bin_width)
        self.series_bin_width = series_bin_width

    def get(self, config: ExperimentConfig) -> ExperimentResult | None:
        run_id = config.config_hash()
        if not self.store.has(run_id):
            return None
        run = self.store.read_run(run_id)
        if run.series_bin_width != self.series_bin_width:
            return None
        return run.to_result()

    def put(self, result: ExperimentResult) -> None:
        self.store.write_result(result, series_bin_width=self.series_bin_width)
