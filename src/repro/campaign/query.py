"""Query and aggregate a campaign's stored runs.

The store answers "which completed runs do I already have for config
X?"; this module answers the questions the paper's tables and figures
ask: per-axis-point metric means with confidence intervals, sweeps
reloadable into :class:`~repro.experiments.sweeps.SweepResult`, and
deterministic JSON/CSV report exports.  Everything reads only the
deterministic artifact fields, so a report from a resumed campaign is
bit-identical to one from an uninterrupted execution.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Iterable

from repro.analysis.aggregate import AggregatedMetrics, aggregate_runs
from repro.campaign.orchestrator import DEFAULT_ROOT, open_store
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore, StoredRun
from repro.experiments.figures import FigureResult, figure_from_table
from repro.experiments.sweeps import SweepPoint, SweepResult

#: The headline metrics reports tabulate, in paper order.
REPORT_METRICS = (
    "accuracy",
    "traffic_reduction",
    "false_positive_rate",
    "false_negative_rate",
    "legit_drop_rate",
)


def load_runs(
    spec: CampaignSpec,
    root: str | Path = DEFAULT_ROOT,
    where: Callable[[StoredRun], bool] | None = None,
    with_series: bool = True,
) -> list[StoredRun]:
    """The campaign's completed runs, in plan order, optionally filtered.

    Only runs the current spec plans are returned (stale artifacts from
    earlier spec revisions are ignored); missing runs are skipped, so a
    partial campaign queries fine.  ``with_series=False`` skips
    materializing each run's bandwidth-series lists for summary-only
    consumers (the artifact JSON is still parsed whole).
    """
    return _load_planned(spec, root, where, with_series)[1]


def _load_planned(
    spec: CampaignSpec,
    root: str | Path,
    where: Callable[[StoredRun], bool] | None = None,
    with_series: bool = True,
) -> tuple[int, list[StoredRun]]:
    """(planned-cell count, completed runs) computed from ONE plan pass.

    Summary-only loads (``with_series=False``) go through ``index.jsonl``
    when a row is available: one sequential file read replaces one JSON
    document per artifact, which is what keeps ``status``/``report`` on
    a >10k-run grid flat.  Membership is still decided by the artifacts
    on disk (one readdir), so a stale index row — its artifact gc'd or
    hand-deleted — can never resurrect a run; a missing or torn row,
    or one whose recorded artifact size no longer matches the file on
    disk, just falls back to reading that artifact.
    """
    store = open_store(spec, root)
    plan = spec.plan()
    runs: list[StoredRun] = []
    on_disk = store.run_ids()  # one readdir; the artifact is the truth
    index = store.read_index() if not with_series else {}
    for planned in plan:
        if planned.run_id not in on_disk:
            continue
        row = index.get(planned.run_id)
        if row is not None and store.index_row_fresh(row):
            try:
                run = store.run_from_index_row(
                    row, planned.config, planned.point
                )
            except (KeyError, TypeError):
                # A row from an older index shape: fall back to the
                # artifact rather than guessing at missing fields.
                run = store.read_run(planned.run_id, load_series=False)
        else:
            # No row, a pre-size row, or a size mismatch (artifact
            # replaced/truncated since the row was appended): read the
            # artifact so corruption surfaces instead of being masked.
            run = store.read_run(planned.run_id, load_series=with_series)
        # The point comes from the *current* plan, not the artifact:
        # artifacts written by an older spec revision (or by an ad-hoc
        # cached batch, which stores point={}) carry stale/absent axis
        # metadata, and grouping on it would mis-aggregate.  The config
        # hash ties the artifact to the cell; the plan names the cell.
        run.point = dict(planned.point)
        if where is None or where(run):
            runs.append(run)
    return len(plan), runs


def group_by_point(
    runs: Iterable[StoredRun],
) -> dict[tuple, list[StoredRun]]:
    """Group runs by their axis point (seeds collapse into one group).

    Keys are ``((field, value), ...)`` tuples in axis order — hashable
    (list/dict axis values are frozen into tuples) and stable across
    processes.
    """
    groups: dict[tuple, list[StoredRun]] = {}
    for run in runs:
        key = tuple(
            (field, _freeze(value)) for field, value in run.point.items()
        )
        groups.setdefault(key, []).append(run)
    return groups


def _freeze(value):
    """A hashable stand-in for an axis value (lists/dicts -> tuples)."""
    if isinstance(value, dict):
        return tuple(
            (key, _freeze(value[key])) for key in sorted(value)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def aggregate_by_point(
    runs: Iterable[StoredRun], confidence: float = 0.95
) -> list[tuple[dict, AggregatedMetrics]]:
    """Per-point metric aggregation over seeds, in first-seen point order."""
    out = []
    for key, group in group_by_point(runs).items():
        out.append((dict(key), aggregate_runs(group, confidence=confidence)))
    return out


def to_sweep_result(
    runs: Iterable[StoredRun],
    x_field: str,
    name: str = "campaign",
    reduce: Callable[[list[StoredRun]], StoredRun] | None = None,
) -> SweepResult:
    """Reload stored runs as a :class:`SweepResult` over one axis.

    ``x_field`` is the axis whose values become the sweep's x points;
    multi-seed groups at one x are collapsed by ``reduce`` (default: the
    lowest-seed run), mirroring :func:`repro.experiments.sweeps.sweep`'s
    representative-run convention.  Results are detached
    (``scenario=None``), exactly like a parallel sweep's.  Categorical
    axes (component names like ``defense``) keep their raw values as x.
    """
    raw_x: dict = {}  # frozen key -> raw axis value, insertion-ordered
    by_x: dict = {}
    for run in runs:
        if x_field not in run.point:
            raise KeyError(
                f"run {run.run_id} has no axis {x_field!r}; axes: "
                f"{sorted(run.point)}"
            )
        value = run.point[x_field]
        frozen = _freeze(value)
        raw_x.setdefault(frozen, value)
        by_x.setdefault(frozen, []).append(run)
    xs = [_as_x(raw_x[frozen]) for frozen in by_x]
    result = SweepResult(name=name, x_values=xs)
    for x, group in zip(xs, by_x.values()):
        group.sort(key=lambda run: run.seed)
        chosen = reduce(group) if reduce is not None else group[0]
        result.points.append(SweepPoint(x=x, result=chosen.to_result()))
    return result


def _as_x(value):
    """Numeric axis values become floats; categorical ones pass through."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return value
    return float(value)


def campaign_report(
    spec: CampaignSpec,
    root: str | Path = DEFAULT_ROOT,
    confidence: float = 0.95,
) -> dict:
    """The campaign's deterministic aggregate report (JSON-friendly).

    Bit-for-bit reproducible for a given set of artifacts: plan order,
    sorted keys, and no wall-clock fields.  The plan expands once and
    stored series are not materialized — the report reads only summary
    scalars.
    """
    planned, runs = _load_planned(spec, root, with_series=False)
    points = []
    for key, group in group_by_point(runs).items():
        aggregated = aggregate_runs(group, confidence=confidence)
        metrics = {}
        for metric_name in REPORT_METRICS:
            stats = aggregated[metric_name]
            metrics[metric_name] = {
                "mean": stats.mean,
                "stddev": stats.stddev,
                "ci_halfwidth": stats.ci_halfwidth,
                "n": stats.n,
            }
        points.append(
            {
                "point": dict(key),
                "n_runs": aggregated.n_runs,
                "seeds": sorted(run.seed for run in group),
                "metrics": metrics,
            }
        )
    return {
        "campaign": spec.name,
        "confidence": confidence,
        "planned": planned,
        "complete": len(runs),
        "points": points,
    }


def report_rows(report: dict) -> list[list[Any]]:
    """Flatten a :func:`campaign_report` payload into CSV rows.

    One row per axis point: the point's axis values, the per-point run
    count, then mean and CI half-width per headline metric.
    """
    axis_fields: list[str] = []
    for entry in report["points"]:
        for field in entry["point"]:
            if field not in axis_fields:
                axis_fields.append(field)
    header = list(axis_fields) + ["n_runs"]
    for metric_name in REPORT_METRICS:
        header += [metric_name, f"{metric_name}_ci"]
    rows: list[list[Any]] = [header]
    for entry in report["points"]:
        row: list[Any] = [entry["point"].get(f, "") for f in axis_fields]
        row.append(entry["n_runs"])
        for metric_name in REPORT_METRICS:
            stats = entry["metrics"][metric_name]
            row += [stats["mean"], stats["ci_halfwidth"]]
        rows.append(row)
    return rows


def runs_where(
    store: CampaignStore, load_series: bool = True, **field_equals: Any
) -> list[StoredRun]:
    """Ad-hoc store query: runs whose config fields equal the given values.

    ``runs_where(store, defense="mafic", seed=3)`` — answers "which
    completed runs do I already have for config X?" without a spec.
    ``load_series=False`` makes the scan summary-only: the store never
    materializes a bandwidth series (and, schema 2, never opens a
    sidecar), so filtering a huge store on config fields stays cheap.
    """
    matches = []
    for run in store.iter_runs(load_series=load_series):
        config = run.config
        if all(
            getattr(config, field) == value
            for field, value in field_equals.items()
        ):
            matches.append(run)
    return matches


def campaign_figures(
    spec: CampaignSpec,
    root: str | Path = DEFAULT_ROOT,
    metrics: tuple[str, ...] = REPORT_METRICS,
) -> list[FigureResult]:
    """Regenerate the campaign's figure set from stored runs — no
    simulation.

    One figure per (numeric axis, headline metric) pair: the axis values
    become the x axis, every combination of the *other* axes becomes a
    series, and each y is the metric's mean over seeds — the campaign
    analogue of the paper's ``fig3a``-style grids, rebuilt purely from
    summary artifacts (series sidecars are never opened).  Axes with
    non-numeric values (component names and the like) only ever label
    series, since a figure needs an ordered x.  Deterministic: plan
    order fixes series order, so regenerating from a resumed store is
    byte-identical to an uninterrupted one.
    """
    runs = load_runs(spec, root, with_series=False)
    figures: list[FigureResult] = []
    if not runs:
        return figures
    aggregated = aggregate_by_point(runs, confidence=0.95)
    numeric_axes = [
        axis
        for axis in spec.axes
        if all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in axis.values
        )
    ]
    for axis in numeric_axes:
        slug = axis.field.replace(".", "-").replace("_args", "")
        for metric_name in metrics:
            rows = []
            for point, agg in aggregated:
                if axis.field not in point:
                    continue
                label = ", ".join(
                    f"{f}={v}" for f, v in point.items() if f != axis.field
                ) or "all runs"
                rows.append(
                    (label, float(point[axis.field]), agg[metric_name].mean)
                )
            figures.append(
                figure_from_table(
                    figure_id=f"{slug}--{metric_name}",
                    title=(
                        f"{spec.name}: {metric_name} vs {axis.field} "
                        "(mean over seeds)"
                    ),
                    x_label=axis.field,
                    y_label=metric_name,
                    rows=rows,
                )
            )
    return figures
