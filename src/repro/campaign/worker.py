"""Worker-pull campaign execution: ``python -m repro.campaign.worker``.

One worker process, pointed at a campaign store directory, pulls plan
cells until nothing claimable remains::

    python -m repro.campaign.worker campaigns/<name> [--events] ...

The store's manifest carries the spec snapshot, so the worker needs no
spec file — any process (or any *host*, on a shared filesystem) that
can see the directory can help execute the campaign.  The loop per
cell:

1. skip it when its artifact exists (``store.has`` — the resume
   predicate) or its failure record says quarantined / backing off;
2. claim it by atomically creating ``leases/<run_id>.json``
   (:meth:`CampaignStore.try_claim`);
3. execute it with a watchdog thread that re-stamps the lease
   heartbeat and enforces ``--cell-timeout`` (a wedged simulation
   records its failure, then ``os._exit``\\ s — the lease expires and
   the *next* attempt backs off exponentially);
4. release the claim by writing the artifact (atomic) and unlinking
   the lease.

An exception charges one attempt in the ``failed/`` ledger (with the
traceback) and the cell retries after exponential backoff until
quarantined — never silently dropped.  The worker exits 0 once every
planned cell is done, and :data:`EXIT_DRAINED_QUARANTINE` (3) when the
only cells left are quarantined ones, so the pool parent — and shell
scripts — can tell "finished" from "gave up on some cells".

Correctness never depends on any of the bookkeeping here: cells are
content-addressed, deterministic, and atomically written, so a worker
SIGKILLed at *any* instant (the ``REPRO_CHAOS`` harness does exactly
that) costs at most the re-execution of its in-flight cell.

With ``--events`` the worker streams ``worker.started`` /
``worker.heartbeat`` / ``campaign.run`` events as JSON lines on stdout
(the same protocol as :mod:`repro.obs.worker`); the pool parent decodes
them back onto its own bus.  Anything human-readable goes to stderr.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
import traceback
import zlib
from dataclasses import dataclass

from repro.campaign.chaos import chaos_active, chaos_point
from repro.campaign.spec import CampaignSpec, PlannedRun
from repro.campaign.store import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    CampaignStore,
    Lease,
    StoreError,
)

#: ``os._exit`` code of the cell-timeout watchdog (EX_TEMPFAIL: the
#: attempt failed, the pool should respawn and the cell will back off).
EXIT_CELL_TIMEOUT = 75

#: Exit code when the worker drained the plan but quarantined cells
#: remain — "I finished, but the campaign is not complete".
EXIT_DRAINED_QUARANTINE = 3

#: Idle wait between claim sweeps when every remaining cell is either
#: leased by someone else or backing off.
DEFAULT_POLL_INTERVAL = 0.2


@dataclass
class WorkerReport:
    """What one :func:`run_worker` invocation did."""

    worker: str
    executed: int = 0
    failed: int = 0
    quarantined: int = 0   # quarantined cells remaining at exit
    remaining: int = 0     # cells still missing at exit (incl. quarantined)

    @property
    def exit_code(self) -> int:
        if self.remaining == 0:
            return 0
        return EXIT_DRAINED_QUARANTINE


def worker_name() -> str:
    """Default worker identity: ``host:pid`` (unique per live process)."""
    return f"{socket.gethostname()}:{os.getpid()}"


def run_worker(
    store_dir,
    worker: str | None = None,
    *,
    lease_ttl: float = DEFAULT_LEASE_TTL,
    cell_timeout: float | None = None,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    max_cells: int | None = None,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    emit_events: bool = False,
    bus=None,
) -> WorkerReport:
    """Pull and execute plan cells until nothing claimable remains.

    ``max_cells`` bounds how many cells this invocation *attempts*
    (executed + failed) — the hook tests use to stop a worker at an
    exact store state.  ``emit_events`` streams the worker protocol on
    stdout; ``bus`` attaches an in-process
    :class:`~repro.obs.bus.EventBus` instead (the two compose).
    """
    store = CampaignStore(store_dir)
    if not store.exists():
        raise StoreError(f"no campaign store at {store.directory}")
    spec = CampaignSpec.from_dict(store.read_manifest())
    series_bin_width = store.series_bin_width()
    if series_bin_width is None:
        series_bin_width = 0.05
    name = worker or worker_name()

    from repro.obs.bus import EventBus
    from repro.obs.events import WorkerStarted

    if emit_events:
        from repro.obs.worker import StdoutJsonSink

        if bus is None:
            bus = EventBus()
        bus.subscribe(StdoutJsonSink())

    plan = spec.plan()
    # Start each worker's sweep at a name-derived offset so a fleet
    # doesn't stampede the same first cell (claims make the contention
    # harmless, just wasteful).  crc32, not hash(): per-process hash
    # salting would make the offset unreproducible.
    if plan:
        offset = zlib.crc32(name.encode("utf-8")) % len(plan)
        plan = plan[offset:] + plan[:offset]

    if bus:
        bus.emit(WorkerStarted(
            time=0.0, worker=name, pid=os.getpid(),
            host=socket.gethostname(), store=str(store.directory),
            cells=len(plan),
        ))

    report = WorkerReport(worker=name)
    while True:
        progress = False
        next_retry: float | None = None
        for planned in plan:
            if max_cells is not None \
                    and report.executed + report.failed >= max_cells:
                break
            run_id = planned.run_id
            if store.has(run_id):
                continue
            now = time.time()
            record = store.read_failure(run_id)
            if record is not None and not record.retryable(now):
                if not record.quarantined:
                    next_retry = (
                        record.next_retry_at if next_retry is None
                        else min(next_retry, record.next_retry_at)
                    )
                continue
            lease = store.try_claim(run_id, name, ttl=lease_ttl, now=now)
            if lease is None:
                continue  # someone live holds it; sweep on
            chaos_point("claim")  # crash harness: lease filed, cell not run
            ok = _execute_cell(
                store, planned, lease,
                series_bin_width=series_bin_width,
                cell_timeout=cell_timeout,
                max_attempts=max_attempts,
                bus=bus,
                worker=name,
                cells_done=report.executed,
            )
            progress = True
            if ok:
                report.executed += 1
            else:
                report.failed += 1

        quarantined = store.quarantined_ids()
        missing = [p for p in plan if not store.has(p.run_id)]
        report.remaining = len(missing)
        report.quarantined = len(
            {p.run_id for p in missing} & quarantined
        )
        if max_cells is not None \
                and report.executed + report.failed >= max_cells:
            break
        claimable = [p for p in missing if p.run_id not in quarantined]
        if not claimable:
            break  # done, or only quarantined cells left
        if not progress:
            # Everything claimable is either leased by a live worker or
            # backing off; wait for a lease to expire / a retry to come
            # due, then sweep again.
            delay = poll_interval
            if next_retry is not None:
                delay = min(
                    max(poll_interval, next_retry - time.time()),
                    max(poll_interval, lease_ttl),
                )
            time.sleep(max(0.05, delay))

    if bus:
        bus.close()
    return report


def _execute_cell(
    store: CampaignStore,
    planned: PlannedRun,
    lease: Lease,
    *,
    series_bin_width: float,
    cell_timeout: float | None,
    max_attempts: int,
    bus,
    worker: str,
    cells_done: int,
) -> bool:
    """Run one claimed cell to an artifact or a ledger record.

    The watchdog thread re-stamps the lease every ``ttl/3`` and — when
    ``cell_timeout`` is set — records a timeout failure and
    ``os._exit``\\ s the whole process.  That is deliberate: a wedged
    simulation cannot be cancelled from a sister thread, and an
    orphaned cell-subprocess would outlive the SIGKILLs the chaos
    harness delivers; dying whole keeps "worker gone" the *only*
    failure shape the recovery machinery must handle.  The ledger write
    lands (atomically) before the exit, so the wedge is never silent.
    """
    from repro.experiments.runner import run_experiment
    from repro.obs.events import WorkerHeartbeat

    start = time.monotonic()
    stop = threading.Event()

    def watchdog() -> None:
        interval = max(0.05, min(1.0, lease.ttl / 3.0))
        while not stop.wait(interval):
            elapsed = time.monotonic() - start
            if cell_timeout is not None and elapsed > cell_timeout:
                store.record_failure(
                    planned.run_id, worker,
                    f"cell timeout: no result after {elapsed:.1f}s "
                    f"(limit {cell_timeout:.1f}s)",
                    max_attempts=max_attempts,
                )
                store.release_lease(lease)
                try:
                    sys.stderr.write(
                        f"worker {worker}: cell {planned.run_id} timed "
                        f"out after {elapsed:.1f}s; exiting\n"
                    )
                    sys.stderr.flush()
                except Exception:
                    pass
                os._exit(EXIT_CELL_TIMEOUT)
            store.refresh_lease(lease)
            if bus:
                bus.emit(WorkerHeartbeat(
                    time=0.0, worker=worker, run_id=planned.run_id,
                    elapsed=elapsed, executed=cells_done,
                ))

    thread = threading.Thread(
        target=watchdog, name=f"watchdog-{planned.run_id[:8]}", daemon=True
    )
    thread.start()
    run_bus = None
    if chaos_active("run"):
        # Arm the mid-run death: monitor epochs fire throughout the
        # simulation, so a subscriber that rolls the chaos dice on each
        # one can kill the worker with the cell half-executed.
        from repro.obs.bus import CallbackSink, EventBus

        run_bus = EventBus()
        run_bus.subscribe(
            CallbackSink(lambda event: chaos_point("run")),
            kinds=("monitor.snapshot",),
        )
    try:
        result = run_experiment(
            planned.config,
            series_bin_width=series_bin_width,
            bus=run_bus,
        )
        chaos_point("result")  # crash harness: ran whole, nothing written
        store.write_result(
            result, point=planned.point, series_bin_width=series_bin_width
        )
        store.release_lease(lease)
        if bus:
            from repro.obs.events import CampaignRun

            pct = result.summary.as_percent()
            bus.emit(CampaignRun(
                time=0.0, run_id=planned.run_id, seed=planned.seed,
                point=dict(planned.point), alpha=pct["alpha"],
                beta=pct["beta"], wall_seconds=result.wall_seconds,
            ))
        return True
    except KeyboardInterrupt:
        store.release_lease(lease)
        raise
    except Exception as exc:  # noqa: BLE001 - every failure goes to the ledger
        record = store.record_failure(
            planned.run_id, worker,
            f"{type(exc).__name__}: {exc}",
            traceback.format_exc(),
            max_attempts=max_attempts,
        )
        store.release_lease(lease)
        state = (
            "quarantined" if record.quarantined
            else f"retry {record.attempts}/{record.max_attempts}"
        )
        print(
            f"worker {worker}: cell {planned.run_id} failed "
            f"({type(exc).__name__}: {exc}) -> {state}",
            file=sys.stderr,
        )
        return False
    finally:
        stop.set()
        thread.join(timeout=5.0)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign.worker",
        description="pull and execute cells of a campaign store until "
        "nothing claimable remains",
    )
    parser.add_argument(
        "store_dir", help="campaign store directory (e.g. campaigns/<name>)"
    )
    parser.add_argument(
        "--worker", default=None, metavar="NAME",
        help="worker identity for leases/events (default: host:pid)",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=DEFAULT_LEASE_TTL, metavar="S",
        help="heartbeat TTL before a lease counts as dead "
        f"(default: {DEFAULT_LEASE_TTL}s)",
    )
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="S",
        help="kill this worker if one cell runs longer than S seconds "
        "(the attempt is charged to the ledger first)",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=DEFAULT_MAX_ATTEMPTS,
        metavar="K",
        help="failed attempts before a cell is quarantined "
        f"(default: {DEFAULT_MAX_ATTEMPTS})",
    )
    parser.add_argument(
        "--max-cells", type=int, default=None, metavar="K",
        help="attempt at most K cells, then exit",
    )
    parser.add_argument(
        "--events", action="store_true",
        help="stream worker/campaign events as JSON lines on stdout "
        "(the pool parent's protocol)",
    )
    args = parser.parse_args(argv)
    try:
        report = run_worker(
            args.store_dir,
            worker=args.worker,
            lease_ttl=args.lease_ttl,
            cell_timeout=args.cell_timeout,
            max_attempts=args.max_attempts,
            max_cells=args.max_cells,
            emit_events=args.events,
        )
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130
    print(
        f"worker {report.worker}: {report.executed} executed, "
        f"{report.failed} failed attempts, {report.remaining} remaining "
        f"({report.quarantined} quarantined)",
        file=sys.stderr,
    )
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
