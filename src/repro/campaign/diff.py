"""Cell-by-cell comparison of two campaign stores: ``campaign diff``.

The chaos harness's core invariant — any interleaving of worker deaths
converges, after resume, to the same bytes a serial run produces —
needs a checker, and CI needs it to exit nonzero.  :func:`diff_stores`
compares two store directories **by run_id** (content-addressed, so the
same cell files under the same name in both):

* cells present in one store and not the other (``missing`` / ``extra``);
* for common cells, every report-visible artifact field — the summary
  metrics, activation time, identified/true ATR sets, event counts,
  series bin width — with numeric leaves compared under an absolute
  ``tolerance`` (default 0.0: bit-exact, the determinism contract).

Ignored by design: ``timing`` (wall clock is quarantined there exactly
so stores stay comparable), ``point`` (advisory provenance — a cache
write and a campaign write of the same config must compare equal),
``config`` (equal run_ids imply equal configs) and ``schema`` (a
migrated store must diff clean against its pre-migration copy).
Series samples are *not* compared — reports never read them; byte-diff
the sidecars directly if that level of paranoia is needed.

Schema-tolerant on purpose: artifacts are loaded as raw JSON documents,
so a schema-1 store diffs cleanly against a schema-2 one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.campaign.store import CampaignStore, StoreError

#: Artifact keys that never participate in the comparison.
IGNORED_KEYS = frozenset({"schema", "timing", "point", "config", "run_id"})


@dataclass
class CellDelta:
    """One field of one common cell that differs."""

    run_id: str
    field: str
    a: object
    b: object


@dataclass
class StoreDiff:
    """What :func:`diff_stores` found."""

    dir_a: Path
    dir_b: Path
    compared: int = 0  # common cells compared field-by-field
    #: run_ids in A with no artifact in B, and vice versa.
    missing_in_b: list[str] = field(default_factory=list)
    missing_in_a: list[str] = field(default_factory=list)
    differing: list[CellDelta] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return not (
            self.missing_in_a or self.missing_in_b or self.differing
        )


def diff_stores(
    dir_a, dir_b, tolerance: float = 0.0
) -> StoreDiff:
    """Compare every cell of two stores; see the module docstring."""
    store_a, store_b = CampaignStore(dir_a), CampaignStore(dir_b)
    for store in (store_a, store_b):
        if not store.exists():
            raise StoreError(f"no campaign store at {store.directory}")
    ids_a, ids_b = store_a.run_ids(), store_b.run_ids()
    diff = StoreDiff(dir_a=store_a.directory, dir_b=store_b.directory)
    diff.missing_in_b = sorted(ids_a - ids_b)
    diff.missing_in_a = sorted(ids_b - ids_a)
    for run_id in sorted(ids_a & ids_b):
        flat_a = _flatten(_comparable(store_a, run_id))
        flat_b = _flatten(_comparable(store_b, run_id))
        for key in sorted(flat_a.keys() | flat_b.keys()):
            in_a, in_b = key in flat_a, key in flat_b
            if not (in_a and in_b):
                diff.differing.append(CellDelta(
                    run_id, key,
                    flat_a.get(key, "<absent>"),
                    flat_b.get(key, "<absent>"),
                ))
                continue
            va, vb = flat_a[key], flat_b[key]
            if _is_number(va) and _is_number(vb):
                if abs(va - vb) > tolerance:
                    diff.differing.append(CellDelta(run_id, key, va, vb))
            elif va != vb:
                diff.differing.append(CellDelta(run_id, key, va, vb))
        diff.compared += 1
    return diff


def _comparable(store: CampaignStore, run_id: str) -> dict:
    path = store.run_path(run_id)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise StoreError(f"corrupt artifact {path}: {exc}") from exc
    payload.pop("series", None)  # schema-1 inline series: never compared
    return {k: v for k, v in payload.items() if k not in IGNORED_KEYS}


def _flatten(value, prefix: str = "", out: dict | None = None) -> dict:
    """``{"summary": {"alpha": 1}} -> {"summary.alpha": 1}`` (leaves only).

    Lists are leaves (artifact lists — ATR names — are already sorted
    by the writer, so direct equality is the right comparison).
    """
    if out is None:
        out = {}
    if isinstance(value, dict):
        for key in value:
            _flatten(value[key], f"{prefix}.{key}" if prefix else key, out)
    else:
        out[prefix] = value
    return out


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
