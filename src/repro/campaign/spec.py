"""Declarative campaign specifications.

A campaign is the unit the paper actually reports: a grid of
:class:`~repro.experiments.config.ExperimentConfig`\\ s — a base preset,
axes of parameter values (including registry-component names and
per-component args), and a seed list — executed many times and
aggregated.  A :class:`CampaignSpec` captures that grid declaratively in
TOML or JSON so it can live in the repo next to the results it produced:

.. code-block:: toml

    name = "pd-sweep"
    preset = "paper-default"
    seeds = [1, 2, 3, 4]

    [base]
    total_flows = 30
    n_routers = 12

    [[axes]]
    field = "mafic.drop_probability"
    values = [0.5, 0.7, 0.9]

    [[axes]]
    field = "defense"
    values = ["mafic", "red_rate_limit"]

Axis fields are dotted paths into the config: top-level fields
(``attack_fraction``), nested component configs
(``mafic.drop_probability``, ``pushback.overload_factor``,
``spoofing.mode``), and the open per-component arg dicts
(``topology_args.n_agg``).  :meth:`CampaignSpec.plan` expands the cross
product of all axes times the seed list into :class:`PlannedRun`\\ s,
each content-addressed by its config's
:meth:`~repro.experiments.config.ExperimentConfig.config_hash` — the key
the store files artifacts under, which is what makes campaigns resumable
and extensible: adding seeds or axis points later changes only which
hashes are missing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path

from repro.experiments.config import ExperimentConfig


class CampaignSpecError(ValueError):
    """A campaign spec that cannot be turned into a valid plan."""


#: Config dict fields that accept keys not present in the defaults
#: (anything under them is forwarded verbatim to a component builder).
_OPEN_DICT_SUFFIX = "_args"


@dataclass(frozen=True)
class AxisSpec:
    """One swept dimension: a dotted config path and its values."""

    field: str
    values: tuple

    def __post_init__(self) -> None:
        if not self.field or not isinstance(self.field, str):
            raise CampaignSpecError("axis 'field' must be a non-empty string")
        if not self.values:
            raise CampaignSpecError(
                f"axis {self.field!r} must list at least one value"
            )


@dataclass(frozen=True)
class PlannedRun:
    """One cell of the campaign grid, content-addressed by config hash."""

    config: ExperimentConfig
    point: dict  # axis field -> value (seed excluded)
    seed: int
    run_id: str


@dataclass
class CampaignSpec:
    """A declarative experiment campaign: base + axes + seeds."""

    name: str
    seeds: tuple[int, ...] = (1,)
    preset: str | None = None
    base: dict = field(default_factory=dict)
    axes: tuple[AxisSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or self.name.startswith("."):
            raise CampaignSpecError(
                f"campaign name {self.name!r} must be a plain directory name"
            )
        self.seeds = tuple(int(seed) for seed in self.seeds)
        if not self.seeds:
            raise CampaignSpecError("campaign needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise CampaignSpecError("duplicate seeds in campaign spec")
        self.axes = tuple(
            axis if isinstance(axis, AxisSpec) else AxisSpec(**axis)
            for axis in self.axes
        )
        fields = [axis.field for axis in self.axes]
        if len(set(fields)) != len(fields):
            raise CampaignSpecError("duplicate axis fields in campaign spec")
        if "seed" in fields:
            raise CampaignSpecError("sweep seeds via 'seeds', not an axis")

    # ------------------------------------------------------------- loading

    @classmethod
    def from_dict(cls, data: dict, source: str = "<dict>") -> "CampaignSpec":
        """Build a spec from parsed TOML/JSON, with readable errors."""
        if not isinstance(data, dict):
            raise CampaignSpecError(f"{source}: spec must be a table/object")
        known = {"name", "seeds", "preset", "base", "axes"}
        unknown = set(data) - known
        if unknown:
            raise CampaignSpecError(
                f"{source}: unknown spec keys {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        if "name" not in data:
            raise CampaignSpecError(f"{source}: spec needs a 'name'")
        axes = data.get("axes", ())
        if isinstance(axes, dict):
            raise CampaignSpecError(
                f"{source}: 'axes' must be an array of tables ([[axes]])"
            )
        for axis in axes:
            extra = set(axis) - {"field", "values"}
            if extra:
                raise CampaignSpecError(
                    f"{source}: unknown axis keys {sorted(extra)} on "
                    f"{axis.get('field', '<unnamed>')!r}; an axis has only "
                    "'field' and 'values'"
                )
        seeds = data.get("seeds", (1,))
        if isinstance(seeds, (str, bytes)) or not isinstance(
            seeds, (list, tuple)
        ):
            # tuple("12") would silently plan seeds (1, 2).
            raise CampaignSpecError(
                f"{source}: 'seeds' must be an array of ints"
            )
        try:
            return cls(
                name=data["name"],
                seeds=tuple(seeds),
                preset=data.get("preset"),
                base=dict(data.get("base", {})),
                axes=tuple(
                    AxisSpec(field=a["field"], values=tuple(a["values"]))
                    for a in axes
                ),
            )
        except KeyError as exc:
            raise CampaignSpecError(
                f"{source}: each axis needs 'field' and 'values' ({exc})"
            ) from None

    @classmethod
    def load(cls, path: str | Path) -> "CampaignSpec":
        """Load a spec file — ``.toml`` or ``.json`` by extension."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix == ".toml":
            try:
                import tomllib
            except ImportError as exc:  # pragma: no cover - py3.10 only
                raise CampaignSpecError(
                    "TOML specs need Python >= 3.11 (tomllib); "
                    "use a .json spec instead"
                ) from exc
            data = tomllib.loads(text)
        elif path.suffix == ".json":
            data = json.loads(text)
        else:
            raise CampaignSpecError(
                f"unknown spec extension {path.suffix!r} (want .toml or .json)"
            )
        return cls.from_dict(data, source=str(path))

    def to_dict(self) -> dict:
        """The manifest snapshot written next to the run artifacts."""
        return {
            "name": self.name,
            "preset": self.preset,
            "seeds": list(self.seeds),
            "base": self.base,
            "axes": [
                {"field": axis.field, "values": list(axis.values)}
                for axis in self.axes
            ],
        }

    # ------------------------------------------------------------ planning

    def base_config(self) -> ExperimentConfig:
        """The config every grid cell starts from: preset + base overrides."""
        if self.preset is not None:
            from repro.experiments.presets import get_preset

            try:
                config = get_preset(self.preset)
            except KeyError as exc:
                raise CampaignSpecError(str(exc)) from None
        else:
            config = ExperimentConfig()
        tree = config.to_dict()
        _apply_overrides(tree, self.base, prefix="")
        return _config_from_tree(tree)

    def plan(self) -> list[PlannedRun]:
        """Expand the grid: cross product of axes, times the seed list.

        Deterministic order — axes vary in declaration order (last axis
        fastest), seeds innermost — and duplicate cells (two axis
        combinations hashing to the same config) are dropped after the
        first occurrence, so the plan maps one-to-one onto store keys.
        """
        base_tree = self.base_config().to_dict()
        runs: list[PlannedRun] = []
        seen: set[str] = set()
        if self.axes:
            combos = product(*(axis.values for axis in self.axes))
        else:
            combos = [()]
        base_json = json.dumps(base_tree)
        for combo in combos:
            point = {
                axis.field: value
                for axis, value in zip(self.axes, combo)
            }
            for seed in self.seeds:
                tree = json.loads(base_json)  # deep copy
                for path, value in point.items():
                    _set_path(tree, path, value)
                tree["seed"] = int(seed)
                config = _config_from_tree(tree)
                run_id = config.config_hash()
                if run_id in seen:
                    continue
                seen.add(run_id)
                runs.append(
                    PlannedRun(
                        config=config, point=dict(point), seed=int(seed),
                        run_id=run_id,
                    )
                )
        return runs


def _config_from_tree(tree: dict) -> ExperimentConfig:
    """Materialize a config dict, rewording constructor errors."""
    try:
        return ExperimentConfig.from_dict(tree)
    except TypeError as exc:
        raise CampaignSpecError(f"invalid config for campaign: {exc}") from None


def _set_path(tree: dict, path: str, value, open_dict: bool = False) -> None:
    """Set a dotted config path, creating keys only inside open dicts."""
    parts = path.split(".")
    node = tree
    for part in parts[:-1]:
        if part not in node:
            if not open_dict:
                raise CampaignSpecError(f"unknown config field {path!r}")
            node[part] = {}
        if not isinstance(node[part], dict):
            raise CampaignSpecError(
                f"config field {path!r} does not address a nested field"
            )
        node = node[part]
        open_dict = open_dict or part.endswith(_OPEN_DICT_SUFFIX)
    leaf = parts[-1]
    if leaf not in node and not open_dict:
        raise CampaignSpecError(f"unknown config field {path!r}")
    if isinstance(node.get(leaf), dict) and not isinstance(value, dict):
        # A bare "mafic" (typo for "mafic.drop_probability") would
        # silently clobber the whole component table and only blow up
        # later inside a worker, after burning every run before it.
        raise CampaignSpecError(
            f"config field {path!r} addresses a component table; set one "
            f"of its fields ({path}.<field>) instead"
        )
    node[leaf] = value


def _apply_overrides(tree: dict, overrides: dict, prefix: str,
                     open_dict: bool = False) -> None:
    """Deep-merge ``base`` overrides into a config dict.

    Nested tables recurse; dotted keys are accepted as a convenience
    (``"mafic.drop_probability" = 0.7``).  Unknown fields raise unless
    inside an open ``*_args`` dict.
    """
    for key, value in overrides.items():
        path = f"{prefix}{key}"
        if "." in key:
            _set_path(tree, key, value, open_dict=open_dict)
            continue
        if key not in tree and not open_dict:
            raise CampaignSpecError(f"unknown config field {path!r}")
        if isinstance(value, dict) and isinstance(tree.get(key), dict):
            _apply_overrides(
                tree[key], value, prefix=f"{path}.",
                open_dict=open_dict or key.endswith(_OPEN_DICT_SUFFIX),
            )
        else:
            if isinstance(tree.get(key), dict):
                raise CampaignSpecError(
                    f"config field {path!r} addresses a component table; "
                    f"set one of its fields ({path}.<field>) instead"
                )
            tree[key] = value
