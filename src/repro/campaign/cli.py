"""The ``python -m repro campaign`` subcommand family.

::

    python -m repro campaign run     spec.toml [--root DIR] [--jobs N]
    python -m repro campaign resume  spec.toml [--root DIR] [--jobs N]
    python -m repro campaign status  spec.toml [--root DIR]
    python -m repro campaign report  spec.toml [--json F] [--csv F]
    python -m repro campaign figures spec.toml [--root DIR] [--out DIR]
    python -m repro campaign gc      spec.toml [--root DIR] [--apply]
    python -m repro campaign migrate <store-dir>

``run`` and ``resume`` are the same operation — plan, skip every run
whose artifact exists, execute the rest — except that ``resume`` insists
the store already exists (catching a mistyped ``--root`` before it
silently recomputes everything).  ``status`` exits 0 only when the
campaign is complete, so CI can gate on it.  ``figures`` regenerates
the campaign's figure set from stored artifacts without re-simulating;
``gc`` prunes unplanned artifacts, orphaned sidecars, and leftover
temp files (dry-run unless ``--apply``); ``migrate`` rewrites a
schema-1 store into the sharded sidecar layout in place — it takes the
store *directory*, not a spec, since old stores may outlive their spec
files.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.campaign.orchestrator import (
    DEFAULT_ROOT,
    campaign_gc,
    campaign_status,
    open_store,
    run_campaign,
)
from repro.campaign.query import campaign_figures, campaign_report, report_rows
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import StoreError, migrate_store
from repro.util.registry import UnknownComponentError


def add_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``campaign`` subcommand to the top-level CLI."""
    camp = sub.add_parser(
        "campaign",
        help="run, resume, inspect, and report experiment campaigns",
    )
    csub = camp.add_subparsers(dest="campaign_command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("spec", help="campaign spec file (.toml or .json)")
        p.add_argument(
            "--root", default=DEFAULT_ROOT,
            help=f"artifact store root (default: ./{DEFAULT_ROOT})",
        )

    for verb, help_text in (
        ("run", "execute the campaign (skipping completed runs)"),
        ("resume", "like run, but the store must already exist"),
    ):
        p = csub.add_parser(verb, help=help_text)
        common(p)
        p.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="worker processes (default: CPU count)",
        )
        p.add_argument(
            "--max-runs", type=int, default=None, metavar="K",
            help="execute at most K new runs this invocation",
        )
        p.add_argument(
            "--wave", type=int, default=None, metavar="W",
            help="artifacts are written after every W runs "
            "(default: 4 x jobs)",
        )
        p.add_argument(
            "--profile", default=None, metavar="FILE",
            help="cProfile ONE missing cell (forces --jobs 1 "
            "--max-runs 1) and dump pstats to FILE; the REPRO_PROFILE "
            "env var is the same switch for Makefile/CI invocations",
        )
        p.add_argument(
            "--record", default=None, metavar="FILE",
            help="record the campaign's event stream (one campaign.run "
            "per executed cell plus progress) to a JSONL flight "
            "recording for 'python -m repro replay'",
        )

    p = csub.add_parser(
        "status", help="planned vs completed runs (exit 1 if incomplete)"
    )
    common(p)

    p = csub.add_parser(
        "report", help="aggregate completed runs per axis point"
    )
    common(p)
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the full report payload as JSON")
    p.add_argument("--csv", default=None, metavar="FILE",
                   help="write the per-point table as CSV")
    p.add_argument("--confidence", type=float, default=0.95)

    p = csub.add_parser(
        "figures",
        help="regenerate the campaign's figures from stored runs "
        "(no simulation)",
    )
    common(p)
    p.add_argument(
        "--out", default=None, metavar="DIR",
        help="output directory (default: <store>/figures)",
    )

    p = csub.add_parser(
        "gc",
        help="prune unplanned artifacts, orphan sidecars, and temp files",
    )
    common(p)
    p.add_argument(
        "--apply", action="store_true",
        help="actually delete (default: dry run, print what would go)",
    )

    p = csub.add_parser(
        "migrate",
        help="rewrite a schema-1 store into the sharded sidecar layout",
    )
    p.add_argument(
        "store_dir",
        help="campaign store directory (e.g. campaigns/<name>)",
    )


def cmd(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``campaign`` invocation; returns the exit code."""
    if args.campaign_command == "migrate":
        # The one spec-less verb: it operates on a store directory.
        try:
            return _cmd_migrate(args)
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        spec = CampaignSpec.load(args.spec)
    except (ValueError, TypeError, OSError) as exc:
        # ValueError covers CampaignSpecError and malformed JSON/TOML;
        # TypeError covers shape mistakes like a scalar `seeds`.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.campaign_command in ("run", "resume"):
            try:
                return _cmd_run(spec, args)
            except KeyboardInterrupt:
                # run_campaign absorbs Ctrl-C during execution; this
                # catches the slivers before/after it (spec planning,
                # report printing) so no invocation ever tracebacks.
                print(
                    "\ninterrupted; completed artifacts are on disk — "
                    f"finish with 'python -m repro campaign resume "
                    f"{args.spec} --root {args.root}'",
                    file=sys.stderr,
                )
                return 130
        if args.campaign_command == "status":
            return _cmd_status(spec, args)
        if args.campaign_command == "figures":
            return _cmd_figures(spec, args)
        if args.campaign_command == "gc":
            return _cmd_gc(spec, args)
        return _cmd_report(spec, args)
    except (ValueError, TypeError, UnknownComponentError, StoreError) as exc:
        # ValueError covers CampaignSpecError plus orchestrator argument
        # validation (bad --wave/--max-runs); TypeError fires when a
        # ``*_args`` axis names a kwarg its builder doesn't accept;
        # UnknownComponentError (a KeyError) fires when a spec names a
        # missing registry component.
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


def _cmd_run(spec: CampaignSpec, args: argparse.Namespace) -> int:
    from repro.experiments.profiling import PROFILE_ENV_VAR
    from repro.obs.bus import CallbackSink, EventBus

    if args.campaign_command == "resume" and not open_store(spec, args.root).exists():
        print(
            f"error: no store for campaign {spec.name!r} under {args.root!r} "
            "(use 'campaign run' to start one)",
            file=sys.stderr,
        )
        return 2

    profile_path = args.profile or os.environ.get(PROFILE_ENV_VAR) or None

    def progress(done: int, total: int) -> None:
        print(f"  {done}/{total} new runs complete", flush=True)

    def on_run(event) -> None:
        point = ", ".join(f"{k}={v}" for k, v in event.point.items()) or "-"
        print(
            f"  run {event.run_id}  seed={event.seed}  {point}  "
            f"alpha={event.alpha:.2f}%  beta={event.beta:.2f}%  "
            f"({event.wall_seconds:.2f}s)",
            flush=True,
        )

    bus = EventBus()
    bus.subscribe(CallbackSink(on_run), kinds=("campaign.run",))
    recorder = None
    if args.record:
        from repro.obs.recorder import JsonlSink

        recorder = JsonlSink(args.record, metadata={
            "command": f"campaign {args.campaign_command}",
            "campaign": spec.name,
            "spec_path": args.spec,
        })
        bus.subscribe(recorder)

    try:
        report = run_campaign(
            spec,
            root=args.root,
            jobs=args.jobs,
            max_runs=args.max_runs,
            wave_size=args.wave,
            progress=progress,
            bus=bus,
            profile_path=profile_path,
        )
    finally:
        if recorder is not None:
            recorder.close()
    if recorder is not None:
        print(f"recorded {recorder.events_written} events to {args.record}")
    state = "complete" if report.complete else "incomplete"
    print(
        f"campaign {report.name}: {report.planned} planned, "
        f"{report.cached} cached, {report.executed} executed "
        f"in {report.wall_seconds:.1f}s ({report.jobs} worker"
        f"{'s' if report.jobs != 1 else ''}) -> {state}"
    )
    print(f"store: {report.store_dir}")
    if report.interrupted:
        print(
            f"interrupted: {report.executed} new artifacts are on disk; "
            f"finish with 'python -m repro campaign resume {args.spec} "
            f"--root {args.root}'",
            file=sys.stderr,
        )
        return 130
    return 0


def _cmd_status(spec: CampaignSpec, args: argparse.Namespace) -> int:
    status = campaign_status(spec, args.root)
    print(
        f"campaign {status.name}: {status.complete}/{status.planned} "
        f"runs complete ({len(status.missing)} missing, "
        f"{status.unplanned} unplanned artifacts)"
    )
    for run in status.missing[:10]:
        point = ", ".join(f"{k}={v}" for k, v in run.point.items()) or "-"
        print(f"  missing {run.run_id}  seed={run.seed}  {point}")
    if len(status.missing) > 10:
        print(f"  ... and {len(status.missing) - 10} more")
    return 0 if status.is_complete else 1


def _cmd_report(spec: CampaignSpec, args: argparse.Namespace) -> int:
    report = campaign_report(spec, args.root, confidence=args.confidence)
    if not report["points"]:
        print("no completed runs yet", file=sys.stderr)
        return 1
    rows = report_rows(report)

    def fmt(cell) -> str:
        return f"{cell:.4f}" if isinstance(cell, float) else str(cell)

    widths = [
        max(len(fmt(row[i])) for row in rows) for i in range(len(rows[0]))
    ]
    for row in rows:
        print("  ".join(fmt(cell).ljust(w) for cell, w in zip(row, widths)))
    print(
        f"\n{report['complete']}/{report['planned']} runs aggregated "
        f"({100 * report['confidence']:.0f}% CI)"
    )
    if args.json:
        from repro.analysis.export import write_json

        write_json(report, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        from repro.analysis.export import write_rows_csv

        write_rows_csv(rows, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_figures(spec: CampaignSpec, args: argparse.Namespace) -> int:
    from repro.analysis.export import figure_to_dict, write_csv, write_json
    from repro.experiments.reporting import format_figure

    figures = campaign_figures(spec, args.root)
    if not figures:
        print(
            "no figures to regenerate (no completed runs, or no numeric "
            "axes to plot against)",
            file=sys.stderr,
        )
        return 1
    store = open_store(spec, args.root)
    out_dir = Path(args.out) if args.out else store.directory / "figures"
    out_dir.mkdir(parents=True, exist_ok=True)
    for figure in figures:
        stem = out_dir / figure.figure_id
        stem.with_suffix(".txt").write_text(
            format_figure(figure) + "\n", encoding="utf-8"
        )
        write_csv(figure, stem.with_suffix(".csv"))
        write_json(figure_to_dict(figure), stem.with_suffix(".json"))
        n_series = len(figure.series)
        print(
            f"  {figure.figure_id}: {n_series} series "
            f"({stem.with_suffix('.txt').name}, .csv, .json)"
        )
    print(f"wrote {len(figures)} figures to {out_dir}")
    return 0


def _cmd_gc(spec: CampaignSpec, args: argparse.Namespace) -> int:
    report = campaign_gc(spec, args.root, apply=args.apply)
    store_dir = report.store_dir
    for label, paths in (
        ("unplanned artifact", report.unplanned),
        ("orphan sidecar", report.orphan_sidecars),
        ("temp file", report.tmp_files),
    ):
        for path in sorted(paths):
            verb = "deleted" if report.applied else "would delete"
            print(f"  {verb} {label}: {path.relative_to(store_dir)}")
    n = len(report.paths)
    if report.applied:
        print(f"gc: deleted {n} files from {store_dir}")
    else:
        print(
            f"gc: dry run, {n} files would be deleted from {store_dir} "
            "(pass --apply to delete)"
        )
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    report = migrate_store(args.store_dir)
    print(
        f"migrated {report.migrated} artifacts to the schema-2 sharded "
        f"sidecar layout ({report.already_current} already current) "
        f"in {report.store_dir}"
    )
    return 0


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    """Standalone entry point (mirrors ``python -m repro campaign``)."""
    parser = argparse.ArgumentParser(prog="repro-campaign")
    sub = parser.add_subparsers(dest="command", required=True)
    add_parser(sub)
    args = parser.parse_args(argv)
    return cmd(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
