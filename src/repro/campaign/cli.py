"""The ``python -m repro campaign`` subcommand family.

::

    python -m repro campaign run     spec.toml [--root DIR] [--jobs N]
                                     [--distributed] [--retry-failed] ...
    python -m repro campaign resume  spec.toml [--root DIR] [--jobs N]
    python -m repro campaign status  spec.toml [--root DIR]
    python -m repro campaign workers spec.toml [--root DIR]
    python -m repro campaign report  spec.toml [--json F] [--csv F]
    python -m repro campaign figures spec.toml [--root DIR] [--out DIR]
    python -m repro campaign gc      spec.toml [--root DIR] [--apply]
    python -m repro campaign migrate <store-dir>
    python -m repro campaign diff    <store-A> <store-B> [--tolerance X]

``run`` and ``resume`` are the same operation — plan, skip every run
whose artifact exists, execute the rest — except that ``resume`` insists
the store already exists (catching a mistyped ``--root`` before it
silently recomputes everything).  ``--distributed`` swaps the in-process
wave executor for the worker-pull pool (:mod:`repro.campaign.pool`):
``--jobs`` lease-coordinated worker processes that survive any of them
dying, with per-cell timeouts, retry/backoff, and quarantine;
``--retry-failed`` clears the quarantine ledger first.  ``status``
exits 0 only when the campaign is complete, so CI can gate on it;
``workers`` shows the live leases and the failure ledger.  ``figures``
regenerates the campaign's figure set from stored artifacts without
re-simulating; ``gc`` prunes unplanned artifacts, orphaned sidecars,
stale leases, resolved failure records, and leftover temp files
(dry-run unless ``--apply``); ``migrate`` rewrites a schema-1 store
into the sharded sidecar layout (and rebuilds ``index.jsonl``) in
place — it takes the store *directory*, not a spec, since old stores
may outlive their spec files.  ``diff`` compares two stores cell by
cell and exits 1 on any difference — the CI teeth behind "chaos +
resume is byte-identical to serial".
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.campaign.orchestrator import (
    DEFAULT_ROOT,
    campaign_gc,
    campaign_status,
    open_store,
    run_campaign,
)
from repro.campaign.query import campaign_figures, campaign_report, report_rows
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import (
    DEFAULT_LEASE_TTL,
    DEFAULT_MAX_ATTEMPTS,
    StoreError,
    atomic_write_text,
    migrate_store,
)
from repro.util.registry import UnknownComponentError


def add_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``campaign`` subcommand to the top-level CLI."""
    camp = sub.add_parser(
        "campaign",
        help="run, resume, inspect, and report experiment campaigns",
    )
    csub = camp.add_subparsers(dest="campaign_command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("spec", help="campaign spec file (.toml or .json)")
        p.add_argument(
            "--root", default=DEFAULT_ROOT,
            help=f"artifact store root (default: ./{DEFAULT_ROOT})",
        )

    for verb, help_text in (
        ("run", "execute the campaign (skipping completed runs)"),
        ("resume", "like run, but the store must already exist"),
    ):
        p = csub.add_parser(verb, help=help_text)
        common(p)
        p.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="worker processes (default: CPU count)",
        )
        p.add_argument(
            "--max-runs", type=int, default=None, metavar="K",
            help="execute at most K new runs this invocation",
        )
        p.add_argument(
            "--wave", type=int, default=None, metavar="W",
            help="artifacts are written after every W runs "
            "(default: 4 x jobs)",
        )
        p.add_argument(
            "--profile", default=None, metavar="FILE",
            help="cProfile ONE missing cell (forces --jobs 1 "
            "--max-runs 1) and dump pstats to FILE; the REPRO_PROFILE "
            "env var is the same switch for Makefile/CI invocations",
        )
        p.add_argument(
            "--record", default=None, metavar="FILE",
            help="record the campaign's event stream (one campaign.run "
            "per executed cell plus progress) to a JSONL flight "
            "recording for 'python -m repro replay'",
        )
        p.add_argument(
            "--distributed", action="store_true",
            help="execute via the worker-pull pool (lease files, "
            "retry/backoff, quarantine) instead of in-process waves",
        )
        p.add_argument(
            "--lease-ttl", type=float, default=None, metavar="S",
            help="distributed: heartbeat TTL before a worker's lease "
            "counts as dead (default: 15s)",
        )
        p.add_argument(
            "--cell-timeout", type=float, default=None, metavar="S",
            help="distributed: kill a worker whose cell runs longer "
            "than S seconds (the attempt is charged to the ledger)",
        )
        p.add_argument(
            "--max-attempts", type=int, default=None, metavar="K",
            help="distributed: failed attempts before a cell is "
            "quarantined (default: 3)",
        )
        p.add_argument(
            "--retry-failed", action="store_true",
            help="clear the failure ledger first, so quarantined cells "
            "are attempted again",
        )
        p.add_argument(
            "--compress-series", action="store_true",
            help="write gzip series sidecars from now on (recorded in "
            "the manifest; existing plain sidecars stay readable)",
        )

    p = csub.add_parser(
        "status", help="planned vs completed runs (exit 1 if incomplete)"
    )
    common(p)

    p = csub.add_parser(
        "workers",
        help="show live worker leases and the failure/quarantine ledger",
    )
    p.add_argument(
        "--watch", action="store_true",
        help="refresh the view continuously until Ctrl-C",
    )
    p.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between --watch refreshes (default: 2)",
    )
    common(p)

    p = csub.add_parser(
        "report", help="aggregate completed runs per axis point"
    )
    common(p)
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the full report payload as JSON")
    p.add_argument("--csv", default=None, metavar="FILE",
                   help="write the per-point table as CSV")
    p.add_argument("--confidence", type=float, default=0.95)

    p = csub.add_parser(
        "figures",
        help="regenerate the campaign's figures from stored runs "
        "(no simulation)",
    )
    common(p)
    p.add_argument(
        "--out", default=None, metavar="DIR",
        help="output directory (default: <store>/figures)",
    )

    p = csub.add_parser(
        "gc",
        help="prune unplanned artifacts, orphan sidecars, and temp files",
    )
    common(p)
    p.add_argument(
        "--apply", action="store_true",
        help="actually delete (default: dry run, print what would go)",
    )

    p = csub.add_parser(
        "migrate",
        help="rewrite a schema-1 store into the sharded sidecar layout "
        "(and rebuild index.jsonl)",
    )
    p.add_argument(
        "store_dir",
        help="campaign store directory (e.g. campaigns/<name>)",
    )

    p = csub.add_parser(
        "diff",
        help="compare two stores cell-by-cell (exit 1 on differences)",
    )
    p.add_argument("store_a", help="first campaign store directory")
    p.add_argument("store_b", help="second campaign store directory")
    p.add_argument(
        "--tolerance", type=float, default=0.0, metavar="X",
        help="absolute tolerance for numeric fields (default: 0.0 — "
        "bit-exact, the determinism contract)",
    )
    p.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="print at most N differences (default: 20)",
    )


def cmd(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``campaign`` invocation; returns the exit code."""
    if args.campaign_command in ("migrate", "diff"):
        # The spec-less verbs: they operate on store directories.
        try:
            if args.campaign_command == "migrate":
                return _cmd_migrate(args)
            return _cmd_diff(args)
        except StoreError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        spec = CampaignSpec.load(args.spec)
    except (ValueError, TypeError, OSError) as exc:
        # ValueError covers CampaignSpecError and malformed JSON/TOML;
        # TypeError covers shape mistakes like a scalar `seeds`.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.campaign_command in ("run", "resume"):
            try:
                return _cmd_run(spec, args)
            except KeyboardInterrupt:
                # run_campaign absorbs Ctrl-C during execution; this
                # catches the slivers before/after it (spec planning,
                # report printing) so no invocation ever tracebacks.
                print(
                    "\ninterrupted; completed artifacts are on disk — "
                    f"finish with 'python -m repro campaign resume "
                    f"{args.spec} --root {args.root}'",
                    file=sys.stderr,
                )
                return 130
        if args.campaign_command == "status":
            return _cmd_status(spec, args)
        if args.campaign_command == "workers":
            return _cmd_workers(spec, args)
        if args.campaign_command == "figures":
            return _cmd_figures(spec, args)
        if args.campaign_command == "gc":
            return _cmd_gc(spec, args)
        return _cmd_report(spec, args)
    except (ValueError, TypeError, UnknownComponentError, StoreError) as exc:
        # ValueError covers CampaignSpecError plus orchestrator argument
        # validation (bad --wave/--max-runs); TypeError fires when a
        # ``*_args`` axis names a kwarg its builder doesn't accept;
        # UnknownComponentError (a KeyError) fires when a spec names a
        # missing registry component.
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


def _cmd_run(spec: CampaignSpec, args: argparse.Namespace) -> int:
    from repro.experiments.profiling import PROFILE_ENV_VAR
    from repro.obs.bus import CallbackSink, EventBus

    if args.campaign_command == "resume" and not open_store(spec, args.root).exists():
        print(
            f"error: no store for campaign {spec.name!r} under {args.root!r} "
            "(use 'campaign run' to start one)",
            file=sys.stderr,
        )
        return 2

    profile_path = args.profile or os.environ.get(PROFILE_ENV_VAR) or None

    def progress(done: int, total: int) -> None:
        print(f"  {done}/{total} new runs complete", flush=True)

    def on_run(event) -> None:
        point = ", ".join(f"{k}={v}" for k, v in event.point.items()) or "-"
        print(
            f"  run {event.run_id}  seed={event.seed}  {point}  "
            f"alpha={event.alpha:.2f}%  beta={event.beta:.2f}%  "
            f"({event.wall_seconds:.2f}s)",
            flush=True,
        )

    def on_worker(event) -> None:
        if event.kind == "worker.started":
            print(
                f"  worker {event.worker} up (pid {event.pid})", flush=True
            )
        elif event.kind == "worker.died":
            print(
                f"  worker {event.worker} died ({event.reason}, "
                f"exit {event.exitcode}); its lease will be reclaimed",
                flush=True,
            )

    bus = EventBus()
    bus.subscribe(CallbackSink(on_run), kinds=("campaign.run",))
    bus.subscribe(
        CallbackSink(on_worker), kinds=("worker.started", "worker.died")
    )
    recorder = None
    if args.record:
        from repro.obs.recorder import JsonlSink

        recorder = JsonlSink(args.record, metadata={
            "command": f"campaign {args.campaign_command}",
            "campaign": spec.name,
            "spec_path": args.spec,
        })
        bus.subscribe(recorder)

    try:
        if args.distributed:
            from repro.campaign.pool import run_distributed

            if profile_path is not None:
                print(
                    "error: --profile is a serial-mode switch (it "
                    "profiles one in-process cell); drop --distributed",
                    file=sys.stderr,
                )
                return 2
            if args.max_runs is not None or args.wave is not None:
                print(
                    "error: --max-runs/--wave shape in-process waves; "
                    "workers pull cells one at a time — drop them or "
                    "drop --distributed",
                    file=sys.stderr,
                )
                return 2
            report = run_distributed(
                spec,
                root=args.root,
                jobs=args.jobs,
                compress_series=args.compress_series or None,
                retry_failed=args.retry_failed,
                lease_ttl=(
                    args.lease_ttl if args.lease_ttl is not None
                    else DEFAULT_LEASE_TTL
                ),
                cell_timeout=args.cell_timeout,
                max_attempts=(
                    args.max_attempts if args.max_attempts is not None
                    else DEFAULT_MAX_ATTEMPTS
                ),
                bus=bus,
            )
        else:
            for flag, value in (
                ("--lease-ttl", args.lease_ttl),
                ("--cell-timeout", args.cell_timeout),
                ("--max-attempts", args.max_attempts),
            ):
                if value is not None:
                    print(
                        f"error: {flag} only applies with --distributed",
                        file=sys.stderr,
                    )
                    return 2
            if args.retry_failed:
                cleared = open_store(spec, args.root).ensure().clear_failures()
                if cleared:
                    print(f"  cleared {cleared} failure records")
            report = run_campaign(
                spec,
                root=args.root,
                jobs=args.jobs,
                max_runs=args.max_runs,
                wave_size=args.wave,
                progress=progress,
                bus=bus,
                profile_path=profile_path,
                compress_series=args.compress_series or None,
            )
    finally:
        if recorder is not None:
            recorder.close()
    if recorder is not None:
        print(f"recorded {recorder.events_written} events to {args.record}")
    state = "complete" if report.complete else "incomplete"
    print(
        f"campaign {report.name}: {report.planned} planned, "
        f"{report.cached} cached, {report.executed} executed "
        f"in {report.wall_seconds:.1f}s ({report.jobs} worker"
        f"{'s' if report.jobs != 1 else ''}) -> {state}"
    )
    print(f"store: {report.store_dir}")
    if report.deaths:
        print(
            f"  {report.deaths} worker deaths survived "
            "(leases reclaimed, cells re-executed)"
        )
    if report.quarantined:
        print(
            f"warning: {report.quarantined} cells quarantined after "
            "repeated failures — inspect with 'campaign workers "
            f"{args.spec} --root {args.root}', retry with "
            "'--retry-failed'",
            file=sys.stderr,
        )
    if report.interrupted:
        print(
            f"interrupted: {report.executed} new artifacts are on disk; "
            f"finish with 'python -m repro campaign resume {args.spec} "
            f"--root {args.root}'",
            file=sys.stderr,
        )
        return 130
    if args.distributed and not report.complete:
        return 1
    return 0


def _cmd_status(spec: CampaignSpec, args: argparse.Namespace) -> int:
    status = campaign_status(spec, args.root)
    quarantined = (
        f", {status.quarantined} quarantined" if status.quarantined else ""
    )
    print(
        f"campaign {status.name}: {status.complete}/{status.planned} "
        f"runs complete ({len(status.missing)} missing, "
        f"{status.unplanned} unplanned artifacts{quarantined})"
    )
    for run in status.missing[:10]:
        point = ", ".join(f"{k}={v}" for k, v in run.point.items()) or "-"
        print(f"  missing {run.run_id}  seed={run.seed}  {point}")
    if len(status.missing) > 10:
        print(f"  ... and {len(status.missing) - 10} more")
    return 0 if status.is_complete else 1


def _cmd_workers(spec: CampaignSpec, args: argparse.Namespace) -> int:
    import time

    store = open_store(spec, args.root)
    if not store.exists():
        print(
            f"error: no store for campaign {spec.name!r} under "
            f"{args.root!r}",
            file=sys.stderr,
        )
        return 2
    if not args.watch:
        _render_workers(spec, store, time.time())
        return 0
    # Live refresh: ANSI home+clear then a fresh render, until Ctrl-C.
    # Each frame re-reads leases and the failure ledger from disk, so a
    # watching terminal tracks takeovers/retries as workers write them.
    try:
        while True:
            print("\x1b[H\x1b[2J", end="")
            now = time.time()
            stamp = time.strftime("%H:%M:%S", time.localtime(now))
            print(
                f"[{stamp}] watching every {args.interval:g}s "
                "(Ctrl-C to stop)"
            )
            _render_workers(spec, store, now)
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _render_workers(spec: CampaignSpec, store, now: float) -> None:
    leases = store.iter_leases()
    print(f"campaign {spec.name}: {len(leases)} leases")
    for lease in leases:
        state = "EXPIRED" if lease.expired(now) else "live"
        age = now - lease.heartbeat_at
        print(
            f"  {lease.run_id}  {lease.worker}  pid={lease.pid} "
            f"host={lease.host}  heartbeat {age:.1f}s ago "
            f"(ttl {lease.ttl:.0f}s) [{state}]"
        )
    failures = store.iter_failures()
    print(f"failure ledger: {len(failures)} records")
    for record in failures:
        state = (
            "QUARANTINED" if record.quarantined
            else f"retry in {max(0.0, record.next_retry_at - now):.1f}s"
        )
        error = record.error.splitlines()[0] if record.error else "?"
        print(
            f"  {record.run_id}  attempts "
            f"{record.attempts}/{record.max_attempts} [{state}] "
            f"last worker {record.worker}: {error}"
        )


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.campaign.diff import diff_stores

    diff = diff_stores(args.store_a, args.store_b, tolerance=args.tolerance)
    for label, ids in (
        (f"only in {diff.dir_a}", diff.missing_in_b),
        (f"only in {diff.dir_b}", diff.missing_in_a),
    ):
        for run_id in ids[: args.limit]:
            print(f"  {label}: {run_id}")
        if len(ids) > args.limit:
            print(f"  ... and {len(ids) - args.limit} more {label}")
    for delta in diff.differing[: args.limit]:
        print(
            f"  {delta.run_id}  {delta.field}: "
            f"{delta.a!r} != {delta.b!r}"
        )
    if len(diff.differing) > args.limit:
        print(f"  ... and {len(diff.differing) - args.limit} more deltas")
    n_issues = (
        len(diff.missing_in_a) + len(diff.missing_in_b)
        + len(diff.differing)
    )
    if diff.identical:
        print(
            f"diff: {diff.compared} common cells identical "
            f"(tolerance {args.tolerance})"
        )
        return 0
    print(
        f"diff: {n_issues} differences across {diff.compared} common "
        f"cells ({len(diff.missing_in_b)} missing in B, "
        f"{len(diff.missing_in_a)} extra in B, "
        f"{len(diff.differing)} field deltas)",
        file=sys.stderr,
    )
    return 1


def _cmd_report(spec: CampaignSpec, args: argparse.Namespace) -> int:
    report = campaign_report(spec, args.root, confidence=args.confidence)
    if not report["points"]:
        print("no completed runs yet", file=sys.stderr)
        return 1
    rows = report_rows(report)

    def fmt(cell) -> str:
        return f"{cell:.4f}" if isinstance(cell, float) else str(cell)

    widths = [
        max(len(fmt(row[i])) for row in rows) for i in range(len(rows[0]))
    ]
    for row in rows:
        print("  ".join(fmt(cell).ljust(w) for cell, w in zip(row, widths)))
    print(
        f"\n{report['complete']}/{report['planned']} runs aggregated "
        f"({100 * report['confidence']:.0f}% CI)"
    )
    if args.json:
        from repro.analysis.export import write_json

        write_json(report, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        from repro.analysis.export import write_rows_csv

        write_rows_csv(rows, args.csv)
        print(f"wrote {args.csv}")
    return 0


def _cmd_figures(spec: CampaignSpec, args: argparse.Namespace) -> int:
    from repro.analysis.export import figure_to_dict, write_csv, write_json
    from repro.experiments.reporting import format_figure

    figures = campaign_figures(spec, args.root)
    if not figures:
        print(
            "no figures to regenerate (no completed runs, or no numeric "
            "axes to plot against)",
            file=sys.stderr,
        )
        return 1
    store = open_store(spec, args.root)
    out_dir = Path(args.out) if args.out else store.directory / "figures"
    out_dir.mkdir(parents=True, exist_ok=True)
    for figure in figures:
        stem = out_dir / figure.figure_id
        atomic_write_text(
            stem.with_suffix(".txt"), format_figure(figure) + "\n"
        )
        write_csv(figure, stem.with_suffix(".csv"))
        write_json(figure_to_dict(figure), stem.with_suffix(".json"))
        n_series = len(figure.series)
        print(
            f"  {figure.figure_id}: {n_series} series "
            f"({stem.with_suffix('.txt').name}, .csv, .json)"
        )
    print(f"wrote {len(figures)} figures to {out_dir}")
    return 0


def _cmd_gc(spec: CampaignSpec, args: argparse.Namespace) -> int:
    report = campaign_gc(spec, args.root, apply=args.apply)
    store_dir = report.store_dir
    for label, paths in (
        ("unplanned artifact", report.unplanned),
        ("orphan sidecar", report.orphan_sidecars),
        ("temp file", report.tmp_files),
        ("stale lease", report.stale_leases),
        ("resolved failure record", report.resolved_failures),
    ):
        for path in sorted(paths):
            verb = "deleted" if report.applied else "would delete"
            print(f"  {verb} {label}: {path.relative_to(store_dir)}")
    n = len(report.paths)
    if report.applied:
        print(f"gc: deleted {n} files from {store_dir}")
    else:
        print(
            f"gc: dry run, {n} files would be deleted from {store_dir} "
            "(pass --apply to delete)"
        )
    return 0


def _cmd_migrate(args: argparse.Namespace) -> int:
    report = migrate_store(args.store_dir)
    print(
        f"migrated {report.migrated} artifacts to the schema-2 sharded "
        f"sidecar layout ({report.already_current} already current) "
        f"in {report.store_dir}; index.jsonl rebuilt "
        f"({report.index_rows} rows)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    """Standalone entry point (mirrors ``python -m repro campaign``)."""
    parser = argparse.ArgumentParser(prog="repro-campaign")
    sub = parser.add_subparsers(dest="command", required=True)
    add_parser(sub)
    args = parser.parse_args(argv)
    return cmd(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
