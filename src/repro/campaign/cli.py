"""The ``python -m repro campaign`` subcommand family.

::

    python -m repro campaign run    spec.toml [--root DIR] [--jobs N]
    python -m repro campaign resume spec.toml [--root DIR] [--jobs N]
    python -m repro campaign status spec.toml [--root DIR]
    python -m repro campaign report spec.toml [--json F] [--csv F]

``run`` and ``resume`` are the same operation — plan, skip every run
whose artifact exists, execute the rest — except that ``resume`` insists
the store already exists (catching a mistyped ``--root`` before it
silently recomputes everything).  ``status`` exits 0 only when the
campaign is complete, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.campaign.orchestrator import (
    DEFAULT_ROOT,
    campaign_status,
    open_store,
    run_campaign,
)
from repro.campaign.query import campaign_report, report_rows
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import StoreError
from repro.util.registry import UnknownComponentError


def add_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``campaign`` subcommand to the top-level CLI."""
    camp = sub.add_parser(
        "campaign",
        help="run, resume, inspect, and report experiment campaigns",
    )
    csub = camp.add_subparsers(dest="campaign_command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("spec", help="campaign spec file (.toml or .json)")
        p.add_argument(
            "--root", default=DEFAULT_ROOT,
            help=f"artifact store root (default: ./{DEFAULT_ROOT})",
        )

    for verb, help_text in (
        ("run", "execute the campaign (skipping completed runs)"),
        ("resume", "like run, but the store must already exist"),
    ):
        p = csub.add_parser(verb, help=help_text)
        common(p)
        p.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="worker processes (default: CPU count)",
        )
        p.add_argument(
            "--max-runs", type=int, default=None, metavar="K",
            help="execute at most K new runs this invocation",
        )
        p.add_argument(
            "--wave", type=int, default=None, metavar="W",
            help="artifacts are written after every W runs "
            "(default: 4 x jobs)",
        )

    p = csub.add_parser(
        "status", help="planned vs completed runs (exit 1 if incomplete)"
    )
    common(p)

    p = csub.add_parser(
        "report", help="aggregate completed runs per axis point"
    )
    common(p)
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write the full report payload as JSON")
    p.add_argument("--csv", default=None, metavar="FILE",
                   help="write the per-point table as CSV")
    p.add_argument("--confidence", type=float, default=0.95)


def cmd(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``campaign`` invocation; returns the exit code."""
    try:
        spec = CampaignSpec.load(args.spec)
    except (ValueError, TypeError, OSError) as exc:
        # ValueError covers CampaignSpecError and malformed JSON/TOML;
        # TypeError covers shape mistakes like a scalar `seeds`.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.campaign_command in ("run", "resume"):
            return _cmd_run(spec, args)
        if args.campaign_command == "status":
            return _cmd_status(spec, args)
        return _cmd_report(spec, args)
    except (ValueError, TypeError, UnknownComponentError, StoreError) as exc:
        # ValueError covers CampaignSpecError plus orchestrator argument
        # validation (bad --wave/--max-runs); TypeError fires when a
        # ``*_args`` axis names a kwarg its builder doesn't accept;
        # UnknownComponentError (a KeyError) fires when a spec names a
        # missing registry component.
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2


def _cmd_run(spec: CampaignSpec, args: argparse.Namespace) -> int:
    if args.campaign_command == "resume" and not open_store(spec, args.root).exists():
        print(
            f"error: no store for campaign {spec.name!r} under {args.root!r} "
            "(use 'campaign run' to start one)",
            file=sys.stderr,
        )
        return 2

    def progress(done: int, total: int) -> None:
        print(f"  {done}/{total} new runs complete", flush=True)

    report = run_campaign(
        spec,
        root=args.root,
        jobs=args.jobs,
        max_runs=args.max_runs,
        wave_size=args.wave,
        progress=progress,
    )
    state = "complete" if report.complete else "incomplete"
    print(
        f"campaign {report.name}: {report.planned} planned, "
        f"{report.cached} cached, {report.executed} executed "
        f"in {report.wall_seconds:.1f}s ({report.jobs} worker"
        f"{'s' if report.jobs != 1 else ''}) -> {state}"
    )
    print(f"store: {report.store_dir}")
    return 0


def _cmd_status(spec: CampaignSpec, args: argparse.Namespace) -> int:
    status = campaign_status(spec, args.root)
    print(
        f"campaign {status.name}: {status.complete}/{status.planned} "
        f"runs complete ({len(status.missing)} missing, "
        f"{status.unplanned} unplanned artifacts)"
    )
    for run in status.missing[:10]:
        point = ", ".join(f"{k}={v}" for k, v in run.point.items()) or "-"
        print(f"  missing {run.run_id}  seed={run.seed}  {point}")
    if len(status.missing) > 10:
        print(f"  ... and {len(status.missing) - 10} more")
    return 0 if status.is_complete else 1


def _cmd_report(spec: CampaignSpec, args: argparse.Namespace) -> int:
    report = campaign_report(spec, args.root, confidence=args.confidence)
    if not report["points"]:
        print("no completed runs yet", file=sys.stderr)
        return 1
    rows = report_rows(report)

    def fmt(cell) -> str:
        return f"{cell:.4f}" if isinstance(cell, float) else str(cell)

    widths = [
        max(len(fmt(row[i])) for row in rows) for i in range(len(rows[0]))
    ]
    for row in rows:
        print("  ".join(fmt(cell).ljust(w) for cell, w in zip(row, widths)))
    print(
        f"\n{report['complete']}/{report['planned']} runs aggregated "
        f"({100 * report['confidence']:.0f}% CI)"
    )
    if args.json:
        from repro.analysis.export import write_json

        write_json(report, args.json)
        print(f"wrote {args.json}")
    if args.csv:
        from repro.analysis.export import write_rows_csv

        write_rows_csv(rows, args.csv)
        print(f"wrote {args.csv}")
    return 0


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    """Standalone entry point (mirrors ``python -m repro campaign``)."""
    parser = argparse.ArgumentParser(prog="repro-campaign")
    sub = parser.add_subparsers(dest="command", required=True)
    add_parser(sub)
    args = parser.parse_args(argv)
    return cmd(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
