"""RFC 2827 ingress filtering.

The paper's Section I names ingress filtering [4] as the countermeasure
that would defeat source spoofing — and assumes it is *not* deployed,
which is why MAFIC must work with spoofed sources.  This module provides
the filter so that assumption can be ablated: an
:class:`IngressFilter` at an ingress router's uplink drops every packet
whose claimed source falls outside the subnets that router fronts for.

With filtering on, zombies can only spoof within their own subnet, so the
duplicate-ACK probes at least reach the right subnet; MAFIC is still
needed to catch unresponsiveness (a compromised host's own address is
"legitimate" in the paper's sense).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.sim.address import Subnet
from repro.sim.packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.link import SimplexLink


class IngressFilter:
    """Link-head hook enforcing source legitimacy at an ingress router."""

    def __init__(self, allowed_subnets: Iterable[Subnet]) -> None:
        self.allowed_subnets = tuple(allowed_subnets)
        if not self.allowed_subnets:
            raise ValueError("an ingress filter needs at least one subnet")
        self.packets_checked = 0
        self.packets_dropped = 0

    def permits(self, src_ip: int) -> bool:
        """True when the claimed source belongs to a fronted subnet."""
        return any(subnet.contains(src_ip) for subnet in self.allowed_subnets)

    def on_packet(self, packet: Packet, link: "SimplexLink", now: float) -> bool:
        """Drop DATA packets with out-of-subnet sources."""
        if packet.ptype is not PacketType.DATA:
            return True
        self.packets_checked += 1
        if self.permits(packet.src_ip):
            return True
        self.packets_dropped += 1
        return False

    @property
    def drop_fraction(self) -> float:
        """Fraction of checked packets dropped so far."""
        if not self.packets_checked:
            return 0.0
        return self.packets_dropped / self.packets_checked

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"IngressFilter(subnets={len(self.allowed_subnets)}, "
            f"dropped={self.packets_dropped}/{self.packets_checked})"
        )
