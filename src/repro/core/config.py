"""MAFIC agent configuration (the knobs of Section III + Table II)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import (
    check_non_negative,
    check_positive,
    check_probability,
)


@dataclass
class MaficConfig:
    """Parameters of one MAFIC agent.

    Attributes
    ----------
    drop_probability:
        ``Pd`` — probability of dropping a suspicious flow's packet during
        the probing phase (Table II default 90%).
    probe_timer_rtt_multiplier:
        Verdict timer as a multiple of the flow's RTT; the paper fixes 2.
    default_rtt:
        RTT assumed for flows whose packets carry no usable timestamp echo
        (e.g. pure one-way UDP).  The paper reads RTT "by checking the
        time stamp in the packet header"; this is the fallback.
    response_ratio:
        A flow is "responsive" when its arrival rate over the probe window
        drops below ``response_ratio x`` its pre-probe baseline.  A
        conforming TCP halves its window on loss, so 0.75 accepts any
        halving plus margin while rejecting constant-rate senders.
    rate_window:
        Length (seconds) of the sliding window used for arrival-rate
        measurement at the ATR.
    min_packets_for_verdict:
        Flows that sent fewer packets than this during the probe window
        are treated as responsive (insufficient evidence to cut; they are
        re-probed if they speed up again).
    dup_acks_per_probe:
        Number of forged duplicate ACKs sent per probed (dropped) packet.
        Three is the fast-retransmit trigger of Reno TCP.
    probe_ack_size:
        Size in bytes of each forged duplicate ACK.
    renotice_interval:
        Once in the NFT, a flow is left alone; a fresh pushback *start*
        flushes all tables (Fig. 2 "End dropping & flush all tables").
        This interval bounds how long an NFT verdict is trusted during a
        single long pushback episode (0 disables re-probing).
    drop_illegal_sources:
        When True, packets whose claimed source fails the address-space
        legality check go straight to the PDT (Section III.A).
    max_sft_entries / max_pdt_entries:
        Table capacity bounds (0 = unbounded).  Section III.B stores
        hashed labels "to minimize the storage overhead"; under
        per-packet source rotation the SFT still grows one entry per
        packet, so a deployment needs hard caps.  Eviction is
        oldest-first (the entry longest in the table).
    """

    drop_probability: float = 0.90
    probe_timer_rtt_multiplier: float = 2.0
    default_rtt: float = 0.150
    response_ratio: float = 0.75
    rate_window: float = 0.200
    min_packets_for_verdict: int = 3
    dup_acks_per_probe: int = 3
    probe_ack_size: int = 40
    renotice_interval: float = 0.0
    drop_illegal_sources: bool = True
    max_sft_entries: int = 0  # 0 = unbounded; else oldest-probe eviction
    max_pdt_entries: int = 0  # 0 = unbounded; else oldest-verdict eviction

    def __post_init__(self) -> None:
        check_probability("drop_probability", self.drop_probability)
        check_positive("probe_timer_rtt_multiplier", self.probe_timer_rtt_multiplier)
        check_positive("default_rtt", self.default_rtt)
        check_probability("response_ratio", self.response_ratio)
        check_positive("rate_window", self.rate_window)
        if self.min_packets_for_verdict < 1:
            raise ValueError("min_packets_for_verdict must be >= 1")
        if self.dup_acks_per_probe < 0:
            raise ValueError("dup_acks_per_probe must be >= 0")
        check_positive("probe_ack_size", self.probe_ack_size)
        check_non_negative("renotice_interval", self.renotice_interval)
        if self.max_sft_entries < 0:
            raise ValueError("max_sft_entries must be >= 0")
        if self.max_pdt_entries < 0:
            raise ValueError("max_pdt_entries must be >= 0")

    def probe_window(self, rtt: float | None) -> float:
        """The verdict timer for a flow with the given RTT estimate."""
        rtt_value = rtt if rtt is not None and rtt > 0 else self.default_rtt
        return self.probe_timer_rtt_multiplier * rtt_value
