"""Flow labels: the hashed 4-tuple keys of Section III.B.

"The 4-tuple {Source IP, Destination IP, Source Port, Destination Port}
is used as a label to mark each flow ... we store only the output of a
hash function with the label as the input instead of the label itself."

:class:`FlowLabel` is that stored value.  It intentionally does NOT keep
the tuple itself; the tables never see raw addresses (beyond what the
agent needs transiently to forge the probe destination).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perf import FLAGS
from repro.sim.packet import FlowKey, Packet


@dataclass(frozen=True, order=True, slots=True)
class FlowLabel:
    """An opaque 64-bit hashed flow identity."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 64):
            raise ValueError("label must be an unsigned 64-bit value")

    @classmethod
    def from_key(cls, key: FlowKey) -> "FlowLabel":
        """Hash a 4-tuple into its table label."""
        return cls(key.hashed())

    def __int__(self) -> int:
        return self.value

    def __str__(self) -> str:
        return f"flow:{self.value:016x}"


def label_of_packet(packet: Packet) -> FlowLabel:
    """The table key for ``packet``'s flow.

    Memoized on the (immutable) flow key: every packet of a flow shares
    one FlowLabel instance instead of re-validating a frozen dataclass
    per table lookup.
    """
    key = packet.flow
    label = key._label
    if label is None:
        label = FlowLabel(key._hash64)
        if FLAGS.hot_path_caches:
            object.__setattr__(key, "_label", label)
    return label
