"""Duplicate-ACK probe generation.

MAFIC's probe is behavioural: alongside dropping a suspicious flow's
packet, the ATR sends duplicate ACKs "to hosts with source IP address"
(Section III.A) — i.e. toward whatever the packet *claims* its source is.
A genuine TCP sender receives them (plus notices the loss) and slows
down; a zombie spoofing that address never sees them, and a
non-congestion-controlled sender ignores them.

The forged ACK mirrors what the real receiver would send: it flows from
the packet's destination back to its claimed source, acknowledging the
dropped packet's sequence number (so a Reno sender counts it as a
duplicate for fast retransmit).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sim.packet import Packet, PacketType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator
    from repro.sim.node import Router


class DupAckProber:
    """Builds and injects forged duplicate-ACK probes at an ATR."""

    def __init__(
        self,
        sim: "Simulator",
        router: "Router",
        dup_acks_per_probe: int = 3,
        ack_size: int = 40,
        spacing: float = 0.001,
    ) -> None:
        if dup_acks_per_probe < 0:
            raise ValueError("dup_acks_per_probe must be >= 0")
        if ack_size <= 0:
            raise ValueError("ack_size must be positive")
        if spacing < 0:
            raise ValueError("spacing must be non-negative")
        self.sim = sim
        self.router = router
        self.dup_acks_per_probe = int(dup_acks_per_probe)
        self.ack_size = int(ack_size)
        self.spacing = float(spacing)
        self.probes_sent = 0
        self.on_probe: Callable[[Packet], None] | None = None

    def probe(self, dropped_packet: Packet) -> None:
        """Send the duplicate-ACK train for one dropped packet.

        The fields the forged ACKs need are captured *now*: the dropped
        packet is recycled into the pool the moment the hook's drop
        returns, so the scheduled sends must not retain it.
        """
        flow = dropped_packet.flow.reversed()
        seq = dropped_packet.seq
        ts_val = dropped_packet.ts_val
        for i in range(self.dup_acks_per_probe):
            self.sim.schedule(i * self.spacing, self._send_one, flow, seq, ts_val)

    def _send_one(self, flow, dropped_seq: int, dropped_ts_val: float) -> None:
        now = self.sim.now
        ack = Packet.acquire(
            flow=flow,
            ptype=PacketType.DUP_ACK,
            size=self.ack_size,
            seq=0,
            # ACK the dropped segment itself: to the sender this reads as
            # "receiver is still waiting for seq" — a duplicate.
            ack=dropped_seq,
            ts_val=now,
            ts_ecr=dropped_ts_val,
            created_at=now,
        )
        self.probes_sent += 1
        if self.on_probe is not None:
            self.on_probe(ack)
        # Inject at the ATR as if it arrived from the victim side; normal
        # routing carries it toward the claimed source.
        self.router.receive(ack)
